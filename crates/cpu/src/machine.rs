//! The instruction-level executor.
//!
//! [`Machine`] runs one [`wasmperf_isa::Module`] to completion, maintaining
//! architectural state (registers, flags, memory, machine stack) and the
//! full set of performance counters. Execution is deterministic: the same
//! module and inputs always produce the same outputs *and* the same
//! counter values.
//!
//! Address-space layout:
//!
//! ```text
//! 0 .. module.memory_size            program linear memory (data + heap)
//! module.memory_size .. mem.size()   machine stack (grows downward)
//! ```
//!
//! Calls push a synthetic return token on the machine stack (so stack
//! traffic is realistic) while a shadow stack holds the actual return
//! targets; `ret` verifies `rsp` integrity against the shadow stack, which
//! catches backend prologue/epilogue bugs immediately.

use crate::cache::Cache;
use crate::counters::PerfCounters;
use crate::host::{HostEnv, HostOutcome};
use crate::mem::Memory;
use crate::predecode::{MOp, Predecoded};
use crate::predictor::BranchPredictor;
use crate::threaded::{Seg, TOp, Threaded, NO_SB};
use crate::timing::{absorb, fp_to_cycles, TimingModel};
use std::sync::Arc;
use wasmperf_isa::inst::FOperand;
use wasmperf_isa::size::encoded_len;
use wasmperf_isa::{
    AluOp, Cc, FAluOp, FPrec, FuncId, HeapBase, Inst, MemRef, Module, Operand, Reg, RoundMode,
    Sandbox, TrapKind, Width, Xmm,
};
use wasmperf_trace::{AddrSample, CycleProfile};

/// Default machine-stack size in bytes.
pub const DEFAULT_STACK_BYTES: u64 = 1 << 20;

/// Synthetic value pushed as a return address token.
const RET_TOKEN: u64 = 0x5EC0_DE00_0000_0000;

/// Flags register subset.
#[derive(Debug, Clone, Copy, Default)]
struct Flags {
    zf: bool,
    sf: bool,
    of: bool,
    cf: bool,
    pf: bool,
}

#[derive(Debug)]
struct Frame {
    func: u32,
    ret_pc: u32,
    rsp_at_call: u64,
}

/// Counter snapshot taken before an instruction dispatches, so the delta
/// after dispatch can be attributed to that instruction's address.
#[derive(Clone, Copy)]
struct ProfSnap {
    cycle_fp: u64,
    dcache_misses: u64,
    icache_misses: u64,
    mispredicts: u64,
    host_cycles: u64,
}

/// An execution error: a trap plus source location.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ExecError {
    /// The trap reason.
    pub kind: TrapKind,
    /// Function the trap occurred in.
    pub func: String,
    /// Instruction index within the function.
    pub pc: usize,
    /// Additional context.
    pub detail: String,
}

impl core::fmt::Display for ExecError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "trap: {} at {}+{}", self.kind, self.func, self.pc)?;
        if !self.detail.is_empty() {
            write!(f, " ({})", self.detail)?;
        }
        Ok(())
    }
}

impl std::error::Error for ExecError {}

/// Result of a completed run.
#[derive(Debug, Clone)]
pub struct RunOutcome {
    /// Value of `rax` when the entry function returned.
    pub ret: u64,
    /// Exit code if the program terminated via a host `exit`.
    pub exit_code: Option<i32>,
    /// Performance counters for the run.
    pub counters: PerfCounters,
}

/// Which interpreter loop [`Machine::run`] drives. All paths produce
/// byte-identical observables (results, traps, counters); the threaded
/// superblock engine is the fastest and is the default. Profiled runs
/// always take the legacy path so per-instruction attribution stays exact.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ExecMode {
    /// Direct-threaded function-pointer dispatch over superblocks with
    /// batched fuel/cycle/fetch accounting (the default).
    Threaded,
    /// Flat micro-op stream dispatched through a `match`, fuel charged per
    /// basic block.
    Predecoded,
    /// The original per-instruction interpreter, used as the differential
    /// reference and by the profiler.
    Legacy,
}

/// The executing machine.
pub struct Machine<'m, H: HostEnv> {
    module: &'m Module,
    /// Program memory image (linear memory + machine stack).
    pub mem: Memory,
    regs: [u64; 16],
    xmm: [u64; 16],
    flags: Flags,
    counters: PerfCounters,
    icache: Cache,
    dcache: Cache,
    predictor: BranchPredictor,
    timing: TimingModel,
    cycle_fp: u64,
    /// Remaining issue work that hides under an outstanding D-cache miss.
    stall_credit_fp: u64,
    call_stack: Vec<Frame>,
    host: H,
    stack_floor: u64,
    /// Maximum shadow-stack depth before a stack-overflow trap.
    pub max_call_depth: usize,
    /// Per-address cycle attribution; `None` (the default) records nothing
    /// and keeps the hot loop free of bookkeeping.
    profile: Option<Box<CycleProfile>>,
    /// The module lowered once into flat micro-op blocks.
    pre: Arc<Predecoded>,
    /// The superblock program the threaded engine dispatches over, built
    /// lazily from `pre` on the first threaded run.
    threaded: Option<Arc<Threaded>>,
    /// Per-function, per-op handler tables for threaded dispatch,
    /// index-aligned with [`Threaded::funcs`] / [`FuncThreaded::tops`].
    ///
    /// [`FuncThreaded::tops`]: crate::threaded::FuncThreaded
    thandlers: Option<Arc<Vec<Vec<Handler<H>>>>>,
    /// Which interpreter loop [`Machine::run`] uses.
    exec_mode: ExecMode,
    /// Cached copy of `module.sandbox`: the guard-page contract for heap
    /// accesses, or `None` for native modules (no classification, no
    /// checks).
    sandbox: Option<Sandbox>,
    /// Precomputed fp-cycle cost of the two protection-domain switches
    /// (enter + leave) per host-call boundary crossing; 0 unless the
    /// module's sandbox models PKU-style switching.
    pku_fp: u64,
}

impl<'m, H: HostEnv> Machine<'m, H> {
    /// Creates a machine for `module` with a default-size machine stack.
    ///
    /// # Panics
    ///
    /// Panics if the module's instruction addresses have not been assigned
    /// (backends must call [`Module::assign_addresses`]).
    pub fn new(module: &'m Module, host: H) -> Machine<'m, H> {
        Machine::with_config(module, host, DEFAULT_STACK_BYTES, TimingModel::default())
    }

    /// Creates a machine with an explicit stack size and timing model.
    pub fn with_config(
        module: &'m Module,
        host: H,
        stack_bytes: u64,
        timing: TimingModel,
    ) -> Machine<'m, H> {
        for f in &module.funcs {
            assert_eq!(
                f.inst_addrs.len(),
                f.insts.len(),
                "module must have addresses assigned (fn {})",
                f.name
            );
        }
        let total = module.memory_size + stack_bytes;
        let mut mem = Memory::new(total);
        for (addr, data) in &module.data {
            mem.write_bytes(*addr, data)
                .expect("data segment in bounds");
        }
        let mut regs = [0u64; 16];
        regs[Reg::Rsp.index()] = total - 16;
        let icache = Cache::l1();
        let pre = Arc::new(Predecoded::new(module, &timing, icache.line_bytes()));
        Machine {
            module,
            mem,
            regs,
            xmm: [0; 16],
            flags: Flags::default(),
            counters: PerfCounters::default(),
            icache,
            dcache: Cache::l1(),
            predictor: BranchPredictor::default(),
            timing,
            cycle_fp: 0,
            stall_credit_fp: 0,
            call_stack: Vec::new(),
            host,
            stack_floor: module.memory_size,
            max_call_depth: 100_000,
            profile: None,
            pre,
            threaded: None,
            thandlers: None,
            exec_mode: ExecMode::Threaded,
            sandbox: module.sandbox,
            pku_fp: module
                .sandbox
                .map_or(0, |sb| 2 * sb.switch_cycles as u64 * 64),
        }
    }

    /// Selects which interpreter loop [`Machine::run`] uses. Profiled runs
    /// always take the legacy path regardless of this setting.
    pub fn set_exec_mode(&mut self, mode: ExecMode) {
        self.exec_mode = mode;
    }

    /// Turns on per-address cycle attribution for subsequent [`Machine::run`]
    /// calls. Profiling observes the counters the machine updates anyway;
    /// it never changes timing, counter values, or program results.
    pub fn enable_profile(&mut self) {
        if self.profile.is_none() {
            self.profile = Some(Box::new(CycleProfile::new()));
        }
    }

    /// Takes the accumulated profile, disabling further attribution.
    pub fn take_profile(&mut self) -> Option<CycleProfile> {
        self.profile.take().map(|p| *p)
    }

    #[inline]
    fn prof_snap(&self) -> ProfSnap {
        ProfSnap {
            cycle_fp: self.cycle_fp,
            dcache_misses: self.dcache.misses(),
            icache_misses: self.icache.misses(),
            mispredicts: self.predictor.mispredicts(),
            host_cycles: self.counters.host_cycles,
        }
    }

    #[inline]
    fn prof_record(&mut self, addr: u64, snap: ProfSnap) {
        if let Some(p) = self.profile.as_mut() {
            p.record(
                addr,
                AddrSample {
                    instructions: 1,
                    cycles_fp: self.cycle_fp - snap.cycle_fp,
                    dcache_misses: self.dcache.misses() - snap.dcache_misses,
                    icache_misses: self.icache.misses() - snap.icache_misses,
                    mispredicts: self.predictor.mispredicts() - snap.mispredicts,
                    host_cycles: self.counters.host_cycles - snap.host_cycles,
                },
            );
        }
    }

    /// Current counter values (cycles synced).
    pub fn counters(&self) -> PerfCounters {
        let mut c = self.counters;
        c.cycles = fp_to_cycles(self.cycle_fp);
        c.icache_accesses = self.icache.accesses();
        c.icache_misses = self.icache.misses();
        c.dcache_accesses = self.dcache.accesses();
        c.dcache_misses = self.dcache.misses();
        c.branch_mispredicts = self.predictor.mispredicts();
        c
    }

    /// Reads a general-purpose register.
    pub fn reg(&self, r: Reg) -> u64 {
        self.regs[r.index()]
    }

    /// Writes a general-purpose register (full 64 bits).
    pub fn set_reg(&mut self, r: Reg, v: u64) {
        self.regs[r.index()] = v;
    }

    /// Shared access to the host environment.
    pub fn host(&self) -> &H {
        &self.host
    }

    /// Mutable access to the host environment.
    pub fn host_mut(&mut self) -> &mut H {
        &mut self.host
    }

    /// Consumes the machine, returning the host.
    pub fn into_host(self) -> H {
        self.host
    }

    fn err(&self, kind: TrapKind, func: u32, pc: usize, detail: impl Into<String>) -> ExecError {
        ExecError {
            kind,
            func: self.module.funcs[func as usize].name.clone(),
            pc,
            detail: detail.into(),
        }
    }

    #[inline]
    fn ea(&self, m: &MemRef) -> u64 {
        let mut a = m.disp as u64;
        if let Some(b) = m.base {
            a = a.wrapping_add(self.regs[b.index()]);
        }
        if let Some((i, s)) = m.index {
            a = a.wrapping_add(self.regs[i.index()].wrapping_mul(s as u64));
        }
        a
    }

    /// Effective address plus the implicit guard-page check: in a
    /// sandboxed module, a heap access of `width` bytes at `a` faults iff
    /// `a + width > heap_limit`, exactly the predicate the explicit
    /// bounds-check ablation compiles in. The check is free — guard pages
    /// cost nothing on the in-bounds path — so counters and cycles are
    /// untouched. Non-heap accesses (machine stack, spill slots, table
    /// image) are exempt, as is everything in unsandboxed modules.
    #[inline]
    fn ea_checked(&self, m: &MemRef, width: Width) -> Result<u64, TrapKind> {
        let a = self.ea(m);
        if let Some(sb) = &self.sandbox {
            let is_heap = match sb.heap_base {
                HeapBase::Pinned(r) => m.base == Some(r),
                HeapBase::Masked => {
                    matches!(m.base, Some(b) if b != Reg::Rsp && b != Reg::Rbp)
                }
            };
            if is_heap
                && a.checked_add(width.bytes())
                    .is_none_or(|end| end > sb.heap_limit)
            {
                return Err(TrapKind::MemoryOutOfBounds);
            }
        }
        Ok(a)
    }

    #[inline]
    fn dcache_miss(&mut self) {
        let penalty = self.timing.dcache_miss_penalty as u64;
        self.cycle_fp += penalty;
        // A window of subsequent issue executes under the miss shadow.
        self.stall_credit_fp += penalty * self.timing.dcache_overlap_percent as u64 / 100;
    }

    /// D-cache probe for an access of `width` bytes at `addr`. An access
    /// that straddles a line boundary touches (and may miss) both lines,
    /// mirroring the I-cache fetch path.
    #[inline]
    fn dprobe(&mut self, addr: u64, width: Width) {
        if !self.dcache.access(addr) {
            self.dcache_miss();
        }
        let last = addr.wrapping_add(width.bytes() - 1);
        if self.dcache.line_of(last) != self.dcache.line_of(addr) && !self.dcache.access(last) {
            self.dcache_miss();
        }
    }

    #[inline]
    fn dread(&mut self, addr: u64, width: Width) -> Result<u64, TrapKind> {
        self.counters.loads_retired += 1;
        self.dprobe(addr, width);
        self.mem.read(addr, width)
    }

    #[inline]
    fn dwrite(&mut self, addr: u64, v: u64, width: Width) -> Result<(), TrapKind> {
        self.counters.stores_retired += 1;
        self.dprobe(addr, width);
        self.mem.write(addr, v, width)
    }

    #[inline]
    fn read_op(&mut self, op: &Operand, width: Width) -> Result<u64, TrapKind> {
        match op {
            Operand::Reg(r) => Ok(self.regs[r.index()] & width.mask()),
            Operand::Imm(v) => Ok((*v as u64) & width.mask()),
            Operand::Mem(m) => {
                let a = self.ea_checked(m, width)?;
                self.dread(a, width)
            }
        }
    }

    /// Writes an integer destination with x86 width semantics: 32-bit
    /// writes zero-extend, 8/16-bit writes merge into the low bits.
    #[inline]
    fn write_reg_w(&mut self, r: Reg, v: u64, width: Width) {
        let slot = &mut self.regs[r.index()];
        match width {
            Width::W64 => *slot = v,
            Width::W32 => *slot = v & 0xffff_ffff,
            Width::W16 => *slot = (*slot & !0xffff) | (v & 0xffff),
            Width::W8 => *slot = (*slot & !0xff) | (v & 0xff),
        }
    }

    #[inline]
    fn write_op(&mut self, op: &Operand, v: u64, width: Width) -> Result<(), TrapKind> {
        match op {
            Operand::Reg(r) => {
                self.write_reg_w(*r, v, width);
                Ok(())
            }
            Operand::Mem(m) => {
                let a = self.ea_checked(m, width)?;
                self.dwrite(a, v, width)
            }
            Operand::Imm(_) => unreachable!("immediate destination"),
        }
    }

    fn set_flags_logic(&mut self, res: u64, width: Width) {
        let r = res & width.mask();
        self.flags = Flags {
            zf: r == 0,
            sf: r & width.sign_bit() != 0,
            of: false,
            cf: false,
            pf: false,
        };
    }

    fn set_flags_add(&mut self, lhs: u64, rhs: u64, width: Width) -> u64 {
        let mask = width.mask();
        let (l, r) = (lhs & mask, rhs & mask);
        let res = l.wrapping_add(r) & mask;
        let sign = width.sign_bit();
        self.flags = Flags {
            zf: res == 0,
            sf: res & sign != 0,
            cf: res < l,
            of: (!(l ^ r) & (l ^ res)) & sign != 0,
            pf: false,
        };
        res
    }

    fn set_flags_sub(&mut self, lhs: u64, rhs: u64, width: Width) -> u64 {
        let mask = width.mask();
        let (l, r) = (lhs & mask, rhs & mask);
        let res = l.wrapping_sub(r) & mask;
        let sign = width.sign_bit();
        self.flags = Flags {
            zf: res == 0,
            sf: res & sign != 0,
            cf: l < r,
            of: ((l ^ r) & (l ^ res)) & sign != 0,
            pf: false,
        };
        res
    }

    fn cond(&self, cc: Cc) -> bool {
        let f = self.flags;
        match cc {
            Cc::E => f.zf,
            Cc::Ne => !f.zf,
            Cc::L => f.sf != f.of,
            Cc::Le => f.zf || f.sf != f.of,
            Cc::G => !f.zf && f.sf == f.of,
            Cc::Ge => f.sf == f.of,
            Cc::B => f.cf,
            Cc::Be => f.cf || f.zf,
            Cc::A => !f.cf && !f.zf,
            Cc::Ae => !f.cf,
            Cc::O => f.of,
            Cc::No => !f.of,
            Cc::S => f.sf,
            Cc::Ns => !f.sf,
            Cc::P => f.pf,
            Cc::Np => !f.pf,
        }
    }

    fn read_fop(&mut self, op: &FOperand, prec: FPrec) -> Result<u64, TrapKind> {
        match op {
            FOperand::Xmm(x) => Ok(self.xmm[x.index()]),
            FOperand::Mem(m) => {
                let w = match prec {
                    FPrec::F32 => Width::W32,
                    FPrec::F64 => Width::W64,
                };
                let a = self.ea_checked(m, w)?;
                self.dread(a, w)
            }
        }
    }

    #[inline]
    fn push_val_raw(&mut self, v: u64) -> StepResult {
        let rsp = self.regs[Reg::Rsp.index()].wrapping_sub(8);
        if rsp < self.stack_floor {
            return Err((TrapKind::StackOverflow, "machine stack exhausted"));
        }
        self.regs[Reg::Rsp.index()] = rsp;
        self.dwrite(rsp, v, Width::W64).map_err(|k| (k, "push"))
    }

    fn push_val(&mut self, v: u64, func: u32, pc: usize) -> Result<(), ExecError> {
        self.push_val_raw(v)
            .map_err(|(k, d)| self.err(k, func, pc, d))
    }

    /// Runs the module from `entry` with System V register arguments.
    ///
    /// `fuel` bounds the number of retired instructions; exceeding it
    /// returns a [`TrapKind::OutOfFuel`] error rather than hanging.
    ///
    /// Dispatches to the threaded superblock engine unless profiling is
    /// enabled (always legacy, for exact attribution) or
    /// [`Machine::set_exec_mode`] selected another tier; all paths produce
    /// identical observables.
    pub fn run(&mut self, entry: FuncId, args: &[u64], fuel: u64) -> Result<RunOutcome, ExecError> {
        assert!(args.len() <= 6, "at most 6 register arguments");
        for (i, &a) in args.iter().enumerate() {
            self.regs[Reg::SYSV_ARGS[i].index()] = a;
        }
        if self.profile.is_some() || self.exec_mode == ExecMode::Legacy {
            self.run_legacy(entry, fuel)
        } else if self.exec_mode == ExecMode::Predecoded {
            self.run_predecoded(entry, fuel)
        } else {
            self.run_threaded(entry, fuel)
        }
    }

    /// The legacy per-instruction interpreter: re-derives lengths, classes,
    /// and costs from the [`Module`] each step and carries the profiler
    /// hooks, so `wasmperf-trace` attribution is exact. Kept as the
    /// reference the predecoded engine is differentially tested against.
    fn run_legacy(&mut self, entry: FuncId, fuel: u64) -> Result<RunOutcome, ExecError> {
        let mut func = entry.0;
        let mut pc: usize = 0;
        let mut remaining = fuel;

        loop {
            let f = &self.module.funcs[func as usize];
            let Some(inst) = f.insts.get(pc) else {
                return Err(self.err(TrapKind::Abort, func, pc, "fell off end of function"));
            };
            let addr = f.inst_addrs[pc];
            let len = encoded_len(inst);
            let snap = if self.profile.is_some() {
                Some(self.prof_snap())
            } else {
                None
            };

            if remaining == 0 {
                return Err(self.err(TrapKind::OutOfFuel, func, pc, ""));
            }
            remaining -= 1;

            // Instruction fetch: I-cache access, possibly straddling lines.
            if !self.icache.access(addr) {
                self.cycle_fp += self.timing.icache_miss_penalty as u64;
            }
            let last = addr + len as u64 - 1;
            if self.icache.line_of(last) != self.icache.line_of(addr) && !self.icache.access(last) {
                self.cycle_fp += self.timing.icache_miss_penalty as u64;
            }

            self.counters.retire(1);
            let class = inst.class();
            let cost = self.timing.issue_cost(class) as u64;
            // Issue cost is absorbed by any outstanding miss shadow.
            self.cycle_fp += absorb(&mut self.stall_credit_fp, cost);

            // `next` is where control goes unless the instruction redirects.
            let mut next = pc + 1;
            let mut next_func = func;

            macro_rules! trap {
                ($k:expr, $d:expr) => {
                    return Err(self.err($k, func, pc, $d))
                };
            }
            macro_rules! step {
                ($r:expr) => {
                    if let Err((k, d)) = $r {
                        trap!(k, d)
                    }
                };
            }

            match inst {
                Inst::Mov { dst, src, width } => step!(self.exec_mov(dst, src, *width)),
                Inst::Movzx { dst, src, from } => step!(self.exec_movzx(*dst, src, *from)),
                Inst::Movsx { dst, src, from, to } => {
                    step!(self.exec_movsx(*dst, src, *from, *to))
                }
                Inst::Lea { dst, mem, width } => self.exec_lea(*dst, mem, *width),
                Inst::Alu {
                    op,
                    dst,
                    src,
                    width,
                } => step!(self.exec_alu(*op, dst, src, *width)),
                Inst::Neg { dst, width } => step!(self.exec_neg(dst, *width)),
                Inst::Not { dst, width } => step!(self.exec_not(dst, *width)),
                Inst::Imul { dst, src, width } => step!(self.exec_imul(*dst, src, *width)),
                Inst::Imul3 {
                    dst,
                    src,
                    imm,
                    width,
                } => step!(self.exec_imul3(*dst, src, *imm, *width)),
                Inst::Cqo { width } => self.exec_cqo(*width),
                Inst::Div { src, signed, width } => step!(self.exec_div(src, *signed, *width)),
                Inst::Cmp { lhs, rhs, width } => step!(self.exec_cmp(lhs, rhs, *width)),
                Inst::Test { lhs, rhs, width } => step!(self.exec_test(lhs, rhs, *width)),
                Inst::Cmov {
                    cc,
                    dst,
                    src,
                    width,
                } => step!(self.exec_cmov(*cc, *dst, src, *width)),
                Inst::Setcc { cc, dst } => self.exec_setcc(*cc, *dst),
                Inst::Lzcnt { dst, src, width } => step!(self.exec_lzcnt(*dst, src, *width)),
                Inst::Tzcnt { dst, src, width } => step!(self.exec_tzcnt(*dst, src, *width)),
                Inst::Popcnt { dst, src, width } => step!(self.exec_popcnt(*dst, src, *width)),
                Inst::Jmp { target } => {
                    self.counters.branches_retired += 1;
                    next = f.resolve(*target);
                }
                Inst::Jcc { cc, target } => {
                    self.counters.branches_retired += 1;
                    self.counters.cond_branches_retired += 1;
                    let taken = self.cond(*cc);
                    if self.predictor.predict_and_update(addr, taken) {
                        self.cycle_fp += self.timing.mispredict_penalty as u64;
                    }
                    if taken {
                        next = f.resolve(*target);
                    }
                }
                Inst::Call { target } => {
                    self.counters.branches_retired += 1;
                    if self.call_stack.len() >= self.max_call_depth {
                        trap!(TrapKind::StackOverflow, "call depth");
                    }
                    if target.0 as usize >= self.module.funcs.len() {
                        trap!(TrapKind::Abort, "call to unknown function");
                    }
                    self.push_val(RET_TOKEN | next as u64, func, pc)?;
                    self.call_stack.push(Frame {
                        func,
                        ret_pc: next as u32,
                        rsp_at_call: self.regs[Reg::Rsp.index()],
                    });
                    next_func = target.0;
                    next = 0;
                }
                Inst::CallIndirect { target } => {
                    self.counters.branches_retired += 1;
                    let v = match self.read_op(target, Width::W64) {
                        Ok(v) => v,
                        Err(k) => trap!(k, "call-indirect operand"),
                    };
                    if v as usize >= self.module.funcs.len() {
                        trap!(
                            TrapKind::IndirectCallOutOfBounds,
                            format!("bad function id {v:#x}")
                        );
                    }
                    if self.call_stack.len() >= self.max_call_depth {
                        trap!(TrapKind::StackOverflow, "call depth");
                    }
                    self.push_val(RET_TOKEN | next as u64, func, pc)?;
                    self.call_stack.push(Frame {
                        func,
                        ret_pc: next as u32,
                        rsp_at_call: self.regs[Reg::Rsp.index()],
                    });
                    next_func = v as u32;
                    next = 0;
                }
                Inst::CallHost { id } => {
                    self.counters.branches_retired += 1;
                    self.counters.host_calls += 1;
                    // PKU sandbox: WRPKRU on entry and exit of the host
                    // domain; serializing, so nothing hides under it.
                    self.cycle_fp += self.pku_fp;
                    let args = [
                        self.regs[Reg::Rdi.index()],
                        self.regs[Reg::Rsi.index()],
                        self.regs[Reg::Rdx.index()],
                        self.regs[Reg::Rcx.index()],
                        self.regs[Reg::R8.index()],
                        self.regs[Reg::R9.index()],
                    ];
                    match self.host.call(*id, &args, &mut self.mem) {
                        Ok(HostOutcome::Ret {
                            value,
                            kernel_cycles,
                        }) => {
                            self.regs[Reg::Rax.index()] = value;
                            self.counters.host_cycles += kernel_cycles;
                        }
                        Ok(HostOutcome::Exit {
                            code,
                            kernel_cycles,
                        }) => {
                            self.counters.host_cycles += kernel_cycles;
                            if let Some(s) = snap {
                                self.prof_record(addr, s);
                            }
                            return Ok(RunOutcome {
                                ret: self.regs[Reg::Rax.index()],
                                exit_code: Some(code),
                                counters: self.counters(),
                            });
                        }
                        Err(k) => trap!(k, format!("host call {id}")),
                    }
                }
                Inst::Push { src } => {
                    let v = match self.read_op(src, Width::W64) {
                        Ok(v) => v,
                        Err(k) => trap!(k, "push src"),
                    };
                    self.push_val(v, func, pc)?;
                }
                Inst::Pop { dst } => step!(self.exec_pop(*dst)),
                Inst::Ret => {
                    self.counters.branches_retired += 1;
                    let rsp = self.regs[Reg::Rsp.index()];
                    if let Err(k) = self.dread(rsp, Width::W64) {
                        trap!(k, "ret pop");
                    }
                    self.regs[Reg::Rsp.index()] = rsp + 8;
                    match self.call_stack.pop() {
                        Some(frame) => {
                            if frame.rsp_at_call != rsp {
                                trap!(
                                    TrapKind::Abort,
                                    format!(
                                        "rsp mismatch on ret: {:#x} != {:#x}",
                                        rsp, frame.rsp_at_call
                                    )
                                );
                            }
                            next_func = frame.func;
                            next = frame.ret_pc as usize;
                        }
                        None => {
                            if let Some(s) = snap {
                                self.prof_record(addr, s);
                            }
                            return Ok(RunOutcome {
                                ret: self.regs[Reg::Rax.index()],
                                exit_code: None,
                                counters: self.counters(),
                            });
                        }
                    }
                }
                Inst::MovF { dst, src, prec } => step!(self.exec_movf(dst, src, *prec)),
                Inst::AluF { op, dst, src, prec } => step!(self.exec_aluf(*op, *dst, src, *prec)),
                Inst::RoundF {
                    dst,
                    src,
                    prec,
                    mode,
                } => step!(self.exec_roundf(*dst, src, *prec, *mode)),
                Inst::AbsF { dst, src, prec } => step!(self.exec_absf(*dst, src, *prec)),
                Inst::SqrtF { dst, src, prec } => step!(self.exec_sqrtf(*dst, src, *prec)),
                Inst::Ucomis { lhs, rhs, prec } => step!(self.exec_ucomis(*lhs, rhs, *prec)),
                Inst::CvtIntToF {
                    dst,
                    src,
                    width,
                    prec,
                    unsigned,
                } => step!(self.exec_cvt_int_to_f(*dst, src, *width, *prec, *unsigned)),
                Inst::CvtFToInt {
                    dst,
                    src,
                    width,
                    prec,
                    unsigned,
                } => step!(self.exec_cvt_f_to_int(*dst, src, *width, *prec, *unsigned)),
                Inst::CvtFToF { dst, src, from } => step!(self.exec_cvt_f_to_f(*dst, src, *from)),
                Inst::MovGprToXmm { dst, src, width } => {
                    self.exec_mov_gpr_to_xmm(*dst, *src, *width)
                }
                Inst::MovXmmToGpr { dst, src, width } => {
                    self.exec_mov_xmm_to_gpr(*dst, *src, *width)
                }
                Inst::Trap { kind } => trap!(*kind, "explicit trap"),
                Inst::Nop => {}
            }

            if let Some(s) = snap {
                self.prof_record(addr, s);
            }
            func = next_func;
            pc = next;
        }
    }

    /// The predecoded block engine: drives the [`Predecoded`] micro-op
    /// stream, charging fuel per basic block and using the baked-in
    /// addresses, straddle flags, issue costs, and resolved branch targets.
    /// It performs the same cache probes, counter updates, and
    /// architectural effects in the same order as [`Machine::run_legacy`];
    /// the differential tests hold the two byte-identical.
    fn run_predecoded(&mut self, entry: FuncId, fuel: u64) -> Result<RunOutcome, ExecError> {
        let pre = Arc::clone(&self.pre);
        let icache_penalty = self.timing.icache_miss_penalty as u64;
        let mispredict_penalty = self.timing.mispredict_penalty as u64;
        let mut func = entry.0;
        let mut pc: usize = 0;
        let mut remaining = fuel;

        'blocks: loop {
            let fd = &pre.funcs[func as usize];
            if pc >= fd.uops.len() {
                return Err(self.err(TrapKind::Abort, func, pc, "fell off end of function"));
            }
            let blen = fd.block_len[pc] as u64;
            debug_assert!(blen > 0, "control must enter blocks at their leader");
            // The common case charges the whole block's fuel on entry; the
            // tail of a run (fewer than `blen` units left) falls back to
            // per-instruction checks so the out-of-fuel pc stays exact.
            let batched = remaining >= blen;
            if batched {
                remaining -= blen;
            }
            let end = pc + blen as usize;
            while pc < end {
                if !batched {
                    if remaining == 0 {
                        return Err(self.err(TrapKind::OutOfFuel, func, pc, ""));
                    }
                    remaining -= 1;
                }
                let u = &fd.uops[pc];
                if !self.icache.access(u.addr) {
                    self.cycle_fp += icache_penalty;
                }
                if u.straddles && !self.icache.access(u.last_byte) {
                    self.cycle_fp += icache_penalty;
                }
                self.counters.retire(1);
                // Issue cost is absorbed by any outstanding miss shadow.
                self.cycle_fp += absorb(&mut self.stall_credit_fp, u.cost as u64);

                macro_rules! trap {
                    ($k:expr, $d:expr) => {
                        return Err(self.err($k, func, pc, $d))
                    };
                }
                macro_rules! step {
                    ($r:expr) => {
                        if let Err((k, d)) = $r {
                            trap!(k, d)
                        }
                    };
                }

                match &u.op {
                    MOp::Mov { dst, src, width } => step!(self.exec_mov(dst, src, *width)),
                    MOp::Movzx { dst, src, from } => step!(self.exec_movzx(*dst, src, *from)),
                    MOp::Movsx { dst, src, from, to } => {
                        step!(self.exec_movsx(*dst, src, *from, *to))
                    }
                    MOp::Lea { dst, mem, width } => self.exec_lea(*dst, mem, *width),
                    MOp::Alu {
                        op,
                        dst,
                        src,
                        width,
                    } => step!(self.exec_alu(*op, dst, src, *width)),
                    MOp::Neg { dst, width } => step!(self.exec_neg(dst, *width)),
                    MOp::Not { dst, width } => step!(self.exec_not(dst, *width)),
                    MOp::Imul { dst, src, width } => step!(self.exec_imul(*dst, src, *width)),
                    MOp::Imul3 {
                        dst,
                        src,
                        imm,
                        width,
                    } => step!(self.exec_imul3(*dst, src, *imm, *width)),
                    MOp::Cqo { width } => self.exec_cqo(*width),
                    MOp::Div { src, signed, width } => step!(self.exec_div(src, *signed, *width)),
                    MOp::Cmp { lhs, rhs, width } => step!(self.exec_cmp(lhs, rhs, *width)),
                    MOp::Test { lhs, rhs, width } => step!(self.exec_test(lhs, rhs, *width)),
                    MOp::Cmov {
                        cc,
                        dst,
                        src,
                        width,
                    } => step!(self.exec_cmov(*cc, *dst, src, *width)),
                    MOp::Setcc { cc, dst } => self.exec_setcc(*cc, *dst),
                    MOp::Lzcnt { dst, src, width } => step!(self.exec_lzcnt(*dst, src, *width)),
                    MOp::Tzcnt { dst, src, width } => step!(self.exec_tzcnt(*dst, src, *width)),
                    MOp::Popcnt { dst, src, width } => step!(self.exec_popcnt(*dst, src, *width)),
                    MOp::Jmp { target } => {
                        self.counters.branches_retired += 1;
                        pc = *target as usize;
                        continue 'blocks;
                    }
                    MOp::Jcc { cc, target } => {
                        self.counters.branches_retired += 1;
                        self.counters.cond_branches_retired += 1;
                        let taken = self.cond(*cc);
                        if self.predictor.predict_and_update(u.addr, taken) {
                            self.cycle_fp += mispredict_penalty;
                        }
                        if taken {
                            pc = *target as usize;
                            continue 'blocks;
                        }
                        // Not taken: a Jcc ends its block, so `pc + 1 ==
                        // end` and the outer loop re-enters at the
                        // fall-through leader.
                    }
                    MOp::Call { target } => {
                        self.counters.branches_retired += 1;
                        if self.call_stack.len() >= self.max_call_depth {
                            trap!(TrapKind::StackOverflow, "call depth");
                        }
                        if target.0 as usize >= self.module.funcs.len() {
                            trap!(TrapKind::Abort, "call to unknown function");
                        }
                        let ret_pc = pc + 1;
                        step!(self.push_val_raw(RET_TOKEN | ret_pc as u64));
                        self.call_stack.push(Frame {
                            func,
                            ret_pc: ret_pc as u32,
                            rsp_at_call: self.regs[Reg::Rsp.index()],
                        });
                        func = target.0;
                        pc = 0;
                        continue 'blocks;
                    }
                    MOp::CallIndirect { target } => {
                        self.counters.branches_retired += 1;
                        let v = match self.read_op(target, Width::W64) {
                            Ok(v) => v,
                            Err(k) => trap!(k, "call-indirect operand"),
                        };
                        if v as usize >= self.module.funcs.len() {
                            trap!(
                                TrapKind::IndirectCallOutOfBounds,
                                format!("bad function id {v:#x}")
                            );
                        }
                        if self.call_stack.len() >= self.max_call_depth {
                            trap!(TrapKind::StackOverflow, "call depth");
                        }
                        let ret_pc = pc + 1;
                        step!(self.push_val_raw(RET_TOKEN | ret_pc as u64));
                        self.call_stack.push(Frame {
                            func,
                            ret_pc: ret_pc as u32,
                            rsp_at_call: self.regs[Reg::Rsp.index()],
                        });
                        func = v as u32;
                        pc = 0;
                        continue 'blocks;
                    }
                    MOp::CallHost { id } => {
                        self.counters.branches_retired += 1;
                        self.counters.host_calls += 1;
                        self.cycle_fp += self.pku_fp;
                        let args = [
                            self.regs[Reg::Rdi.index()],
                            self.regs[Reg::Rsi.index()],
                            self.regs[Reg::Rdx.index()],
                            self.regs[Reg::Rcx.index()],
                            self.regs[Reg::R8.index()],
                            self.regs[Reg::R9.index()],
                        ];
                        match self.host.call(*id, &args, &mut self.mem) {
                            Ok(HostOutcome::Ret {
                                value,
                                kernel_cycles,
                            }) => {
                                self.regs[Reg::Rax.index()] = value;
                                self.counters.host_cycles += kernel_cycles;
                            }
                            Ok(HostOutcome::Exit {
                                code,
                                kernel_cycles,
                            }) => {
                                self.counters.host_cycles += kernel_cycles;
                                return Ok(RunOutcome {
                                    ret: self.regs[Reg::Rax.index()],
                                    exit_code: Some(code),
                                    counters: self.counters(),
                                });
                            }
                            Err(k) => trap!(k, format!("host call {id}")),
                        }
                    }
                    MOp::Push { src } => {
                        let v = match self.read_op(src, Width::W64) {
                            Ok(v) => v,
                            Err(k) => trap!(k, "push src"),
                        };
                        step!(self.push_val_raw(v));
                    }
                    MOp::Pop { dst } => step!(self.exec_pop(*dst)),
                    MOp::Ret => {
                        self.counters.branches_retired += 1;
                        let rsp = self.regs[Reg::Rsp.index()];
                        if let Err(k) = self.dread(rsp, Width::W64) {
                            trap!(k, "ret pop");
                        }
                        self.regs[Reg::Rsp.index()] = rsp + 8;
                        match self.call_stack.pop() {
                            Some(frame) => {
                                if frame.rsp_at_call != rsp {
                                    trap!(
                                        TrapKind::Abort,
                                        format!(
                                            "rsp mismatch on ret: {:#x} != {:#x}",
                                            rsp, frame.rsp_at_call
                                        )
                                    );
                                }
                                func = frame.func;
                                pc = frame.ret_pc as usize;
                                continue 'blocks;
                            }
                            None => {
                                return Ok(RunOutcome {
                                    ret: self.regs[Reg::Rax.index()],
                                    exit_code: None,
                                    counters: self.counters(),
                                });
                            }
                        }
                    }
                    MOp::MovF { dst, src, prec } => step!(self.exec_movf(dst, src, *prec)),
                    MOp::AluF { op, dst, src, prec } => {
                        step!(self.exec_aluf(*op, *dst, src, *prec))
                    }
                    MOp::RoundF {
                        dst,
                        src,
                        prec,
                        mode,
                    } => step!(self.exec_roundf(*dst, src, *prec, *mode)),
                    MOp::AbsF { dst, src, prec } => step!(self.exec_absf(*dst, src, *prec)),
                    MOp::SqrtF { dst, src, prec } => step!(self.exec_sqrtf(*dst, src, *prec)),
                    MOp::Ucomis { lhs, rhs, prec } => step!(self.exec_ucomis(*lhs, rhs, *prec)),
                    MOp::CvtIntToF {
                        dst,
                        src,
                        width,
                        prec,
                        unsigned,
                    } => step!(self.exec_cvt_int_to_f(*dst, src, *width, *prec, *unsigned)),
                    MOp::CvtFToInt {
                        dst,
                        src,
                        width,
                        prec,
                        unsigned,
                    } => step!(self.exec_cvt_f_to_int(*dst, src, *width, *prec, *unsigned)),
                    MOp::CvtFToF { dst, src, from } => {
                        step!(self.exec_cvt_f_to_f(*dst, src, *from))
                    }
                    MOp::MovGprToXmm { dst, src, width } => {
                        self.exec_mov_gpr_to_xmm(*dst, *src, *width)
                    }
                    MOp::MovXmmToGpr { dst, src, width } => {
                        self.exec_mov_xmm_to_gpr(*dst, *src, *width)
                    }
                    MOp::Trap { kind } => trap!(*kind, "explicit trap"),
                    MOp::Nop => {}
                }
                pc += 1;
            }
            // Fell through the block's end: `pc == end` is the next leader.
        }
    }

    /// Builds (once) the superblock program and the per-op handler tables
    /// the threaded engine dispatches over.
    fn ensure_threaded(&mut self) {
        if self.threaded.is_some() {
            return;
        }
        let th = Arc::new(Threaded::new(&self.pre, self.icache.line_bytes()));
        let tables: Vec<Vec<Handler<H>>> = th
            .funcs
            .iter()
            .map(|tf| tf.tops.iter().map(handler_for::<H>).collect())
            .collect();
        self.thandlers = Some(Arc::new(tables));
        self.threaded = Some(th);
    }

    /// The direct-threaded superblock engine ([`ExecMode::Threaded`]):
    /// dispatches each op through a pre-selected function pointer instead
    /// of a `match`, charges fuel per *superblock* (merged block chains,
    /// see [`crate::threaded`]) with exact rollback of the unexecuted tail
    /// at side exits, and applies the cycle and I-cache fetch accounting of
    /// pure register-only runs in one batched step. Every batching rule has
    /// a bit-exactness argument ([`Seg::Pure`], [`absorb`],
    /// [`Cache::record_hits`]); the differential tests hold this loop
    /// byte-identical to [`Machine::run_legacy`].
    fn run_threaded(&mut self, entry: FuncId, fuel: u64) -> Result<RunOutcome, ExecError> {
        self.ensure_threaded();
        let th = Arc::clone(self.threaded.as_ref().expect("ensure_threaded ran"));
        let tables = Arc::clone(self.thandlers.as_ref().expect("ensure_threaded ran"));
        let icache_penalty = self.timing.icache_miss_penalty as u64;
        let mut func = entry.0;
        let mut remaining = fuel;

        // Resolves a control-transfer destination (function entry or
        // return site) to its superblock, with the legacy loop's exact
        // "fell off end" abort for out-of-range targets.
        macro_rules! enter {
            ($f:expr, $pc:expr) => {{
                let dst = &th.funcs[$f as usize];
                if $pc as usize >= dst.n as usize {
                    return Err(self.err(
                        TrapKind::Abort,
                        $f,
                        $pc as usize,
                        "fell off end of function",
                    ));
                }
                let sb = dst.entry[$pc as usize];
                debug_assert_ne!(sb, NO_SB, "control must enter superblocks at their head");
                sb
            }};
        }

        let mut sb_id = enter!(func, 0u32);
        'sb: loop {
            let tf = &th.funcs[func as usize];
            let hs = &tables[func as usize];
            let sb = &tf.sbs[sb_id as usize];
            // The common case charges the whole superblock's fuel on entry;
            // runs with less fuel left than the superblock is long fall
            // back to per-op checks so the out-of-fuel pc stays exact.
            let batched = remaining >= sb.len as u64;

            // One op with exact per-instruction accounting, plus the
            // control-flow outcome handling shared by both fuel paths.
            macro_rules! op {
                ($i:expr, $batched:expr) => {{
                    let t = &tf.tops[$i];
                    if !self.icache.access(t.addr) {
                        self.cycle_fp += icache_penalty;
                    }
                    if t.straddles && !self.icache.access(t.last_byte) {
                        self.cycle_fp += icache_penalty;
                    }
                    self.counters.retire(1);
                    self.cycle_fp += absorb(&mut self.stall_credit_fp, t.cost as u64);
                    match (hs[$i])(self, t) {
                        Ok(Flow::Next) => {}
                        Ok(Flow::Jump {
                            sb: dst,
                            orig_target,
                        }) => {
                            if $batched {
                                // Side exit: roll back the unexecuted tail
                                // so fuel consumed equals instructions
                                // retired at every superblock entry — the
                                // out-of-fuel pc stays exact across
                                // superblock seams.
                                remaining += t.sb_tail as u64;
                            }
                            if dst == NO_SB {
                                return Err(self.err(
                                    TrapKind::Abort,
                                    func,
                                    orig_target as usize,
                                    "fell off end of function",
                                ));
                            }
                            sb_id = dst;
                            continue 'sb;
                        }
                        Ok(Flow::Enter { func: f }) => {
                            func = f;
                            sb_id = enter!(f, 0u32);
                            continue 'sb;
                        }
                        Ok(Flow::RetTo { func: f, ret_pc }) => {
                            func = f;
                            sb_id = enter!(f, ret_pc);
                            continue 'sb;
                        }
                        Ok(Flow::Finish { exit_code }) => {
                            return Ok(RunOutcome {
                                ret: self.regs[Reg::Rax.index()],
                                exit_code,
                                counters: self.counters(),
                            });
                        }
                        Err((k, d)) => {
                            return Err(self.err(k, func, t.orig_pc as usize, d));
                        }
                    }
                }};
            }

            if batched {
                remaining -= sb.len as u64;
                for seg in &tf.segs[sb.seg_lo as usize..sb.seg_hi as usize] {
                    match *seg {
                        Seg::Pure {
                            lo,
                            hi,
                            cost_fp,
                            fetches,
                            probe_lo,
                            probe_hi,
                        } => {
                            // Batched fetch: probe only at line transitions,
                            // count the statically-deduplicated rest.
                            for &a in &tf.probes[probe_lo as usize..probe_hi as usize] {
                                if !self.icache.access(a) {
                                    self.cycle_fp += icache_penalty;
                                }
                            }
                            self.icache
                                .record_hits(fetches - (probe_hi - probe_lo) as u64);
                            self.counters.retire((hi - lo) as u64);
                            self.cycle_fp += absorb(&mut self.stall_credit_fp, cost_fp);
                            let run = lo as usize..hi as usize;
                            for (h, t) in hs[run.clone()].iter().zip(&tf.tops[run]) {
                                if let Err((k, d)) = h(self, t) {
                                    debug_assert!(false, "pure op trapped: {d}");
                                    return Err(self.err(k, func, t.orig_pc as usize, d));
                                }
                            }
                        }
                        Seg::Complex { idx } => op!(idx as usize, true),
                    }
                }
            } else {
                // Indexed on purpose: `op!` needs the op index for both the
                // handler table and the trap-location lookup.
                #[allow(clippy::needless_range_loop)]
                for i in sb.op_lo as usize..sb.op_hi as usize {
                    if remaining == 0 {
                        return Err(self.err(
                            TrapKind::OutOfFuel,
                            func,
                            tf.tops[i].orig_pc as usize,
                            "",
                        ));
                    }
                    remaining -= 1;
                    op!(i, false);
                }
            }
            match sb.fallthrough {
                NO_SB => {
                    return Err(self.err(
                        TrapKind::Abort,
                        func,
                        tf.n as usize,
                        "fell off end of function",
                    ));
                }
                next => sb_id = next,
            }
        }
    }

    #[inline]
    fn exec_mov(&mut self, dst: &Operand, src: &Operand, width: Width) -> StepResult {
        let v = self.read_op(src, width).map_err(|k| (k, "mov src"))?;
        self.write_op(dst, v, width).map_err(|k| (k, "mov dst"))
    }

    #[inline]
    fn exec_movzx(&mut self, dst: Reg, src: &Operand, from: Width) -> StepResult {
        let v = self.read_op(src, from).map_err(|k| (k, "movzx"))?;
        self.regs[dst.index()] = v;
        Ok(())
    }

    #[inline]
    fn exec_movsx(&mut self, dst: Reg, src: &Operand, from: Width, to: Width) -> StepResult {
        let v = self.read_op(src, from).map_err(|k| (k, "movsx"))?;
        let bits = from.bytes() * 8;
        let sext = ((v << (64 - bits)) as i64 >> (64 - bits)) as u64;
        self.write_reg_w(dst, sext & to.mask(), to);
        if to == Width::W64 {
            self.regs[dst.index()] = sext;
        }
        Ok(())
    }

    #[inline]
    fn exec_lea(&mut self, dst: Reg, mem: &MemRef, width: Width) {
        let a = self.ea(mem);
        self.write_reg_w(dst, a & width.mask(), width);
    }

    #[inline]
    fn exec_alu(&mut self, op: AluOp, dst: &Operand, src: &Operand, width: Width) -> StepResult {
        // A read-modify-write memory destination computes the effective
        // address once and reuses it for both the load and the store.
        let mem_ea = match dst {
            Operand::Mem(m) => Some(self.ea_checked(m, width).map_err(|k| (k, "alu dst read"))?),
            _ => None,
        };
        let l = match mem_ea {
            Some(a) => self.dread(a, width),
            None => self.read_op(dst, width),
        }
        .map_err(|k| (k, "alu dst read"))?;
        let r = self.read_op(src, width).map_err(|k| (k, "alu src"))?;
        let res = match op {
            AluOp::Add => self.set_flags_add(l, r, width),
            AluOp::Sub => self.set_flags_sub(l, r, width),
            AluOp::And => {
                let v = l & r;
                self.set_flags_logic(v, width);
                v & width.mask()
            }
            AluOp::Or => {
                let v = l | r;
                self.set_flags_logic(v, width);
                v & width.mask()
            }
            AluOp::Xor => {
                let v = l ^ r;
                self.set_flags_logic(v, width);
                v & width.mask()
            }
            AluOp::Shl => {
                let c = r & (width.bytes() * 8 - 1);
                let v = (l << c) & width.mask();
                self.set_flags_logic(v, width);
                v
            }
            AluOp::Shr => {
                let c = r & (width.bytes() * 8 - 1);
                let v = (l & width.mask()) >> c;
                self.set_flags_logic(v, width);
                v
            }
            AluOp::Sar => {
                let c = r & (width.bytes() * 8 - 1);
                let bits = width.bytes() * 8;
                let sext = ((l << (64 - bits)) as i64) >> (64 - bits);
                let v = ((sext >> c) as u64) & width.mask();
                self.set_flags_logic(v, width);
                v
            }
            AluOp::Rol => {
                let bits = (width.bytes() * 8) as u32;
                let c = (r as u32) % bits;
                let lm = l & width.mask();
                // Rotate by zero is the identity; `bits - c` would be a
                // full-width (UB-in-hardware) shift.
                if c == 0 {
                    lm
                } else {
                    ((lm << c) | (lm >> (bits - c))) & width.mask()
                }
            }
            AluOp::Ror => {
                let bits = (width.bytes() * 8) as u32;
                let c = (r as u32) % bits;
                let lm = l & width.mask();
                if c == 0 {
                    lm
                } else {
                    ((lm >> c) | (lm << (bits - c))) & width.mask()
                }
            }
        };
        match mem_ea {
            Some(a) => self.dwrite(a, res, width),
            None => self.write_op(dst, res, width),
        }
        .map_err(|k| (k, "alu writeback"))
    }

    #[inline]
    fn exec_neg(&mut self, dst: &Operand, width: Width) -> StepResult {
        let mem_ea = match dst {
            Operand::Mem(m) => Some(self.ea_checked(m, width).map_err(|k| (k, "neg"))?),
            _ => None,
        };
        let v = match mem_ea {
            Some(a) => self.dread(a, width),
            None => self.read_op(dst, width),
        }
        .map_err(|k| (k, "neg"))?;
        let res = self.set_flags_sub(0, v, width);
        match mem_ea {
            Some(a) => self.dwrite(a, res, width),
            None => self.write_op(dst, res, width),
        }
        .map_err(|k| (k, "neg writeback"))
    }

    #[inline]
    fn exec_not(&mut self, dst: &Operand, width: Width) -> StepResult {
        let mem_ea = match dst {
            Operand::Mem(m) => Some(self.ea_checked(m, width).map_err(|k| (k, "not"))?),
            _ => None,
        };
        let v = match mem_ea {
            Some(a) => self.dread(a, width),
            None => self.read_op(dst, width),
        }
        .map_err(|k| (k, "not"))?;
        let res = !v & width.mask();
        match mem_ea {
            Some(a) => self.dwrite(a, res, width),
            None => self.write_op(dst, res, width),
        }
        .map_err(|k| (k, "not writeback"))
    }

    #[inline]
    fn exec_imul(&mut self, dst: Reg, src: &Operand, width: Width) -> StepResult {
        let l = self.regs[dst.index()] & width.mask();
        let r = self.read_op(src, width).map_err(|k| (k, "imul"))?;
        self.write_reg_w(dst, l.wrapping_mul(r) & width.mask(), width);
        Ok(())
    }

    #[inline]
    fn exec_imul3(&mut self, dst: Reg, src: &Operand, imm: i64, width: Width) -> StepResult {
        let r = self.read_op(src, width).map_err(|k| (k, "imul3"))?;
        self.write_reg_w(dst, r.wrapping_mul(imm as u64) & width.mask(), width);
        Ok(())
    }

    #[inline]
    fn exec_cqo(&mut self, width: Width) {
        let rax = self.regs[Reg::Rax.index()] & width.mask();
        let neg = rax & width.sign_bit() != 0;
        let v = if neg { width.mask() } else { 0 };
        self.write_reg_w(Reg::Rdx, v, width);
    }

    #[inline]
    fn exec_div(&mut self, src: &Operand, signed: bool, width: Width) -> StepResult {
        let divisor = self.read_op(src, width).map_err(|k| (k, "div"))?;
        if divisor == 0 {
            return Err((TrapKind::DivByZero, ""));
        }
        let mask = width.mask();
        let lo = self.regs[Reg::Rax.index()] & mask;
        let hi = self.regs[Reg::Rdx.index()] & mask;
        let bits = width.bytes() * 8;
        if signed {
            let dividend = ((hi as u128) << bits) | lo as u128;
            // Sign-extend the 2*bits dividend.
            let shift = 128 - 2 * bits as u32;
            let dividend = ((dividend << shift) as i128) >> shift;
            let dsor = {
                let s = 64 - bits;
                ((divisor << s) as i64 >> s) as i128
            };
            let q = dividend.wrapping_div(dsor);
            let r = dividend.wrapping_rem(dsor);
            let min = -(1i128 << (bits - 1));
            let max = (1i128 << (bits - 1)) - 1;
            if q < min || q > max {
                return Err((TrapKind::IntegerOverflow, "idiv quotient overflow"));
            }
            self.write_reg_w(Reg::Rax, q as u64 & mask, width);
            self.write_reg_w(Reg::Rdx, r as u64 & mask, width);
        } else {
            let dividend = ((hi as u128) << bits) | lo as u128;
            let q = dividend / divisor as u128;
            let r = dividend % divisor as u128;
            if q > mask as u128 {
                return Err((TrapKind::IntegerOverflow, "div quotient overflow"));
            }
            self.write_reg_w(Reg::Rax, q as u64, width);
            self.write_reg_w(Reg::Rdx, r as u64, width);
        }
        Ok(())
    }

    #[inline]
    fn exec_cmp(&mut self, lhs: &Operand, rhs: &Operand, width: Width) -> StepResult {
        let l = self.read_op(lhs, width).map_err(|k| (k, "cmp lhs"))?;
        let r = self.read_op(rhs, width).map_err(|k| (k, "cmp rhs"))?;
        self.set_flags_sub(l, r, width);
        Ok(())
    }

    #[inline]
    fn exec_test(&mut self, lhs: &Operand, rhs: &Operand, width: Width) -> StepResult {
        let l = self.read_op(lhs, width).map_err(|k| (k, "test lhs"))?;
        let r = self.read_op(rhs, width).map_err(|k| (k, "test rhs"))?;
        self.set_flags_logic(l & r, width);
        Ok(())
    }

    #[inline]
    fn exec_cmov(&mut self, cc: Cc, dst: Reg, src: &Operand, width: Width) -> StepResult {
        // The source (including memory) is read regardless of the
        // condition, as on hardware.
        let v = self.read_op(src, width).map_err(|k| (k, "cmov src"))?;
        if self.cond(cc) {
            self.write_reg_w(dst, v, width);
        } else if width == Width::W32 {
            // 32-bit cmov zero-extends the destination even when the move
            // does not happen.
            let cur = self.regs[dst.index()] & 0xffff_ffff;
            self.regs[dst.index()] = cur;
        }
        Ok(())
    }

    #[inline]
    fn exec_setcc(&mut self, cc: Cc, dst: Reg) {
        let v = u64::from(self.cond(cc));
        self.regs[dst.index()] = v;
    }

    #[inline]
    fn exec_lzcnt(&mut self, dst: Reg, src: &Operand, width: Width) -> StepResult {
        let v = self.read_op(src, width).map_err(|k| (k, "lzcnt"))?;
        let bits = (width.bytes() * 8) as u32;
        let n = if v == 0 {
            bits
        } else {
            v.leading_zeros() - (64 - bits)
        };
        self.write_reg_w(dst, n as u64, width);
        Ok(())
    }

    #[inline]
    fn exec_tzcnt(&mut self, dst: Reg, src: &Operand, width: Width) -> StepResult {
        let v = self.read_op(src, width).map_err(|k| (k, "tzcnt"))?;
        let bits = (width.bytes() * 8) as u32;
        let n = if v == 0 {
            bits
        } else {
            v.trailing_zeros().min(bits)
        };
        self.write_reg_w(dst, n as u64, width);
        Ok(())
    }

    #[inline]
    fn exec_popcnt(&mut self, dst: Reg, src: &Operand, width: Width) -> StepResult {
        let v = self.read_op(src, width).map_err(|k| (k, "popcnt"))?;
        self.write_reg_w(dst, v.count_ones() as u64, width);
        Ok(())
    }

    #[inline]
    fn exec_pop(&mut self, dst: Reg) -> StepResult {
        let rsp = self.regs[Reg::Rsp.index()];
        let v = self.dread(rsp, Width::W64).map_err(|k| (k, "pop"))?;
        self.regs[Reg::Rsp.index()] = rsp + 8;
        self.regs[dst.index()] = v;
        Ok(())
    }

    #[inline]
    fn exec_movf(&mut self, dst: &FOperand, src: &FOperand, prec: FPrec) -> StepResult {
        let v = self.read_fop(src, prec).map_err(|k| (k, "movf src"))?;
        match dst {
            FOperand::Xmm(x) => {
                // movss merges the low lane; our model holds one scalar per
                // register, so a full overwrite is semantically equivalent
                // for scalar code.
                self.xmm[x.index()] = v & match prec {
                    FPrec::F32 => 0xffff_ffff,
                    FPrec::F64 => u64::MAX,
                };
                Ok(())
            }
            FOperand::Mem(m) => {
                let w = match prec {
                    FPrec::F32 => Width::W32,
                    FPrec::F64 => Width::W64,
                };
                let a = self.ea_checked(m, w).map_err(|k| (k, "movf dst"))?;
                self.dwrite(a, v, w).map_err(|k| (k, "movf dst"))
            }
        }
    }

    #[inline]
    fn exec_aluf(&mut self, op: FAluOp, dst: Xmm, src: &FOperand, prec: FPrec) -> StepResult {
        let rv = self.read_fop(src, prec).map_err(|k| (k, "aluf src"))?;
        let lv = self.xmm[dst.index()];
        let res = match prec {
            FPrec::F32 => {
                let l = f32::from_bits(lv as u32);
                let r = f32::from_bits(rv as u32);
                let v = match op {
                    FAluOp::Add => l + r,
                    FAluOp::Sub => l - r,
                    FAluOp::Mul => l * r,
                    FAluOp::Div => l / r,
                    FAluOp::Min => wasmperf_isa::fpsem::wasm_min_f32(l, r),
                    FAluOp::Max => wasmperf_isa::fpsem::wasm_max_f32(l, r),
                };
                v.to_bits() as u64
            }
            FPrec::F64 => {
                let l = f64::from_bits(lv);
                let r = f64::from_bits(rv);
                let v = match op {
                    FAluOp::Add => l + r,
                    FAluOp::Sub => l - r,
                    FAluOp::Mul => l * r,
                    FAluOp::Div => l / r,
                    FAluOp::Min => wasmperf_isa::fpsem::wasm_min_f64(l, r),
                    FAluOp::Max => wasmperf_isa::fpsem::wasm_max_f64(l, r),
                };
                v.to_bits()
            }
        };
        self.xmm[dst.index()] = res;
        Ok(())
    }

    #[inline]
    fn exec_roundf(
        &mut self,
        dst: Xmm,
        src: &FOperand,
        prec: FPrec,
        mode: RoundMode,
    ) -> StepResult {
        let v = self.read_fop(src, prec).map_err(|k| (k, "roundf"))?;
        let x = match prec {
            FPrec::F32 => f32::from_bits(v as u32) as f64,
            FPrec::F64 => f64::from_bits(v),
        };
        let r = match mode {
            RoundMode::Floor => x.floor(),
            RoundMode::Ceil => x.ceil(),
            RoundMode::Trunc => x.trunc(),
            RoundMode::Nearest => {
                let r = x.round();
                if (x - x.trunc()).abs() == 0.5 && r % 2.0 != 0.0 {
                    r - x.signum()
                } else {
                    r
                }
            }
        };
        self.xmm[dst.index()] = match prec {
            FPrec::F32 => (r as f32).to_bits() as u64,
            FPrec::F64 => r.to_bits(),
        };
        Ok(())
    }

    #[inline]
    fn exec_absf(&mut self, dst: Xmm, src: &FOperand, prec: FPrec) -> StepResult {
        let v = self.read_fop(src, prec).map_err(|k| (k, "absf"))?;
        self.xmm[dst.index()] = match prec {
            FPrec::F32 => (v as u32 & 0x7fff_ffff) as u64,
            FPrec::F64 => v & 0x7fff_ffff_ffff_ffff,
        };
        Ok(())
    }

    #[inline]
    fn exec_sqrtf(&mut self, dst: Xmm, src: &FOperand, prec: FPrec) -> StepResult {
        let v = self.read_fop(src, prec).map_err(|k| (k, "sqrtf"))?;
        self.xmm[dst.index()] = match prec {
            FPrec::F32 => f32::from_bits(v as u32).sqrt().to_bits() as u64,
            FPrec::F64 => f64::from_bits(v).sqrt().to_bits(),
        };
        Ok(())
    }

    #[inline]
    fn exec_ucomis(&mut self, lhs: Xmm, rhs: &FOperand, prec: FPrec) -> StepResult {
        let rv = self.read_fop(rhs, prec).map_err(|k| (k, "ucomis"))?;
        let lv = self.xmm[lhs.index()];
        let (l, r) = match prec {
            FPrec::F32 => (
                f32::from_bits(lv as u32) as f64,
                f32::from_bits(rv as u32) as f64,
            ),
            FPrec::F64 => (f64::from_bits(lv), f64::from_bits(rv)),
        };
        // x86 ucomis: unordered => ZF=PF=CF=1; == => ZF=1;
        // < => CF=1; > => all clear. SF/OF cleared.
        let (zf, pf, cf) = if l.is_nan() || r.is_nan() {
            (true, true, true)
        } else if l == r {
            (true, false, false)
        } else if l < r {
            (false, false, true)
        } else {
            (false, false, false)
        };
        self.flags = Flags {
            zf,
            pf,
            cf,
            sf: false,
            of: false,
        };
        Ok(())
    }

    #[inline]
    fn exec_cvt_int_to_f(
        &mut self,
        dst: Xmm,
        src: &Operand,
        width: Width,
        prec: FPrec,
        unsigned: bool,
    ) -> StepResult {
        let v = self.read_op(src, width).map_err(|k| (k, "cvtint2f"))?;
        let as_f64 = if unsigned {
            v as f64
        } else {
            let bits = width.bytes() * 8;
            (((v << (64 - bits)) as i64) >> (64 - bits)) as f64
        };
        self.xmm[dst.index()] = match prec {
            FPrec::F32 => (as_f64 as f32).to_bits() as u64,
            FPrec::F64 => as_f64.to_bits(),
        };
        Ok(())
    }

    #[inline]
    fn exec_cvt_f_to_int(
        &mut self,
        dst: Reg,
        src: &FOperand,
        width: Width,
        prec: FPrec,
        unsigned: bool,
    ) -> StepResult {
        let v = self.read_fop(src, prec).map_err(|k| (k, "cvtf2int"))?;
        let x = match prec {
            FPrec::F32 => f32::from_bits(v as u32) as f64,
            FPrec::F64 => f64::from_bits(v),
        };
        if x.is_nan() {
            return Err((TrapKind::IntegerOverflow, "convert NaN to int"));
        }
        let t = x.trunc();
        let bits = width.bytes() * 8;
        let res = if unsigned {
            let max = if bits == 64 {
                u64::MAX as f64
            } else {
                ((1u128 << bits) - 1) as f64
            };
            if t < 0.0 || t > max {
                return Err((TrapKind::IntegerOverflow, "f->u out of range"));
            }
            t as u64
        } else {
            let min = -((1i128 << (bits - 1)) as f64);
            let max = ((1i128 << (bits - 1)) - 1) as f64;
            if t < min || t > max {
                return Err((TrapKind::IntegerOverflow, "f->i out of range"));
            }
            (t as i64) as u64
        };
        self.write_reg_w(dst, res & width.mask(), width);
        Ok(())
    }

    #[inline]
    fn exec_cvt_f_to_f(&mut self, dst: Xmm, src: &FOperand, from: FPrec) -> StepResult {
        let v = self.read_fop(src, from).map_err(|k| (k, "cvtf2f"))?;
        self.xmm[dst.index()] = match from {
            FPrec::F32 => (f32::from_bits(v as u32) as f64).to_bits(),
            FPrec::F64 => (f64::from_bits(v) as f32).to_bits() as u64,
        };
        Ok(())
    }

    #[inline]
    fn exec_mov_gpr_to_xmm(&mut self, dst: Xmm, src: Reg, width: Width) {
        self.xmm[dst.index()] = self.regs[src.index()] & width.mask();
    }

    #[inline]
    fn exec_mov_xmm_to_gpr(&mut self, dst: Reg, src: Xmm, width: Width) {
        let v = self.xmm[src.index()] & width.mask();
        self.write_reg_w(dst, v, width);
    }
}

/// Error payload of a shared instruction-semantics helper: the trap kind
/// plus the same static detail string the interpreter has always reported.
type StepResult = Result<(), (TrapKind, &'static str)>;

/// Control-flow outcome of a threaded-dispatch handler.
enum Flow {
    /// Continue with the next op in the superblock (or its fallthrough).
    Next,
    /// Transfer to a superblock of the current function; `orig_target` is
    /// the original destination index, for the "fell off end" abort when
    /// the label binds to the function end ([`NO_SB`]).
    Jump { sb: u32, orig_target: u32 },
    /// Call into `func` at its entry.
    Enter { func: u32 },
    /// Return into `func` at original instruction index `ret_pc`.
    RetTo { func: u32, ret_pc: u32 },
    /// The program finished: `ret` with an empty shadow stack (no exit
    /// code) or a host `exit`.
    Finish { exit_code: Option<i32> },
}

/// Handler result: where control goes next, or a trap with its detail
/// string (allocated only on this cold path).
type HRes = Result<Flow, (TrapKind, String)>;

/// A direct-threaded op handler. The higher-ranked lifetime keeps
/// [`Machine`] covariant in its module lifetime even though the handler
/// table is stored on the machine itself.
type Handler<H> = for<'a> fn(&mut Machine<'a, H>, &TOp) -> HRes;

/// Converts a [`StepResult`] error into the handler error payload.
fn strap((k, d): (TrapKind, &'static str)) -> (TrapKind, String) {
    (k, d.to_string())
}

/// Wraps a shared `exec_*` semantics helper as a fall-through handler.
macro_rules! next {
    ($r:expr) => {{
        $r.map_err(strap)?;
        Ok(Flow::Next)
    }};
}

fn h_mov<H: HostEnv>(m: &mut Machine<'_, H>, t: &TOp) -> HRes {
    let MOp::Mov { dst, src, width } = &t.op else {
        unreachable!()
    };
    next!(m.exec_mov(dst, src, *width))
}

fn h_movzx<H: HostEnv>(m: &mut Machine<'_, H>, t: &TOp) -> HRes {
    let MOp::Movzx { dst, src, from } = &t.op else {
        unreachable!()
    };
    next!(m.exec_movzx(*dst, src, *from))
}

fn h_movsx<H: HostEnv>(m: &mut Machine<'_, H>, t: &TOp) -> HRes {
    let MOp::Movsx { dst, src, from, to } = &t.op else {
        unreachable!()
    };
    next!(m.exec_movsx(*dst, src, *from, *to))
}

fn h_lea<H: HostEnv>(m: &mut Machine<'_, H>, t: &TOp) -> HRes {
    let MOp::Lea { dst, mem, width } = &t.op else {
        unreachable!()
    };
    m.exec_lea(*dst, mem, *width);
    Ok(Flow::Next)
}

fn h_alu<H: HostEnv>(m: &mut Machine<'_, H>, t: &TOp) -> HRes {
    let MOp::Alu {
        op,
        dst,
        src,
        width,
    } = &t.op
    else {
        unreachable!()
    };
    next!(m.exec_alu(*op, dst, src, *width))
}

fn h_neg<H: HostEnv>(m: &mut Machine<'_, H>, t: &TOp) -> HRes {
    let MOp::Neg { dst, width } = &t.op else {
        unreachable!()
    };
    next!(m.exec_neg(dst, *width))
}

fn h_not<H: HostEnv>(m: &mut Machine<'_, H>, t: &TOp) -> HRes {
    let MOp::Not { dst, width } = &t.op else {
        unreachable!()
    };
    next!(m.exec_not(dst, *width))
}

fn h_imul<H: HostEnv>(m: &mut Machine<'_, H>, t: &TOp) -> HRes {
    let MOp::Imul { dst, src, width } = &t.op else {
        unreachable!()
    };
    next!(m.exec_imul(*dst, src, *width))
}

fn h_imul3<H: HostEnv>(m: &mut Machine<'_, H>, t: &TOp) -> HRes {
    let MOp::Imul3 {
        dst,
        src,
        imm,
        width,
    } = &t.op
    else {
        unreachable!()
    };
    next!(m.exec_imul3(*dst, src, *imm, *width))
}

fn h_cqo<H: HostEnv>(m: &mut Machine<'_, H>, t: &TOp) -> HRes {
    let MOp::Cqo { width } = &t.op else {
        unreachable!()
    };
    m.exec_cqo(*width);
    Ok(Flow::Next)
}

fn h_div<H: HostEnv>(m: &mut Machine<'_, H>, t: &TOp) -> HRes {
    let MOp::Div { src, signed, width } = &t.op else {
        unreachable!()
    };
    next!(m.exec_div(src, *signed, *width))
}

fn h_cmp<H: HostEnv>(m: &mut Machine<'_, H>, t: &TOp) -> HRes {
    let MOp::Cmp { lhs, rhs, width } = &t.op else {
        unreachable!()
    };
    next!(m.exec_cmp(lhs, rhs, *width))
}

fn h_test<H: HostEnv>(m: &mut Machine<'_, H>, t: &TOp) -> HRes {
    let MOp::Test { lhs, rhs, width } = &t.op else {
        unreachable!()
    };
    next!(m.exec_test(lhs, rhs, *width))
}

fn h_cmov<H: HostEnv>(m: &mut Machine<'_, H>, t: &TOp) -> HRes {
    let MOp::Cmov {
        cc,
        dst,
        src,
        width,
    } = &t.op
    else {
        unreachable!()
    };
    next!(m.exec_cmov(*cc, *dst, src, *width))
}

fn h_setcc<H: HostEnv>(m: &mut Machine<'_, H>, t: &TOp) -> HRes {
    let MOp::Setcc { cc, dst } = &t.op else {
        unreachable!()
    };
    m.exec_setcc(*cc, *dst);
    Ok(Flow::Next)
}

fn h_lzcnt<H: HostEnv>(m: &mut Machine<'_, H>, t: &TOp) -> HRes {
    let MOp::Lzcnt { dst, src, width } = &t.op else {
        unreachable!()
    };
    next!(m.exec_lzcnt(*dst, src, *width))
}

fn h_tzcnt<H: HostEnv>(m: &mut Machine<'_, H>, t: &TOp) -> HRes {
    let MOp::Tzcnt { dst, src, width } = &t.op else {
        unreachable!()
    };
    next!(m.exec_tzcnt(*dst, src, *width))
}

fn h_popcnt<H: HostEnv>(m: &mut Machine<'_, H>, t: &TOp) -> HRes {
    let MOp::Popcnt { dst, src, width } = &t.op else {
        unreachable!()
    };
    next!(m.exec_popcnt(*dst, src, *width))
}

/// Unmerged `jmp`: always transfers to the pre-resolved superblock.
fn h_jmp<H: HostEnv>(m: &mut Machine<'_, H>, t: &TOp) -> HRes {
    let MOp::Jmp { target } = t.op else {
        unreachable!()
    };
    m.counters.branches_retired += 1;
    Ok(Flow::Jump {
        sb: t.target_sb,
        orig_target: target,
    })
}

/// `jmp` whose target block is laid out directly after it in the same
/// superblock: retires as a branch but dispatches as fall-through.
fn h_jmp_merged<H: HostEnv>(m: &mut Machine<'_, H>, _t: &TOp) -> HRes {
    m.counters.branches_retired += 1;
    Ok(Flow::Next)
}

fn h_jcc<H: HostEnv>(m: &mut Machine<'_, H>, t: &TOp) -> HRes {
    let MOp::Jcc { cc, target } = t.op else {
        unreachable!()
    };
    m.counters.branches_retired += 1;
    m.counters.cond_branches_retired += 1;
    let taken = m.cond(cc);
    if m.predictor.predict_and_update(t.addr, taken) {
        m.cycle_fp += m.timing.mispredict_penalty as u64;
    }
    if taken {
        Ok(Flow::Jump {
            sb: t.target_sb,
            orig_target: target,
        })
    } else {
        Ok(Flow::Next)
    }
}

fn h_call<H: HostEnv>(m: &mut Machine<'_, H>, t: &TOp) -> HRes {
    let MOp::Call { target } = t.op else {
        unreachable!()
    };
    m.counters.branches_retired += 1;
    if m.call_stack.len() >= m.max_call_depth {
        return Err((TrapKind::StackOverflow, "call depth".to_string()));
    }
    if target.0 as usize >= m.module.funcs.len() {
        return Err((TrapKind::Abort, "call to unknown function".to_string()));
    }
    let ret_pc = t.orig_pc + 1;
    m.push_val_raw(RET_TOKEN | ret_pc as u64).map_err(strap)?;
    m.call_stack.push(Frame {
        func: t.func,
        ret_pc,
        rsp_at_call: m.regs[Reg::Rsp.index()],
    });
    Ok(Flow::Enter { func: target.0 })
}

fn h_call_indirect<H: HostEnv>(m: &mut Machine<'_, H>, t: &TOp) -> HRes {
    let MOp::CallIndirect { target } = &t.op else {
        unreachable!()
    };
    m.counters.branches_retired += 1;
    let v = m
        .read_op(target, Width::W64)
        .map_err(|k| (k, "call-indirect operand".to_string()))?;
    if v as usize >= m.module.funcs.len() {
        return Err((
            TrapKind::IndirectCallOutOfBounds,
            format!("bad function id {v:#x}"),
        ));
    }
    if m.call_stack.len() >= m.max_call_depth {
        return Err((TrapKind::StackOverflow, "call depth".to_string()));
    }
    let ret_pc = t.orig_pc + 1;
    m.push_val_raw(RET_TOKEN | ret_pc as u64).map_err(strap)?;
    m.call_stack.push(Frame {
        func: t.func,
        ret_pc,
        rsp_at_call: m.regs[Reg::Rsp.index()],
    });
    Ok(Flow::Enter { func: v as u32 })
}

fn h_call_host<H: HostEnv>(m: &mut Machine<'_, H>, t: &TOp) -> HRes {
    let MOp::CallHost { id } = t.op else {
        unreachable!()
    };
    m.counters.branches_retired += 1;
    m.counters.host_calls += 1;
    m.cycle_fp += m.pku_fp;
    let args = [
        m.regs[Reg::Rdi.index()],
        m.regs[Reg::Rsi.index()],
        m.regs[Reg::Rdx.index()],
        m.regs[Reg::Rcx.index()],
        m.regs[Reg::R8.index()],
        m.regs[Reg::R9.index()],
    ];
    match m.host.call(id, &args, &mut m.mem) {
        Ok(HostOutcome::Ret {
            value,
            kernel_cycles,
        }) => {
            m.regs[Reg::Rax.index()] = value;
            m.counters.host_cycles += kernel_cycles;
            Ok(Flow::Next)
        }
        Ok(HostOutcome::Exit {
            code,
            kernel_cycles,
        }) => {
            m.counters.host_cycles += kernel_cycles;
            Ok(Flow::Finish {
                exit_code: Some(code),
            })
        }
        Err(k) => Err((k, format!("host call {id}"))),
    }
}

fn h_push<H: HostEnv>(m: &mut Machine<'_, H>, t: &TOp) -> HRes {
    let MOp::Push { src } = &t.op else {
        unreachable!()
    };
    let v = m
        .read_op(src, Width::W64)
        .map_err(|k| (k, "push src".to_string()))?;
    next!(m.push_val_raw(v))
}

fn h_pop<H: HostEnv>(m: &mut Machine<'_, H>, t: &TOp) -> HRes {
    let MOp::Pop { dst } = &t.op else {
        unreachable!()
    };
    next!(m.exec_pop(*dst))
}

fn h_ret<H: HostEnv>(m: &mut Machine<'_, H>, _t: &TOp) -> HRes {
    m.counters.branches_retired += 1;
    let rsp = m.regs[Reg::Rsp.index()];
    m.dread(rsp, Width::W64)
        .map_err(|k| (k, "ret pop".to_string()))?;
    m.regs[Reg::Rsp.index()] = rsp + 8;
    match m.call_stack.pop() {
        Some(frame) => {
            if frame.rsp_at_call != rsp {
                return Err((
                    TrapKind::Abort,
                    format!(
                        "rsp mismatch on ret: {:#x} != {:#x}",
                        rsp, frame.rsp_at_call
                    ),
                ));
            }
            Ok(Flow::RetTo {
                func: frame.func,
                ret_pc: frame.ret_pc,
            })
        }
        None => Ok(Flow::Finish { exit_code: None }),
    }
}

fn h_movf<H: HostEnv>(m: &mut Machine<'_, H>, t: &TOp) -> HRes {
    let MOp::MovF { dst, src, prec } = &t.op else {
        unreachable!()
    };
    next!(m.exec_movf(dst, src, *prec))
}

fn h_aluf<H: HostEnv>(m: &mut Machine<'_, H>, t: &TOp) -> HRes {
    let MOp::AluF { op, dst, src, prec } = &t.op else {
        unreachable!()
    };
    next!(m.exec_aluf(*op, *dst, src, *prec))
}

fn h_roundf<H: HostEnv>(m: &mut Machine<'_, H>, t: &TOp) -> HRes {
    let MOp::RoundF {
        dst,
        src,
        prec,
        mode,
    } = &t.op
    else {
        unreachable!()
    };
    next!(m.exec_roundf(*dst, src, *prec, *mode))
}

fn h_absf<H: HostEnv>(m: &mut Machine<'_, H>, t: &TOp) -> HRes {
    let MOp::AbsF { dst, src, prec } = &t.op else {
        unreachable!()
    };
    next!(m.exec_absf(*dst, src, *prec))
}

fn h_sqrtf<H: HostEnv>(m: &mut Machine<'_, H>, t: &TOp) -> HRes {
    let MOp::SqrtF { dst, src, prec } = &t.op else {
        unreachable!()
    };
    next!(m.exec_sqrtf(*dst, src, *prec))
}

fn h_ucomis<H: HostEnv>(m: &mut Machine<'_, H>, t: &TOp) -> HRes {
    let MOp::Ucomis { lhs, rhs, prec } = &t.op else {
        unreachable!()
    };
    next!(m.exec_ucomis(*lhs, rhs, *prec))
}

fn h_cvt_int_to_f<H: HostEnv>(m: &mut Machine<'_, H>, t: &TOp) -> HRes {
    let MOp::CvtIntToF {
        dst,
        src,
        width,
        prec,
        unsigned,
    } = &t.op
    else {
        unreachable!()
    };
    next!(m.exec_cvt_int_to_f(*dst, src, *width, *prec, *unsigned))
}

fn h_cvt_f_to_int<H: HostEnv>(m: &mut Machine<'_, H>, t: &TOp) -> HRes {
    let MOp::CvtFToInt {
        dst,
        src,
        width,
        prec,
        unsigned,
    } = &t.op
    else {
        unreachable!()
    };
    next!(m.exec_cvt_f_to_int(*dst, src, *width, *prec, *unsigned))
}

fn h_cvt_f_to_f<H: HostEnv>(m: &mut Machine<'_, H>, t: &TOp) -> HRes {
    let MOp::CvtFToF { dst, src, from } = &t.op else {
        unreachable!()
    };
    next!(m.exec_cvt_f_to_f(*dst, src, *from))
}

fn h_gpr_to_xmm<H: HostEnv>(m: &mut Machine<'_, H>, t: &TOp) -> HRes {
    let MOp::MovGprToXmm { dst, src, width } = t.op else {
        unreachable!()
    };
    m.exec_mov_gpr_to_xmm(dst, src, width);
    Ok(Flow::Next)
}

fn h_xmm_to_gpr<H: HostEnv>(m: &mut Machine<'_, H>, t: &TOp) -> HRes {
    let MOp::MovXmmToGpr { dst, src, width } = t.op else {
        unreachable!()
    };
    m.exec_mov_xmm_to_gpr(dst, src, width);
    Ok(Flow::Next)
}

fn h_trap<H: HostEnv>(_m: &mut Machine<'_, H>, t: &TOp) -> HRes {
    let MOp::Trap { kind } = t.op else {
        unreachable!()
    };
    Err((kind, "explicit trap".to_string()))
}

fn h_nop<H: HostEnv>(_m: &mut Machine<'_, H>, _t: &TOp) -> HRes {
    Ok(Flow::Next)
}

/// Selects the dispatch handler for one op — the one `match` the threaded
/// engine performs per op *at table-build time* instead of per execution.
fn handler_for<H: HostEnv>(t: &TOp) -> Handler<H> {
    match t.op {
        MOp::Mov { .. } => h_mov,
        MOp::Movzx { .. } => h_movzx,
        MOp::Movsx { .. } => h_movsx,
        MOp::Lea { .. } => h_lea,
        MOp::Alu { .. } => h_alu,
        MOp::Neg { .. } => h_neg,
        MOp::Not { .. } => h_not,
        MOp::Imul { .. } => h_imul,
        MOp::Imul3 { .. } => h_imul3,
        MOp::Cqo { .. } => h_cqo,
        MOp::Div { .. } => h_div,
        MOp::Cmp { .. } => h_cmp,
        MOp::Test { .. } => h_test,
        MOp::Cmov { .. } => h_cmov,
        MOp::Setcc { .. } => h_setcc,
        MOp::Lzcnt { .. } => h_lzcnt,
        MOp::Tzcnt { .. } => h_tzcnt,
        MOp::Popcnt { .. } => h_popcnt,
        MOp::Jmp { .. } => {
            if t.merged_jmp {
                h_jmp_merged
            } else {
                h_jmp
            }
        }
        MOp::Jcc { .. } => h_jcc,
        MOp::Call { .. } => h_call,
        MOp::CallIndirect { .. } => h_call_indirect,
        MOp::CallHost { .. } => h_call_host,
        MOp::Push { .. } => h_push,
        MOp::Pop { .. } => h_pop,
        MOp::Ret => h_ret,
        MOp::MovF { .. } => h_movf,
        MOp::AluF { .. } => h_aluf,
        MOp::RoundF { .. } => h_roundf,
        MOp::AbsF { .. } => h_absf,
        MOp::SqrtF { .. } => h_sqrtf,
        MOp::Ucomis { .. } => h_ucomis,
        MOp::CvtIntToF { .. } => h_cvt_int_to_f,
        MOp::CvtFToInt { .. } => h_cvt_f_to_int,
        MOp::CvtFToF { .. } => h_cvt_f_to_f,
        MOp::MovGprToXmm { .. } => h_gpr_to_xmm,
        MOp::MovXmmToGpr { .. } => h_xmm_to_gpr,
        MOp::Trap { .. } => h_trap,
        MOp::Nop => h_nop,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::host::NullHost;
    use wasmperf_isa::{AsmBuilder, Function};

    fn module_of(funcs: Vec<Function>) -> Module {
        let mut m = Module {
            funcs,
            table: vec![],
            entry: Some(FuncId(0)),
            memory_size: 4096,
            data: vec![],
            sandbox: None,
        };
        m.assign_addresses();
        m
    }

    fn run_module(m: &Module, args: &[u64]) -> RunOutcome {
        let mut machine = Machine::new(m, NullHost);
        machine.run(FuncId(0), args, 1_000_000).expect("runs")
    }

    #[test]
    fn returns_constant() {
        let mut b = AsmBuilder::new("f");
        b.emit(Inst::Mov {
            dst: Operand::Reg(Reg::Rax),
            src: Operand::Imm(42),
            width: Width::W64,
        });
        b.emit(Inst::Ret);
        let m = module_of(vec![b.finish()]);
        assert_eq!(run_module(&m, &[]).ret, 42);
    }

    #[test]
    fn profile_attributes_every_instruction() {
        let mut b = AsmBuilder::new("f");
        b.emit(Inst::Mov {
            dst: Operand::Reg(Reg::Rax),
            src: Operand::Imm(42),
            width: Width::W64,
        });
        b.emit(Inst::Ret);
        let m = module_of(vec![b.finish()]);

        let mut plain = Machine::new(&m, NullHost);
        let base = plain.run(FuncId(0), &[], 1_000_000).expect("runs");

        let mut traced = Machine::new(&m, NullHost);
        traced.enable_profile();
        let out = traced.run(FuncId(0), &[], 1_000_000).expect("runs");
        let profile = traced.take_profile().expect("profile enabled");

        // Profiling observes; it must not perturb the run.
        assert_eq!(out.ret, base.ret);
        assert_eq!(out.counters, base.counters);
        // Every retired instruction and every fixed-point cycle lands in
        // exactly one address bucket.
        assert_eq!(
            profile.total_instructions(),
            out.counters.instructions_retired
        );
        assert_eq!(fp_to_cycles(profile.total_cycles_fp()), out.counters.cycles);
        assert_eq!(profile.len(), 2);
        assert!(traced.take_profile().is_none());
    }

    #[test]
    fn adds_arguments() {
        let mut b = AsmBuilder::new("add");
        b.emit(Inst::Mov {
            dst: Operand::Reg(Reg::Rax),
            src: Operand::Reg(Reg::Rdi),
            width: Width::W64,
        });
        b.emit(Inst::Alu {
            op: AluOp::Add,
            dst: Operand::Reg(Reg::Rax),
            src: Operand::Reg(Reg::Rsi),
            width: Width::W64,
        });
        b.emit(Inst::Ret);
        let m = module_of(vec![b.finish()]);
        assert_eq!(run_module(&m, &[30, 12]).ret, 42);
    }

    #[test]
    fn loop_sums_one_to_n() {
        // rax = sum(1..=rdi) via a countdown loop.
        let mut b = AsmBuilder::new("sum");
        let top = b.new_label();
        b.emit(Inst::Alu {
            op: AluOp::Xor,
            dst: Operand::Reg(Reg::Rax),
            src: Operand::Reg(Reg::Rax),
            width: Width::W64,
        });
        b.bind(top);
        b.emit(Inst::Alu {
            op: AluOp::Add,
            dst: Operand::Reg(Reg::Rax),
            src: Operand::Reg(Reg::Rdi),
            width: Width::W64,
        });
        b.emit(Inst::Alu {
            op: AluOp::Sub,
            dst: Operand::Reg(Reg::Rdi),
            src: Operand::Imm(1),
            width: Width::W64,
        });
        b.emit(Inst::Jcc {
            cc: Cc::Ne,
            target: top,
        });
        b.emit(Inst::Ret);
        let m = module_of(vec![b.finish()]);
        let out = run_module(&m, &[100]);
        assert_eq!(out.ret, 5050);
        assert_eq!(out.counters.cond_branches_retired, 100);
        assert!(out.counters.instructions_retired > 300);
        assert!(out.counters.cycles > 0);
    }

    #[test]
    fn memory_load_store_counts() {
        let mut b = AsmBuilder::new("mem");
        b.emit(Inst::Mov {
            dst: Operand::Mem(MemRef::abs(64)),
            src: Operand::Imm(7),
            width: Width::W64,
        });
        b.emit(Inst::Mov {
            dst: Operand::Reg(Reg::Rax),
            src: Operand::Mem(MemRef::abs(64)),
            width: Width::W64,
        });
        b.emit(Inst::Ret);
        let m = module_of(vec![b.finish()]);
        let out = run_module(&m, &[]);
        assert_eq!(out.ret, 7);
        assert_eq!(out.counters.stores_retired, 1);
        // Load + the implicit ret pop.
        assert_eq!(out.counters.loads_retired, 2);
    }

    #[test]
    fn rmw_alu_counts_load_and_store() {
        let mut b = AsmBuilder::new("rmw");
        b.emit(Inst::Mov {
            dst: Operand::Mem(MemRef::abs(64)),
            src: Operand::Imm(40),
            width: Width::W32,
        });
        b.emit(Inst::Alu {
            op: AluOp::Add,
            dst: Operand::Mem(MemRef::abs(64)),
            src: Operand::Imm(2),
            width: Width::W32,
        });
        b.emit(Inst::Mov {
            dst: Operand::Reg(Reg::Rax),
            src: Operand::Mem(MemRef::abs(64)),
            width: Width::W32,
        });
        b.emit(Inst::Ret);
        let m = module_of(vec![b.finish()]);
        let out = run_module(&m, &[]);
        assert_eq!(out.ret, 42);
        assert_eq!(out.counters.stores_retired, 2);
        assert_eq!(out.counters.loads_retired, 3); // rmw load + mov load + ret.
    }

    #[test]
    fn call_and_ret_roundtrip() {
        let mut callee = AsmBuilder::new("callee");
        callee.emit(Inst::Lea {
            dst: Reg::Rax,
            mem: MemRef::base_disp(Reg::Rdi, 1),
            width: Width::W64,
        });
        callee.emit(Inst::Ret);

        let mut caller = AsmBuilder::new("caller");
        caller.emit(Inst::Call { target: FuncId(1) });
        caller.emit(Inst::Ret);
        let m = module_of(vec![caller.finish(), callee.finish()]);
        let out = run_module(&m, &[41]);
        assert_eq!(out.ret, 42);
        // call + 2 rets are branches.
        assert_eq!(out.counters.branches_retired, 3);
    }

    #[test]
    fn indirect_call_through_register() {
        let mut callee = AsmBuilder::new("callee");
        callee.emit(Inst::Mov {
            dst: Operand::Reg(Reg::Rax),
            src: Operand::Imm(99),
            width: Width::W64,
        });
        callee.emit(Inst::Ret);

        let mut caller = AsmBuilder::new("caller");
        caller.emit(Inst::Mov {
            dst: Operand::Reg(Reg::R8),
            src: Operand::Imm(1),
            width: Width::W64,
        });
        caller.emit(Inst::CallIndirect {
            target: Operand::Reg(Reg::R8),
        });
        caller.emit(Inst::Ret);
        let m = module_of(vec![caller.finish(), callee.finish()]);
        assert_eq!(run_module(&m, &[]).ret, 99);
    }

    #[test]
    fn indirect_call_bad_id_traps() {
        let mut caller = AsmBuilder::new("caller");
        caller.emit(Inst::Mov {
            dst: Operand::Reg(Reg::R8),
            src: Operand::Imm(77),
            width: Width::W64,
        });
        caller.emit(Inst::CallIndirect {
            target: Operand::Reg(Reg::R8),
        });
        caller.emit(Inst::Ret);
        let m = module_of(vec![caller.finish()]);
        let mut machine = Machine::new(&m, NullHost);
        let err = machine.run(FuncId(0), &[], 1000).unwrap_err();
        assert_eq!(err.kind, TrapKind::IndirectCallOutOfBounds);
    }

    #[test]
    fn div_by_zero_traps() {
        let mut b = AsmBuilder::new("d");
        b.emit(Inst::Mov {
            dst: Operand::Reg(Reg::Rax),
            src: Operand::Imm(10),
            width: Width::W64,
        });
        b.emit(Inst::Cqo { width: Width::W64 });
        b.emit(Inst::Div {
            src: Operand::Reg(Reg::Rcx),
            signed: true,
            width: Width::W64,
        });
        b.emit(Inst::Ret);
        let m = module_of(vec![b.finish()]);
        let mut machine = Machine::new(&m, NullHost);
        let err = machine.run(FuncId(0), &[], 1000).unwrap_err();
        assert_eq!(err.kind, TrapKind::DivByZero);
    }

    #[test]
    fn signed_division_semantics() {
        // -7 / 2 = -3 rem -1 (x86 truncated division).
        let mut b = AsmBuilder::new("d");
        b.emit(Inst::Mov {
            dst: Operand::Reg(Reg::Rax),
            src: Operand::Imm(-7),
            width: Width::W64,
        });
        b.emit(Inst::Mov {
            dst: Operand::Reg(Reg::Rcx),
            src: Operand::Imm(2),
            width: Width::W64,
        });
        b.emit(Inst::Cqo { width: Width::W64 });
        b.emit(Inst::Div {
            src: Operand::Reg(Reg::Rcx),
            signed: true,
            width: Width::W64,
        });
        b.emit(Inst::Ret);
        let m = module_of(vec![b.finish()]);
        let mut machine = Machine::new(&m, NullHost);
        let out = machine.run(FuncId(0), &[], 1000).unwrap();
        assert_eq!(out.ret as i64, -3);
        assert_eq!(machine.reg(Reg::Rdx) as i64, -1);
    }

    #[test]
    fn unsigned_32bit_division() {
        let mut b = AsmBuilder::new("d");
        b.emit(Inst::Mov {
            dst: Operand::Reg(Reg::Rax),
            src: Operand::Imm(0xffff_fffe),
            width: Width::W32,
        });
        b.emit(Inst::Mov {
            dst: Operand::Reg(Reg::Rdx),
            src: Operand::Imm(0),
            width: Width::W32,
        });
        b.emit(Inst::Mov {
            dst: Operand::Reg(Reg::Rcx),
            src: Operand::Imm(3),
            width: Width::W32,
        });
        b.emit(Inst::Div {
            src: Operand::Reg(Reg::Rcx),
            signed: false,
            width: Width::W32,
        });
        b.emit(Inst::Ret);
        let m = module_of(vec![b.finish()]);
        assert_eq!(run_module(&m, &[]).ret, 0xffff_fffe / 3);
    }

    #[test]
    fn float_arithmetic() {
        let mut b = AsmBuilder::new("f");
        // xmm0 = 2.5 via memory constant.
        b.emit(Inst::Mov {
            dst: Operand::Mem(MemRef::abs(32)),
            src: Operand::Imm(2.5f64.to_bits() as i64),
            width: Width::W64,
        });
        b.emit(Inst::MovF {
            dst: FOperand::Xmm(wasmperf_isa::Xmm(0)),
            src: FOperand::Mem(MemRef::abs(32)),
            prec: FPrec::F64,
        });
        b.emit(Inst::AluF {
            op: FAluOp::Mul,
            dst: wasmperf_isa::Xmm(0),
            src: FOperand::Xmm(wasmperf_isa::Xmm(0)),
            prec: FPrec::F64,
        });
        b.emit(Inst::CvtFToInt {
            dst: Reg::Rax,
            src: FOperand::Xmm(wasmperf_isa::Xmm(0)),
            width: Width::W64,
            prec: FPrec::F64,
            unsigned: false,
        });
        b.emit(Inst::Ret);
        let m = module_of(vec![b.finish()]);
        assert_eq!(run_module(&m, &[]).ret, 6); // trunc(6.25).
    }

    #[test]
    fn fuel_exhaustion() {
        let mut b = AsmBuilder::new("spin");
        let top = b.new_label();
        b.bind(top);
        b.emit(Inst::Jmp { target: top });
        let m = module_of(vec![b.finish()]);
        let mut machine = Machine::new(&m, NullHost);
        let err = machine.run(FuncId(0), &[], 10_000).unwrap_err();
        assert_eq!(err.kind, TrapKind::OutOfFuel);
    }

    #[test]
    fn push_pop_stack_discipline() {
        let mut b = AsmBuilder::new("pp");
        b.emit(Inst::Push {
            src: Operand::Reg(Reg::Rdi),
        });
        b.emit(Inst::Mov {
            dst: Operand::Reg(Reg::Rdi),
            src: Operand::Imm(0),
            width: Width::W64,
        });
        b.emit(Inst::Pop { dst: Reg::Rax });
        b.emit(Inst::Ret);
        let m = module_of(vec![b.finish()]);
        assert_eq!(run_module(&m, &[1234]).ret, 1234);
    }

    #[test]
    fn stack_frame_mismatch_detected() {
        // A function that pushes without popping corrupts rsp; ret traps.
        let mut b = AsmBuilder::new("bad");
        b.emit(Inst::Push {
            src: Operand::Imm(0),
        });
        b.emit(Inst::Ret);
        let mut caller = AsmBuilder::new("caller");
        caller.emit(Inst::Call { target: FuncId(1) });
        caller.emit(Inst::Ret);
        let m = module_of(vec![caller.finish(), b.finish()]);
        let mut machine = Machine::new(&m, NullHost);
        let err = machine.run(FuncId(0), &[], 1000).unwrap_err();
        assert_eq!(err.kind, TrapKind::Abort);
        assert!(err.detail.contains("rsp mismatch"), "{}", err.detail);
    }

    #[test]
    fn explicit_trap_reports_kind() {
        let mut b = AsmBuilder::new("t");
        b.emit(Inst::Trap {
            kind: TrapKind::StackOverflow,
        });
        let m = module_of(vec![b.finish()]);
        let mut machine = Machine::new(&m, NullHost);
        let err = machine.run(FuncId(0), &[], 1000).unwrap_err();
        assert_eq!(err.kind, TrapKind::StackOverflow);
    }

    #[test]
    fn width32_ops_zero_extend() {
        let mut b = AsmBuilder::new("w");
        b.emit(Inst::Mov {
            dst: Operand::Reg(Reg::Rax),
            src: Operand::Imm(-1),
            width: Width::W64,
        });
        b.emit(Inst::Alu {
            op: AluOp::Add,
            dst: Operand::Reg(Reg::Rax),
            src: Operand::Imm(2),
            width: Width::W32,
        });
        b.emit(Inst::Ret);
        let m = module_of(vec![b.finish()]);
        // 32-bit add wraps and zero-extends: 0xffffffff + 2 = 1.
        assert_eq!(run_module(&m, &[]).ret, 1);
    }

    #[test]
    fn movsx_sign_extends() {
        let mut b = AsmBuilder::new("sx");
        b.emit(Inst::Mov {
            dst: Operand::Mem(MemRef::abs(16)),
            src: Operand::Imm(0xff),
            width: Width::W8,
        });
        b.emit(Inst::Movsx {
            dst: Reg::Rax,
            src: Operand::Mem(MemRef::abs(16)),
            from: Width::W8,
            to: Width::W64,
        });
        b.emit(Inst::Ret);
        let m = module_of(vec![b.finish()]);
        assert_eq!(run_module(&m, &[]).ret as i64, -1);
    }

    #[test]
    fn unsigned_compare_uses_carry() {
        let mut b = AsmBuilder::new("u");
        // 1 < 0xffffffff unsigned => setb rax = 1.
        b.emit(Inst::Mov {
            dst: Operand::Reg(Reg::Rcx),
            src: Operand::Imm(1),
            width: Width::W64,
        });
        b.emit(Inst::Mov {
            dst: Operand::Reg(Reg::Rdx),
            src: Operand::Imm(0xffff_ffff),
            width: Width::W64,
        });
        b.emit(Inst::Cmp {
            lhs: Operand::Reg(Reg::Rcx),
            rhs: Operand::Reg(Reg::Rdx),
            width: Width::W64,
        });
        b.emit(Inst::Setcc {
            cc: Cc::B,
            dst: Reg::Rax,
        });
        b.emit(Inst::Ret);
        let m = module_of(vec![b.finish()]);
        assert_eq!(run_module(&m, &[]).ret, 1);
    }

    #[test]
    fn signed_compare_negative() {
        let mut b = AsmBuilder::new("s");
        // -5 < 3 signed => setl = 1; but unsigned -5 > 3 => setb = 0.
        b.emit(Inst::Mov {
            dst: Operand::Reg(Reg::Rcx),
            src: Operand::Imm(-5),
            width: Width::W64,
        });
        b.emit(Inst::Cmp {
            lhs: Operand::Reg(Reg::Rcx),
            rhs: Operand::Imm(3),
            width: Width::W64,
        });
        b.emit(Inst::Setcc {
            cc: Cc::L,
            dst: Reg::Rax,
        });
        b.emit(Inst::Setcc {
            cc: Cc::B,
            dst: Reg::Rdx,
        });
        b.emit(Inst::Ret);
        let m = module_of(vec![b.finish()]);
        let mut machine = Machine::new(&m, NullHost);
        let out = machine.run(FuncId(0), &[], 1000).unwrap();
        assert_eq!(out.ret, 1);
        assert_eq!(machine.reg(Reg::Rdx), 0);
    }

    #[test]
    fn shifts_mask_count() {
        let mut b = AsmBuilder::new("sh");
        b.emit(Inst::Mov {
            dst: Operand::Reg(Reg::Rax),
            src: Operand::Imm(1),
            width: Width::W64,
        });
        b.emit(Inst::Alu {
            op: AluOp::Shl,
            dst: Operand::Reg(Reg::Rax),
            src: Operand::Imm(65), // Masked to 1 for W64.
            width: Width::W64,
        });
        b.emit(Inst::Ret);
        let m = module_of(vec![b.finish()]);
        assert_eq!(run_module(&m, &[]).ret, 2);
    }

    #[test]
    fn sar_is_arithmetic() {
        let mut b = AsmBuilder::new("sar");
        b.emit(Inst::Mov {
            dst: Operand::Reg(Reg::Rax),
            src: Operand::Imm(-8),
            width: Width::W64,
        });
        b.emit(Inst::Alu {
            op: AluOp::Sar,
            dst: Operand::Reg(Reg::Rax),
            src: Operand::Imm(2),
            width: Width::W64,
        });
        b.emit(Inst::Ret);
        let m = module_of(vec![b.finish()]);
        assert_eq!(run_module(&m, &[]).ret as i64, -2);
    }

    #[test]
    fn host_call_exit() {
        struct ExitHost;
        impl HostEnv for ExitHost {
            fn call(
                &mut self,
                id: u32,
                args: &[u64; 6],
                _mem: &mut Memory,
            ) -> Result<HostOutcome, TrapKind> {
                assert_eq!(id, 1);
                Ok(HostOutcome::Exit {
                    code: args[0] as i32,
                    kernel_cycles: 100,
                })
            }
        }
        let mut b = AsmBuilder::new("main");
        b.emit(Inst::Mov {
            dst: Operand::Reg(Reg::Rdi),
            src: Operand::Imm(3),
            width: Width::W64,
        });
        b.emit(Inst::CallHost { id: 1 });
        b.emit(Inst::Ret);
        let m = module_of(vec![b.finish()]);
        let mut machine = Machine::new(&m, ExitHost);
        let out = machine.run(FuncId(0), &[], 1000).unwrap();
        assert_eq!(out.exit_code, Some(3));
        assert_eq!(out.counters.host_calls, 1);
        assert_eq!(out.counters.host_cycles, 100);
    }

    #[test]
    fn lea_computes_full_addressing_mode() {
        let mut b = AsmBuilder::new("lea");
        b.emit(Inst::Lea {
            dst: Reg::Rax,
            mem: MemRef::full(Reg::Rdi, Reg::Rsi, 4, 100),
            width: Width::W64,
        });
        b.emit(Inst::Ret);
        let m = module_of(vec![b.finish()]);
        assert_eq!(run_module(&m, &[1000, 5]).ret, 1000 + 5 * 4 + 100);
    }

    #[test]
    fn bit_count_instructions() {
        let mut b = AsmBuilder::new("bits");
        b.emit(Inst::Mov {
            dst: Operand::Reg(Reg::Rcx),
            src: Operand::Imm(0b1011_0000),
            width: Width::W64,
        });
        b.emit(Inst::Popcnt {
            dst: Reg::Rax,
            src: Operand::Reg(Reg::Rcx),
            width: Width::W64,
        });
        b.emit(Inst::Tzcnt {
            dst: Reg::Rdx,
            src: Operand::Reg(Reg::Rcx),
            width: Width::W64,
        });
        b.emit(Inst::Lzcnt {
            dst: Reg::Rsi,
            src: Operand::Reg(Reg::Rcx),
            width: Width::W32,
        });
        b.emit(Inst::Ret);
        let m = module_of(vec![b.finish()]);
        let mut machine = Machine::new(&m, NullHost);
        let out = machine.run(FuncId(0), &[], 1000).unwrap();
        assert_eq!(out.ret, 3);
        assert_eq!(machine.reg(Reg::Rdx), 4);
        assert_eq!(machine.reg(Reg::Rsi), 24);
    }

    #[test]
    fn cmov_moves_only_when_condition_holds() {
        let mut b = AsmBuilder::new("cm");
        // rax = 5; if (rdi < 10) rax = rsi (cmovl).
        b.emit(Inst::Mov {
            dst: Operand::Reg(Reg::Rax),
            src: Operand::Imm(5),
            width: Width::W64,
        });
        b.emit(Inst::Cmp {
            lhs: Operand::Reg(Reg::Rdi),
            rhs: Operand::Imm(10),
            width: Width::W64,
        });
        b.emit(Inst::Cmov {
            cc: Cc::L,
            dst: Reg::Rax,
            src: Operand::Reg(Reg::Rsi),
            width: Width::W64,
        });
        b.emit(Inst::Ret);
        let m = module_of(vec![b.finish()]);
        assert_eq!(run_module(&m, &[3, 77]).ret, 77); // 3 < 10: moved.
        assert_eq!(run_module(&m, &[30, 77]).ret, 5); // 30 >= 10: kept.
    }

    #[test]
    fn cmov_counts_as_plain_instruction_not_branch() {
        let mut b = AsmBuilder::new("cm2");
        b.emit(Inst::Cmp {
            lhs: Operand::Reg(Reg::Rdi),
            rhs: Operand::Imm(0),
            width: Width::W64,
        });
        b.emit(Inst::Cmov {
            cc: Cc::E,
            dst: Reg::Rax,
            src: Operand::Reg(Reg::Rsi),
            width: Width::W64,
        });
        b.emit(Inst::Ret);
        let m = module_of(vec![b.finish()]);
        let out = run_module(&m, &[0, 9]);
        assert_eq!(out.ret, 9);
        assert_eq!(out.counters.cond_branches_retired, 0);
        // Only the final ret is a branch.
        assert_eq!(out.counters.branches_retired, 1);
    }

    #[test]
    fn dcache_overlap_hides_issue_cost_under_misses() {
        // A loop striding 64 B (one miss per iteration) plus filler ALU
        // work: with overlap, adding filler costs much less than its raw
        // issue cost.
        let build = |filler: usize| {
            let mut b = AsmBuilder::new("mem");
            let top = b.new_label();
            b.emit(Inst::Mov {
                dst: Operand::Reg(Reg::Rdi),
                src: Operand::Imm(0),
                width: Width::W64,
            });
            b.bind(top);
            b.emit(Inst::Mov {
                dst: Operand::Reg(Reg::Rax),
                src: Operand::Mem(MemRef::base(Reg::Rdi)),
                width: Width::W64,
            });
            for _ in 0..filler {
                b.emit(Inst::Alu {
                    op: AluOp::Add,
                    dst: Operand::Reg(Reg::Rcx),
                    src: Operand::Imm(1),
                    width: Width::W64,
                });
            }
            b.emit(Inst::Alu {
                op: AluOp::Add,
                dst: Operand::Reg(Reg::Rdi),
                src: Operand::Imm(64),
                width: Width::W64,
            });
            b.emit(Inst::Cmp {
                lhs: Operand::Reg(Reg::Rdi),
                rhs: Operand::Imm(512 * 1024),
                width: Width::W64,
            });
            b.emit(Inst::Jcc {
                cc: Cc::Ne,
                target: top,
            });
            b.emit(Inst::Ret);
            let mut m = Module {
                funcs: vec![b.finish()],
                table: vec![],
                entry: Some(FuncId(0)),
                memory_size: 1024 * 1024,
                data: vec![],
                sandbox: None,
            };
            m.assign_addresses();
            m
        };
        let run_cycles = |m: &Module| {
            let mut machine = Machine::new(m, NullHost);
            machine
                .run(FuncId(0), &[], 100_000_000)
                .unwrap()
                .counters
                .cycles
        };
        let base = run_cycles(&build(0));
        let with_filler = run_cycles(&build(8));
        let t = TimingModel::default();
        let raw_filler_cost = 8 * 8192 * t.int_alu as u64 / 64;
        let actual_increase = with_filler.saturating_sub(base);
        assert!(
            actual_increase < raw_filler_cost / 2,
            "filler should hide under misses: +{actual_increase} vs raw {raw_filler_cost}"
        );
    }

    #[test]
    fn icache_counts_accumulate() {
        let mut b = AsmBuilder::new("i");
        let top = b.new_label();
        b.emit(Inst::Mov {
            dst: Operand::Reg(Reg::Rcx),
            src: Operand::Imm(1000),
            width: Width::W64,
        });
        b.bind(top);
        b.emit(Inst::Alu {
            op: AluOp::Sub,
            dst: Operand::Reg(Reg::Rcx),
            src: Operand::Imm(1),
            width: Width::W64,
        });
        b.emit(Inst::Jcc {
            cc: Cc::Ne,
            target: top,
        });
        b.emit(Inst::Ret);
        let m = module_of(vec![b.finish()]);
        let out = run_module(&m, &[]);
        assert!(out.counters.icache_accesses >= out.counters.instructions_retired);
        // Tiny loop: essentially no misses after warm-up.
        assert!(out.counters.icache_misses < 5);
    }

    /// Runs a single two-operand ALU op with both inputs in registers.
    fn run_alu(op: AluOp, width: Width, l: u64, r: u64) -> u64 {
        let mut b = AsmBuilder::new("alu");
        b.emit(Inst::Mov {
            dst: Operand::Reg(Reg::Rax),
            src: Operand::Reg(Reg::Rdi),
            width: Width::W64,
        });
        b.emit(Inst::Alu {
            op,
            dst: Operand::Reg(Reg::Rax),
            src: Operand::Reg(Reg::Rsi),
            width,
        });
        b.emit(Inst::Ret);
        let m = module_of(vec![b.finish()]);
        run_module(&m, &[l, r]).ret
    }

    #[test]
    fn rotates_match_reference_for_every_count_and_width() {
        // Sweep counts 0..=bits (inclusive: `bits` must wrap to the
        // identity, the historical rotate-by-zero/by-width bug).
        let patterns = [
            0u64,
            1,
            0x8000_0000_0000_0001,
            0xDEAD_BEEF_CAFE_F00D,
            u64::MAX,
        ];
        for width in [Width::W8, Width::W16, Width::W32, Width::W64] {
            let bits = (width.bytes() * 8) as u32;
            for &p in &patterns {
                let lm = p & width.mask();
                for count in 0..=bits {
                    let c = count % bits;
                    // Reference rotate on the masked value.
                    let want_l = if c == 0 {
                        lm
                    } else {
                        ((lm << c) | (lm >> (bits - c))) & width.mask()
                    };
                    let want_r = if c == 0 {
                        lm
                    } else {
                        ((lm >> c) | (lm << (bits - c))) & width.mask()
                    };
                    // Sub-width writes keep the destination's upper bits
                    // (x86 partial-register semantics), so compare masked.
                    assert_eq!(
                        run_alu(AluOp::Rol, width, p, count as u64) & width.mask(),
                        want_l,
                        "rol {width:?} {p:#x} by {count}"
                    );
                    assert_eq!(
                        run_alu(AluOp::Ror, width, p, count as u64) & width.mask(),
                        want_r,
                        "ror {width:?} {p:#x} by {count}"
                    );
                }
            }
        }
    }

    /// Runs a single float ALU op with both inputs passed as bit patterns
    /// (staged through memory — the ISA has no GPR↔XMM move).
    fn run_aluf(op: FAluOp, prec: FPrec, l: u64, r: u64) -> u64 {
        use wasmperf_isa::inst::FOperand;
        use wasmperf_isa::Xmm;
        let slot = |disp: i64| MemRef {
            base: None,
            index: None,
            disp,
        };
        let mut b = AsmBuilder::new("aluf");
        b.emit(Inst::Mov {
            dst: Operand::Mem(slot(16)),
            src: Operand::Reg(Reg::Rdi),
            width: Width::W64,
        });
        b.emit(Inst::Mov {
            dst: Operand::Mem(slot(24)),
            src: Operand::Reg(Reg::Rsi),
            width: Width::W64,
        });
        b.emit(Inst::MovF {
            dst: FOperand::Xmm(Xmm(0)),
            src: FOperand::Mem(slot(16)),
            prec,
        });
        b.emit(Inst::AluF {
            op,
            dst: Xmm(0),
            src: FOperand::Mem(slot(24)),
            prec,
        });
        b.emit(Inst::MovF {
            dst: FOperand::Mem(slot(32)),
            src: FOperand::Xmm(Xmm(0)),
            prec,
        });
        b.emit(Inst::Mov {
            dst: Operand::Reg(Reg::Rax),
            src: Operand::Mem(slot(32)),
            width: match prec {
                FPrec::F32 => Width::W32,
                FPrec::F64 => Width::W64,
            },
        });
        b.emit(Inst::Ret);
        let m = module_of(vec![b.finish()]);
        run_module(&m, &[l, r]).ret
    }

    #[test]
    fn float_min_max_have_wasm_semantics() {
        // NaN propagates from either operand (bare `minsd` would instead
        // return the second operand).
        let nan = f64::NAN.to_bits();
        let one = 1.0f64.to_bits();
        assert!(f64::from_bits(run_aluf(FAluOp::Min, FPrec::F64, nan, one)).is_nan());
        assert!(f64::from_bits(run_aluf(FAluOp::Min, FPrec::F64, one, nan)).is_nan());
        assert!(f64::from_bits(run_aluf(FAluOp::Max, FPrec::F64, nan, one)).is_nan());
        assert!(f64::from_bits(run_aluf(FAluOp::Max, FPrec::F64, one, nan)).is_nan());
        // -0 < +0.
        let pz = 0.0f64.to_bits();
        let nz = (-0.0f64).to_bits();
        assert_eq!(run_aluf(FAluOp::Min, FPrec::F64, pz, nz), nz);
        assert_eq!(run_aluf(FAluOp::Max, FPrec::F64, nz, pz), pz);
        // Same at f32 precision.
        let nan32 = f32::NAN.to_bits() as u64;
        let two32 = 2.0f32.to_bits() as u64;
        assert!(f32::from_bits(run_aluf(FAluOp::Min, FPrec::F32, two32, nan32) as u32).is_nan());
        assert_eq!(
            run_aluf(
                FAluOp::Max,
                FPrec::F32,
                (-0.0f32).to_bits() as u64,
                0.0f32.to_bits() as u64
            ),
            0.0f32.to_bits() as u64
        );
    }

    #[test]
    fn dcache_access_straddling_a_line_probes_both_lines() {
        // One 8-byte store; the only difference is whether it crosses a
        // 64-byte line boundary (60..=67 does, 32..=39 does not).
        let store_at = |addr: i64| {
            let mut b = AsmBuilder::new("store");
            b.emit(Inst::Mov {
                dst: Operand::Mem(MemRef::abs(addr)),
                src: Operand::Imm(7),
                width: Width::W64,
            });
            b.emit(Inst::Ret);
            let m = module_of(vec![b.finish()]);
            run_module(&m, &[]).counters
        };
        let line = Cache::l1().line_bytes() as i64;
        let aligned = store_at(line / 2);
        let straddling = store_at(line - 4);
        assert_eq!(straddling.dcache_accesses, aligned.dcache_accesses + 1);
        assert_eq!(straddling.dcache_misses, aligned.dcache_misses + 1);
        // Retired-event counts are unaffected: it is still one store.
        assert_eq!(straddling.stores_retired, aligned.stores_retired);
        assert_eq!(straddling.loads_retired, aligned.loads_retired);
    }

    /// A two-function program with a loop, calls, memory RMW traffic, and
    /// conditional branches — enough to exercise every accounting path.
    fn call_loop_module() -> Module {
        let mut callee = AsmBuilder::new("addmem");
        callee.emit(Inst::Alu {
            op: AluOp::Add,
            dst: Operand::Mem(MemRef::abs(64)),
            src: Operand::Reg(Reg::Rdi),
            width: Width::W64,
        });
        callee.emit(Inst::Mov {
            dst: Operand::Reg(Reg::Rax),
            src: Operand::Mem(MemRef::abs(64)),
            width: Width::W64,
        });
        callee.emit(Inst::Ret);

        let mut b = AsmBuilder::new("main");
        let top = b.new_label();
        b.bind(top);
        b.emit(Inst::Call { target: FuncId(1) });
        b.emit(Inst::Alu {
            op: AluOp::Sub,
            dst: Operand::Reg(Reg::Rdi),
            src: Operand::Imm(1),
            width: Width::W64,
        });
        b.emit(Inst::Jcc {
            cc: Cc::Ne,
            target: top,
        });
        b.emit(Inst::Ret);
        module_of(vec![b.finish(), callee.finish()])
    }

    /// Runs `m` under `mode` and returns the full observable outcome.
    fn observe_mode(
        m: &Module,
        mode: ExecMode,
        args: &[u64],
        fuel: u64,
    ) -> (Result<(u64, Option<i32>), ExecError>, PerfCounters) {
        let mut machine = Machine::new(m, NullHost);
        machine.set_exec_mode(mode);
        let res = machine
            .run(FuncId(0), args, fuel)
            .map(|o| (o.ret, o.exit_code));
        (res, machine.counters())
    }

    #[test]
    fn all_exec_modes_agree_exactly() {
        let m = call_loop_module();
        let (leg_res, leg_ctr) = observe_mode(&m, ExecMode::Legacy, &[100], 1_000_000);
        assert_eq!(leg_res.as_ref().expect("runs").0, 5050);
        for mode in [ExecMode::Predecoded, ExecMode::Threaded] {
            let (res, ctr) = observe_mode(&m, mode, &[100], 1_000_000);
            assert_eq!(res, leg_res, "{mode:?}");
            assert_eq!(ctr, leg_ctr, "{mode:?}");
        }
    }

    #[test]
    fn out_of_fuel_location_and_counters_match_across_modes() {
        // Fuel runs out mid-block (predecoded) or mid-superblock
        // (threaded); the trap must still name the exact instruction the
        // legacy path reports.
        let m = call_loop_module();
        for fuel in [0, 1, 7, 100, 1234] {
            let (leg_res, leg_ctr) = observe_mode(&m, ExecMode::Legacy, &[u64::MAX], fuel);
            assert_eq!(leg_res.as_ref().unwrap_err().kind, TrapKind::OutOfFuel);
            for mode in [ExecMode::Predecoded, ExecMode::Threaded] {
                let (res, ctr) = observe_mode(&m, mode, &[u64::MAX], fuel);
                assert_eq!(res, leg_res, "{mode:?} fuel {fuel}");
                assert_eq!(ctr, leg_ctr, "{mode:?} fuel {fuel}");
            }
        }
    }

    /// A counted loop whose `[cmp, jcc, add, jmp]` body merges into a
    /// single superblock with a mid-superblock side exit — the shape where
    /// batched fuel charging without rollback would misreport out-of-fuel
    /// locations.
    fn superblock_loop_module() -> Module {
        let mut b = AsmBuilder::new("main");
        let top = b.new_label();
        let done = b.new_label();
        b.emit(Inst::Mov {
            dst: Operand::Reg(Reg::Rax),
            src: Operand::Imm(0),
            width: Width::W64,
        });
        b.bind(top);
        b.emit(Inst::Cmp {
            lhs: Operand::Reg(Reg::Rax),
            rhs: Operand::Reg(Reg::Rdi),
            width: Width::W64,
        });
        b.emit(Inst::Jcc {
            cc: Cc::E,
            target: done,
        });
        b.emit(Inst::Alu {
            op: AluOp::Add,
            dst: Operand::Reg(Reg::Rax),
            src: Operand::Imm(1),
            width: Width::W64,
        });
        b.emit(Inst::Jmp { target: top });
        b.bind(done);
        b.emit(Inst::Call { target: FuncId(1) });
        b.emit(Inst::Ret);

        let mut callee = AsmBuilder::new("bump");
        callee.emit(Inst::Alu {
            op: AluOp::Add,
            dst: Operand::Reg(Reg::Rax),
            src: Operand::Imm(7),
            width: Width::W64,
        });
        callee.emit(Inst::Ret);
        module_of(vec![b.finish(), callee.finish()])
    }

    #[test]
    fn fuel_exhaustion_at_every_offset_matches_across_superblock_seams() {
        // Regression test for fuel/trap accounting at superblock seams:
        // exhaust fuel at *every* offset of a run whose hot loop is one
        // merged superblock with a taken side exit, and require the exact
        // legacy trap location and counters from every tier. This fails if
        // a batched tier forgets to roll back the unexecuted superblock
        // tail on side exits (fuel consumed would outrun instructions
        // retired, reporting out-of-fuel early and at the wrong pc).
        for m in [superblock_loop_module(), call_loop_module()] {
            let args = &[6u64];
            let (full_res, full_ctr) = observe_mode(&m, ExecMode::Legacy, args, u64::MAX);
            let total = full_ctr.instructions_retired;
            assert!(full_res.is_ok());
            assert!(total > 12, "sweep must cross a superblock boundary");
            for fuel in 0..=total {
                let (leg_res, leg_ctr) = observe_mode(&m, ExecMode::Legacy, args, fuel);
                if fuel < total {
                    let err = leg_res.as_ref().unwrap_err();
                    assert_eq!(err.kind, TrapKind::OutOfFuel);
                    // The legacy trap pc is the exact next retiring
                    // instruction: exactly `fuel` instructions retired.
                    assert_eq!(leg_ctr.instructions_retired, fuel);
                } else {
                    assert_eq!(leg_res, full_res);
                }
                for mode in [ExecMode::Predecoded, ExecMode::Threaded] {
                    let (res, ctr) = observe_mode(&m, mode, args, fuel);
                    assert_eq!(res, leg_res, "{mode:?} fuel {fuel}");
                    assert_eq!(ctr, leg_ctr, "{mode:?} fuel {fuel}");
                }
            }
        }
    }

    #[test]
    fn threaded_abort_paths_match_legacy() {
        // Jcc taken to a label bound at the function end: control falls
        // off the end, which the threaded tier maps through its NO_SB
        // sentinel. The abort location and counters must match legacy.
        let mut b = AsmBuilder::new("main");
        let end = b.new_label();
        b.emit(Inst::Cmp {
            lhs: Operand::Reg(Reg::Rdi),
            rhs: Operand::Imm(0),
            width: Width::W64,
        });
        b.emit(Inst::Jcc {
            cc: Cc::E,
            target: end,
        });
        b.emit(Inst::Ret);
        b.bind(end);
        let m = module_of(vec![b.finish()]);
        let (leg_res, leg_ctr) = observe_mode(&m, ExecMode::Legacy, &[0], 1000);
        let err = leg_res.as_ref().unwrap_err();
        assert_eq!(err.kind, TrapKind::Abort);
        assert_eq!(err.pc, 3);
        for mode in [ExecMode::Predecoded, ExecMode::Threaded] {
            let (res, ctr) = observe_mode(&m, mode, &[0], 1000);
            assert_eq!(res, leg_res, "{mode:?}");
            assert_eq!(ctr, leg_ctr, "{mode:?}");
        }
    }

    #[test]
    fn threaded_trap_mid_superblock_matches_legacy() {
        // An explicit trap after pure ops inside a merged superblock: the
        // batched tier must have fully applied the preceding pure run's
        // accounting before the trap surfaces.
        let mut b = AsmBuilder::new("main");
        let l = b.new_label();
        b.emit(Inst::Mov {
            dst: Operand::Reg(Reg::Rax),
            src: Operand::Imm(3),
            width: Width::W64,
        });
        b.emit(Inst::Jmp { target: l });
        b.bind(l);
        b.emit(Inst::Alu {
            op: AluOp::Add,
            dst: Operand::Reg(Reg::Rax),
            src: Operand::Imm(4),
            width: Width::W64,
        });
        b.emit(Inst::Trap {
            kind: TrapKind::Unreachable,
        });
        b.emit(Inst::Ret);
        let m = module_of(vec![b.finish()]);
        let (leg_res, leg_ctr) = observe_mode(&m, ExecMode::Legacy, &[], 1000);
        let err = leg_res.as_ref().unwrap_err();
        assert_eq!(err.kind, TrapKind::Unreachable);
        assert_eq!(err.pc, 3);
        for mode in [ExecMode::Predecoded, ExecMode::Threaded] {
            let (res, ctr) = observe_mode(&m, mode, &[], 1000);
            assert_eq!(res, leg_res, "{mode:?}");
            assert_eq!(ctr, leg_ctr, "{mode:?}");
        }
    }

    #[test]
    fn every_variant_agrees_across_modes() {
        // The predecode tests build a module with one of every
        // instruction; run it under all three modes and require identical
        // observables, whatever they are.
        let m = crate::predecode::tests::every_variant_module();
        let (leg_res, leg_ctr) = observe_mode(&m, ExecMode::Legacy, &[1, 2], 100_000);
        for mode in [ExecMode::Predecoded, ExecMode::Threaded] {
            let (res, ctr) = observe_mode(&m, mode, &[1, 2], 100_000);
            assert_eq!(res, leg_res, "{mode:?}");
            assert_eq!(ctr, leg_ctr, "{mode:?}");
        }
    }
}
