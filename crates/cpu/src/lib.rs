//! Executing performance-model simulator for the `wasmperf-isa` machine.
//!
//! This crate plays the role of the paper's measurement substrate: the
//! Intel Xeon E5-1650 v3 plus Linux `perf`. It executes machine code
//! produced by either backend and maintains the retired-event counters the
//! paper analyses (Table 3):
//!
//! | perf event | here |
//! |---|---|
//! | `all-loads-retired` (r81d0) | [`PerfCounters::loads_retired`] |
//! | `all-stores-retired` (r82d0) | [`PerfCounters::stores_retired`] |
//! | `branches-retired` (r00c4) | [`PerfCounters::branches_retired`] |
//! | `conditional-branches` (r01c4) | [`PerfCounters::cond_branches_retired`] |
//! | `instructions-retired` (r1c0) | [`PerfCounters::instructions_retired`] |
//! | `cpu-cycles` | [`PerfCounters::cycles`] |
//! | `L1-icache-load-misses` | [`PerfCounters::icache_misses`] |
//!
//! Cycles come from an additive timing model ([`TimingModel`]): a base
//! issue cost per instruction class (modelling a superscalar core's
//! sustained IPC) plus penalties for L1 instruction-cache misses, L1
//! data-cache misses, and branch mispredictions. The model is deliberately
//! simple — the paper's conclusions rest on counter *ratios* between
//! compilation strategies, which an additive model preserves — but every
//! mechanism the paper invokes (I-cache pressure from code bloat, extra
//! loads/stores from spills, extra branches from safety checks) has a
//! first-class cost here.
//!
//! Host calls (the Browsix kernel's syscalls) are accounted separately in
//! [`PerfCounters::host_cycles`], which is how the harness reproduces the
//! paper's Figure 4 (percentage of time spent in BROWSIX-WASM).

pub mod cache;
pub mod counters;
pub mod host;
pub mod machine;
pub mod mem;
pub mod predecode;
pub mod predictor;
pub mod threaded;
pub mod timing;

pub use cache::Cache;
pub use counters::PerfCounters;
pub use host::{HostEnv, HostOutcome, NullHost};
pub use machine::{ExecMode, Machine, RunOutcome};
pub use mem::Memory;
pub use predecode::Predecoded;
pub use predictor::BranchPredictor;
pub use threaded::Threaded;
pub use timing::TimingModel;
