//! Flat byte-addressed memory image.
//!
//! One address space holds the program's linear memory (data + heap) at low
//! addresses and the machine stack at the top, mirroring how a wasm
//! instance's memory and the native stack coexist in a process.

use wasmperf_isa::{TrapKind, Width};

/// Byte-addressable memory with bounds-checked accessors.
#[derive(Debug, Clone)]
pub struct Memory {
    bytes: Vec<u8>,
}

impl Memory {
    /// Creates a zeroed memory of `size` bytes.
    pub fn new(size: u64) -> Memory {
        Memory {
            bytes: vec![0; size as usize],
        }
    }

    /// Total size in bytes.
    pub fn size(&self) -> u64 {
        self.bytes.len() as u64
    }

    fn check(&self, addr: u64, len: u64) -> Result<usize, TrapKind> {
        let end = addr.checked_add(len).ok_or(TrapKind::MemoryOutOfBounds)?;
        if end > self.bytes.len() as u64 {
            return Err(TrapKind::MemoryOutOfBounds);
        }
        Ok(addr as usize)
    }

    /// Reads `width.bytes()` bytes at `addr` as a zero-extended u64
    /// (little-endian).
    pub fn read(&self, addr: u64, width: Width) -> Result<u64, TrapKind> {
        let n = width.bytes() as usize;
        let a = self.check(addr, n as u64)?;
        let mut buf = [0u8; 8];
        buf[..n].copy_from_slice(&self.bytes[a..a + n]);
        Ok(u64::from_le_bytes(buf))
    }

    /// Writes the low `width.bytes()` bytes of `value` at `addr`
    /// (little-endian).
    pub fn write(&mut self, addr: u64, value: u64, width: Width) -> Result<(), TrapKind> {
        let n = width.bytes() as usize;
        let a = self.check(addr, n as u64)?;
        self.bytes[a..a + n].copy_from_slice(&value.to_le_bytes()[..n]);
        Ok(())
    }

    /// Borrows a byte slice (for host syscalls reading buffers).
    pub fn slice(&self, addr: u64, len: u64) -> Result<&[u8], TrapKind> {
        let a = self.check(addr, len)?;
        Ok(&self.bytes[a..a + len as usize])
    }

    /// Mutably borrows a byte slice (for host syscalls writing buffers).
    pub fn slice_mut(&mut self, addr: u64, len: u64) -> Result<&mut [u8], TrapKind> {
        let a = self.check(addr, len)?;
        Ok(&mut self.bytes[a..a + len as usize])
    }

    /// Copies `data` into memory at `addr`.
    pub fn write_bytes(&mut self, addr: u64, data: &[u8]) -> Result<(), TrapKind> {
        self.slice_mut(addr, data.len() as u64)?
            .copy_from_slice(data);
        Ok(())
    }

    /// Reads a NUL-terminated string starting at `addr`.
    pub fn read_cstr(&self, addr: u64) -> Result<Vec<u8>, TrapKind> {
        let start = self.check(addr, 0)?;
        let rest = &self.bytes[start..];
        match rest.iter().position(|&b| b == 0) {
            Some(n) => Ok(rest[..n].to_vec()),
            None => Err(TrapKind::MemoryOutOfBounds),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn read_write_roundtrip_all_widths() {
        let mut m = Memory::new(64);
        for (w, v) in [
            (Width::W8, 0xabu64),
            (Width::W16, 0xbeef),
            (Width::W32, 0xdead_beef),
            (Width::W64, 0x0123_4567_89ab_cdef),
        ] {
            m.write(8, v, w).unwrap();
            assert_eq!(m.read(8, w).unwrap(), v);
        }
    }

    #[test]
    fn narrow_write_preserves_neighbours() {
        let mut m = Memory::new(16);
        m.write(0, u64::MAX, Width::W64).unwrap();
        m.write(2, 0, Width::W8).unwrap();
        assert_eq!(m.read(0, Width::W64).unwrap(), 0xffff_ffff_ff00_ffff);
    }

    #[test]
    fn out_of_bounds_traps() {
        let mut m = Memory::new(8);
        assert_eq!(
            m.read(8, Width::W8).unwrap_err(),
            TrapKind::MemoryOutOfBounds
        );
        assert_eq!(
            m.read(5, Width::W64).unwrap_err(),
            TrapKind::MemoryOutOfBounds
        );
        assert_eq!(
            m.write(u64::MAX, 0, Width::W64).unwrap_err(),
            TrapKind::MemoryOutOfBounds
        );
        assert!(m.read(0, Width::W64).is_ok());
    }

    #[test]
    fn cstr_reading() {
        let mut m = Memory::new(32);
        m.write_bytes(4, b"hello\0world").unwrap();
        assert_eq!(m.read_cstr(4).unwrap(), b"hello");
        assert_eq!(m.read_cstr(10).unwrap(), b"world");
        // No terminator before end of memory.
        let mut m2 = Memory::new(4);
        m2.write_bytes(0, b"abcd").unwrap();
        assert!(m2.read_cstr(0).is_err());
    }

    #[test]
    fn little_endian_layout() {
        let mut m = Memory::new(8);
        m.write(0, 0x0102_0304, Width::W32).unwrap();
        assert_eq!(m.read(0, Width::W8).unwrap(), 0x04);
        assert_eq!(m.read(3, Width::W8).unwrap(), 0x01);
    }
}
