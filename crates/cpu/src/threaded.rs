//! Superblock formation over the predecoded micro-op stream.
//!
//! The predecoded engine (PR 4) dispatches one micro-op at a time through a
//! `match` and charges fuel per *basic block*. This module builds the next
//! tier's program representation: basic blocks are merged into
//! **superblocks** — single-entry, multiple-exit chains of blocks joined
//! across conditional fall-through edges and single-entry unconditional
//! jumps — and each superblock is flattened into a contiguous run of
//! [`TOp`]s with pre-resolved *superblock* successors, ready for
//! function-pointer dispatch (`machine.rs`, `ExecMode::Threaded`).
//!
//! Formation rules (also documented in docs/PERFORMANCE.md): block `B` is
//! appended to the chain currently ending in block `A` iff control can reach
//! `B` **only** through that seam:
//!
//! - `A` ends with `jcc` and `B` is its fall-through successor, and no
//!   branch anywhere in the function targets `B` (the `jcc` becomes a
//!   mid-superblock side exit); or
//! - `A` ends with `jmp B`, exactly one branch in the function targets `B`
//!   (that `jmp`), and `B`'s physical predecessor cannot fall into it.
//!
//! `B` must additionally not be the function entry (callable from anywhere),
//! not a return site (the block after a `call` is re-entered by `ret`), and
//! not already part of a chain (which also terminates loops: a back edge
//! targets its own chain's head). Every control-transfer destination that
//! survives these rules is therefore a superblock *head*, which is what lets
//! the executor charge fuel for a whole superblock on entry and roll back
//! the unexecuted tail exactly at side exits.
//!
//! Each superblock is further partitioned into [`Seg`]ments: maximal runs of
//! **pure** micro-ops — infallible, register/immediate-only, non-control
//! operations — alternating with single *complex* ops (anything that can
//! trap, touch the D-cache, branch, or call the host). A pure run's fuel,
//! issue-cost, and instruction-fetch accounting can be applied in one shot
//! with bit-exact results (see the proofs on [`Seg::Pure`]), which is where
//! the threaded tier's batching happens; complex ops keep the legacy
//! per-instruction accounting so trap-time observables stay identical.

use crate::predecode::{FuncPre, MOp, Predecoded};
use wasmperf_isa::inst::FOperand;
use wasmperf_isa::Operand;

/// Sentinel superblock id: "no successor" — for branch targets bound to the
/// function's end (the executor raises the same "fell off end" abort the
/// legacy loop produces) and for superblocks whose terminal op never falls
/// through.
pub const NO_SB: u32 = u32::MAX;

/// One micro-op in a flattened superblock: the [`crate::predecode::UOp`]
/// payload plus everything the threaded dispatch loop and its handlers need
/// without consulting the original program order.
#[derive(Debug, Clone)]
pub struct TOp {
    /// Original instruction index within the function (trap locations,
    /// return addresses, and shadow-stack frames stay in original indices
    /// so all execution tiers report identical observables).
    pub orig_pc: u32,
    /// Function this op belongs to (handlers push call frames).
    pub func: u32,
    /// Code address of the instruction.
    pub addr: u64,
    /// Address of the last encoded byte.
    pub last_byte: u64,
    /// Whether the fetch needs a second I-cache probe.
    pub straddles: bool,
    /// `jmp` whose target block is laid out immediately after it in the
    /// same superblock (the merged unconditional edge): dispatches as
    /// fall-through.
    pub merged_jmp: bool,
    /// Eligible for batched accounting (see [`is_pure`]).
    pub pure: bool,
    /// Issue cost in 1/64-cycle fixed-point units.
    pub cost: u32,
    /// Ops remaining in this superblock after this one. A side exit taken
    /// here under batched fuel rolls `sb_tail` units back, so fuel consumed
    /// always equals instructions retired at every superblock entry.
    pub sb_tail: u32,
    /// For `jcc`/unmerged `jmp`: the destination superblock ([`NO_SB`] when
    /// the label binds to the function end).
    pub target_sb: u32,
    /// The operation (branch targets inside are still original indices;
    /// the threaded loop uses [`TOp::target_sb`] instead).
    pub op: MOp,
}

/// A dispatch segment of a superblock.
#[derive(Debug, Clone)]
pub enum Seg {
    /// A maximal run `tops[lo..hi]` of pure ops whose accounting is applied
    /// in one shot. Exactness arguments:
    ///
    /// - **Issue cost**: per-op absorption consumes stall credit until it
    ///   runs out; over a run that adds no new credit (pure ops never probe
    ///   the D-cache) the per-op sequence telescopes to
    ///   `min(total_cost, credit)` — see `timing::absorb`.
    /// - **Fetch**: the run is physically contiguous (block seams end with
    ///   control ops, which are complex), so fetch lines are non-decreasing
    ///   and a repeated line is always *immediately* repeated. Re-accessing
    ///   the just-touched line is a guaranteed hit whose LRU update is a
    ///   no-op, so only the `probes` at line transitions are performed for
    ///   real; the remaining `fetches` just bump the access counter.
    Pure {
        /// First op index (into [`FuncThreaded::tops`]).
        lo: u32,
        /// One past the last op index.
        hi: u32,
        /// Sum of issue costs, 1/64-cycle fixed point.
        cost_fp: u64,
        /// Total I-cache accesses the per-op path would perform
        /// (one per op plus one per straddling op).
        fetches: u64,
        /// Range into [`FuncThreaded::probes`]: the fetch addresses at
        /// line transitions, probed for real (counting and charging
        /// misses, updating LRU state).
        probe_lo: u32,
        /// End of the probe range.
        probe_hi: u32,
    },
    /// A single op executed with exact per-instruction accounting: anything
    /// that can trap, access memory, transfer control, or call the host.
    Complex {
        /// Op index into [`FuncThreaded::tops`].
        idx: u32,
    },
}

/// One superblock: a contiguous run of [`TOp`]s and its segment partition.
#[derive(Debug, Clone)]
pub struct SuperBlock {
    /// First op (into [`FuncThreaded::tops`]).
    pub op_lo: u32,
    /// One past the last op.
    pub op_hi: u32,
    /// First segment (into [`FuncThreaded::segs`]).
    pub seg_lo: u32,
    /// One past the last segment.
    pub seg_hi: u32,
    /// Op count — the fuel charged on entry.
    pub len: u32,
    /// Superblock entered when the last op falls through, or [`NO_SB`] if
    /// falling through runs off the function end (same abort as legacy) or
    /// the terminal op never falls through (`jmp`/`call`/`ret`).
    pub fallthrough: u32,
}

/// One function's superblock program.
#[derive(Debug, Clone)]
pub struct FuncThreaded {
    /// Original instruction count (bounds for "fell off end" reporting).
    pub n: u32,
    /// Flattened ops, superblock by superblock (a permutation of the
    /// original instruction order).
    pub tops: Vec<TOp>,
    /// Segments, superblock by superblock.
    pub segs: Vec<Seg>,
    /// Real-probe fetch addresses referenced by [`Seg::Pure`].
    pub probes: Vec<u64>,
    /// The superblocks.
    pub sbs: Vec<SuperBlock>,
    /// `entry[orig_pc]` is the superblock led by that instruction, or
    /// [`NO_SB`]. Every address control can enter from outside a superblock
    /// (function entry, branch targets, return sites) maps to a head.
    pub entry: Vec<u32>,
}

/// The whole module in threaded-dispatch form.
#[derive(Debug, Clone)]
pub struct Threaded {
    /// Per-function programs, index-aligned with `module.funcs`.
    pub funcs: Vec<FuncThreaded>,
}

impl Threaded {
    /// Builds superblocks for every function of an already-predecoded
    /// module. `line_bytes` is the I-cache line size used to place the
    /// real fetch probes of pure segments.
    ///
    /// # Panics
    ///
    /// Panics unless `line_bytes` is a power of two.
    pub fn new(pre: &Predecoded, line_bytes: u64) -> Threaded {
        assert!(line_bytes.is_power_of_two());
        Threaded {
            funcs: pre
                .funcs
                .iter()
                .enumerate()
                .map(|(fid, fp)| FuncThreaded::build(fp, fid as u32, line_bytes))
                .collect(),
        }
    }
}

/// True when the op can be accounted for in a batched [`Seg::Pure`] run:
/// it cannot trap, cannot touch the D-cache (register/immediate operands
/// only), does not transfer control or consult the branch predictor, and
/// its only counter effect is one retired instruction plus its issue cost.
pub fn is_pure(op: &MOp) -> bool {
    fn ri(o: &Operand) -> bool {
        !matches!(o, Operand::Mem(_))
    }
    fn fx(o: &FOperand) -> bool {
        matches!(o, FOperand::Xmm(_))
    }
    match op {
        MOp::Mov { dst, src, .. } | MOp::Alu { dst, src, .. } => ri(dst) && ri(src),
        MOp::Movzx { src, .. }
        | MOp::Movsx { src, .. }
        | MOp::Imul { src, .. }
        | MOp::Imul3 { src, .. }
        | MOp::Lzcnt { src, .. }
        | MOp::Tzcnt { src, .. }
        | MOp::Popcnt { src, .. }
        | MOp::Cmov { src, .. }
        | MOp::CvtIntToF { src, .. } => ri(src),
        MOp::Neg { dst, .. } | MOp::Not { dst, .. } => ri(dst),
        MOp::Cmp { lhs, rhs, .. } | MOp::Test { lhs, rhs, .. } => ri(lhs) && ri(rhs),
        MOp::Lea { .. }
        | MOp::Cqo { .. }
        | MOp::Setcc { .. }
        | MOp::MovGprToXmm { .. }
        | MOp::MovXmmToGpr { .. }
        | MOp::Nop => true,
        MOp::MovF { dst, src, .. } => fx(dst) && fx(src),
        MOp::AluF { src, .. }
        | MOp::RoundF { src, .. }
        | MOp::AbsF { src, .. }
        | MOp::SqrtF { src, .. }
        | MOp::CvtFToF { src, .. } => fx(src),
        MOp::Ucomis { rhs, .. } => fx(rhs),
        // Div and float->int conversions trap on bad values; everything
        // below touches memory, control, or the host.
        MOp::Div { .. }
        | MOp::CvtFToInt { .. }
        | MOp::Jmp { .. }
        | MOp::Jcc { .. }
        | MOp::Call { .. }
        | MOp::CallIndirect { .. }
        | MOp::CallHost { .. }
        | MOp::Push { .. }
        | MOp::Pop { .. }
        | MOp::Ret
        | MOp::Trap { .. } => false,
    }
}

impl FuncThreaded {
    fn build(fp: &FuncPre, fid: u32, line_bytes: u64) -> FuncThreaded {
        let n = fp.uops.len();
        // Block starts, ascending.
        let mut starts = Vec::new();
        {
            let mut pc = 0;
            while pc < n {
                starts.push(pc);
                pc += fp.block_len[pc] as usize;
            }
        }
        let nb = starts.len();
        const NONE: usize = usize::MAX;
        let mut block_at = vec![NONE; n];
        for (bi, &s) in starts.iter().enumerate() {
            block_at[s] = bi;
        }

        // How many branches target each instruction (index n = "function
        // end" labels, which are legal targets).
        let mut tgt_count = vec![0u32; n + 1];
        for u in &fp.uops {
            if let MOp::Jmp { target } | MOp::Jcc { target, .. } = u.op {
                tgt_count[target as usize] += 1;
            }
        }
        // Leaders control re-enters from outside any chain.
        let mut ret_site = vec![false; n];
        let mut fall_into = vec![false; n];
        for &s in &starts {
            let len = fp.block_len[s] as usize;
            let next = s + len;
            if next < n {
                match fp.uops[s + len - 1].op {
                    MOp::Call { .. } | MOp::CallIndirect { .. } => ret_site[next] = true,
                    MOp::Jmp { .. } | MOp::Ret => {}
                    // `jcc` falls through; a plain terminal means the next
                    // instruction is a branch target and always falls in.
                    _ => fall_into[next] = true,
                }
            }
        }

        // Greedy chain formation in ascending block order. `assigned` also
        // terminates loops: a back edge targets its own chain's head.
        let mut assigned = vec![false; nb];
        let mut chains: Vec<Vec<usize>> = Vec::new();
        for head in 0..nb {
            if assigned[head] {
                continue;
            }
            assigned[head] = true;
            let mut chain = vec![head];
            let mut cur = head;
            loop {
                let s = starts[cur];
                let len = fp.block_len[s] as usize;
                let cand = match fp.uops[s + len - 1].op {
                    MOp::Jcc { .. } => {
                        let c = s + len;
                        // The fall-through successor's only other possible
                        // entries are branches (it is not a return site: its
                        // physical predecessor is this `jcc` block).
                        (c < n && tgt_count[c] == 0 && !ret_site[c]).then_some(c)
                    }
                    MOp::Jmp { target } => {
                        let c = target as usize;
                        (c < n && c != 0 && tgt_count[c] == 1 && !ret_site[c] && !fall_into[c])
                            .then_some(c)
                    }
                    _ => None,
                };
                let Some(c) = cand else { break };
                let cbi = block_at[c];
                debug_assert_ne!(cbi, NONE, "merge candidate must be a block leader");
                if assigned[cbi] {
                    break;
                }
                assigned[cbi] = true;
                chain.push(cbi);
                cur = cbi;
            }
            chains.push(chain);
        }

        // Which superblock each block landed in (heads and merged tails).
        let mut sb_of_block = vec![NO_SB; nb];
        for (ci, chain) in chains.iter().enumerate() {
            for &bi in chain {
                sb_of_block[bi] = ci as u32;
            }
        }
        let sb_of_pc = |pc: usize| -> u32 {
            if pc >= n {
                return NO_SB;
            }
            let bi = block_at[pc];
            debug_assert_ne!(bi, NONE, "control target must be a block leader");
            sb_of_block[bi]
        };

        // Flatten: ops, segments, probes, per-superblock metadata.
        let mut tops: Vec<TOp> = Vec::with_capacity(n);
        let mut segs: Vec<Seg> = Vec::new();
        let mut probes: Vec<u64> = Vec::new();
        let mut sbs: Vec<SuperBlock> = Vec::with_capacity(chains.len());
        let mut entry = vec![NO_SB; n];
        for (ci, chain) in chains.iter().enumerate() {
            let op_lo = tops.len() as u32;
            let seg_lo = segs.len() as u32;
            entry[starts[chain[0]]] = ci as u32;
            let total: usize = chain
                .iter()
                .map(|&bi| fp.block_len[starts[bi]] as usize)
                .sum();
            let mut pos = 0usize;
            for (k, &bi) in chain.iter().enumerate() {
                let s = starts[bi];
                let len = fp.block_len[s] as usize;
                for pc in s..s + len {
                    let u = &fp.uops[pc];
                    let (target_sb, merged_jmp) = match u.op {
                        MOp::Jmp { target } => {
                            let merged = pc == s + len - 1
                                && k + 1 < chain.len()
                                && starts[chain[k + 1]] == target as usize;
                            if merged {
                                (NO_SB, true)
                            } else {
                                (sb_of_pc(target as usize), false)
                            }
                        }
                        MOp::Jcc { target, .. } => (sb_of_pc(target as usize), false),
                        _ => (NO_SB, false),
                    };
                    tops.push(TOp {
                        orig_pc: pc as u32,
                        func: fid,
                        addr: u.addr,
                        last_byte: u.last_byte,
                        straddles: u.straddles,
                        merged_jmp,
                        pure: is_pure(&u.op),
                        cost: u.cost,
                        sb_tail: (total - 1 - pos) as u32,
                        target_sb,
                        op: u.op,
                    });
                    pos += 1;
                }
            }

            // Segment the superblock's ops.
            let mut i = op_lo as usize;
            while i < tops.len() {
                if !tops[i].pure {
                    segs.push(Seg::Complex { idx: i as u32 });
                    i += 1;
                    continue;
                }
                let lo = i as u32;
                let probe_lo = probes.len() as u32;
                let mut cost_fp = 0u64;
                let mut fetches = 0u64;
                let mut prev_line = u64::MAX;
                while i < tops.len() && tops[i].pure {
                    let t = &tops[i];
                    cost_fp += t.cost as u64;
                    fetches += 1 + t.straddles as u64;
                    let l0 = t.addr / line_bytes;
                    if l0 != prev_line {
                        probes.push(t.addr);
                        prev_line = l0;
                    }
                    if t.straddles {
                        let l1 = t.last_byte / line_bytes;
                        if l1 != prev_line {
                            probes.push(t.last_byte);
                            prev_line = l1;
                        }
                    }
                    i += 1;
                }
                segs.push(Seg::Pure {
                    lo,
                    hi: i as u32,
                    cost_fp,
                    fetches,
                    probe_lo,
                    probe_hi: probes.len() as u32,
                });
            }

            // Fall-through successor of the chain's last block.
            let last_s = starts[*chain.last().expect("chains are non-empty")];
            let last_len = fp.block_len[last_s] as usize;
            let fallthrough = match fp.uops[last_s + last_len - 1].op {
                // These never fall through (an unmerged terminal `jmp`
                // always redirects; calls re-enter via `ret`).
                MOp::Jmp { .. } | MOp::Ret | MOp::Call { .. } | MOp::CallIndirect { .. } => NO_SB,
                _ => sb_of_pc(last_s + last_len),
            };
            sbs.push(SuperBlock {
                op_lo,
                op_hi: tops.len() as u32,
                seg_lo,
                seg_hi: segs.len() as u32,
                len: total as u32,
                fallthrough,
            });
        }

        FuncThreaded {
            n: n as u32,
            tops,
            segs,
            probes,
            sbs,
            entry,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::predecode::Predecoded;
    use crate::timing::TimingModel;
    use wasmperf_isa::{
        AluOp, AsmBuilder, Cc, FuncId, Function, Inst, Module, Operand, Reg, Width,
    };

    fn module_of(funcs: Vec<Function>) -> Module {
        let mut m = Module {
            funcs,
            table: vec![],
            entry: Some(FuncId(0)),
            memory_size: 4096,
            data: vec![],
            sandbox: None,
        };
        m.assign_addresses();
        m
    }

    fn threaded(m: &Module) -> Threaded {
        let pre = Predecoded::new(m, &TimingModel::default(), 64);
        Threaded::new(&pre, 64)
    }

    /// `mov; loop { cmp; jcc exit; add; jmp loop }; ret` — the canonical
    /// counted loop.
    fn loop_module() -> Module {
        let mut b = AsmBuilder::new("main");
        let head = b.new_label();
        let exit = b.new_label();
        b.emit(Inst::Mov {
            dst: Operand::Reg(Reg::Rax),
            src: Operand::Imm(0),
            width: Width::W64,
        });
        b.bind(head);
        b.emit(Inst::Cmp {
            lhs: Operand::Reg(Reg::Rax),
            rhs: Operand::Imm(10),
            width: Width::W64,
        });
        b.emit(Inst::Jcc {
            cc: Cc::E,
            target: exit,
        });
        b.emit(Inst::Alu {
            op: AluOp::Add,
            dst: Operand::Reg(Reg::Rax),
            src: Operand::Imm(1),
            width: Width::W64,
        });
        b.emit(Inst::Jmp { target: head });
        b.bind(exit);
        b.emit(Inst::Ret);
        module_of(vec![b.finish()])
    }

    #[test]
    fn tops_are_a_permutation_of_the_instruction_stream() {
        for m in [loop_module(), jmp_chain_module()] {
            let th = threaded(&m);
            for (f, tf) in m.funcs.iter().zip(&th.funcs) {
                assert_eq!(tf.tops.len(), f.insts.len());
                let mut seen = vec![false; f.insts.len()];
                for t in &tf.tops {
                    assert!(!seen[t.orig_pc as usize], "duplicate op");
                    seen[t.orig_pc as usize] = true;
                }
                assert!(seen.iter().all(|&s| s), "missing op");
                // Superblocks tile the flat array.
                let mut op = 0;
                let mut seg = 0;
                for sb in &tf.sbs {
                    assert_eq!(sb.op_lo, op);
                    assert_eq!(sb.seg_lo, seg);
                    assert_eq!(sb.op_hi - sb.op_lo, sb.len);
                    op = sb.op_hi;
                    seg = sb.seg_hi;
                }
                assert_eq!(op as usize, tf.tops.len());
                assert_eq!(seg as usize, tf.segs.len());
            }
        }
    }

    #[test]
    fn loop_body_forms_one_superblock() {
        let m = loop_module();
        let th = threaded(&m);
        let tf = &th.funcs[0];
        // Blocks: [mov], [cmp, jcc], [add, jmp], [ret]. The jcc fall-through
        // edge merges the body into the loop head; the back edge stays a
        // side exit to its own head.
        assert_eq!(tf.sbs.len(), 3, "{:?}", tf.sbs);
        let loop_sb = tf.entry[1];
        assert_ne!(loop_sb, NO_SB);
        let sb = &tf.sbs[loop_sb as usize];
        assert_eq!(sb.len, 4, "cmp+jcc+add+jmp merged");
        let ops: Vec<u32> = tf.tops[sb.op_lo as usize..sb.op_hi as usize]
            .iter()
            .map(|t| t.orig_pc)
            .collect();
        assert_eq!(ops, vec![1, 2, 3, 4]);
        // The back-edge jmp targets this superblock's own head.
        let jmp = &tf.tops[sb.op_hi as usize - 1];
        assert!(matches!(jmp.op, MOp::Jmp { .. }));
        assert!(!jmp.merged_jmp);
        assert_eq!(jmp.target_sb, loop_sb);
        // The jcc exits mid-superblock with a rollback tail of 2 (add, jmp).
        let jcc = &tf.tops[sb.op_lo as usize + 1];
        assert!(matches!(jcc.op, MOp::Jcc { .. }));
        assert_eq!(jcc.sb_tail, 2);
        assert_eq!(jcc.target_sb, tf.entry[5]);
        // The entry superblock falls through into the loop.
        assert_eq!(tf.sbs[tf.entry[0] as usize].fallthrough, loop_sb);
    }

    /// `mov; jmp L; L: add; ret` — a single-entry unconditional edge.
    fn jmp_chain_module() -> Module {
        let mut b = AsmBuilder::new("main");
        let l = b.new_label();
        b.emit(Inst::Mov {
            dst: Operand::Reg(Reg::Rax),
            src: Operand::Imm(1),
            width: Width::W64,
        });
        b.emit(Inst::Jmp { target: l });
        b.bind(l);
        b.emit(Inst::Alu {
            op: AluOp::Add,
            dst: Operand::Reg(Reg::Rax),
            src: Operand::Imm(2),
            width: Width::W64,
        });
        b.emit(Inst::Ret);
        module_of(vec![b.finish()])
    }

    #[test]
    fn single_entry_jmp_edges_merge() {
        let m = jmp_chain_module();
        let th = threaded(&m);
        let tf = &th.funcs[0];
        assert_eq!(tf.sbs.len(), 1, "{:?}", tf.sbs);
        assert_eq!(tf.sbs[0].len, 4);
        let jmp = &tf.tops[1];
        assert!(matches!(jmp.op, MOp::Jmp { .. }));
        assert!(
            jmp.merged_jmp,
            "unique unconditional edge dispatches inline"
        );
    }

    #[test]
    fn control_targets_resolve_to_superblock_heads() {
        for m in [loop_module(), jmp_chain_module()] {
            let th = threaded(&m);
            for tf in &th.funcs {
                for t in &tf.tops {
                    let target = match t.op {
                        MOp::Jmp { target } if !t.merged_jmp => target,
                        MOp::Jcc { target, .. } => target,
                        _ => continue,
                    };
                    if (target as usize) < tf.n as usize {
                        let sb = &tf.sbs[t.target_sb as usize];
                        assert_eq!(
                            tf.tops[sb.op_lo as usize].orig_pc, target,
                            "branch target must lead its superblock"
                        );
                        assert_eq!(tf.entry[target as usize], t.target_sb);
                    } else {
                        assert_eq!(t.target_sb, NO_SB);
                    }
                }
                for sb in &tf.sbs {
                    if sb.fallthrough != NO_SB {
                        let dst = &tf.sbs[sb.fallthrough as usize];
                        let last = &tf.tops[sb.op_hi as usize - 1];
                        assert_eq!(
                            tf.tops[dst.op_lo as usize].orig_pc,
                            last.orig_pc + 1,
                            "fallthrough must enter the next instruction's head"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn pure_segments_account_exactly() {
        for m in [loop_module(), jmp_chain_module()] {
            let th = threaded(&m);
            for tf in &th.funcs {
                for seg in &tf.segs {
                    let Seg::Pure {
                        lo,
                        hi,
                        cost_fp,
                        fetches,
                        probe_lo,
                        probe_hi,
                    } = *seg
                    else {
                        continue;
                    };
                    let ops = &tf.tops[lo as usize..hi as usize];
                    assert!(!ops.is_empty());
                    assert!(ops.iter().all(|t| t.pure && is_pure(&t.op)));
                    assert_eq!(cost_fp, ops.iter().map(|t| t.cost as u64).sum::<u64>());
                    assert_eq!(
                        fetches,
                        ops.iter().map(|t| 1 + t.straddles as u64).sum::<u64>()
                    );
                    let probes = &tf.probes[probe_lo as usize..probe_hi as usize];
                    assert_eq!(probes[0], ops[0].addr, "first fetch always probed");
                    // Probe lines strictly increase: one probe per distinct
                    // line of the (monotone) fetch stream.
                    for w in probes.windows(2) {
                        assert!(w[0] / 64 < w[1] / 64);
                    }
                    let mut lines: Vec<u64> = ops
                        .iter()
                        .flat_map(|t| {
                            let mut v = vec![t.addr / 64];
                            if t.straddles {
                                v.push(t.last_byte / 64);
                            }
                            v
                        })
                        .collect();
                    lines.dedup();
                    assert_eq!(lines.len(), probes.len());
                }
            }
        }
    }

    #[test]
    fn return_sites_and_entries_stay_superblock_heads() {
        // call main→callee: the instruction after the call must head its
        // own superblock (ret re-enters there), as must every entry.
        let mut b = AsmBuilder::new("main");
        b.emit(Inst::Call { target: FuncId(1) });
        b.emit(Inst::Alu {
            op: AluOp::Add,
            dst: Operand::Reg(Reg::Rax),
            src: Operand::Imm(1),
            width: Width::W64,
        });
        b.emit(Inst::Ret);
        let mut c = AsmBuilder::new("callee");
        c.emit(Inst::Mov {
            dst: Operand::Reg(Reg::Rax),
            src: Operand::Imm(41),
            width: Width::W64,
        });
        c.emit(Inst::Ret);
        let m = module_of(vec![b.finish(), c.finish()]);
        let th = threaded(&m);
        assert_ne!(th.funcs[0].entry[0], NO_SB);
        assert_ne!(th.funcs[0].entry[1], NO_SB, "return site is a head");
        assert_ne!(th.funcs[1].entry[0], NO_SB);
    }
}
