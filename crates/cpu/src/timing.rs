//! Additive cycle-cost model.
//!
//! Costs are expressed in 1/64ths of a cycle so that sustained multi-issue
//! execution (IPC > 1) can be modelled without floating point in the hot
//! loop. The defaults approximate a Haswell-class core: simple integer
//! operations sustain roughly 3 per cycle, loads/stores roughly 2 per
//! cycle, divisions are long-latency, and the three penalty classes
//! (I-cache miss, D-cache miss, branch mispredict) dominate when they
//! occur. Out-of-order overlap is approximated by charging loads/stores
//! their *throughput* cost rather than latency and by discounting D-cache
//! miss penalties (memory-level parallelism).

use wasmperf_isa::InstClass;

/// Per-class issue costs and event penalties, in 1/64 cycle units.
#[derive(Debug, Clone)]
pub struct TimingModel {
    /// Issue cost of a simple integer ALU op / register move.
    pub int_alu: u32,
    /// Issue cost of an integer multiply.
    pub int_mul: u32,
    /// Cost of an integer divide (long latency, unpipelined).
    pub int_div: u32,
    /// Issue cost of a scalar float add/sub/mul.
    pub float_alu: u32,
    /// Cost of a float divide or square root.
    pub float_div: u32,
    /// Throughput cost of a load that hits L1.
    pub load: u32,
    /// Throughput cost of a store.
    pub store: u32,
    /// Issue cost of `lea`.
    pub lea: u32,
    /// Cost of an unconditional branch.
    pub branch: u32,
    /// Cost of a (correctly predicted) conditional branch.
    pub cond_branch: u32,
    /// Cost of a call (including the implicit push).
    pub call: u32,
    /// Cost of a return.
    pub ret: u32,
    /// Cost of push/pop.
    pub push_pop: u32,
    /// Cost of int<->float conversions and GPR<->XMM transfers.
    pub convert: u32,
    /// Penalty per L1 I-cache miss (cycles ×64).
    pub icache_miss_penalty: u32,
    /// Penalty per L1 D-cache miss (cycles ×64), already discounted for
    /// memory-level parallelism.
    pub dcache_miss_penalty: u32,
    /// Penalty per branch misprediction (cycles ×64).
    pub mispredict_penalty: u32,
    /// Percentage of a D-cache miss penalty that overlaps with subsequent
    /// instruction issue (out-of-order execution hides independent work
    /// under memory stalls; memory-bound code absorbs instruction-count
    /// overhead — the paper's 429.mcf effect).
    pub dcache_overlap_percent: u32,
    /// Core frequency in Hz used to convert cycles to seconds.
    pub frequency_hz: f64,
}

impl Default for TimingModel {
    fn default() -> Self {
        TimingModel {
            int_alu: 22,        // ~0.34 cycles -> ~2.9/cycle sustained.
            int_mul: 64,        // 1 cycle throughput.
            int_div: 22 * 64,   // ~22 cycles.
            float_alu: 40,      // ~0.63 cycles.
            float_div: 13 * 64, // ~13 cycles.
            load: 32,           // ~0.5 cycles throughput (2 ports).
            store: 40,          // ~0.63 cycles (1 port + forwarding).
            lea: 22,
            branch: 28,
            cond_branch: 32,
            call: 96,
            ret: 96,
            push_pop: 32,
            convert: 64,
            icache_miss_penalty: 14 * 64,
            dcache_miss_penalty: 9 * 64,
            mispredict_penalty: 15 * 64,
            dcache_overlap_percent: 80,
            frequency_hz: 3.5e9,
        }
    }
}

impl TimingModel {
    /// Issue cost (in 1/64 cycles) of an instruction of class `class`.
    pub fn issue_cost(&self, class: InstClass) -> u32 {
        match class {
            InstClass::IntAlu => self.int_alu,
            InstClass::IntMul => self.int_mul,
            InstClass::IntDiv => self.int_div,
            InstClass::FloatAlu => self.float_alu,
            InstClass::FloatDiv => self.float_div,
            InstClass::Load => self.load,
            InstClass::Store => self.store,
            InstClass::Lea => self.lea,
            InstClass::Branch => self.branch,
            InstClass::CondBranch => self.cond_branch,
            InstClass::Call => self.call,
            InstClass::Ret => self.ret,
            InstClass::Push | InstClass::Pop => self.push_pop,
            InstClass::Convert => self.convert,
            InstClass::Nop => self.int_alu / 2,
            InstClass::Trap => 0,
            InstClass::HostCall => self.call,
        }
    }
}

/// Converts accumulated 1/64-cycle units to whole cycles (rounding up).
pub fn fp_to_cycles(fp: u64) -> u64 {
    (fp + 63) >> 6
}

/// Charges `cost_fp` of issue work against an outstanding D-cache miss
/// shadow: consumes up to `cost_fp` from `stall_credit_fp` and returns the
/// visible cycle charge (the part that did not hide under the miss).
///
/// All execution tiers share this so their accounting is the same
/// computation. It is also what makes the threaded tier's batching exact:
/// over a run of ops that adds no new credit, applying `absorb` per-op
/// telescopes to a single `absorb` of the summed cost — each op either
/// drains credit fully (charging `cost - credit_left`) or is fully hidden,
/// so the total visible charge is `total_cost - min(total_cost, credit)`
/// either way.
#[inline]
pub fn absorb(stall_credit_fp: &mut u64, cost_fp: u64) -> u64 {
    let hidden = cost_fp.min(*stall_credit_fp);
    *stall_credit_fp -= hidden;
    cost_fp - hidden
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_ordered_sensibly() {
        let t = TimingModel::default();
        assert!(t.int_alu < t.int_mul);
        assert!(t.int_mul < t.int_div);
        assert!(t.float_alu < t.float_div);
        assert!(t.load < t.int_div);
        assert!(t.icache_miss_penalty > t.load * 8);
        assert!(t.mispredict_penalty > t.cond_branch * 8);
    }

    #[test]
    fn issue_cost_covers_all_classes() {
        let t = TimingModel::default();
        for class in [
            InstClass::IntAlu,
            InstClass::IntMul,
            InstClass::IntDiv,
            InstClass::FloatAlu,
            InstClass::FloatDiv,
            InstClass::Load,
            InstClass::Store,
            InstClass::Lea,
            InstClass::Branch,
            InstClass::CondBranch,
            InstClass::Call,
            InstClass::Ret,
            InstClass::Push,
            InstClass::Pop,
            InstClass::Convert,
            InstClass::Nop,
            InstClass::HostCall,
        ] {
            assert!(t.issue_cost(class) > 0, "{class:?}");
        }
        assert_eq!(t.issue_cost(InstClass::Trap), 0);
    }

    #[test]
    fn absorb_batches_exactly() {
        // Per-op absorption telescopes to one batched absorption when no
        // credit is added mid-run.
        for credit in [0u64, 1, 50, 100, 1000] {
            for costs in [&[22u64, 64, 40, 22][..], &[0, 1], &[], &[500]] {
                let mut c1 = credit;
                let per_op: u64 = costs.iter().map(|&c| absorb(&mut c1, c)).sum();
                let mut c2 = credit;
                let batched = absorb(&mut c2, costs.iter().sum());
                assert_eq!(per_op, batched, "credit={credit} costs={costs:?}");
                assert_eq!(c1, c2);
            }
        }
    }

    #[test]
    fn fp_conversion_rounds_up() {
        assert_eq!(fp_to_cycles(0), 0);
        assert_eq!(fp_to_cycles(1), 1);
        assert_eq!(fp_to_cycles(64), 1);
        assert_eq!(fp_to_cycles(65), 2);
        assert_eq!(fp_to_cycles(128), 2);
    }
}
