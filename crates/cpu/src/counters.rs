//! Retired-event performance counters (the `perf` analog).

use core::ops::{Add, AddAssign};

/// Counter snapshot gathered during one program execution.
///
/// Field names follow the paper's Table 3. `cycles` covers user code only;
/// `host_cycles` is time spent inside the host (the Browsix kernel), kept
/// separate so the harness can compute the paper's Figure 4 (time spent in
/// BROWSIX-WASM as a percentage of total).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PerfCounters {
    /// `instructions-retired`.
    pub instructions_retired: u64,
    /// `all-loads-retired` — memory-reading micro-ops.
    pub loads_retired: u64,
    /// `all-stores-retired` — memory-writing micro-ops.
    pub stores_retired: u64,
    /// `branches-retired` — all control transfers (jmp/jcc/call/ret).
    pub branches_retired: u64,
    /// `conditional-branches` — jcc only.
    pub cond_branches_retired: u64,
    /// `cpu-cycles` spent in user code.
    pub cycles: u64,
    /// L1 instruction-cache fetch accesses.
    pub icache_accesses: u64,
    /// `L1-icache-load-misses`.
    pub icache_misses: u64,
    /// L1 data-cache accesses.
    pub dcache_accesses: u64,
    /// L1 data-cache misses.
    pub dcache_misses: u64,
    /// Conditional-branch mispredictions.
    pub branch_mispredicts: u64,
    /// Number of host (kernel) calls.
    pub host_calls: u64,
    /// Cycles charged to the host (Browsix kernel time).
    pub host_cycles: u64,
}

impl PerfCounters {
    /// Retires `n` instructions at once. All execution tiers funnel
    /// instruction retirement through this, whether per-op (`n == 1`) or
    /// batched per superblock segment (the threaded tier).
    #[inline]
    pub fn retire(&mut self, n: u64) {
        self.instructions_retired += n;
    }

    /// Total cycles including host time.
    pub fn total_cycles(&self) -> u64 {
        self.cycles + self.host_cycles
    }

    /// Fraction of total time spent in the host, in percent (Figure 4).
    pub fn host_time_percent(&self) -> f64 {
        let total = self.total_cycles();
        if total == 0 {
            0.0
        } else {
            100.0 * self.host_cycles as f64 / total as f64
        }
    }

    /// Wall-clock seconds at the given core frequency.
    pub fn seconds(&self, hz: f64) -> f64 {
        self.total_cycles() as f64 / hz
    }

    /// Instructions per cycle of the user portion.
    pub fn ipc(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.instructions_retired as f64 / self.cycles as f64
        }
    }
}

impl Add for PerfCounters {
    type Output = PerfCounters;

    fn add(mut self, rhs: PerfCounters) -> PerfCounters {
        self += rhs;
        self
    }
}

impl AddAssign for PerfCounters {
    fn add_assign(&mut self, rhs: PerfCounters) {
        self.instructions_retired += rhs.instructions_retired;
        self.loads_retired += rhs.loads_retired;
        self.stores_retired += rhs.stores_retired;
        self.branches_retired += rhs.branches_retired;
        self.cond_branches_retired += rhs.cond_branches_retired;
        self.cycles += rhs.cycles;
        self.icache_accesses += rhs.icache_accesses;
        self.icache_misses += rhs.icache_misses;
        self.dcache_accesses += rhs.dcache_accesses;
        self.dcache_misses += rhs.dcache_misses;
        self.branch_mispredicts += rhs.branch_mispredicts;
        self.host_calls += rhs.host_calls;
        self.host_cycles += rhs.host_cycles;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn host_time_percent() {
        let c = PerfCounters {
            cycles: 980,
            host_cycles: 20,
            ..PerfCounters::default()
        };
        assert!((c.host_time_percent() - 2.0).abs() < 1e-9);
        assert_eq!(c.total_cycles(), 1000);
        let zero = PerfCounters::default();
        assert_eq!(zero.host_time_percent(), 0.0);
    }

    #[test]
    fn seconds_at_frequency() {
        let c = PerfCounters {
            cycles: 3_500_000_000,
            ..PerfCounters::default()
        };
        assert!((c.seconds(3.5e9) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn add_accumulates() {
        let a = PerfCounters {
            instructions_retired: 10,
            loads_retired: 3,
            cycles: 7,
            ..PerfCounters::default()
        };
        let b = PerfCounters {
            instructions_retired: 5,
            stores_retired: 2,
            host_cycles: 1,
            ..PerfCounters::default()
        };
        let c = a + b;
        assert_eq!(c.instructions_retired, 15);
        assert_eq!(c.loads_retired, 3);
        assert_eq!(c.stores_retired, 2);
        assert_eq!(c.total_cycles(), 8);
    }

    #[test]
    fn ipc_guard_against_zero() {
        assert_eq!(PerfCounters::default().ipc(), 0.0);
    }
}
