//! Set-associative cache model with LRU replacement.
//!
//! Used for both the L1 instruction cache (32 KB, 64-byte lines, 8-way,
//! matching the Haswell-generation Xeon E5-1650 v3 of the paper's testbed)
//! and the L1 data cache (same geometry). Only hit/miss behaviour is
//! modelled; the timing model charges a fixed penalty per miss.

/// A set-associative cache with true-LRU replacement.
#[derive(Debug, Clone)]
pub struct Cache {
    /// `tags[set * ways + way]`; `u64::MAX` marks an empty way.
    tags: Vec<u64>,
    /// LRU age per way (0 = most recently used).
    ages: Vec<u8>,
    ways: usize,
    set_count: usize,
    line_shift: u32,
    accesses: u64,
    misses: u64,
}

impl Cache {
    /// Creates a cache of `size_bytes` with `line_bytes` lines and
    /// `ways`-way associativity.
    ///
    /// # Panics
    ///
    /// Panics unless sizes are powers of two and consistent.
    pub fn new(size_bytes: u64, line_bytes: u64, ways: usize) -> Cache {
        assert!(line_bytes.is_power_of_two());
        assert!(size_bytes.is_power_of_two());
        let lines = size_bytes / line_bytes;
        let set_count = (lines as usize) / ways;
        assert!(set_count.is_power_of_two() && set_count > 0);
        Cache {
            tags: vec![u64::MAX; set_count * ways],
            ages: vec![0; set_count * ways],
            ways,
            set_count,
            line_shift: line_bytes.trailing_zeros(),
            accesses: 0,
            misses: 0,
        }
    }

    /// The standard L1 geometry used throughout: 32 KB, 64 B lines, 8-way.
    pub fn l1() -> Cache {
        Cache::new(32 * 1024, 64, 8)
    }

    /// Cache line index of `addr`.
    pub fn line_of(&self, addr: u64) -> u64 {
        addr >> self.line_shift
    }

    /// Line size in bytes.
    pub fn line_bytes(&self) -> u64 {
        1 << self.line_shift
    }

    /// Accesses `addr`, updating LRU state; returns `true` on a hit.
    pub fn access(&mut self, addr: u64) -> bool {
        self.accesses += 1;
        let line = addr >> self.line_shift;
        let set = (line as usize) & (self.set_count - 1);
        let tag = line >> self.set_count.trailing_zeros();
        let base = set * self.ways;
        let slots = &mut self.tags[base..base + self.ways];
        if let Some(hit) = slots.iter().position(|&t| t == tag) {
            let hit_age = self.ages[base + hit];
            for a in &mut self.ages[base..base + self.ways] {
                if *a < hit_age {
                    *a += 1;
                }
            }
            self.ages[base + hit] = 0;
            return true;
        }
        self.misses += 1;
        // Evict the oldest way.
        let victim = (0..self.ways)
            .max_by_key(|&w| self.ages[base + w])
            .expect("ways > 0");
        self.tags[base + victim] = tag;
        for a in &mut self.ages[base..base + self.ways] {
            *a = a.saturating_add(1);
        }
        self.ages[base + victim] = 0;
        false
    }

    /// Records `n` accesses that are statically known to hit the line of
    /// the immediately preceding [`Cache::access`].
    ///
    /// Re-accessing the most-recently-used line is a guaranteed hit whose
    /// LRU update is a no-op (ways are only re-aged when they are younger
    /// than the hit way, and the MRU way has age 0), so the only observable
    /// effect of performing those accesses for real is `accesses += n`. The
    /// threaded engine uses this to batch the fetch accounting of
    /// straight-line code that stays within one line.
    pub fn record_hits(&mut self, n: u64) {
        self.accesses += n;
    }

    /// Total accesses so far.
    pub fn accesses(&self) -> u64 {
        self.accesses
    }

    /// Total misses so far.
    pub fn misses(&self) -> u64 {
        self.misses
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn first_access_misses_second_hits() {
        let mut c = Cache::l1();
        assert!(!c.access(0x1000));
        assert!(c.access(0x1000));
        assert!(c.access(0x103f)); // Same 64-byte line.
        assert!(!c.access(0x1040)); // Next line.
        assert_eq!(c.misses(), 2);
        assert_eq!(c.accesses(), 4);
    }

    #[test]
    fn record_hits_matches_repeated_mru_access() {
        // Replaying the same line through access() and summarizing it via
        // record_hits() must leave identical state and stats.
        let mut real = Cache::l1();
        let mut batched = Cache::l1();
        for c in [&mut real, &mut batched] {
            c.access(0x1000);
            c.access(0x2040); // Different set: does not disturb 0x1000's set.
            c.access(0x1008);
        }
        for _ in 0..5 {
            assert!(real.access(0x1010));
        }
        batched.record_hits(5);
        assert_eq!(real.accesses(), batched.accesses());
        assert_eq!(real.misses(), batched.misses());
        // Future behaviour is identical too (same LRU state).
        for a in [0x1000u64, 0x2040, 0x9000, 0x1000] {
            assert_eq!(real.access(a), batched.access(a), "addr {a:#x}");
        }
        assert_eq!(real.misses(), batched.misses());
    }

    #[test]
    fn small_working_set_fits() {
        // 8 KB working set fits a 32 KB cache: after one warm pass, no
        // further misses.
        let mut c = Cache::l1();
        for a in (0..8192u64).step_by(64) {
            c.access(a);
        }
        let warm = c.misses();
        for _ in 0..10 {
            for a in (0..8192u64).step_by(64) {
                assert!(c.access(a));
            }
        }
        assert_eq!(c.misses(), warm);
    }

    #[test]
    fn large_working_set_thrashes() {
        // 64 KB streamed repeatedly through a 32 KB cache misses every
        // line with LRU.
        let mut c = Cache::l1();
        for _ in 0..4 {
            for a in (0..65536u64).step_by(64) {
                c.access(a);
            }
        }
        assert_eq!(c.misses(), c.accesses());
    }

    #[test]
    fn lru_keeps_hot_line() {
        let mut c = Cache::new(1024, 64, 2); // 8 sets, 2 ways.
                                             // Two lines in the same set; keep touching the first.
        let set_stride = 64 * 8;
        c.access(0); // miss
        c.access(set_stride); // miss, same set
        c.access(0); // hit, refresh LRU
        c.access(2 * set_stride); // miss, evicts line `set_stride`
        assert!(c.access(0), "hot line survived");
        assert!(!c.access(set_stride), "cold line evicted");
    }

    #[test]
    fn associativity_prevents_conflicts() {
        // 8 lines mapping to one set of an 8-way cache all fit.
        let mut c = Cache::l1(); // 64 sets.
        let set_stride = 64 * 64;
        for i in 0..8u64 {
            c.access(i * set_stride);
        }
        for i in 0..8u64 {
            assert!(c.access(i * set_stride));
        }
    }
}
