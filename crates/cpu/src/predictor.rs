//! Bimodal branch predictor.
//!
//! A 4096-entry table of 2-bit saturating counters indexed by branch
//! address. Unconditional branches, calls, and returns are assumed
//! perfectly predicted (BTB and return-stack-buffer hits), matching the
//! behaviour that matters for the paper's analysis: the *extra conditional
//! branches* WebAssembly code executes for safety checks are usually
//! well-predicted (they never fail), so they cost issue slots and I-cache
//! space rather than flushes — which is exactly what this model charges.

/// Two-bit saturating-counter bimodal predictor.
#[derive(Debug, Clone)]
pub struct BranchPredictor {
    counters: Vec<u8>,
    mispredicts: u64,
    lookups: u64,
}

impl Default for BranchPredictor {
    fn default() -> Self {
        BranchPredictor::new(4096)
    }
}

impl BranchPredictor {
    /// Creates a predictor with `entries` counters (must be a power of two).
    ///
    /// # Panics
    ///
    /// Panics if `entries` is not a power of two.
    pub fn new(entries: usize) -> BranchPredictor {
        assert!(entries.is_power_of_two());
        BranchPredictor {
            // Initialize weakly taken: loops predict well immediately.
            counters: vec![2; entries],
            mispredicts: 0,
            lookups: 0,
        }
    }

    /// Records a conditional branch at `addr` that resolved to `taken`;
    /// returns `true` if it was mispredicted.
    pub fn predict_and_update(&mut self, addr: u64, taken: bool) -> bool {
        self.lookups += 1;
        let idx = (addr as usize) & (self.counters.len() - 1);
        let c = &mut self.counters[idx];
        let predicted_taken = *c >= 2;
        if taken {
            *c = (*c + 1).min(3);
        } else {
            *c = c.saturating_sub(1);
        }
        let wrong = predicted_taken != taken;
        if wrong {
            self.mispredicts += 1;
        }
        wrong
    }

    /// Number of mispredictions so far.
    pub fn mispredicts(&self) -> u64 {
        self.mispredicts
    }

    /// Number of conditional branches observed.
    pub fn lookups(&self) -> u64 {
        self.lookups
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn loop_branch_predicts_well() {
        let mut p = BranchPredictor::default();
        // A loop back-edge taken 99 times then not taken once.
        let mut wrong = 0;
        for i in 0..100 {
            if p.predict_and_update(0x40, i != 99) {
                wrong += 1;
            }
        }
        // Only the final fall-through should mispredict.
        assert_eq!(wrong, 1);
    }

    #[test]
    fn alternating_branch_predicts_poorly() {
        let mut p = BranchPredictor::default();
        let mut wrong = 0;
        for i in 0..1000 {
            if p.predict_and_update(0x80, i % 2 == 0) {
                wrong += 1;
            }
        }
        assert!(wrong > 300, "alternating pattern defeats bimodal: {wrong}");
    }

    #[test]
    fn never_taken_check_branch_settles() {
        // Safety-check branches (stack overflow, indirect-call checks)
        // never fire; after warm-up they predict perfectly.
        let mut p = BranchPredictor::default();
        for _ in 0..10 {
            p.predict_and_update(0x100, false);
        }
        let before = p.mispredicts();
        for _ in 0..1000 {
            p.predict_and_update(0x100, false);
        }
        assert_eq!(p.mispredicts(), before);
    }

    #[test]
    fn distinct_addresses_use_distinct_counters() {
        let mut p = BranchPredictor::new(16);
        // Address 0 always taken, address 1 never taken; both settle.
        for _ in 0..8 {
            p.predict_and_update(0, true);
            p.predict_and_update(1, false);
        }
        let before = p.mispredicts();
        for _ in 0..100 {
            assert!(!p.predict_and_update(0, true));
            assert!(!p.predict_and_update(1, false));
        }
        assert_eq!(p.mispredicts(), before);
    }
}
