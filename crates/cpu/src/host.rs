//! Host-environment interface.
//!
//! A [`Inst::CallHost`](wasmperf_isa::Inst::CallHost) instruction transfers
//! control to the host — in the full system, the Browsix kernel. The host
//! receives the six System V argument registers and mutable access to the
//! program's memory, and returns a value for `rax` plus the number of
//! cycles its work should be charged (kernel time, kept separate from user
//! cycles for the paper's Figure 4).

use crate::mem::Memory;
use wasmperf_isa::TrapKind;

/// Result of a host call.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HostOutcome {
    /// Return `value` in `rax` and continue, charging `kernel_cycles`.
    Ret {
        /// Value placed in `rax`.
        value: u64,
        /// Cycles charged to the host (kernel) side.
        kernel_cycles: u64,
    },
    /// Terminate the program with the given exit code.
    Exit {
        /// Process exit code.
        code: i32,
        /// Cycles charged to the host (kernel) side.
        kernel_cycles: u64,
    },
}

/// A host environment servicing [`wasmperf_isa::Inst::CallHost`].
pub trait HostEnv {
    /// Services host function `id` with System V argument registers `args`.
    fn call(&mut self, id: u32, args: &[u64; 6], mem: &mut Memory)
        -> Result<HostOutcome, TrapKind>;
}

/// A host that rejects every call; used for pure-compute programs.
#[derive(Debug, Default, Clone, Copy)]
pub struct NullHost;

impl HostEnv for NullHost {
    fn call(
        &mut self,
        _id: u32,
        _args: &[u64; 6],
        _mem: &mut Memory,
    ) -> Result<HostOutcome, TrapKind> {
        Err(TrapKind::Abort)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn null_host_rejects() {
        let mut h = NullHost;
        let mut m = Memory::new(16);
        assert_eq!(h.call(0, &[0; 6], &mut m).unwrap_err(), TrapKind::Abort);
    }
}
