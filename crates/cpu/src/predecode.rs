//! Predecoded micro-op representation of a [`Module`].
//!
//! The legacy interpreter re-derives, for *every retired instruction*, the
//! instruction class, the issue cost, the encoded length (which allocates a
//! register-list `Vec` per call), the I-cache line-straddle test, and — for
//! branches — the label resolution. All of that is a pure function of the
//! module and the timing model, so [`Predecoded`] computes it exactly once
//! per function at machine-construction time and bakes the results into a
//! flat stream of [`UOp`]s.
//!
//! The stream is additionally partitioned into basic blocks
//! ([`FuncPre::block_len`]) so the hot loop can charge fuel per block edge
//! instead of per instruction. Block boundaries fall after every
//! control-transfer instruction ([`Inst::ends_block`]) and before every
//! branch target, so control only ever enters a block at its leader.
//!
//! Predecoding is a *representation* change, not a semantics change: the
//! executor driven by this stream performs the same cache probes, counter
//! updates, and architectural effects in the same order as the legacy
//! per-instruction path. `machine.rs` keeps both loops and the differential
//! tests hold them byte-identical.

use crate::timing::TimingModel;
use wasmperf_isa::inst::FOperand;
use wasmperf_isa::size::encoded_len;
use wasmperf_isa::{
    AluOp, Cc, FAluOp, FPrec, FuncId, Function, Inst, InstClass, MemRef, Module, Operand, Reg,
    RoundMode, TrapKind, Width, Xmm,
};

/// A micro-operation: one [`Inst`] with every run-loop-invariant datum
/// precomputed. Branch targets are resolved instruction indices.
#[derive(Debug, Clone)]
pub struct UOp {
    /// Code address of the instruction (as assigned by
    /// [`Module::assign_addresses`]).
    pub addr: u64,
    /// Address of the last encoded byte (`addr + encoded_len - 1`).
    pub last_byte: u64,
    /// Whether the encoding crosses an I-cache line boundary, i.e. the
    /// fetch needs a second cache probe.
    pub straddles: bool,
    /// Issue cost in 1/64-cycle fixed-point units.
    pub cost: u32,
    /// Counter classification.
    pub class: InstClass,
    /// The operation itself, with operand shapes pre-resolved.
    pub op: MOp,
}

/// [`Inst`] with branch labels replaced by resolved instruction indices.
///
/// All payloads are `Copy` (registers, immediates, [`MemRef`]s with their
/// displacement constants already folded), so dispatch never chases back
/// into the [`Module`].
#[derive(Debug, Clone, Copy)]
#[allow(missing_docs)]
pub enum MOp {
    Mov {
        dst: Operand,
        src: Operand,
        width: Width,
    },
    Movzx {
        dst: Reg,
        src: Operand,
        from: Width,
    },
    Movsx {
        dst: Reg,
        src: Operand,
        from: Width,
        to: Width,
    },
    Lea {
        dst: Reg,
        mem: MemRef,
        width: Width,
    },
    Alu {
        op: AluOp,
        dst: Operand,
        src: Operand,
        width: Width,
    },
    Neg {
        dst: Operand,
        width: Width,
    },
    Not {
        dst: Operand,
        width: Width,
    },
    Imul {
        dst: Reg,
        src: Operand,
        width: Width,
    },
    Imul3 {
        dst: Reg,
        src: Operand,
        imm: i64,
        width: Width,
    },
    Cqo {
        width: Width,
    },
    Div {
        src: Operand,
        signed: bool,
        width: Width,
    },
    Cmp {
        lhs: Operand,
        rhs: Operand,
        width: Width,
    },
    Test {
        lhs: Operand,
        rhs: Operand,
        width: Width,
    },
    Cmov {
        cc: Cc,
        dst: Reg,
        src: Operand,
        width: Width,
    },
    Setcc {
        cc: Cc,
        dst: Reg,
    },
    Lzcnt {
        dst: Reg,
        src: Operand,
        width: Width,
    },
    Tzcnt {
        dst: Reg,
        src: Operand,
        width: Width,
    },
    Popcnt {
        dst: Reg,
        src: Operand,
        width: Width,
    },
    /// `jmp` with the label resolved to an instruction index.
    Jmp {
        target: u32,
    },
    /// `jcc` with the label resolved to an instruction index.
    Jcc {
        cc: Cc,
        target: u32,
    },
    Call {
        target: FuncId,
    },
    CallIndirect {
        target: Operand,
    },
    CallHost {
        id: u32,
    },
    Push {
        src: Operand,
    },
    Pop {
        dst: Reg,
    },
    Ret,
    MovF {
        dst: FOperand,
        src: FOperand,
        prec: FPrec,
    },
    AluF {
        op: FAluOp,
        dst: Xmm,
        src: FOperand,
        prec: FPrec,
    },
    RoundF {
        dst: Xmm,
        src: FOperand,
        prec: FPrec,
        mode: RoundMode,
    },
    AbsF {
        dst: Xmm,
        src: FOperand,
        prec: FPrec,
    },
    SqrtF {
        dst: Xmm,
        src: FOperand,
        prec: FPrec,
    },
    Ucomis {
        lhs: Xmm,
        rhs: FOperand,
        prec: FPrec,
    },
    CvtIntToF {
        dst: Xmm,
        src: Operand,
        width: Width,
        prec: FPrec,
        unsigned: bool,
    },
    CvtFToInt {
        dst: Reg,
        src: FOperand,
        width: Width,
        prec: FPrec,
        unsigned: bool,
    },
    CvtFToF {
        dst: Xmm,
        src: FOperand,
        from: FPrec,
    },
    MovGprToXmm {
        dst: Xmm,
        src: Reg,
        width: Width,
    },
    MovXmmToGpr {
        dst: Reg,
        src: Xmm,
        width: Width,
    },
    Trap {
        kind: TrapKind,
    },
    Nop,
}

impl MOp {
    /// Lowers one instruction, resolving branch labels against `f`.
    ///
    /// # Panics
    ///
    /// Panics (like [`Function::resolve`]) if a branch references an
    /// unbound label; the legacy path would panic on first execution of
    /// that branch, predecode surfaces the malformed module at load time.
    fn lower(inst: &Inst, f: &Function) -> MOp {
        match *inst {
            Inst::Mov { dst, src, width } => MOp::Mov { dst, src, width },
            Inst::Movzx { dst, src, from } => MOp::Movzx { dst, src, from },
            Inst::Movsx { dst, src, from, to } => MOp::Movsx { dst, src, from, to },
            Inst::Lea { dst, mem, width } => MOp::Lea { dst, mem, width },
            Inst::Alu {
                op,
                dst,
                src,
                width,
            } => MOp::Alu {
                op,
                dst,
                src,
                width,
            },
            Inst::Neg { dst, width } => MOp::Neg { dst, width },
            Inst::Not { dst, width } => MOp::Not { dst, width },
            Inst::Imul { dst, src, width } => MOp::Imul { dst, src, width },
            Inst::Imul3 {
                dst,
                src,
                imm,
                width,
            } => MOp::Imul3 {
                dst,
                src,
                imm,
                width,
            },
            Inst::Cqo { width } => MOp::Cqo { width },
            Inst::Div { src, signed, width } => MOp::Div { src, signed, width },
            Inst::Cmp { lhs, rhs, width } => MOp::Cmp { lhs, rhs, width },
            Inst::Test { lhs, rhs, width } => MOp::Test { lhs, rhs, width },
            Inst::Cmov {
                cc,
                dst,
                src,
                width,
            } => MOp::Cmov {
                cc,
                dst,
                src,
                width,
            },
            Inst::Setcc { cc, dst } => MOp::Setcc { cc, dst },
            Inst::Lzcnt { dst, src, width } => MOp::Lzcnt { dst, src, width },
            Inst::Tzcnt { dst, src, width } => MOp::Tzcnt { dst, src, width },
            Inst::Popcnt { dst, src, width } => MOp::Popcnt { dst, src, width },
            Inst::Jmp { target } => MOp::Jmp {
                target: f.resolve(target) as u32,
            },
            Inst::Jcc { cc, target } => MOp::Jcc {
                cc,
                target: f.resolve(target) as u32,
            },
            Inst::Call { target } => MOp::Call { target },
            Inst::CallIndirect { target } => MOp::CallIndirect { target },
            Inst::CallHost { id } => MOp::CallHost { id },
            Inst::Push { src } => MOp::Push { src },
            Inst::Pop { dst } => MOp::Pop { dst },
            Inst::Ret => MOp::Ret,
            Inst::MovF { dst, src, prec } => MOp::MovF { dst, src, prec },
            Inst::AluF { op, dst, src, prec } => MOp::AluF { op, dst, src, prec },
            Inst::RoundF {
                dst,
                src,
                prec,
                mode,
            } => MOp::RoundF {
                dst,
                src,
                prec,
                mode,
            },
            Inst::AbsF { dst, src, prec } => MOp::AbsF { dst, src, prec },
            Inst::SqrtF { dst, src, prec } => MOp::SqrtF { dst, src, prec },
            Inst::Ucomis { lhs, rhs, prec } => MOp::Ucomis { lhs, rhs, prec },
            Inst::CvtIntToF {
                dst,
                src,
                width,
                prec,
                unsigned,
            } => MOp::CvtIntToF {
                dst,
                src,
                width,
                prec,
                unsigned,
            },
            Inst::CvtFToInt {
                dst,
                src,
                width,
                prec,
                unsigned,
            } => MOp::CvtFToInt {
                dst,
                src,
                width,
                prec,
                unsigned,
            },
            Inst::CvtFToF { dst, src, from } => MOp::CvtFToF { dst, src, from },
            Inst::MovGprToXmm { dst, src, width } => MOp::MovGprToXmm { dst, src, width },
            Inst::MovXmmToGpr { dst, src, width } => MOp::MovXmmToGpr { dst, src, width },
            Inst::Trap { kind } => MOp::Trap { kind },
            Inst::Nop => MOp::Nop,
        }
    }
}

/// One function's predecoded stream.
#[derive(Debug, Clone)]
pub struct FuncPre {
    /// Micro-ops, index-aligned with the function's instructions.
    pub uops: Vec<UOp>,
    /// `block_len[pc]` is the length of the basic block starting at `pc`
    /// when `pc` is a block leader, and 0 otherwise. The executor only
    /// consults leader entries: control always enters blocks at the top.
    pub block_len: Vec<u32>,
}

impl FuncPre {
    fn lower(f: &Function, timing: &TimingModel, line_bytes: u64) -> FuncPre {
        let n = f.insts.len();
        let mut uops = Vec::with_capacity(n);
        for (i, inst) in f.insts.iter().enumerate() {
            let addr = f.inst_addrs[i];
            let last_byte = addr + encoded_len(inst) as u64 - 1;
            let class = inst.class();
            uops.push(UOp {
                addr,
                last_byte,
                straddles: last_byte / line_bytes != addr / line_bytes,
                cost: timing.issue_cost(class),
                class,
                op: MOp::lower(inst, f),
            });
        }

        let mut leader = vec![false; n];
        if n > 0 {
            leader[0] = true;
        }
        for (i, inst) in f.insts.iter().enumerate() {
            if inst.ends_block() && i + 1 < n {
                leader[i + 1] = true;
            }
            match inst {
                Inst::Jmp { target } | Inst::Jcc { target, .. } => {
                    // A label may legally bind to `n` (fall off the end);
                    // the executor's bounds check handles that case.
                    let t = f.resolve(*target);
                    if t < n {
                        leader[t] = true;
                    }
                }
                _ => {}
            }
        }
        let mut block_len = vec![0u32; n];
        let mut i = 0;
        while i < n {
            let mut j = i + 1;
            while j < n && !leader[j] {
                j += 1;
            }
            block_len[i] = (j - i) as u32;
            i = j;
        }
        FuncPre { uops, block_len }
    }
}

/// The predecoded form of a whole [`Module`] under one [`TimingModel`].
#[derive(Debug, Clone)]
pub struct Predecoded {
    /// Per-function streams, index-aligned with `module.funcs`.
    pub funcs: Vec<FuncPre>,
}

impl Predecoded {
    /// Lowers every function of `module`. `line_bytes` is the I-cache line
    /// size used to precompute fetch-straddle flags.
    ///
    /// # Panics
    ///
    /// Panics if the module's instruction addresses have not been assigned
    /// or a branch references an unbound label.
    pub fn new(module: &Module, timing: &TimingModel, line_bytes: u64) -> Predecoded {
        assert!(line_bytes.is_power_of_two());
        Predecoded {
            funcs: module
                .funcs
                .iter()
                .map(|f| FuncPre::lower(f, timing, line_bytes))
                .collect(),
        }
    }
}

#[cfg(test)]
pub(crate) mod tests {
    use super::*;
    use wasmperf_isa::AsmBuilder;

    fn module_of(funcs: Vec<Function>) -> Module {
        let mut m = Module {
            funcs,
            table: vec![],
            entry: Some(FuncId(0)),
            memory_size: 4096,
            data: vec![],
            sandbox: None,
        };
        m.assign_addresses();
        m
    }

    /// One instance of every `Inst` variant, in a module that would also
    /// execute (labels bound, function ids valid). Shared with the machine
    /// tests' cross-mode differential.
    pub(crate) fn every_variant_module() -> Module {
        use wasmperf_isa::inst::FOperand::Xmm as FX;
        let mem = MemRef::base_disp(Reg::Rdi, 8);
        let mut b = AsmBuilder::new("all");
        let skip = b.new_label();
        let join = b.new_label();
        b.emit(Inst::Mov {
            dst: Operand::Reg(Reg::Rax),
            src: Operand::Imm(1),
            width: Width::W64,
        });
        b.emit(Inst::Movzx {
            dst: Reg::Rax,
            src: Operand::Reg(Reg::Rcx),
            from: Width::W8,
        });
        b.emit(Inst::Movsx {
            dst: Reg::Rax,
            src: Operand::Reg(Reg::Rcx),
            from: Width::W8,
            to: Width::W64,
        });
        b.emit(Inst::Lea {
            dst: Reg::Rax,
            mem,
            width: Width::W64,
        });
        b.emit(Inst::Alu {
            op: AluOp::Add,
            dst: Operand::Mem(mem),
            src: Operand::Imm(1),
            width: Width::W32,
        });
        b.emit(Inst::Neg {
            dst: Operand::Reg(Reg::Rax),
            width: Width::W64,
        });
        b.emit(Inst::Not {
            dst: Operand::Reg(Reg::Rax),
            width: Width::W64,
        });
        b.emit(Inst::Imul {
            dst: Reg::Rax,
            src: Operand::Reg(Reg::Rcx),
            width: Width::W64,
        });
        b.emit(Inst::Imul3 {
            dst: Reg::Rax,
            src: Operand::Reg(Reg::Rcx),
            imm: 3,
            width: Width::W64,
        });
        b.emit(Inst::Cqo { width: Width::W64 });
        b.emit(Inst::Div {
            src: Operand::Reg(Reg::Rcx),
            signed: false,
            width: Width::W64,
        });
        b.emit(Inst::Cmp {
            lhs: Operand::Reg(Reg::Rax),
            rhs: Operand::Imm(0),
            width: Width::W64,
        });
        b.emit(Inst::Test {
            lhs: Operand::Reg(Reg::Rax),
            rhs: Operand::Reg(Reg::Rax),
            width: Width::W64,
        });
        b.emit(Inst::Cmov {
            cc: Cc::E,
            dst: Reg::Rax,
            src: Operand::Reg(Reg::Rcx),
            width: Width::W64,
        });
        b.emit(Inst::Setcc {
            cc: Cc::Ne,
            dst: Reg::Rax,
        });
        b.emit(Inst::Lzcnt {
            dst: Reg::Rax,
            src: Operand::Reg(Reg::Rcx),
            width: Width::W64,
        });
        b.emit(Inst::Tzcnt {
            dst: Reg::Rax,
            src: Operand::Reg(Reg::Rcx),
            width: Width::W64,
        });
        b.emit(Inst::Popcnt {
            dst: Reg::Rax,
            src: Operand::Reg(Reg::Rcx),
            width: Width::W64,
        });
        b.emit(Inst::Jmp { target: skip });
        b.bind(skip);
        b.emit(Inst::Jcc {
            cc: Cc::Ne,
            target: join,
        });
        b.emit(Inst::Call { target: FuncId(1) });
        b.emit(Inst::CallIndirect {
            target: Operand::Reg(Reg::Rcx),
        });
        b.emit(Inst::CallHost { id: 0 });
        b.bind(join);
        b.emit(Inst::Push {
            src: Operand::Reg(Reg::Rax),
        });
        b.emit(Inst::Pop { dst: Reg::Rax });
        b.emit(Inst::MovF {
            dst: FX(Xmm(0)),
            src: FX(Xmm(1)),
            prec: FPrec::F64,
        });
        b.emit(Inst::AluF {
            op: FAluOp::Mul,
            dst: Xmm(0),
            src: FX(Xmm(1)),
            prec: FPrec::F64,
        });
        b.emit(Inst::RoundF {
            dst: Xmm(0),
            src: FX(Xmm(1)),
            prec: FPrec::F64,
            mode: RoundMode::Nearest,
        });
        b.emit(Inst::AbsF {
            dst: Xmm(0),
            src: FX(Xmm(1)),
            prec: FPrec::F64,
        });
        b.emit(Inst::SqrtF {
            dst: Xmm(0),
            src: FX(Xmm(1)),
            prec: FPrec::F64,
        });
        b.emit(Inst::Ucomis {
            lhs: Xmm(0),
            rhs: FX(Xmm(1)),
            prec: FPrec::F64,
        });
        b.emit(Inst::CvtIntToF {
            dst: Xmm(0),
            src: Operand::Reg(Reg::Rax),
            width: Width::W64,
            prec: FPrec::F64,
            unsigned: false,
        });
        b.emit(Inst::CvtFToInt {
            dst: Reg::Rax,
            src: FX(Xmm(0)),
            width: Width::W64,
            prec: FPrec::F64,
            unsigned: false,
        });
        b.emit(Inst::CvtFToF {
            dst: Xmm(0),
            src: FX(Xmm(1)),
            from: FPrec::F32,
        });
        b.emit(Inst::MovGprToXmm {
            dst: Xmm(0),
            src: Reg::Rax,
            width: Width::W64,
        });
        b.emit(Inst::MovXmmToGpr {
            dst: Reg::Rax,
            src: Xmm(0),
            width: Width::W64,
        });
        b.emit(Inst::Trap {
            kind: TrapKind::Unreachable,
        });
        b.emit(Inst::Nop);
        b.emit(Inst::Ret);

        let mut callee = AsmBuilder::new("callee");
        callee.emit(Inst::Ret);
        module_of(vec![b.finish(), callee.finish()])
    }

    #[test]
    fn every_variant_lowers_with_exact_metadata() {
        let m = every_variant_module();
        let t = TimingModel::default();
        let pre = Predecoded::new(&m, &t, 64);
        assert_eq!(pre.funcs.len(), m.funcs.len());
        for (f, fp) in m.funcs.iter().zip(&pre.funcs) {
            assert_eq!(fp.uops.len(), f.insts.len());
            assert_eq!(fp.block_len.len(), f.insts.len());
            for (i, (inst, u)) in f.insts.iter().zip(&fp.uops).enumerate() {
                assert_eq!(u.addr, f.inst_addrs[i]);
                assert_eq!(u.last_byte, u.addr + encoded_len(inst) as u64 - 1);
                assert_eq!(u.straddles, u.last_byte / 64 != u.addr / 64);
                assert_eq!(u.class, inst.class());
                assert_eq!(u.cost, t.issue_cost(inst.class()));
            }
        }
    }

    #[test]
    fn branch_targets_resolve_to_bound_offsets() {
        let m = every_variant_module();
        let f = &m.funcs[0];
        let pre = Predecoded::new(&m, &TimingModel::default(), 64);
        for (i, u) in pre.funcs[0].uops.iter().enumerate() {
            match (&f.insts[i], &u.op) {
                (Inst::Jmp { target }, MOp::Jmp { target: t }) => {
                    assert_eq!(*t as usize, f.resolve(*target));
                }
                (Inst::Jcc { target, .. }, MOp::Jcc { target: t, .. }) => {
                    assert_eq!(*t as usize, f.resolve(*target));
                }
                _ => {}
            }
        }
    }

    #[test]
    fn blocks_partition_the_function() {
        let m = every_variant_module();
        let pre = Predecoded::new(&m, &TimingModel::default(), 64);
        for fp in &pre.funcs {
            let n = fp.uops.len();
            let mut pc = 0;
            while pc < n {
                let len = fp.block_len[pc] as usize;
                assert!(len > 0, "leader at {pc} has zero length");
                // Interior instructions are not leaders.
                for k in pc + 1..pc + len {
                    assert_eq!(fp.block_len[k], 0, "interior {k} marked leader");
                }
                // Only the last instruction may end the block early.
                for k in pc..pc + len - 1 {
                    assert!(
                        !matches!(
                            fp.uops[k].op,
                            MOp::Jmp { .. }
                                | MOp::Jcc { .. }
                                | MOp::Call { .. }
                                | MOp::CallIndirect { .. }
                                | MOp::Ret
                        ),
                        "control-transfer uop {k} in block interior"
                    );
                }
                pc += len;
            }
            assert_eq!(pc, n, "blocks tile the function exactly");
        }
    }

    #[test]
    fn branch_targets_are_block_leaders() {
        let m = every_variant_module();
        let pre = Predecoded::new(&m, &TimingModel::default(), 64);
        for fp in &pre.funcs {
            for u in &fp.uops {
                let t = match u.op {
                    MOp::Jmp { target } => target as usize,
                    MOp::Jcc { target, .. } => target as usize,
                    _ => continue,
                };
                if t < fp.uops.len() {
                    assert!(fp.block_len[t] > 0, "branch target {t} is not a leader");
                }
            }
        }
    }

    #[test]
    fn straddle_flag_matches_address_arithmetic() {
        // Force a known layout: addresses are assigned from 0x1000 with
        // deterministic lengths, so at least one instruction in a long
        // straight-line function must straddle a 64-byte line, and its
        // flag must agree with a direct line-index comparison.
        let mut b = AsmBuilder::new("line");
        for i in 0..64 {
            b.emit(Inst::Mov {
                dst: Operand::Reg(Reg::Rax),
                src: Operand::Imm(i),
                width: Width::W64,
            });
        }
        b.emit(Inst::Ret);
        let m = module_of(vec![b.finish()]);
        let pre = Predecoded::new(&m, &TimingModel::default(), 64);
        let straddlers = pre.funcs[0].uops.iter().filter(|u| u.straddles).count();
        assert!(straddlers > 0, "long function must cross a line somewhere");
        for u in &pre.funcs[0].uops {
            assert_eq!(u.straddles, u.last_byte / 64 != u.addr / 64);
        }
    }
}
