//! A minimal JSON value, renderer, and parser for the result store.
//!
//! The build environment is offline (no serde), and the store only needs
//! flat records of numbers, strings, and small arrays — so this is a
//! deliberately small, total implementation: every value [`render`]ed by
//! this module parses back to an equal value. Numbers are `f64`; integral
//! values up to 2^53 (far above any simulator counter, which is bounded by
//! the 2×10^10 execution fuel) round-trip exactly and render without a
//! decimal point.
//!
//! [`render`]: Json::render

use std::fmt::Write as _;

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any number.
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object; insertion order is preserved.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Convenience constructor for integer counters.
    pub fn u64(v: u64) -> Json {
        Json::Num(v as f64)
    }

    /// Object field lookup.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as a string, if it is one.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as a float, if it is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The value as an unsigned integer, if it is an integral number.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(n) if *n >= 0.0 && n.fract() == 0.0 && *n <= 9.007_199_254_740_992e15 => {
                Some(*n as u64)
            }
            _ => None,
        }
    }

    /// The value as an array, if it is one.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Renders to compact JSON text (no whitespace, one line).
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.render_into(&mut out);
        out
    }

    fn render_into(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Num(n) => {
                if n.fract() == 0.0 && n.abs() < 9.007_199_254_740_992e15 {
                    let _ = write!(out, "{}", *n as i64);
                } else {
                    // {:?} prints the shortest representation that
                    // round-trips through f64 parsing.
                    let _ = write!(out, "{n:?}");
                }
            }
            Json::Str(s) => {
                out.push('"');
                out.push_str(&escape(s));
                out.push('"');
            }
            Json::Arr(items) => {
                out.push('[');
                for (i, v) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    v.render_into(out);
                }
                out.push(']');
            }
            Json::Obj(fields) => {
                out.push('{');
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('"');
                    out.push_str(&escape(k));
                    out.push_str("\":");
                    v.render_into(out);
                }
                out.push('}');
            }
        }
    }

    /// Parses JSON text. Rejects trailing garbage.
    pub fn parse(s: &str) -> Result<Json, String> {
        let bytes = s.as_bytes();
        let mut pos = 0;
        let v = parse_value(bytes, &mut pos)?;
        skip_ws(bytes, &mut pos);
        if pos != bytes.len() {
            return Err(format!("trailing data at byte {pos}"));
        }
        Ok(v)
    }
}

/// JSON string escaping (mirrors `wasmperf_trace::export::json_escape`).
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

fn skip_ws(b: &[u8], pos: &mut usize) {
    while *pos < b.len() && matches!(b[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(b: &[u8], pos: &mut usize, lit: &str) -> Result<(), String> {
    if b[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(())
    } else {
        Err(format!("expected `{lit}` at byte {pos}"))
    }
}

fn parse_value(b: &[u8], pos: &mut usize) -> Result<Json, String> {
    skip_ws(b, pos);
    match b.get(*pos) {
        None => Err("unexpected end of input".into()),
        Some(b'n') => expect(b, pos, "null").map(|_| Json::Null),
        Some(b't') => expect(b, pos, "true").map(|_| Json::Bool(true)),
        Some(b'f') => expect(b, pos, "false").map(|_| Json::Bool(false)),
        Some(b'"') => parse_string(b, pos).map(Json::Str),
        Some(b'[') => {
            *pos += 1;
            let mut items = Vec::new();
            skip_ws(b, pos);
            if b.get(*pos) == Some(&b']') {
                *pos += 1;
                return Ok(Json::Arr(items));
            }
            loop {
                items.push(parse_value(b, pos)?);
                skip_ws(b, pos);
                match b.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b']') => {
                        *pos += 1;
                        return Ok(Json::Arr(items));
                    }
                    _ => return Err(format!("expected `,` or `]` at byte {pos}")),
                }
            }
        }
        Some(b'{') => {
            *pos += 1;
            let mut fields = Vec::new();
            skip_ws(b, pos);
            if b.get(*pos) == Some(&b'}') {
                *pos += 1;
                return Ok(Json::Obj(fields));
            }
            loop {
                skip_ws(b, pos);
                let key = parse_string(b, pos)?;
                skip_ws(b, pos);
                expect(b, pos, ":")?;
                let value = parse_value(b, pos)?;
                fields.push((key, value));
                skip_ws(b, pos);
                match b.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b'}') => {
                        *pos += 1;
                        return Ok(Json::Obj(fields));
                    }
                    _ => return Err(format!("expected `,` or `}}` at byte {pos}")),
                }
            }
        }
        Some(_) => parse_number(b, pos).map(Json::Num),
    }
}

fn parse_string(b: &[u8], pos: &mut usize) -> Result<String, String> {
    if b.get(*pos) != Some(&b'"') {
        return Err(format!("expected string at byte {pos}"));
    }
    *pos += 1;
    let mut out = String::new();
    loop {
        match b.get(*pos) {
            None => return Err("unterminated string".into()),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match b.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'u') => {
                        let hi = hex4(b, *pos + 1)?;
                        *pos += 4;
                        if (0xD800..0xDC00).contains(&hi) {
                            // High surrogate: a following `\uXXXX` low
                            // surrogate completes the UTF-16 pair
                            // (RFC 8259 §7); anything else leaves the high
                            // half unpaired.
                            let lo = (b.get(*pos + 1) == Some(&b'\\')
                                && b.get(*pos + 2) == Some(&b'u'))
                            .then(|| hex4(b, *pos + 3).ok())
                            .flatten();
                            match lo {
                                Some(lo) if (0xDC00..0xE000).contains(&lo) => {
                                    let code = 0x10000
                                        + ((u32::from(hi) - 0xD800) << 10)
                                        + (u32::from(lo) - 0xDC00);
                                    out.push(
                                        char::from_u32(code).expect("supplementary-plane scalar"),
                                    );
                                    *pos += 6;
                                }
                                _ => out.push('\u{fffd}'),
                            }
                        } else if (0xDC00..0xE000).contains(&hi) {
                            // A low surrogate with no preceding high half.
                            out.push('\u{fffd}');
                        } else {
                            out.push(char::from_u32(u32::from(hi)).expect("BMP non-surrogate"));
                        }
                    }
                    _ => return Err(format!("bad escape at byte {pos}")),
                }
                *pos += 1;
            }
            Some(_) => {
                // Consume one UTF-8 scalar (input is a &str, so this is
                // always well-formed).
                let rest = std::str::from_utf8(&b[*pos..]).map_err(|e| e.to_string())?;
                let c = rest.chars().next().unwrap();
                out.push(c);
                *pos += c.len_utf8();
            }
        }
    }
}

/// Four hex digits starting at `b[at]`, as one UTF-16 code unit.
fn hex4(b: &[u8], at: usize) -> Result<u16, String> {
    let hex = b
        .get(at..at + 4)
        .and_then(|h| std::str::from_utf8(h).ok())
        .ok_or("truncated \\u escape")?;
    u16::from_str_radix(hex, 16).map_err(|_| "bad \\u escape digits".to_string())
}

fn parse_number(b: &[u8], pos: &mut usize) -> Result<f64, String> {
    let start = *pos;
    while *pos < b.len() && matches!(b[*pos], b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E') {
        *pos += 1;
    }
    std::str::from_utf8(&b[start..*pos])
        .ok()
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| format!("bad number at byte {start}"))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(v: &Json) {
        let text = v.render();
        assert_eq!(&Json::parse(&text).expect(&text), v, "{text}");
    }

    #[test]
    fn scalar_roundtrips() {
        for v in [
            Json::Null,
            Json::Bool(true),
            Json::Bool(false),
            Json::Num(0.0),
            Json::Num(-17.0),
            Json::Num(0.25),
            Json::Num(1e300),
            Json::u64(20_000_000_000),
            Json::Str("plain".into()),
            Json::Str("quotes \" and \\ and \n tabs \t and unicode ünïcødé".into()),
            Json::Str("control \u{1} char".into()),
        ] {
            roundtrip(&v);
        }
    }

    #[test]
    fn nested_roundtrip() {
        let v = Json::Obj(vec![
            ("key".into(), Json::Str("0123abcd".into())),
            (
                "outputs".into(),
                Json::Arr(vec![Json::Arr(vec![
                    Json::Str("/out.264".into()),
                    Json::Str("deadbeef".into()),
                ])]),
            ),
            ("checksum".into(), Json::Num(-123456.0)),
            ("empty_obj".into(), Json::Obj(vec![])),
            ("empty_arr".into(), Json::Arr(vec![])),
        ]);
        roundtrip(&v);
        assert_eq!(v.get("key").and_then(Json::as_str), Some("0123abcd"));
        assert_eq!(v.get("checksum").and_then(Json::as_f64), Some(-123456.0));
        assert_eq!(v.get("checksum").and_then(Json::as_u64), None);
    }

    #[test]
    fn integers_render_without_decimal_point() {
        assert_eq!(Json::u64(42).render(), "42");
        assert_eq!(Json::Num(-3.0).render(), "-3");
        assert_eq!(Json::u64(20_000_000_000).render(), "20000000000");
    }

    #[test]
    fn surrogate_pairs_decode_to_one_scalar() {
        // 😀 is U+1F600 = \ud83d\ude00 in UTF-16.
        assert_eq!(
            Json::parse("\"\\ud83d\\ude00\"").unwrap(),
            Json::Str("😀".into())
        );
        // Mixed with surrounding text and a second non-BMP scalar.
        assert_eq!(
            Json::parse("\"a\\ud83d\\ude00b\\ud834\\udd1ec\"").unwrap(),
            Json::Str("a😀b𝄞c".into())
        );
        // Raw UTF-8 (our own renderer's form) also round-trips.
        roundtrip(&Json::Str("emoji 😀 and clef 𝄞".into()));
    }

    #[test]
    fn lone_surrogates_become_replacement_chars() {
        // Unpaired high, unpaired low, high followed by a BMP escape.
        assert_eq!(
            Json::parse("\"\\ud83d\"").unwrap(),
            Json::Str("\u{fffd}".into())
        );
        assert_eq!(
            Json::parse("\"\\ude00\"").unwrap(),
            Json::Str("\u{fffd}".into())
        );
        assert_eq!(
            Json::parse("\"\\ud83dx\"").unwrap(),
            Json::Str("\u{fffd}x".into())
        );
        // The unconsumed BMP escape after a lone high half still decodes.
        assert_eq!(
            Json::parse("\"\\ud83d\\u0041\"").unwrap(),
            Json::Str("\u{fffd}A".into())
        );
        // Truncated or malformed second halves are still errors.
        assert!(Json::parse("\"\\ud83d\\u00\"").is_err());
        assert!(Json::parse("\"\\uzzzz\"").is_err());
    }

    #[test]
    fn rejects_garbage() {
        assert!(Json::parse("").is_err());
        assert!(Json::parse("{").is_err());
        assert!(Json::parse("[1,]").is_err());
        assert!(Json::parse("12 34").is_err());
        assert!(Json::parse("\"unterminated").is_err());
    }

    #[test]
    fn accepts_whitespace() {
        let v = Json::parse(" { \"a\" : [ 1 , 2 ] } ").unwrap();
        assert_eq!(v.get("a").and_then(Json::as_arr).map(|a| a.len()), Some(2));
    }
}
