//! Address-bucketed cycle attribution (the `perf record` analog).
//!
//! The CPU simulator charges every retired instruction its issue cost plus
//! any penalties (cache misses, mispredictions) in 1/64-cycle fixed-point
//! units. When profiling is enabled it reports those charges here, keyed
//! by the instruction's code address, so a run can be decomposed into the
//! exact places its cycles went. Hardware `perf` must sample; the
//! simulator attributes every event.

use std::collections::BTreeMap;

/// Fixed-point scale of the simulator's cycle accounting (1/64 cycle).
pub const FP_PER_CYCLE: u64 = 64;

/// Events attributed to one instruction address.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct AddrSample {
    /// Instructions retired at this address.
    pub instructions: u64,
    /// Cycles charged, in 1/64-cycle units (issue cost + penalties).
    pub cycles_fp: u64,
    /// D-cache misses triggered by this instruction.
    pub dcache_misses: u64,
    /// I-cache misses fetching this instruction.
    pub icache_misses: u64,
    /// Branch mispredictions at this instruction.
    pub mispredicts: u64,
    /// Kernel cycles charged while servicing this instruction's host call.
    pub host_cycles: u64,
}

impl AddrSample {
    /// Attributed user cycles (rounded down to whole cycles).
    pub fn cycles(&self) -> u64 {
        self.cycles_fp / FP_PER_CYCLE
    }
}

/// A completed profile: per-address buckets in address order.
#[derive(Debug, Clone, Default)]
pub struct CycleProfile {
    buckets: BTreeMap<u64, AddrSample>,
}

impl CycleProfile {
    /// Creates an empty profile.
    pub fn new() -> CycleProfile {
        CycleProfile::default()
    }

    /// Adds one instruction's events to the bucket for `addr`.
    #[inline]
    pub fn record(&mut self, addr: u64, delta: AddrSample) {
        let b = self.buckets.entry(addr).or_default();
        b.instructions += delta.instructions;
        b.cycles_fp += delta.cycles_fp;
        b.dcache_misses += delta.dcache_misses;
        b.icache_misses += delta.icache_misses;
        b.mispredicts += delta.mispredicts;
        b.host_cycles += delta.host_cycles;
    }

    /// Iterates buckets in ascending address order.
    pub fn iter(&self) -> impl Iterator<Item = (u64, &AddrSample)> {
        self.buckets.iter().map(|(a, s)| (*a, s))
    }

    /// Number of distinct addresses observed.
    pub fn len(&self) -> usize {
        self.buckets.len()
    }

    /// True when nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.buckets.is_empty()
    }

    /// The bucket for `addr`, if any instruction retired there.
    pub fn at(&self, addr: u64) -> Option<&AddrSample> {
        self.buckets.get(&addr)
    }

    /// Total attributed user cycles, in 1/64-cycle units.
    pub fn total_cycles_fp(&self) -> u64 {
        self.buckets.values().map(|s| s.cycles_fp).sum()
    }

    /// Total attributed user cycles.
    pub fn total_cycles(&self) -> u64 {
        self.total_cycles_fp() / FP_PER_CYCLE
    }

    /// Total instructions attributed.
    pub fn total_instructions(&self) -> u64 {
        self.buckets.values().map(|s| s.instructions).sum()
    }

    /// Sums the buckets whose address lies in `[start, end)`.
    pub fn range_sum(&self, start: u64, end: u64) -> AddrSample {
        let mut out = AddrSample::default();
        for (_, s) in self.buckets.range(start..end) {
            out.instructions += s.instructions;
            out.cycles_fp += s.cycles_fp;
            out.dcache_misses += s.dcache_misses;
            out.icache_misses += s.icache_misses;
            out.mispredicts += s.mispredicts;
            out.host_cycles += s.host_cycles;
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(cycles_fp: u64) -> AddrSample {
        AddrSample {
            instructions: 1,
            cycles_fp,
            ..AddrSample::default()
        }
    }

    #[test]
    fn buckets_accumulate() {
        let mut p = CycleProfile::new();
        p.record(0x1000, sample(64));
        p.record(0x1000, sample(64));
        p.record(0x1004, sample(32));
        assert_eq!(p.len(), 2);
        assert_eq!(p.at(0x1000).unwrap().instructions, 2);
        assert_eq!(p.at(0x1000).unwrap().cycles(), 2);
        assert_eq!(p.total_instructions(), 3);
        assert_eq!(p.total_cycles_fp(), 160);
    }

    #[test]
    fn range_sum_is_half_open() {
        let mut p = CycleProfile::new();
        p.record(0x1000, sample(64));
        p.record(0x1010, sample(64));
        p.record(0x1020, sample(64));
        let r = p.range_sum(0x1000, 0x1020);
        assert_eq!(r.instructions, 2);
        assert_eq!(p.range_sum(0x1000, 0x1021).instructions, 3);
    }

    #[test]
    fn iteration_is_address_ordered() {
        let mut p = CycleProfile::new();
        p.record(0x2000, sample(1));
        p.record(0x1000, sample(1));
        let addrs: Vec<u64> = p.iter().map(|(a, _)| a).collect();
        assert_eq!(addrs, vec![0x1000, 0x2000]);
    }
}
