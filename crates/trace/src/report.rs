//! Renderers: `perf report`-style hot-function tables and `perf
//! annotate`-style per-instruction listings.

use crate::profile::{AddrSample, CycleProfile, FP_PER_CYCLE};
use crate::symbols::{FuncSym, SymbolMap};
use std::fmt::Write as _;
use wasmperf_isa::module::NO_TAG;

/// Per-function totals for one profile, hottest first.
#[derive(Debug, Clone)]
pub struct FuncRow {
    /// Function name, or `[unknown]` for unattributed addresses.
    pub name: String,
    /// Summed events.
    pub sample: AddrSample,
    /// Share of total attributed cycles, 0..=100.
    pub percent: f64,
}

/// Aggregates a profile into per-function rows, hottest first. The last
/// element of the return is the share of cycles attributed to *named*
/// functions (the acceptance-criterion coverage number).
pub fn aggregate(profile: &CycleProfile, symbols: &SymbolMap) -> (Vec<FuncRow>, f64) {
    let total_fp = profile.total_cycles_fp();
    let mut rows: Vec<FuncRow> = symbols
        .funcs
        .iter()
        .map(|f| {
            let sample = profile.range_sum(f.start, f.end);
            FuncRow {
                name: f.name.clone(),
                sample,
                percent: pct(sample.cycles_fp, total_fp),
            }
        })
        .filter(|r| r.sample.instructions > 0)
        .collect();

    let named_fp: u64 = rows.iter().map(|r| r.sample.cycles_fp).sum();
    let unknown_fp = total_fp.saturating_sub(named_fp);
    if unknown_fp > 0 {
        let mut sample = AddrSample::default();
        sample.cycles_fp = unknown_fp;
        sample.instructions = profile
            .total_instructions()
            .saturating_sub(rows.iter().map(|r| r.sample.instructions).sum());
        rows.push(FuncRow {
            name: "[unknown]".to_string(),
            sample,
            percent: pct(unknown_fp, total_fp),
        });
    }
    rows.sort_by_key(|r| std::cmp::Reverse(r.sample.cycles_fp));
    let coverage = pct(named_fp, total_fp);
    (rows, coverage)
}

fn pct(part: u64, total: u64) -> f64 {
    if total == 0 {
        0.0
    } else {
        100.0 * part as f64 / total as f64
    }
}

/// The `perf report`-style hot-function table.
pub fn perf_report(profile: &CycleProfile, symbols: &SymbolMap) -> String {
    if profile.is_empty() {
        return String::new();
    }
    let (rows, coverage) = aggregate(profile, symbols);
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{:>7}  {:>14}  {:>12}  {:>9}  {:>9}  {:>9}  symbol",
        "% cycle", "cycles", "insts", "d-miss", "i-miss", "br-miss"
    );
    let _ = writeln!(out, "{}", "-".repeat(86));
    for r in &rows {
        let src = symbols
            .by_name(&r.name)
            .and_then(|f| f.source.as_ref())
            .map(|s| format!("  ({}:{})", s.clite_func, s.clite_line))
            .unwrap_or_default();
        let _ = writeln!(
            out,
            "{:>6.2}%  {:>14}  {:>12}  {:>9}  {:>9}  {:>9}  {}{}",
            r.percent,
            r.sample.cycles(),
            r.sample.instructions,
            r.sample.dcache_misses,
            r.sample.icache_misses,
            r.sample.mispredicts,
            r.name,
            src
        );
    }
    let _ = writeln!(out, "{}", "-".repeat(86));
    let _ = writeln!(
        out,
        "total: {} cycles, {} instructions; {:.2}% attributed to named functions",
        profile.total_cycles(),
        profile.total_instructions(),
        coverage
    );
    out
}

/// The `perf annotate`-style listing for one function: every machine
/// instruction with its cycle share, interleaved with the wasm
/// instructions it was compiled from when the JIT attached tags.
pub fn annotate(profile: &CycleProfile, symbols: &SymbolMap, func: &str) -> String {
    let Some(f) = symbols.by_name(func) else {
        return format!("no symbol named {func}\n");
    };
    annotate_func(profile, f)
}

/// Annotates the `n` hottest functions, hottest first.
pub fn annotate_hottest(profile: &CycleProfile, symbols: &SymbolMap, n: usize) -> String {
    let (rows, _) = aggregate(profile, symbols);
    let mut out = String::new();
    for r in rows.iter().filter(|r| r.name != "[unknown]").take(n) {
        if let Some(f) = symbols.by_name(&r.name) {
            out.push_str(&annotate_func(profile, f));
            out.push('\n');
        }
    }
    out
}

fn annotate_func(profile: &CycleProfile, f: &FuncSym) -> String {
    let func_total = profile.range_sum(f.start, f.end);
    let total_fp = func_total.cycles_fp.max(1);
    let mut out = String::new();
    let src = f
        .source
        .as_ref()
        .map(|s| format!("  [{}:{}]", s.clite_func, s.clite_line))
        .unwrap_or_default();
    let _ = writeln!(
        out,
        "annotate {} ({} cycles, {} insts){}",
        f.name,
        func_total.cycles_fp / FP_PER_CYCLE,
        func_total.instructions,
        src
    );
    let mut last_tag = NO_TAG;
    for inst in &f.insts {
        // Interleave the wasm source instruction when a new tag begins.
        if inst.tag != last_tag {
            if inst.tag != NO_TAG {
                let text = f
                    .wasm_texts
                    .get(inst.tag as usize)
                    .map(String::as_str)
                    .unwrap_or("?");
                let _ = writeln!(out, "         ; wasm[{}] {}", inst.tag, text);
            }
            last_tag = inst.tag;
        }
        let s = profile.at(inst.addr).copied().unwrap_or_default();
        let share = pct(s.cycles_fp, total_fp);
        let marks = format!(
            "{}{}{}",
            if s.dcache_misses > 0 { "D" } else { "" },
            if s.icache_misses > 0 { "I" } else { "" },
            if s.mispredicts > 0 { "B" } else { "" },
        );
        let _ = writeln!(
            out,
            "{:>6.2}%  {:>8x}:  {:<44} {}",
            share, inst.addr, inst.text, marks
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use wasmperf_isa::inst::{Inst, Operand, Width};
    use wasmperf_isa::module::Function;
    use wasmperf_isa::reg::Reg;
    use wasmperf_isa::Module;

    fn test_module() -> Module {
        let mut m = Module::default();
        for n in ["hot_native", "cold_native"] {
            m.funcs.push(Function {
                name: n.to_string(),
                insts: vec![
                    Inst::Mov {
                        dst: Operand::Reg(Reg::Rax),
                        src: Operand::Reg(Reg::Rbx),
                        width: Width::W64,
                    },
                    Inst::Ret,
                ],
                ..Function::default()
            });
        }
        m.assign_addresses();
        m
    }

    #[test]
    fn report_attributes_all_cycles_to_named_functions() {
        let m = test_module();
        let symbols = SymbolMap::from_module(&m);
        let mut p = CycleProfile::new();
        // 90 cycles in hot, 10 in cold.
        p.record(
            m.funcs[0].inst_addrs[0],
            AddrSample {
                instructions: 90,
                cycles_fp: 90 * 64,
                ..AddrSample::default()
            },
        );
        p.record(
            m.funcs[1].inst_addrs[0],
            AddrSample {
                instructions: 10,
                cycles_fp: 10 * 64,
                ..AddrSample::default()
            },
        );
        let (rows, coverage) = aggregate(&p, &symbols);
        assert_eq!(rows[0].name, "hot_native");
        assert!((rows[0].percent - 90.0).abs() < 1e-9);
        assert!((coverage - 100.0).abs() < 1e-9);
        let text = perf_report(&p, &symbols);
        assert!(text.contains("hot_native"));
        assert!(text.contains("100.00% attributed"));
    }

    #[test]
    fn unattributed_cycles_reported_as_unknown() {
        let m = test_module();
        let symbols = SymbolMap::from_module(&m);
        let mut p = CycleProfile::new();
        p.record(
            0xdead_0000,
            AddrSample {
                instructions: 1,
                cycles_fp: 64,
                ..AddrSample::default()
            },
        );
        let (rows, coverage) = aggregate(&p, &symbols);
        assert_eq!(rows[0].name, "[unknown]");
        assert!(coverage < 1e-9);
    }

    #[test]
    fn annotate_lists_every_instruction() {
        let m = test_module();
        let symbols = SymbolMap::from_module(&m);
        let mut p = CycleProfile::new();
        p.record(
            m.funcs[0].inst_addrs[0],
            AddrSample {
                instructions: 1,
                cycles_fp: 64,
                ..AddrSample::default()
            },
        );
        let text = annotate(&p, &symbols, "hot_native");
        assert!(text.contains("annotate hot_native"));
        assert!(text.contains("mov rax, rbx"));
        assert!(text.contains("ret"));
        assert!(annotate(&p, &symbols, "nope").contains("no symbol"));
    }
}
