//! FNV-1a hashing: the farm's content-addressing primitive.
//!
//! Every identity in the farm — benchmark sources, engine configurations,
//! job specs — reduces to a 64-bit FNV-1a digest. FNV is stable across
//! processes and platforms (unlike `std::hash`, whose `RandomState` is
//! per-process), which is what makes the on-disk result store and the
//! artifact cache keys meaningful between runs.

const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const PRIME: u64 = 0x0000_0100_0000_01b3;

/// An incremental FNV-1a hasher.
#[derive(Debug, Clone)]
pub struct Fnv(u64);

impl Default for Fnv {
    fn default() -> Self {
        Fnv(OFFSET)
    }
}

impl Fnv {
    /// A fresh hasher at the FNV offset basis.
    pub fn new() -> Fnv {
        Fnv::default()
    }

    /// Absorbs raw bytes.
    pub fn write(&mut self, bytes: &[u8]) -> &mut Fnv {
        for &b in bytes {
            self.0 = (self.0 ^ b as u64).wrapping_mul(PRIME);
        }
        self
    }

    /// Absorbs a `u64` (little-endian).
    pub fn write_u64(&mut self, v: u64) -> &mut Fnv {
        self.write(&v.to_le_bytes())
    }

    /// Absorbs a length-prefixed string (so `"ab","c"` ≠ `"a","bc"`).
    pub fn write_str(&mut self, s: &str) -> &mut Fnv {
        self.write_u64(s.len() as u64).write(s.as_bytes())
    }

    /// The digest.
    pub fn finish(&self) -> u64 {
        self.0
    }
}

/// One-shot FNV-1a over a byte slice.
pub fn fnv1a(bytes: &[u8]) -> u64 {
    Fnv::new().write(bytes).finish()
}

/// Formats a digest as the fixed-width hex used in store keys.
pub fn hex64(v: u64) -> String {
    format!("{v:016x}")
}

/// Parses a `hex64` digest back.
pub fn parse_hex64(s: &str) -> Option<u64> {
    if s.len() != 16 {
        return None;
    }
    u64::from_str_radix(s, 16).ok()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_known_vectors() {
        // Standard FNV-1a test vectors.
        assert_eq!(fnv1a(b""), 0xcbf29ce484222325);
        assert_eq!(fnv1a(b"a"), 0xaf63dc4c8601ec8c);
        assert_eq!(fnv1a(b"foobar"), 0x85944171f73967e8);
    }

    #[test]
    fn length_prefix_prevents_concat_collisions() {
        let ab_c = Fnv::new().write_str("ab").write_str("c").finish();
        let a_bc = Fnv::new().write_str("a").write_str("bc").finish();
        assert_ne!(ab_c, a_bc);
    }

    #[test]
    fn hex_roundtrip() {
        for v in [0u64, 1, u64::MAX, 0xdead_beef_0000_1234] {
            assert_eq!(parse_hex64(&hex64(v)), Some(v));
        }
        assert_eq!(parse_hex64("xyz"), None);
        assert_eq!(parse_hex64("0"), None);
    }
}
