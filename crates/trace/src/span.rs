//! Wall-clock phase spans around compile-pipeline stages and harness
//! trials.
//!
//! Spans are complete events (`ph: "X"` in Chrome trace_event terms): a
//! name, a category, a start offset, and a duration, all in microseconds
//! relative to the log's creation. The log hands out guards so callers
//! cannot forget to close a span.

use std::time::Instant;

/// One completed phase.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Span {
    /// Phase name (e.g. `clanglite/regalloc`, `wasmjit/compile`, `run`).
    pub name: String,
    /// Category for trace viewers (e.g. `compile`, `exec`, `harness`).
    pub cat: String,
    /// Start, microseconds since the log was created.
    pub start_us: u64,
    /// Duration in microseconds.
    pub dur_us: u64,
}

/// An append-only span log with a single epoch.
#[derive(Debug)]
pub struct SpanLog {
    epoch: Instant,
    /// Completed spans in close order.
    pub spans: Vec<Span>,
}

impl Default for SpanLog {
    fn default() -> Self {
        SpanLog::new()
    }
}

impl SpanLog {
    /// Creates an empty log; its epoch is now.
    pub fn new() -> SpanLog {
        SpanLog {
            epoch: Instant::now(),
            spans: Vec::new(),
        }
    }

    /// Microseconds elapsed since the epoch.
    pub fn now_us(&self) -> u64 {
        self.epoch.elapsed().as_micros() as u64
    }

    /// Opens a span; close it with [`SpanLog::exit`].
    pub fn enter(&self) -> OpenSpan {
        OpenSpan {
            start_us: self.now_us(),
        }
    }

    /// Closes `open` and records it under `cat`/`name`.
    pub fn exit(&mut self, open: OpenSpan, cat: &str, name: &str) {
        let end = self.now_us();
        self.spans.push(Span {
            name: name.to_string(),
            cat: cat.to_string(),
            start_us: open.start_us,
            dur_us: end.saturating_sub(open.start_us),
        });
    }

    /// Times `f` and records it as one span.
    pub fn scope<T>(&mut self, cat: &str, name: &str, f: impl FnOnce() -> T) -> T {
        let open = self.enter();
        let out = f();
        self.exit(open, cat, name);
        out
    }

    /// Records an externally-timed span (e.g. re-based from another log).
    pub fn push(&mut self, span: Span) {
        self.spans.push(span);
    }
}

/// A span that has been entered but not yet recorded.
#[derive(Debug, Clone, Copy)]
pub struct OpenSpan {
    start_us: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scope_records_one_span() {
        let mut log = SpanLog::new();
        let v = log.scope("compile", "lower", || 42);
        assert_eq!(v, 42);
        assert_eq!(log.spans.len(), 1);
        assert_eq!(log.spans[0].name, "lower");
        assert_eq!(log.spans[0].cat, "compile");
    }

    #[test]
    fn spans_are_ordered_and_non_negative() {
        let mut log = SpanLog::new();
        log.scope("a", "first", || ());
        log.scope("a", "second", || ());
        assert!(log.spans[1].start_us >= log.spans[0].start_us);
    }
}
