//! The strace analog: one record per Browsix syscall.
//!
//! The kernel records each call's number, arguments, return value, payload
//! bytes marshalled through the auxiliary buffer, and the kernel cycles
//! charged — the same cycles that land in the executor's `host_cycles`, so
//! the per-record cycle column sums exactly to the run's "time spent in
//! Browsix" (the paper's Figure 4 quantity).

use std::fmt::Write as _;

/// Maximum syscall arguments captured per record (number + 5 args).
pub const MAX_ARGS: usize = 5;

/// Syscall name for a Browsix (Linux i386-flavoured) number.
pub fn syscall_name(nr: i32) -> &'static str {
    match nr {
        1 => "exit",
        3 => "read",
        4 => "write",
        5 => "open",
        6 => "close",
        10 => "unlink",
        19 => "lseek",
        20 => "getpid",
        33 => "access",
        39 => "mkdir",
        40 => "rmdir",
        41 => "dup",
        42 => "pipe",
        93 => "ftruncate",
        106 => "stat",
        108 => "fstat",
        118 => "fsync",
        _ => "unknown",
    }
}

/// Coarse class used by the summary table.
pub fn syscall_class(nr: i32) -> &'static str {
    match nr {
        3 | 4 => "io",
        5 | 6 | 19 | 41 | 93 | 118 => "file",
        10 | 33 | 39 | 40 | 106 | 108 => "fs-meta",
        42 => "ipc",
        1 | 20 => "process",
        _ => "unknown",
    }
}

/// One serviced syscall.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SyscallRecord {
    /// Syscall number.
    pub nr: i32,
    /// Arguments (after the number), zero-padded.
    pub args: [i32; MAX_ARGS],
    /// Return value (negative errno on failure).
    pub ret: i32,
    /// Payload bytes marshalled through the auxiliary buffer.
    pub payload: u64,
    /// Kernel cycles charged for this call (transport + service + fs copy).
    pub cycles: u64,
    /// Transport component of `cycles`: message round trips (including
    /// chunking) plus the two marshalling copies through the aux buffer.
    pub transport_cycles: u64,
    /// In-kernel service component of `cycles`.
    pub service_cycles: u64,
    /// Filesystem buffer-growth copying component of `cycles` (the
    /// append-policy lever). The three components sum to `cycles`.
    pub fs_cycles: u64,
    /// Cumulative kernel cycles before this call — the call's position on
    /// the kernel timeline.
    pub start_cycles: u64,
}

/// The full syscall log of one run.
#[derive(Debug, Clone, Default)]
pub struct StraceLog {
    /// Records in service order.
    pub records: Vec<SyscallRecord>,
}

impl StraceLog {
    /// Total kernel cycles across all records. Equals the run's
    /// `host_cycles` when every host call routes through the kernel.
    pub fn total_cycles(&self) -> u64 {
        self.records.iter().map(|r| r.cycles).sum()
    }

    /// Total payload bytes marshalled.
    pub fn total_payload(&self) -> u64 {
        self.records.iter().map(|r| r.payload).sum()
    }

    /// The strace-style per-call log, one line per record:
    ///
    /// ```text
    /// write(1, 0x1f40, 4096) = 4096   [4096 B, 5624 cycles]
    /// ```
    pub fn format(&self) -> String {
        let mut out = String::new();
        for r in &self.records {
            let name = syscall_name(r.nr);
            let argc = args_shown(r.nr);
            let args: Vec<String> = r.args[..argc].iter().map(|a| format_arg(*a)).collect();
            let _ = writeln!(
                out,
                "{}({}) = {}   [{} B, {} cycles]",
                name,
                args.join(", "),
                r.ret,
                r.payload,
                r.cycles
            );
        }
        out
    }

    /// The `strace -c`-style summary: one row per syscall name, grouped by
    /// class, with call counts, payload bytes, and kernel cycles. The final
    /// total row equals the run's `host_cycles`.
    pub fn summary(&self) -> String {
        // (class, name) -> (calls, bytes, cycles, errors)
        let mut rows: Vec<(&'static str, &'static str, u64, u64, u64, u64)> = Vec::new();
        for r in &self.records {
            let class = syscall_class(r.nr);
            let name = syscall_name(r.nr);
            let err = u64::from(r.ret < 0);
            match rows.iter_mut().find(|x| x.0 == class && x.1 == name) {
                Some(row) => {
                    row.2 += 1;
                    row.3 += r.payload;
                    row.4 += r.cycles;
                    row.5 += err;
                }
                None => rows.push((class, name, 1, r.payload, r.cycles, err)),
            }
        }
        rows.sort_by(|a, b| b.4.cmp(&a.4).then(a.1.cmp(b.1)));
        let total_cycles = self.total_cycles();

        let mut out = String::new();
        let _ = writeln!(
            out,
            "{:>6}  {:<8}  {:<8}  {:>8}  {:>6}  {:>14}  {:>12}",
            "% time", "class", "syscall", "calls", "errors", "bytes", "cycles"
        );
        let _ = writeln!(out, "{}", "-".repeat(76));
        for (class, name, calls, bytes, cycles, errors) in &rows {
            let pct = if total_cycles > 0 {
                100.0 * *cycles as f64 / total_cycles as f64
            } else {
                0.0
            };
            let _ = writeln!(
                out,
                "{pct:>6.2}  {class:<8}  {name:<8}  {calls:>8}  {errors:>6}  {bytes:>14}  {cycles:>12}"
            );
        }
        let _ = writeln!(out, "{}", "-".repeat(76));
        let _ = writeln!(
            out,
            "{:>6}  {:<8}  {:<8}  {:>8}  {:>6}  {:>14}  {:>12}",
            "100.00",
            "total",
            "",
            self.records.len(),
            self.records.iter().filter(|r| r.ret < 0).count(),
            self.total_payload(),
            total_cycles
        );

        // Per-class rollup.
        let mut classes: Vec<(&'static str, u64, u64)> = Vec::new();
        for (class, _, calls, _, cycles, _) in &rows {
            match classes.iter_mut().find(|c| c.0 == *class) {
                Some(c) => {
                    c.1 += calls;
                    c.2 += cycles;
                }
                None => classes.push((class, *calls, *cycles)),
            }
        }
        classes.sort_by_key(|c| std::cmp::Reverse(c.2));
        let _ = writeln!(out, "\nper-class kernel cycles:");
        for (class, calls, cycles) in &classes {
            let pct = if total_cycles > 0 {
                100.0 * *cycles as f64 / total_cycles as f64
            } else {
                0.0
            };
            let _ = writeln!(
                out,
                "  {class:<8}  {calls:>8} calls  {cycles:>12} cycles  ({pct:.2}%)"
            );
        }
        out
    }
}

/// How many arguments to print per syscall (the rest are convention-zero).
fn args_shown(nr: i32) -> usize {
    match nr {
        20 => 0,                    // getpid()
        1 | 6 | 41 | 42 | 118 => 1, // exit, close, dup, pipe, fsync
        10 | 33 | 39 | 40 => 1,     // path syscalls (pointer arg)
        93 | 106 | 108 => 2,        // ftruncate(fd, len), stat, fstat
        3 | 4 | 5 | 19 => 3,        // read/write/open/lseek
        _ => 3,
    }
}

fn format_arg(a: i32) -> String {
    // Addresses read better in hex; small values (fds, lengths, codes)
    // in decimal.
    if a > 4096 {
        format!("{a:#x}")
    } else {
        format!("{a}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(nr: i32, ret: i32, payload: u64, cycles: u64) -> SyscallRecord {
        SyscallRecord {
            nr,
            args: [1, 0x2000, 64, 0, 0],
            ret,
            payload,
            cycles,
            transport_cycles: cycles.saturating_sub(600),
            service_cycles: cycles.min(600),
            fs_cycles: 0,
            start_cycles: 0,
        }
    }

    #[test]
    fn names_and_classes() {
        assert_eq!(syscall_name(4), "write");
        assert_eq!(syscall_class(4), "io");
        assert_eq!(syscall_name(106), "stat");
        assert_eq!(syscall_class(106), "fs-meta");
        assert_eq!(syscall_name(41), "dup");
        assert_eq!(syscall_name(93), "ftruncate");
        assert_eq!(syscall_name(118), "fsync");
        assert_eq!(syscall_class(93), "file");
        assert_eq!(syscall_name(9999), "unknown");
    }

    #[test]
    fn totals_sum_records() {
        let log = StraceLog {
            records: vec![
                rec(4, 64, 64, 5000),
                rec(3, 64, 64, 4800),
                rec(6, 0, 0, 4600),
            ],
        };
        assert_eq!(log.total_cycles(), 14400);
        assert_eq!(log.total_payload(), 128);
    }

    #[test]
    fn format_and_summary_render() {
        let log = StraceLog {
            records: vec![rec(4, 64, 64, 5000), rec(5, -2, 5, 4600)],
        };
        let text = log.format();
        assert!(text.contains("write(1, 0x2000, 64) = 64"));
        assert!(text.contains("[64 B, 5000 cycles]"));
        let sum = log.summary();
        assert!(sum.contains("write"));
        assert!(sum.contains("9600")); // total cycles row
        assert!(sum.contains("per-class kernel cycles:"));
    }
}
