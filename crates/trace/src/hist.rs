//! A log₂ histogram of `u64` samples.
//!
//! One shared implementation serves both consumers that used to hand-roll
//! it: wasmperf-serve's request-latency metrics (microseconds) and the
//! syscall profiler's per-call cycle distributions. Bucket `i` covers
//! `[2^i, 2^(i+1))`; bucket 0 also absorbs zero, and the last bucket is
//! open-ended. Each bucket keeps a count and a sum, so means stay exact
//! even though the distribution is quantized.
//!
//! Histograms also cross process boundaries: [`Log2Hist::to_json`] /
//! [`Log2Hist::from_json`] round-trip every bucket and the observed
//! maximum exactly, so the fleet router can fetch each shard's latency
//! histogram and [`Log2Hist::merge`] the shards into one fleet-wide
//! aggregate without losing a sample.

use crate::json::Json;

/// Number of buckets. Bucket `BUCKETS - 1` holds everything at or above
/// `2^(BUCKETS-1)`.
pub const BUCKETS: usize = 32;

/// One histogram bucket: sample count and exact sum of its samples.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Bucket {
    /// Samples recorded in this bucket.
    pub count: u64,
    /// Exact sum of those samples.
    pub sum: u64,
}

/// The bucket a value lands in.
pub fn bucket_index(value: u64) -> usize {
    (64 - value.max(1).leading_zeros() as usize - 1).min(BUCKETS - 1)
}

/// Inclusive `(low, high)` value range of bucket `i`. The first bucket
/// starts at zero; the last is capped at `u64::MAX`.
pub fn bucket_bounds(i: usize) -> (u64, u64) {
    let low = if i == 0 { 0 } else { 1u64 << i };
    let high = if i >= BUCKETS - 1 {
        u64::MAX
    } else {
        (1u64 << (i + 1)) - 1
    };
    (low, high)
}

/// A fixed-size log₂ histogram.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Log2Hist {
    buckets: [Bucket; BUCKETS],
    /// Largest sample recorded; caps the open-ended final bucket so
    /// percentiles never report a value no sample reached.
    max: u64,
}

impl Default for Log2Hist {
    fn default() -> Self {
        Log2Hist::new()
    }
}

impl Log2Hist {
    /// An empty histogram.
    pub fn new() -> Log2Hist {
        Log2Hist {
            buckets: [Bucket::default(); BUCKETS],
            max: 0,
        }
    }

    /// Records one sample. Sums saturate at `u64::MAX` instead of
    /// wrapping, so pathological inputs degrade gracefully.
    pub fn record(&mut self, value: u64) {
        let b = &mut self.buckets[bucket_index(value)];
        b.count += 1;
        b.sum = b.sum.saturating_add(value);
        self.max = self.max.max(value);
    }

    /// Adds every bucket of `other` into this histogram.
    pub fn merge(&mut self, other: &Log2Hist) {
        for (mine, theirs) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            mine.count += theirs.count;
            mine.sum = mine.sum.saturating_add(theirs.sum);
        }
        self.max = self.max.max(other.max);
    }

    /// Total samples recorded.
    pub fn count(&self) -> u64 {
        self.buckets.iter().map(|b| b.count).sum()
    }

    /// Sum of all samples (exact unless it saturated at `u64::MAX`).
    pub fn sum(&self) -> u64 {
        self.buckets
            .iter()
            .fold(0u64, |acc, b| acc.saturating_add(b.sum))
    }

    /// Exact mean of all samples (0 when empty).
    pub fn mean(&self) -> f64 {
        let n = self.count();
        if n == 0 {
            0.0
        } else {
            self.sum() as f64 / n as f64
        }
    }

    /// True when no sample has been recorded.
    pub fn is_empty(&self) -> bool {
        self.count() == 0
    }

    /// All buckets, in value order.
    pub fn buckets(&self) -> &[Bucket; BUCKETS] {
        &self.buckets
    }

    /// `(index, bucket)` for every non-empty bucket, in value order.
    pub fn nonzero(&self) -> impl Iterator<Item = (usize, Bucket)> + '_ {
        self.buckets
            .iter()
            .enumerate()
            .filter(|(_, b)| b.count > 0)
            .map(|(i, b)| (i, *b))
    }

    /// The `p`-th percentile (0–100), resolved to the *upper bound* of the
    /// bucket holding the nearest-rank sample — a conservative estimate
    /// (never below the true percentile by more than one bucket's width).
    /// The open-ended final bucket is capped at the largest sample
    /// actually recorded, so a single outlier past `2^31` reports that
    /// outlier's magnitude rather than `u64::MAX`. Returns 0 for an
    /// empty histogram.
    pub fn percentile(&self, p: f64) -> u64 {
        let total = self.count();
        if total == 0 {
            return 0;
        }
        let rank = ((p.clamp(0.0, 100.0) / 100.0 * total as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (i, b) in self.buckets.iter().enumerate() {
            seen += b.count;
            if seen >= rank {
                // Only the final bucket has no real upper bound; interior
                // buckets keep their exact power-of-two bound.
                return if i == BUCKETS - 1 {
                    bucket_bounds(i).1.min(self.max)
                } else {
                    bucket_bounds(i).1
                };
            }
        }
        bucket_bounds(BUCKETS - 1).1.min(self.max)
    }

    /// Wire form: the observed maximum plus every non-empty bucket keyed
    /// by index, each with its exact count and sum.
    pub fn to_json(&self) -> Json {
        let buckets = self
            .nonzero()
            .map(|(i, b)| {
                (
                    i.to_string(),
                    Json::Obj(vec![
                        ("count".into(), Json::u64(b.count)),
                        ("sum".into(), Json::u64(b.sum)),
                    ]),
                )
            })
            .collect();
        Json::Obj(vec![
            ("max".into(), Json::u64(self.max)),
            ("buckets".into(), Json::Obj(buckets)),
        ])
    }

    /// Parses the [`Log2Hist::to_json`] wire form back. `None` on any
    /// missing field, unparsable index, or out-of-range bucket.
    pub fn from_json(v: &Json) -> Option<Log2Hist> {
        let mut hist = Log2Hist::new();
        hist.max = v.get("max")?.as_u64()?;
        let Json::Obj(buckets) = v.get("buckets")? else {
            return None;
        };
        for (key, bucket) in buckets {
            let i: usize = key.parse().ok()?;
            if i >= BUCKETS {
                return None;
            }
            hist.buckets[i] = Bucket {
                count: bucket.get("count")?.as_u64()?,
                sum: bucket.get("sum")?.as_u64()?,
            };
        }
        Some(hist)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_index_is_log2() {
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 0);
        assert_eq!(bucket_index(2), 1);
        assert_eq!(bucket_index(3), 1);
        assert_eq!(bucket_index(4), 2);
        assert_eq!(bucket_index(1024), 10);
        assert_eq!(bucket_index((1 << 31) - 1), 30);
        assert_eq!(bucket_index(1 << 31), 31);
        assert_eq!(bucket_index(u64::MAX), BUCKETS - 1);
    }

    #[test]
    fn bucket_bounds_tile_the_axis() {
        assert_eq!(bucket_bounds(0), (0, 1));
        assert_eq!(bucket_bounds(1), (2, 3));
        assert_eq!(bucket_bounds(10), (1024, 2047));
        assert_eq!(bucket_bounds(BUCKETS - 1), (1 << 31, u64::MAX));
        // Every boundary value lands in the bucket whose bounds claim it.
        for i in 0..BUCKETS {
            let (low, high) = bucket_bounds(i);
            assert_eq!(bucket_index(low.max(1)), i);
            assert_eq!(bucket_index(high), i);
        }
    }

    #[test]
    fn count_sum_mean_are_exact() {
        let mut h = Log2Hist::new();
        assert!(h.is_empty());
        assert_eq!(h.mean(), 0.0);
        for v in [0, 1, 5, 1000, 1_000_000] {
            h.record(v);
        }
        assert_eq!(h.count(), 5);
        assert_eq!(h.sum(), 1_001_006);
        assert_eq!(h.mean(), 1_001_006.0 / 5.0);
        assert_eq!(h.nonzero().count(), 4); // 0 and 1 share bucket 0.
    }

    #[test]
    fn merge_adds_bucketwise() {
        let mut a = Log2Hist::new();
        let mut b = Log2Hist::new();
        a.record(10);
        a.record(2000);
        b.record(12);
        b.record(1 << 40); // Lands in the open-ended last bucket.
        a.merge(&b);
        assert_eq!(a.count(), 4);
        assert_eq!(a.sum(), 10 + 2000 + 12 + (1u64 << 40));
        assert_eq!(a.buckets()[bucket_index(10)].count, 2);
        assert_eq!(a.buckets()[BUCKETS - 1].count, 1);
        // Merging an empty histogram is the identity.
        let before = a;
        a.merge(&Log2Hist::new());
        assert_eq!(a, before);
    }

    #[test]
    fn percentile_on_empty_single_and_saturated() {
        // Empty: every percentile is 0.
        let empty = Log2Hist::new();
        assert_eq!(empty.percentile(50.0), 0);
        assert_eq!(empty.percentile(99.9), 0);

        // Single sample: every percentile is its bucket's upper bound.
        let mut one = Log2Hist::new();
        one.record(100); // bucket 6: [64, 127]
        for p in [0.0, 50.0, 99.0, 100.0] {
            assert_eq!(one.percentile(p), 127);
        }

        // Saturated: values at and beyond the last bucket's lower edge.
        let mut sat = Log2Hist::new();
        sat.record(1 << 31);
        sat.record(u64::MAX);
        assert_eq!(sat.percentile(50.0), u64::MAX);
        assert_eq!(sat.percentile(100.0), u64::MAX);
    }

    #[test]
    fn final_bucket_percentile_caps_at_observed_max() {
        // Regression: a sample in the open-ended top bucket used to
        // resolve to bucket_bounds(BUCKETS-1).1 == u64::MAX, so one
        // outlier past 2^31 made p99 absurd. The cap is the largest
        // sample actually seen.
        let mut h = Log2Hist::new();
        h.record(1 << 31);
        h.record((1 << 31) + 5);
        assert_eq!(h.percentile(50.0), (1 << 31) + 5);
        assert_eq!(h.percentile(99.0), (1 << 31) + 5);
        assert_eq!(h.percentile(100.0), (1 << 31) + 5);

        // Merging propagates the observed max.
        let mut other = Log2Hist::new();
        other.record((1 << 31) + 9);
        h.merge(&other);
        assert_eq!(h.percentile(100.0), (1 << 31) + 9);

        // Interior buckets keep their exact power-of-two upper bound.
        let mut small = Log2Hist::new();
        small.record(100);
        assert_eq!(small.percentile(50.0), 127);
    }

    #[test]
    fn json_roundtrip_is_exact_and_merges() {
        let mut h = Log2Hist::new();
        for v in [0, 1, 5, 1000, 1_000_000, 1 << 40] {
            h.record(v);
        }
        let wire = h.to_json();
        let back = Log2Hist::from_json(&wire).unwrap();
        assert_eq!(back, h);
        // The round-tripped histogram merges like the original: the
        // router-side aggregation path.
        let mut agg = Log2Hist::new();
        agg.record(7);
        agg.merge(&back);
        assert_eq!(agg.count(), h.count() + 1);
        assert_eq!(agg.sum(), h.sum() + 7);
        assert_eq!(agg.percentile(100.0), 1 << 40);

        // Malformed wire forms are rejected, not mis-read.
        assert!(Log2Hist::from_json(&Json::Obj(vec![])).is_none());
        let bad = Json::Obj(vec![
            ("max".into(), Json::u64(1)),
            (
                "buckets".into(),
                Json::Obj(vec![("99".into(), Json::Obj(vec![]))]),
            ),
        ]);
        assert!(Log2Hist::from_json(&bad).is_none());
    }

    #[test]
    fn percentile_splits_a_bimodal_distribution() {
        let mut h = Log2Hist::new();
        for _ in 0..90 {
            h.record(100); // bucket 6, upper bound 127
        }
        for _ in 0..10 {
            h.record(1_000_000); // bucket 19, upper bound 2^20 - 1
        }
        assert_eq!(h.percentile(50.0), 127);
        assert_eq!(h.percentile(90.0), 127);
        assert_eq!(h.percentile(91.0), (1 << 20) - 1);
        assert_eq!(h.percentile(99.0), (1 << 20) - 1);
    }
}
