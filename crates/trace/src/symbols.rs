//! Symbol and source maps: address → function → instruction resolution.
//!
//! Built from an executed [`Module`](wasmperf_isa::Module) after
//! `assign_addresses`, so every code address resolves to a named function
//! and a disassembled instruction. Compilers optionally attach two more
//! layers: CLite source locations per function (both backends preserve
//! source function names) and, for the JIT pipeline, a wasm-offset tag per
//! machine instruction plus the wat text of each wasm instruction — giving
//! the full function → wasm offset → CLite line attribution chain.

use wasmperf_isa::disasm::format_inst;
use wasmperf_isa::module::NO_TAG;
use wasmperf_isa::size::encoded_len;
use wasmperf_isa::Module;

/// Where a function came from in the CLite source.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SourceLoc {
    /// CLite function name (without backend suffix).
    pub clite_func: String,
    /// 1-based line of the function definition in the CLite source.
    pub clite_line: u32,
}

/// One machine instruction of a symbolised function.
#[derive(Debug, Clone)]
pub struct InstSym {
    /// Byte address in the code image.
    pub addr: u64,
    /// Intel-syntax disassembly.
    pub text: String,
    /// Pre-order wasm instruction index this instruction was compiled
    /// from, or [`NO_TAG`] for prologue/epilogue/stub code or native code.
    pub tag: u32,
}

/// One function of the symbol map.
#[derive(Debug, Clone)]
pub struct FuncSym {
    /// Full backend name (e.g. `matmul_native`, `matmul_jit`).
    pub name: String,
    /// First code byte.
    pub start: u64,
    /// One past the last code byte (half-open).
    pub end: u64,
    /// All instructions, in address order.
    pub insts: Vec<InstSym>,
    /// CLite source location, when a source table was attached.
    pub source: Option<SourceLoc>,
    /// Wat text of each wasm instruction of this function, indexed by
    /// tag, when the JIT attached its per-function instruction texts.
    pub wasm_texts: Vec<String>,
}

/// Address → function → instruction resolution for one module.
#[derive(Debug, Clone, Default)]
pub struct SymbolMap {
    /// Functions in ascending address order.
    pub funcs: Vec<FuncSym>,
}

impl SymbolMap {
    /// Builds the map from a module with assigned addresses.
    pub fn from_module(module: &Module) -> SymbolMap {
        let mut funcs: Vec<FuncSym> = Vec::with_capacity(module.funcs.len());
        for f in &module.funcs {
            if f.inst_addrs.is_empty() {
                continue;
            }
            let start = f.inst_addrs[0];
            let last = f.insts.len() - 1;
            let end = f.inst_addrs[last] + encoded_len(&f.insts[last]) as u64;
            let insts = f
                .insts
                .iter()
                .enumerate()
                .map(|(i, inst)| InstSym {
                    addr: f.inst_addrs[i],
                    text: format_inst(inst),
                    tag: f.inst_tags.get(i).copied().unwrap_or(NO_TAG),
                })
                .collect();
            funcs.push(FuncSym {
                name: f.name.clone(),
                start,
                end,
                insts,
                source: None,
                wasm_texts: Vec::new(),
            });
        }
        funcs.sort_by_key(|f| f.start);
        SymbolMap { funcs }
    }

    /// Attaches CLite source locations by matching function names: a
    /// backend function named `matmul_native` or `matmul_jit` matches the
    /// source entry `("matmul", line)`.
    pub fn attach_source(&mut self, table: &[(String, u32)]) {
        for f in &mut self.funcs {
            for (name, line) in table {
                if f.name == *name
                    || f.name
                        .strip_prefix(name.as_str())
                        .is_some_and(|rest| rest.starts_with('_'))
                {
                    f.source = Some(SourceLoc {
                        clite_func: name.clone(),
                        clite_line: *line,
                    });
                    break;
                }
            }
        }
    }

    /// Attaches the JIT's per-function wasm instruction texts, parallel to
    /// the module's function order at build time (functions with no code
    /// were skipped, so match by name order within `texts` index space).
    pub fn attach_wasm_texts(&mut self, module: &Module, texts: &[Vec<String>]) {
        for (fi, f) in module.funcs.iter().enumerate() {
            let Some(t) = texts.get(fi) else { continue };
            if t.is_empty() || f.inst_addrs.is_empty() {
                continue;
            }
            let start = f.inst_addrs[0];
            if let Some(sym) = self.funcs.iter_mut().find(|s| s.start == start) {
                sym.wasm_texts = t.clone();
            }
        }
    }

    /// Resolves a code address to its containing function.
    pub fn resolve(&self, addr: u64) -> Option<&FuncSym> {
        let i = self.funcs.partition_point(|f| f.start <= addr);
        if i == 0 {
            return None;
        }
        let f = &self.funcs[i - 1];
        (addr < f.end).then_some(f)
    }

    /// Looks up a function by exact name.
    pub fn by_name(&self, name: &str) -> Option<&FuncSym> {
        self.funcs.iter().find(|f| f.name == name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wasmperf_isa::inst::{Inst, Operand, Width};
    use wasmperf_isa::module::Function;
    use wasmperf_isa::reg::Reg;

    fn module_with(names: &[&str]) -> Module {
        let mut m = Module::default();
        for n in names {
            m.funcs.push(Function {
                name: n.to_string(),
                insts: vec![
                    Inst::Mov {
                        dst: Operand::Reg(Reg::Rax),
                        src: Operand::Reg(Reg::Rbx),
                        width: Width::W64,
                    },
                    Inst::Ret,
                ],
                ..Function::default()
            });
        }
        m.assign_addresses();
        m
    }

    #[test]
    fn resolve_finds_containing_function() {
        let m = module_with(&["a_native", "b_native"]);
        let map = SymbolMap::from_module(&m);
        assert_eq!(map.funcs.len(), 2);
        let a = &map.funcs[0];
        assert_eq!(map.resolve(a.start).unwrap().name, "a_native");
        assert_eq!(map.resolve(a.end - 1).unwrap().name, "a_native");
        let b = &map.funcs[1];
        assert_eq!(map.resolve(b.start).unwrap().name, "b_native");
        assert!(map.resolve(0).is_none());
        assert!(map.resolve(b.end + 1024).is_none());
    }

    #[test]
    fn attach_source_matches_suffixed_names() {
        let m = module_with(&["matmul_native", "main_native"]);
        let mut map = SymbolMap::from_module(&m);
        map.attach_source(&[("matmul".to_string(), 7), ("main".to_string(), 20)]);
        let f = map.by_name("matmul_native").unwrap();
        assert_eq!(f.source.as_ref().unwrap().clite_line, 7);
        let g = map.by_name("main_native").unwrap();
        assert_eq!(g.source.as_ref().unwrap().clite_func, "main");
    }

    #[test]
    fn untagged_instructions_get_no_tag() {
        let m = module_with(&["f_native"]);
        let map = SymbolMap::from_module(&m);
        assert!(map.funcs[0].insts.iter().all(|i| i.tag == NO_TAG));
    }
}
