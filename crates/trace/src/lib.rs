//! wasmperf-trace: the observability layer.
//!
//! The paper's evidence is `perf` counter totals (Tables 3/4), `perf
//! annotate`-style listings (Figure 7), and BROWSIX syscall-time
//! accounting (Figure 4). This crate provides the substrate to produce all
//! three for *any* run, not just the hand-picked case studies:
//!
//! - [`profile::CycleProfile`]: retired cycles/misses bucketed by
//!   instruction address, filled by the CPU simulator when profiling is
//!   enabled (the `perf record` analog — the simulator affords exact
//!   attribution where hardware must sample);
//! - [`symbols::SymbolMap`]: address → function → instruction resolution,
//!   with optional CLite source lines and wasm-offset tags carried through
//!   the compilers (the symbol/source map);
//! - [`strace::StraceLog`]: one record per Browsix syscall — name, args,
//!   payload bytes, kernel cycles (the `strace` analog, with an
//!   `strace -c`-style per-class summary);
//! - [`span::SpanLog`]: wall-clock phase spans around compile-pipeline
//!   stages and harness trials;
//! - [`prof::SyscallProfile`]: the wasmperf-prof aggregation engine —
//!   per-syscall latency histograms, exact percentiles, throughput, and
//!   a kernel/user/compile cycle [`prof::Attribution`] that reconciles
//!   exactly with the run's counters (the paper's Figure 4, generalised);
//! - [`hist::Log2Hist`]: the shared log₂ histogram used by the profiler
//!   and by wasmperf-serve's latency metrics;
//! - [`export`]: Chrome `trace_event` JSON (loads in `about:tracing` /
//!   Perfetto) and JSONL exporters.
//!
//! Everything here is observation-only: enabling any part of it must not
//! change a single counter value or output byte of the run it observes.

pub mod export;
pub mod hash;
pub mod hist;
pub mod json;
pub mod prof;
pub mod profile;
pub mod report;
pub mod span;
pub mod strace;
pub mod symbols;

pub use hist::{Bucket, Log2Hist, BUCKETS};
pub use json::Json;
pub use prof::{Attribution, CycleSplit, SyscallProfile, SyscallStat};
pub use profile::{AddrSample, CycleProfile};
pub use span::{Span, SpanLog};
pub use strace::{syscall_class, syscall_name, StraceLog, SyscallRecord, MAX_ARGS};
pub use symbols::{FuncSym, InstSym, SourceLoc, SymbolMap};

/// What to collect during a traced run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceConfig {
    /// Attribute retired cycles/misses to instruction addresses.
    pub profile: bool,
    /// Record every Browsix syscall.
    pub strace: bool,
    /// Record compile-pipeline and harness phase spans.
    pub spans: bool,
}

impl TraceConfig {
    /// Everything on.
    pub fn full() -> TraceConfig {
        TraceConfig {
            profile: true,
            strace: true,
            spans: true,
        }
    }

    /// Everything off (the default): the run is byte-identical to an
    /// untraced run and no collection work happens.
    pub fn off() -> TraceConfig {
        TraceConfig {
            profile: false,
            strace: false,
            spans: false,
        }
    }

    /// True when nothing is collected.
    pub fn is_off(&self) -> bool {
        !self.profile && !self.strace && !self.spans
    }
}

impl Default for TraceConfig {
    fn default() -> Self {
        TraceConfig::off()
    }
}

/// Everything observed about one (benchmark, engine) run, ready for
/// rendering and export.
#[derive(Debug, Clone, Default)]
pub struct TraceSession {
    /// Benchmark name.
    pub bench: String,
    /// Engine name.
    pub engine: String,
    /// Phase spans (compile stages, execution).
    pub spans: Vec<Span>,
    /// Syscall log, when strace was enabled.
    pub strace: Option<StraceLog>,
    /// Cycle profile, when profiling was enabled.
    pub profile: Option<CycleProfile>,
    /// Symbol map for the executed module.
    pub symbols: Option<SymbolMap>,
    /// End-of-run counter totals `(name, value)`, embedded in exports.
    pub totals: Vec<(&'static str, u64)>,
    /// Core frequency used to convert cycles to time in exports.
    pub freq_hz: f64,
}

impl TraceSession {
    /// Creates an empty session for `bench` on `engine`.
    pub fn new(bench: &str, engine: &str) -> TraceSession {
        TraceSession {
            bench: bench.to_string(),
            engine: engine.to_string(),
            freq_hz: 3.5e9,
            ..TraceSession::default()
        }
    }

    /// The `perf report`-style hot-function table.
    ///
    /// Empty string when profiling was not enabled.
    pub fn perf_report(&self) -> String {
        match (&self.profile, &self.symbols) {
            (Some(p), Some(s)) => report::perf_report(p, s),
            _ => String::new(),
        }
    }

    /// The `perf annotate`-style listing for `func`.
    pub fn annotate(&self, func: &str) -> String {
        match (&self.profile, &self.symbols) {
            (Some(p), Some(s)) => report::annotate(p, s, func),
            _ => String::new(),
        }
    }

    /// Annotates the `n` hottest functions.
    pub fn annotate_hottest(&self, n: usize) -> String {
        match (&self.profile, &self.symbols) {
            (Some(p), Some(s)) => report::annotate_hottest(p, s, n),
            _ => String::new(),
        }
    }

    /// The strace-style per-call log.
    pub fn strace_text(&self) -> String {
        self.strace
            .as_ref()
            .map(StraceLog::format)
            .unwrap_or_default()
    }

    /// The `strace -c`-style per-class summary.
    pub fn strace_summary(&self) -> String {
        self.strace
            .as_ref()
            .map(StraceLog::summary)
            .unwrap_or_default()
    }

    /// The aggregated wasmperf-prof syscall profile, when strace was
    /// enabled (empty profile otherwise).
    pub fn syscall_profile(&self) -> SyscallProfile {
        self.strace
            .as_ref()
            .map(SyscallProfile::from_log)
            .unwrap_or_default()
    }

    /// Chrome `trace_event` JSON for `about:tracing` / Perfetto.
    pub fn chrome_trace(&self) -> String {
        export::chrome_trace(self)
    }

    /// Line-delimited JSON of every recorded event.
    pub fn jsonl(&self) -> String {
        export::jsonl(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn config_default_is_off() {
        assert!(TraceConfig::default().is_off());
        assert!(TraceConfig::off().is_off());
        assert!(!TraceConfig::full().is_off());
    }

    #[test]
    fn empty_session_renders_empty() {
        let s = TraceSession::new("b", "e");
        assert_eq!(s.perf_report(), "");
        assert_eq!(s.strace_text(), "");
        // Exports are still valid JSON even with nothing recorded.
        assert!(s.chrome_trace().starts_with('{'));
    }
}
