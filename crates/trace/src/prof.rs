//! wasmperf-prof: aggregated syscall profiling over the strace analog.
//!
//! [`SyscallProfile::from_log`] folds a [`StraceLog`] into one row per
//! syscall: call/error counts, payload totals and throughput, a log₂
//! cycle histogram, *exact* latency percentiles (the records are all in
//! memory, so no estimation is needed), and the per-call cycle split the
//! kernel reports — transport (message round trips + aux-buffer copies),
//! in-kernel service, and filesystem buffer-growth copying.
//!
//! Because every record's components sum to its `cycles`, and the log's
//! cycles sum to the run's `host_cycles`, the profile's totals reconcile
//! *exactly* against the run's counters — [`Attribution`] extends that to
//! a three-way split of everything the paper's wall clock would see:
//! kernel (by component) vs user execution vs modeled compile time.

use crate::hist::Log2Hist;
use crate::strace::{syscall_class, syscall_name, StraceLog};
use std::fmt::Write as _;

/// The kernel-cycle components of one or more syscalls. Components sum
/// to the kernel cycles charged (`total`).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CycleSplit {
    /// Message round trips (incl. chunking) + aux-buffer marshalling.
    pub transport: u64,
    /// In-kernel service time.
    pub service: u64,
    /// Filesystem buffer-growth copying (the append-policy lever).
    pub fs_copy: u64,
}

impl CycleSplit {
    /// Sum of the three components.
    pub fn total(&self) -> u64 {
        self.transport + self.service + self.fs_copy
    }
}

impl std::ops::AddAssign for CycleSplit {
    fn add_assign(&mut self, rhs: CycleSplit) {
        self.transport += rhs.transport;
        self.service += rhs.service;
        self.fs_copy += rhs.fs_copy;
    }
}

/// Aggregated statistics for one syscall number.
#[derive(Debug, Clone)]
pub struct SyscallStat {
    /// Syscall number.
    pub nr: i32,
    /// Syscall name.
    pub name: &'static str,
    /// Coarse class (`io`, `file`, `fs-meta`, `ipc`, `process`).
    pub class: &'static str,
    /// Calls serviced.
    pub calls: u64,
    /// Calls that returned a negative errno.
    pub errors: u64,
    /// Payload bytes marshalled.
    pub payload: u64,
    /// Kernel-cycle split across all calls; `split.total()` is the
    /// syscall's total kernel cycles.
    pub split: CycleSplit,
    /// Log₂ histogram of per-call cycles.
    pub hist: Log2Hist,
    /// Exact per-call cycle percentiles (nearest rank) and extrema.
    pub p50: u64,
    /// 90th percentile.
    pub p90: u64,
    /// 99th percentile.
    pub p99: u64,
    /// Cheapest call.
    pub min: u64,
    /// Most expensive call.
    pub max: u64,
}

impl SyscallStat {
    /// Payload throughput: bytes moved per thousand kernel cycles.
    pub fn bytes_per_kcycle(&self) -> f64 {
        let cycles = self.split.total();
        if cycles == 0 {
            0.0
        } else {
            self.payload as f64 * 1000.0 / cycles as f64
        }
    }
}

/// Exact nearest-rank percentile over a sorted slice.
fn exact_percentile(sorted: &[u64], p: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let rank = ((p.clamp(0.0, 100.0) / 100.0 * sorted.len() as f64).ceil() as usize).max(1);
    sorted[rank.min(sorted.len()) - 1]
}

/// The aggregated profile of one run's syscall log.
#[derive(Debug, Clone, Default)]
pub struct SyscallProfile {
    /// One row per syscall number, ordered by total kernel cycles
    /// (descending), ties broken by syscall number — a deterministic
    /// order for rendering and diffing.
    pub stats: Vec<SyscallStat>,
}

impl SyscallProfile {
    /// Folds a syscall log into per-syscall aggregates.
    pub fn from_log(log: &StraceLog) -> SyscallProfile {
        // nr → (stat, per-call cycle samples).
        let mut rows: Vec<(SyscallStat, Vec<u64>)> = Vec::new();
        for r in &log.records {
            let row = match rows.iter_mut().find(|(s, _)| s.nr == r.nr) {
                Some(row) => row,
                None => {
                    rows.push((
                        SyscallStat {
                            nr: r.nr,
                            name: syscall_name(r.nr),
                            class: syscall_class(r.nr),
                            calls: 0,
                            errors: 0,
                            payload: 0,
                            split: CycleSplit::default(),
                            hist: Log2Hist::new(),
                            p50: 0,
                            p90: 0,
                            p99: 0,
                            min: 0,
                            max: 0,
                        },
                        Vec::new(),
                    ));
                    rows.last_mut().expect("just pushed")
                }
            };
            let (stat, samples) = row;
            stat.calls += 1;
            stat.errors += u64::from(r.ret < 0);
            stat.payload += r.payload;
            stat.split += CycleSplit {
                transport: r.transport_cycles,
                service: r.service_cycles,
                fs_copy: r.fs_cycles,
            };
            stat.hist.record(r.cycles);
            samples.push(r.cycles);
        }
        let mut stats: Vec<SyscallStat> = rows
            .into_iter()
            .map(|(mut stat, mut samples)| {
                samples.sort_unstable();
                stat.p50 = exact_percentile(&samples, 50.0);
                stat.p90 = exact_percentile(&samples, 90.0);
                stat.p99 = exact_percentile(&samples, 99.0);
                stat.min = samples.first().copied().unwrap_or(0);
                stat.max = samples.last().copied().unwrap_or(0);
                stat
            })
            .collect();
        stats.sort_by(|a, b| b.split.total().cmp(&a.split.total()).then(a.nr.cmp(&b.nr)));
        SyscallProfile { stats }
    }

    /// Total calls across all syscalls.
    pub fn total_calls(&self) -> u64 {
        self.stats.iter().map(|s| s.calls).sum()
    }

    /// Total errors.
    pub fn total_errors(&self) -> u64 {
        self.stats.iter().map(|s| s.errors).sum()
    }

    /// Total payload bytes marshalled.
    pub fn total_payload(&self) -> u64 {
        self.stats.iter().map(|s| s.payload).sum()
    }

    /// Summed kernel-cycle split. `split().total()` equals the run's
    /// `host_cycles` when every host call routes through the kernel.
    pub fn split(&self) -> CycleSplit {
        let mut acc = CycleSplit::default();
        for s in &self.stats {
            acc += s.split;
        }
        acc
    }

    /// Total kernel cycles (all components, all syscalls).
    pub fn total_cycles(&self) -> u64 {
        self.split().total()
    }

    /// The three-way run attribution: this profile's kernel cycles plus
    /// the caller-supplied user-execution and modeled-compile cycles.
    pub fn attribution(&self, user_cycles: u64, compile_cycles: u64) -> Attribution {
        Attribution {
            kernel: self.split(),
            user_cycles,
            compile_cycles,
        }
    }

    /// The per-syscall table: one deterministic row per syscall, ordered
    /// by kernel cycles. The `cycles` column sums to the run's
    /// `host_cycles`; `transport + service + fs-copy = cycles` per row.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "{:<9}  {:<8}  {:>6}  {:>4}  {:>10}  {:>8}  {:>12}  {:>10}  {:>10}  {:>12}  {:>8}  {:>8}  {:>8}  {:>8}",
            "syscall", "class", "calls", "errs", "bytes", "B/kcyc",
            "transport", "service", "fs-copy", "cycles", "p50", "p90", "p99", "max"
        );
        let _ = writeln!(out, "{}", "-".repeat(154));
        for s in &self.stats {
            let _ = writeln!(
                out,
                "{:<9}  {:<8}  {:>6}  {:>4}  {:>10}  {:>8.1}  {:>12}  {:>10}  {:>10}  {:>12}  {:>8}  {:>8}  {:>8}  {:>8}",
                s.name,
                s.class,
                s.calls,
                s.errors,
                s.payload,
                s.bytes_per_kcycle(),
                s.split.transport,
                s.split.service,
                s.split.fs_copy,
                s.split.total(),
                s.p50,
                s.p90,
                s.p99,
                s.max
            );
        }
        let _ = writeln!(out, "{}", "-".repeat(154));
        let t = self.split();
        let _ = writeln!(
            out,
            "{:<9}  {:<8}  {:>6}  {:>4}  {:>10}  {:>8}  {:>12}  {:>10}  {:>10}  {:>12}",
            "total",
            "",
            self.total_calls(),
            self.total_errors(),
            self.total_payload(),
            "",
            t.transport,
            t.service,
            t.fs_copy,
            t.total()
        );
        out
    }
}

/// Where every cycle of a run went: kernel (split by component), user
/// execution, and modeled compile time. [`Attribution::total`] equals
/// `counters.total_cycles() + compile_cycles` exactly.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Attribution {
    /// Kernel cycles, by component (`host_cycles`).
    pub kernel: CycleSplit,
    /// User-code execution cycles (`counters.cycles`).
    pub user_cycles: u64,
    /// Modeled compile cycles.
    pub compile_cycles: u64,
}

impl Attribution {
    /// Sum of every component.
    pub fn total(&self) -> u64 {
        self.kernel.total() + self.user_cycles + self.compile_cycles
    }

    /// One-line rendering with percentages of the total.
    pub fn render(&self) -> String {
        let total = self.total().max(1) as f64;
        let pct = |v: u64| 100.0 * v as f64 / total;
        format!(
            "attribution: user {} ({:.2}%) | kernel {} ({:.2}%: transport {} service {} fs-copy {}) | compile {} ({:.2}%) | total {}\n",
            self.user_cycles,
            pct(self.user_cycles),
            self.kernel.total(),
            pct(self.kernel.total()),
            self.kernel.transport,
            self.kernel.service,
            self.kernel.fs_copy,
            self.compile_cycles,
            pct(self.compile_cycles),
            self.total()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::strace::SyscallRecord;

    fn rec(nr: i32, ret: i32, payload: u64, split: (u64, u64, u64)) -> SyscallRecord {
        let (transport, service, fs) = split;
        SyscallRecord {
            nr,
            args: [0; crate::MAX_ARGS],
            ret,
            payload,
            cycles: transport + service + fs,
            transport_cycles: transport,
            service_cycles: service,
            fs_cycles: fs,
            start_cycles: 0,
        }
    }

    fn log() -> StraceLog {
        StraceLog {
            records: vec![
                rec(4, 64, 64, (4016, 600, 0)),
                rec(4, 64, 64, (4016, 600, 128)),
                rec(3, 32, 32, (4008, 600, 0)),
                rec(5, -2, 6, (4001, 600, 0)),
                rec(6, 0, 0, (4000, 600, 0)),
            ],
        }
    }

    #[test]
    fn profile_reconciles_exactly_with_the_log() {
        let log = log();
        let p = SyscallProfile::from_log(&log);
        assert_eq!(p.total_calls(), 5);
        assert_eq!(p.total_errors(), 1);
        assert_eq!(p.total_payload(), log.total_payload());
        assert_eq!(p.total_cycles(), log.total_cycles());
        // Per-row components sum to the row's cycles.
        for s in &p.stats {
            assert_eq!(
                s.split.total(),
                s.split.transport + s.split.service + s.split.fs_copy
            );
            assert_eq!(s.hist.sum(), s.split.total());
            assert_eq!(s.hist.count(), s.calls);
        }
    }

    #[test]
    fn rows_are_ordered_and_aggregated() {
        let p = SyscallProfile::from_log(&log());
        // write (2 calls, most cycles) first; deterministic order.
        assert_eq!(p.stats[0].name, "write");
        assert_eq!(p.stats[0].calls, 2);
        assert_eq!(p.stats[0].split.fs_copy, 128);
        let names: Vec<&str> = p.stats.iter().map(|s| s.name).collect();
        assert_eq!(names, vec!["write", "read", "open", "close"]);
        // Exact percentiles over the two write calls.
        assert_eq!(p.stats[0].p50, 4616);
        assert_eq!(p.stats[0].max, 4744);
        assert_eq!(p.stats[0].min, 4616);
    }

    #[test]
    fn exact_percentiles_nearest_rank() {
        let sorted: Vec<u64> = (1..=100).collect();
        assert_eq!(exact_percentile(&sorted, 50.0), 50);
        assert_eq!(exact_percentile(&sorted, 90.0), 90);
        assert_eq!(exact_percentile(&sorted, 99.0), 99);
        assert_eq!(exact_percentile(&sorted, 100.0), 100);
        assert_eq!(exact_percentile(&[], 50.0), 0);
        assert_eq!(exact_percentile(&[7], 1.0), 7);
    }

    #[test]
    fn attribution_sums_exactly() {
        let p = SyscallProfile::from_log(&log());
        let a = p.attribution(1_000_000, 250_000);
        assert_eq!(a.kernel.total(), p.total_cycles());
        assert_eq!(a.total(), p.total_cycles() + 1_000_000 + 250_000);
        let text = a.render();
        assert!(text.contains("user 1000000"), "{text}");
        assert!(text.contains("fs-copy 128"), "{text}");
    }

    #[test]
    fn render_is_deterministic_and_totalled() {
        let p = SyscallProfile::from_log(&log());
        let a = p.render();
        let b = SyscallProfile::from_log(&log()).render();
        assert_eq!(a, b);
        assert!(a.contains("write"), "{a}");
        // The totals row carries the exact cycle total.
        assert!(a.contains(&p.total_cycles().to_string()), "{a}");
        // Empty profile still renders a header + totals.
        let empty = SyscallProfile::from_log(&StraceLog::default());
        assert!(empty.render().contains("total"));
    }
}
