//! Exporters: Chrome `trace_event` JSON and line-delimited JSON.
//!
//! The Chrome format is the `{"traceEvents": [...]}` object form with
//! complete events (`ph: "X"`, `ts`/`dur` in microseconds) and metadata
//! events (`ph: "M"`) naming the process and threads, loadable in
//! `about:tracing` and Perfetto. JSON is emitted by hand — the workspace
//! carries no serde dependency — via a tiny escaping writer.

use crate::TraceSession;
use std::fmt::Write as _;

/// Version stamped on every export (the JSONL `meta` line and the Chrome
/// trace's `otherData`). Consumers should reject lines whose
/// `schema_version` they don't understand rather than misread the
/// fields; the replay recording format carries (and enforces) its own
/// independent version.
pub const SCHEMA_VERSION: u32 = 1;

/// Escapes `s` for inclusion in a JSON string literal.
pub fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// Thread id used for pipeline/harness spans.
const TID_PIPELINE: u32 = 1;

/// Thread id for a syscall class: each class gets its own kernel track so
/// Perfetto shows I/O, file, and metadata traffic as separate lanes.
fn class_tid(class: &str) -> u32 {
    match class {
        "io" => 2,
        "file" => 3,
        "fs-meta" => 4,
        "ipc" => 5,
        "process" => 6,
        _ => 7,
    }
}

/// Renders the session as Chrome `trace_event` JSON.
///
/// Spans go on the "pipeline" thread with their wall-clock timestamps;
/// syscalls go on the "kernel" thread positioned by cumulative kernel
/// cycles converted to microseconds at the session's core frequency.
pub fn chrome_trace(s: &TraceSession) -> String {
    let mut ev: Vec<String> = Vec::new();
    let pname = json_escape(&format!("{} [{}]", s.bench, s.engine));
    ev.push(format!(
        r#"{{"ph":"M","pid":1,"tid":0,"name":"process_name","args":{{"name":"{pname}"}}}}"#
    ));
    ev.push(format!(
        r#"{{"ph":"M","pid":1,"tid":{TID_PIPELINE},"name":"thread_name","args":{{"name":"pipeline"}}}}"#
    ));
    // One kernel track per syscall class present in the log, named and
    // ordered by tid so the lanes are stable across runs.
    if let Some(log) = &s.strace {
        let mut classes: Vec<&'static str> = log
            .records
            .iter()
            .map(|r| crate::strace::syscall_class(r.nr))
            .collect();
        classes.sort_by_key(|c| class_tid(c));
        classes.dedup();
        for class in classes {
            ev.push(format!(
                r#"{{"ph":"M","pid":1,"tid":{},"name":"thread_name","args":{{"name":"kernel/{}"}}}}"#,
                class_tid(class),
                class
            ));
        }
    }

    for span in &s.spans {
        ev.push(format!(
            r#"{{"ph":"X","pid":1,"tid":{TID_PIPELINE},"ts":{},"dur":{},"cat":"{}","name":"{}"}}"#,
            span.start_us,
            span.dur_us.max(1),
            json_escape(&span.cat),
            json_escape(&span.name)
        ));
    }

    if let Some(log) = &s.strace {
        let us_per_cycle = 1e6 / s.freq_hz.max(1.0);
        for r in &log.records {
            let ts = (r.start_cycles as f64 * us_per_cycle * 1000.0).round() / 1000.0;
            let dur = ((r.cycles as f64 * us_per_cycle * 1000.0).round() / 1000.0).max(0.001);
            let class = crate::strace::syscall_class(r.nr);
            ev.push(format!(
                r#"{{"ph":"X","pid":1,"tid":{},"ts":{ts},"dur":{dur},"cat":"syscall/{class}","name":"{}","args":{{"ret":{},"payload":{},"cycles":{},"transport":{},"service":{},"fs_copy":{}}}}}"#,
                class_tid(class),
                crate::strace::syscall_name(r.nr),
                r.ret,
                r.payload,
                r.cycles,
                r.transport_cycles,
                r.service_cycles,
                r.fs_cycles
            ));
        }
    }

    let mut totals = String::new();
    for (i, (name, value)) in s.totals.iter().enumerate() {
        if i > 0 {
            totals.push(',');
        }
        let _ = write!(totals, r#""{}":{}"#, json_escape(name), value);
    }

    let mut out = String::from("{\"traceEvents\":[\n");
    out.push_str(&ev.join(",\n"));
    let _ = write!(
        out,
        "\n],\"displayTimeUnit\":\"ms\",\"otherData\":{{\"schema_version\":{SCHEMA_VERSION},\"bench\":\"{}\",\"engine\":\"{}\",\"counters\":{{{totals}}}}}}}",
        json_escape(&s.bench),
        json_escape(&s.engine)
    );
    out.push('\n');
    out
}

/// Renders the session as line-delimited JSON: one `meta` line, then one
/// line per span, syscall, and profiled function.
pub fn jsonl(s: &TraceSession) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        r#"{{"type":"meta","schema_version":{SCHEMA_VERSION},"bench":"{}","engine":"{}","freq_hz":{}}}"#,
        json_escape(&s.bench),
        json_escape(&s.engine),
        s.freq_hz
    );
    for (name, value) in &s.totals {
        let _ = writeln!(
            out,
            r#"{{"type":"counter","name":"{}","value":{value}}}"#,
            json_escape(name)
        );
    }
    for span in &s.spans {
        let _ = writeln!(
            out,
            r#"{{"type":"span","cat":"{}","name":"{}","start_us":{},"dur_us":{}}}"#,
            json_escape(&span.cat),
            json_escape(&span.name),
            span.start_us,
            span.dur_us
        );
    }
    if let Some(log) = &s.strace {
        for r in &log.records {
            let _ = writeln!(
                out,
                r#"{{"type":"syscall","name":"{}","class":"{}","nr":{},"args":[{},{},{}],"ret":{},"payload":{},"cycles":{},"transport":{},"service":{},"fs_copy":{},"start_cycles":{}}}"#,
                crate::strace::syscall_name(r.nr),
                crate::strace::syscall_class(r.nr),
                r.nr,
                r.args[0],
                r.args[1],
                r.args[2],
                r.ret,
                r.payload,
                r.cycles,
                r.transport_cycles,
                r.service_cycles,
                r.fs_cycles,
                r.start_cycles
            );
        }
    }
    if let (Some(p), Some(sym)) = (&s.profile, &s.symbols) {
        let (rows, coverage) = crate::report::aggregate(p, sym);
        for r in &rows {
            let _ = writeln!(
                out,
                r#"{{"type":"func","name":"{}","cycles":{},"instructions":{},"dcache_misses":{},"icache_misses":{},"mispredicts":{},"percent":{:.4}}}"#,
                json_escape(&r.name),
                r.sample.cycles(),
                r.sample.instructions,
                r.sample.dcache_misses,
                r.sample.icache_misses,
                r.sample.mispredicts,
                r.percent
            );
        }
        let _ = writeln!(
            out,
            r#"{{"type":"coverage","named_percent":{coverage:.4}}}"#
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::span::Span;
    use crate::strace::{StraceLog, SyscallRecord};

    fn session() -> TraceSession {
        let mut s = TraceSession::new("matmul", "native");
        s.spans.push(Span {
            name: "clanglite/lower".into(),
            cat: "compile".into(),
            start_us: 0,
            dur_us: 120,
        });
        s.strace = Some(StraceLog {
            records: vec![SyscallRecord {
                nr: 4,
                args: [1, 0x2000, 64, 0, 0],
                ret: 64,
                payload: 64,
                cycles: 5000,
                transport_cycles: 4400,
                service_cycles: 600,
                fs_cycles: 0,
                start_cycles: 0,
            }],
        });
        s.totals = vec![("cycles", 1000), ("instructions_retired", 400)];
        s
    }

    #[test]
    fn escape_handles_specials() {
        assert_eq!(json_escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert_eq!(json_escape("\u{1}"), "\\u0001");
    }

    #[test]
    fn chrome_trace_is_balanced_json() {
        let text = chrome_trace(&session());
        assert!(text.starts_with("{\"traceEvents\":["));
        assert!(text.contains(r#""ph":"M""#));
        assert!(text.contains(r#""schema_version":1"#));
        assert!(text.contains(r#""name":"write""#));
        assert!(text.contains(r#""name":"kernel/io""#));
        assert!(text.contains(r#""cat":"syscall/io""#));
        assert!(text.contains(r#""transport":4400"#));
        assert!(text.contains(r#""name":"clanglite/lower""#));
        // Structural sanity: balanced braces/brackets outside strings.
        let (mut braces, mut brackets, mut in_str, mut esc) = (0i64, 0i64, false, false);
        for c in text.chars() {
            if esc {
                esc = false;
                continue;
            }
            match c {
                '\\' if in_str => esc = true,
                '"' => in_str = !in_str,
                '{' if !in_str => braces += 1,
                '}' if !in_str => braces -= 1,
                '[' if !in_str => brackets += 1,
                ']' if !in_str => brackets -= 1,
                _ => {}
            }
        }
        assert_eq!(braces, 0);
        assert_eq!(brackets, 0);
        assert!(!in_str);
    }

    #[test]
    fn jsonl_has_one_object_per_line() {
        let text = jsonl(&session());
        for line in text.lines() {
            assert!(line.starts_with('{') && line.ends_with('}'), "{line}");
        }
        assert!(text.contains(r#""type":"meta""#));
        assert!(text.contains(r#""schema_version":1"#));
        assert!(text.contains(r#""type":"syscall""#));
        assert!(text.contains(r#""type":"counter""#));
    }
}
