//! Linear-scan register allocation (the browser-JIT allocator).
//!
//! The classic Poletto–Sarkar algorithm over linearized live intervals, as
//! used (in refined forms) by V8 and SpiderMonkey: one pass, no
//! interference graph. Characteristic weaknesses the paper observes
//! (§6.1.2) are faithfully present:
//!
//! - intervals are coarse (holes are ignored), so values appear live
//!   longer than they are and pressure is overstated;
//! - values live across a call may only take the profile's few
//!   callee-saved registers and are otherwise spilled outright; and
//! - when the pool is exhausted the interval that ends furthest away is
//!   spilled, with every subsequent access going through memory.

use crate::emit::{Assignment, Slot};
use crate::lir::{LFunc, VClass};
use crate::liveness::{analyze, Liveness};
use crate::profile::AllocProfile;
use wasmperf_isa::{Reg, Xmm};

struct Interval {
    vreg: u32,
    class: VClass,
    start: u32,
    end: u32,
    across_call: bool,
}

/// Allocates `f` with linear scan, returning the assignment.
pub fn allocate_linear_scan(f: &LFunc, profile: &AllocProfile) -> Assignment {
    let live: Liveness = analyze(f);
    allocate_with_liveness(f, profile, &live)
}

fn allocate_with_liveness(f: &LFunc, profile: &AllocProfile, live: &Liveness) -> Assignment {
    let mut intervals: Vec<Interval> = Vec::new();
    for (v, r) in live.range.iter().enumerate() {
        if let Some((s, e)) = r {
            intervals.push(Interval {
                vreg: v as u32,
                class: f.vclasses[v],
                start: *s,
                end: *e,
                across_call: live.live_across_call.contains(&(v as u32)),
            });
        }
    }
    intervals.sort_by_key(|i| (i.start, i.vreg));

    let mut assign = vec![Slot::Unused; f.vclasses.len()];
    let mut n_slots: u32 = 0;

    // Active intervals per class: (end, vreg, reg-index-in-pool).
    let mut active_int: Vec<(u32, u32, usize)> = Vec::new();
    let mut active_float: Vec<(u32, u32, usize)> = Vec::new();
    let mut free_int: Vec<bool> = vec![true; profile.int_pool.len()];
    let mut free_float: Vec<bool> = vec![true; profile.float_pool.len()];

    let new_slot = |n_slots: &mut u32| {
        let s = *n_slots;
        *n_slots += 1;
        Slot::Stack(s)
    };

    for iv in &intervals {
        // Expire old intervals.
        active_int.retain(|(end, _, ri)| {
            if *end < iv.start {
                free_int[*ri] = true;
                false
            } else {
                true
            }
        });
        active_float.retain(|(end, _, ri)| {
            if *end < iv.start {
                free_float[*ri] = true;
                false
            } else {
                true
            }
        });

        match iv.class {
            VClass::Int => {
                // Eligible pool entries: callee-saved only when the value
                // must survive calls.
                let eligible = |ri: usize| {
                    !iv.across_call || profile.callee_saved.contains(profile.int_pool[ri])
                };
                // Prefer caller-saved registers for call-free intervals,
                // callee-saved for call-crossing ones.
                let mut order: Vec<usize> = (0..profile.int_pool.len()).collect();
                order.sort_by_key(|&ri| {
                    profile.callee_saved.contains(profile.int_pool[ri]) != iv.across_call
                });
                let choice = order.into_iter().find(|&ri| free_int[ri] && eligible(ri));
                match choice {
                    Some(ri) => {
                        free_int[ri] = false;
                        assign[iv.vreg as usize] = Slot::IntReg(profile.int_pool[ri]);
                        active_int.push((iv.end, iv.vreg, ri));
                    }
                    None => {
                        // Spill: evict the eligible active interval ending
                        // last if it outlives the current one.
                        let victim = active_int
                            .iter()
                            .enumerate()
                            .filter(|(_, (_, _, ri))| eligible(*ri))
                            .max_by_key(|(_, (end, _, _))| *end)
                            .map(|(i, _)| i);
                        match victim {
                            Some(vi) if active_int[vi].0 > iv.end => {
                                let (_, victim_vreg, ri) = active_int[vi];
                                assign[victim_vreg as usize] = new_slot(&mut n_slots);
                                assign[iv.vreg as usize] = Slot::IntReg(profile.int_pool[ri]);
                                active_int[vi] = (iv.end, iv.vreg, ri);
                            }
                            _ => {
                                assign[iv.vreg as usize] = new_slot(&mut n_slots);
                            }
                        }
                    }
                }
            }
            VClass::Float => {
                // All xmm registers are caller-saved under System V, so
                // call-crossing float values always live in memory.
                if iv.across_call {
                    assign[iv.vreg as usize] = new_slot(&mut n_slots);
                    continue;
                }
                let choice = (0..profile.float_pool.len()).find(|&ri| free_float[ri]);
                match choice {
                    Some(ri) => {
                        free_float[ri] = false;
                        assign[iv.vreg as usize] = Slot::FloatReg(profile.float_pool[ri]);
                        active_float.push((iv.end, iv.vreg, ri));
                    }
                    None => {
                        let victim = active_float
                            .iter()
                            .enumerate()
                            .max_by_key(|(_, (end, _, _))| *end)
                            .map(|(i, _)| i);
                        match victim {
                            Some(vi) if active_float[vi].0 > iv.end => {
                                let (_, victim_vreg, ri) = active_float[vi];
                                assign[victim_vreg as usize] = new_slot(&mut n_slots);
                                assign[iv.vreg as usize] = Slot::FloatReg(profile.float_pool[ri]);
                                active_float[vi] = (iv.end, iv.vreg, ri);
                            }
                            _ => {
                                assign[iv.vreg as usize] = new_slot(&mut n_slots);
                            }
                        }
                    }
                }
            }
        }
    }

    let used_callee_saved = collect_callee_saved(&assign, profile);
    Assignment {
        of: assign,
        n_slots,
        used_callee_saved,
    }
}

/// Callee-saved registers appearing in an assignment, in pool order.
pub(crate) fn collect_callee_saved(assign: &[Slot], profile: &AllocProfile) -> Vec<Reg> {
    let mut used: Vec<Reg> = Vec::new();
    for s in assign {
        if let Slot::IntReg(r) = s {
            if profile.callee_saved.contains(*r) && !used.contains(r) {
                used.push(*r);
            }
        }
    }
    // Deterministic order.
    used.sort_by_key(|r| r.index());
    used
}

/// True if two assigned slots denote the same physical register.
pub(crate) fn same_reg(a: Slot, b: Slot) -> bool {
    match (a, b) {
        (Slot::IntReg(x), Slot::IntReg(y)) => x == y,
        (Slot::FloatReg(x), Slot::FloatReg(y)) => x == y,
        _ => false,
    }
}

/// Checks an assignment against the interference relation: no two vregs
/// that interfere (one is defined while the other is live, excluding
/// move-related pairs, which may legitimately coalesce) share a register,
/// and call-crossing values are not in caller-saved registers.
pub fn verify_no_conflicts(f: &LFunc, assign: &Assignment) -> Result<(), String> {
    use crate::lir::{for_each_def, LInst, Loc, Opnd};
    let live = analyze(f);
    for bi in 0..f.blocks.len() {
        let mut err: Option<String> = None;
        crate::liveness::backward_walk(f, bi, &live.live_in, |_, inst, live_after| {
            if err.is_some() {
                return;
            }
            let move_src: Option<u32> = match inst {
                LInst::Mov {
                    src: Opnd::Loc(Loc::V(s)),
                    ..
                } => Some(*s),
                _ => None,
            };
            let mut defs: Vec<u32> = Vec::new();
            for_each_def(inst, |v, _| defs.push(v));
            for &d in &defs {
                for &l in live_after {
                    if l != d
                        && Some(l) != move_src
                        && same_reg(assign.of[d as usize], assign.of[l as usize])
                    {
                        err = Some(format!(
                            "vregs {d} and {l} interfere but share {:?}",
                            assign.of[d as usize]
                        ));
                    }
                }
            }
        });
        if let Some(e) = err {
            return Err(e);
        }
    }
    // Call-crossing values must not sit in caller-saved registers.
    for &v in &live.live_across_call {
        match assign.of[v as usize] {
            Slot::IntReg(r) if !AllocProfileCalleeSavedCheck::is_callee_saved(r) => {
                return Err(format!("vreg {v} lives across a call in caller-saved {r}"));
            }
            Slot::FloatReg(x) => {
                return Err(format!("vreg {v} lives across a call in xmm {x}"));
            }
            _ => {}
        }
    }
    Ok(())
}

/// System V callee-saved check independent of profile.
struct AllocProfileCalleeSavedCheck;

impl AllocProfileCalleeSavedCheck {
    fn is_callee_saved(r: Reg) -> bool {
        matches!(r, Reg::Rbx | Reg::R12 | Reg::R13 | Reg::R14 | Reg::R15)
    }
}

/// Total register count helper used by tests.
pub fn distinct_registers(assign: &Assignment) -> (usize, usize) {
    let mut ints: Vec<Reg> = Vec::new();
    let mut floats: Vec<Xmm> = Vec::new();
    for s in &assign.of {
        match s {
            Slot::IntReg(r) if !ints.contains(r) => ints.push(*r),
            Slot::FloatReg(x) if !floats.contains(x) => floats.push(*x),
            _ => {}
        }
    }
    (ints.len(), floats.len())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lir::{Arg, BlockId, LBlock, LInst, Loc, Opnd, RetVal};
    use wasmperf_isa::{AluOp, Cc, Width};

    fn v(n: u32) -> Loc {
        Loc::V(n)
    }

    /// Builds a function defining `n` vregs that are all live at the end.
    fn high_pressure_func(n: u32) -> LFunc {
        let mut f = LFunc::default();
        let mut insts = Vec::new();
        for i in 0..n {
            f.new_vreg(VClass::Int);
            insts.push(LInst::Mov {
                dst: v(i),
                src: Opnd::Imm(i as i64),
                width: Width::W64,
            });
        }
        // Sum them all so every vreg stays live until its use.
        f.new_vreg(VClass::Int);
        insts.push(LInst::Mov {
            dst: v(n),
            src: Opnd::Imm(0),
            width: Width::W64,
        });
        for i in 0..n {
            insts.push(LInst::Alu {
                op: AluOp::Add,
                dst: v(n),
                src: Opnd::Loc(v(i)),
                width: Width::W64,
            });
        }
        insts.push(LInst::Ret {
            value: Some(Arg::Int(Opnd::Loc(v(n)))),
        });
        f.blocks = vec![LBlock { insts }];
        f
    }

    #[test]
    fn low_pressure_all_in_registers() {
        let f = high_pressure_func(4);
        let a = allocate_linear_scan(&f, &AllocProfile::chrome());
        assert_eq!(a.spill_count(), 0);
        verify_no_conflicts(&f, &a).unwrap();
    }

    #[test]
    fn high_pressure_spills() {
        let f = high_pressure_func(20);
        let chrome = allocate_linear_scan(&f, &AllocProfile::chrome());
        let native = allocate_linear_scan(&f, &AllocProfile::native());
        assert!(chrome.spill_count() > 0);
        // The larger native pool spills strictly less.
        assert!(native.spill_count() < chrome.spill_count());
        verify_no_conflicts(&f, &chrome).unwrap();
        verify_no_conflicts(&f, &native).unwrap();
    }

    #[test]
    fn call_crossing_values_use_callee_saved_or_spill() {
        // v0 live across a call.
        let mut f = LFunc::default();
        f.new_vreg(VClass::Int);
        f.new_vreg(VClass::Int);
        f.blocks = vec![LBlock {
            insts: vec![
                LInst::Mov {
                    dst: v(0),
                    src: Opnd::Imm(5),
                    width: Width::W64,
                },
                LInst::Call {
                    func: 0,
                    args: vec![],
                    ret: Some(RetVal::Int(v(1))),
                },
                LInst::Alu {
                    op: AluOp::Add,
                    dst: v(1),
                    src: Opnd::Loc(v(0)),
                    width: Width::W64,
                },
                LInst::Ret {
                    value: Some(Arg::Int(Opnd::Loc(v(1)))),
                },
            ],
        }];
        let a = allocate_linear_scan(&f, &AllocProfile::chrome());
        verify_no_conflicts(&f, &a).unwrap();
        match a.of[0] {
            Slot::IntReg(r) => assert!(AllocProfile::chrome().callee_saved.contains(r), "got {r}"),
            Slot::Stack(_) => {}
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn float_crossing_call_is_spilled() {
        let mut f = LFunc::default();
        f.new_vreg(VClass::Float);
        f.blocks = vec![LBlock {
            insts: vec![
                LInst::MovFImm {
                    dst: crate::lir::FLoc::V(0),
                    bits: 1.5f64.to_bits(),
                    prec: wasmperf_isa::FPrec::F64,
                },
                LInst::Call {
                    func: 0,
                    args: vec![],
                    ret: None,
                },
                LInst::Ret {
                    value: Some(Arg::Float(crate::lir::FOpnd::Loc(crate::lir::FLoc::V(0)))),
                },
            ],
        }];
        let a = allocate_linear_scan(&f, &AllocProfile::native());
        assert!(matches!(a.of[0], Slot::Stack(_)));
    }

    #[test]
    fn registers_reused_after_expiry() {
        // Sequential short-lived values should share one register.
        let mut f = LFunc::default();
        let mut insts = Vec::new();
        for i in 0..6u32 {
            f.new_vreg(VClass::Int);
            insts.push(LInst::Mov {
                dst: v(i),
                src: Opnd::Imm(i as i64),
                width: Width::W64,
            });
            insts.push(LInst::Cmp {
                lhs: Opnd::Loc(v(i)),
                rhs: Opnd::Imm(0),
                width: Width::W64,
            });
            insts.push(LInst::Jcc {
                cc: Cc::E,
                target: BlockId(1),
            });
        }
        insts.push(LInst::Ret { value: None });
        f.blocks = vec![
            LBlock { insts },
            LBlock {
                insts: vec![LInst::Ret { value: None }],
            },
        ];
        let a = allocate_linear_scan(&f, &AllocProfile::chrome());
        let (ints, _) = distinct_registers(&a);
        assert!(ints <= 2, "expected heavy reuse, got {ints} registers");
        verify_no_conflicts(&f, &a).unwrap();
    }
}
