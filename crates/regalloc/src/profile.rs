//! Allocation profiles: which registers each engine may allocate.

use wasmperf_isa::{Reg, RegSet, Xmm};

/// Registers available to an allocator, with calling-convention metadata.
///
/// `rax`, `rcx`, and `rdx` are never in a pool: they are the emitter's
/// scratch registers and have fixed roles in division and variable shifts.
/// `rsp`/`rbp` hold the machine stack and frame. The remaining eleven
/// general-purpose registers are distributed per engine, mirroring §6.1.1
/// of the paper: Chrome additionally reserves `rbx` (wasm memory base),
/// `r10` (scratch), and `r13` (GC roots); Firefox reserves `r15` (heap
/// base) and `r11` (scratch).
#[derive(Debug, Clone, PartialEq)]
pub struct AllocProfile {
    /// Human-readable name.
    pub name: &'static str,
    /// Allocatable integer registers, in preference order.
    pub int_pool: Vec<Reg>,
    /// Allocatable float registers, in preference order.
    pub float_pool: Vec<Xmm>,
    /// Callee-saved subset of the integer pool.
    pub callee_saved: RegSet,
}

/// System V callee-saved registers (excluding rsp/rbp).
pub const SYSV_CALLEE_SAVED: [Reg; 5] = [Reg::Rbx, Reg::R12, Reg::R13, Reg::R14, Reg::R15];

fn float_pool() -> Vec<Xmm> {
    // xmm14/xmm15 are emitter scratch.
    (0..14).map(Xmm).collect()
}

impl AllocProfile {
    /// The native (Clang-like) profile: the full eleven-register pool.
    pub fn native() -> AllocProfile {
        AllocProfile {
            name: "native",
            // Callee-saved first: the graph-coloring allocator prefers the
            // front of the pool for long-lived values.
            int_pool: vec![
                Reg::Rbx,
                Reg::R12,
                Reg::R13,
                Reg::R14,
                Reg::R15,
                Reg::Rsi,
                Reg::Rdi,
                Reg::R8,
                Reg::R9,
                Reg::R10,
                Reg::R11,
            ],
            float_pool: float_pool(),
            callee_saved: RegSet::of(&SYSV_CALLEE_SAVED),
        }
    }

    /// Chrome's wasm JIT profile: `rbx` is the wasm memory base, `r13`
    /// points at GC roots, and `r10` is a dedicated scratch register.
    pub fn chrome() -> AllocProfile {
        AllocProfile {
            name: "chrome",
            // Caller-saved first: JIT-style allocation prefers scratch
            // registers for short-lived stack-machine values.
            int_pool: vec![
                Reg::Rsi,
                Reg::Rdi,
                Reg::R8,
                Reg::R9,
                Reg::R11,
                Reg::R12,
                Reg::R14,
                Reg::R15,
            ],
            float_pool: float_pool(),
            callee_saved: RegSet::of(&[Reg::R12, Reg::R14, Reg::R15]),
        }
    }

    /// Firefox's wasm JIT profile: `r15` is the wasm heap base and `r11`
    /// is a dedicated scratch register.
    pub fn firefox() -> AllocProfile {
        AllocProfile {
            name: "firefox",
            int_pool: vec![
                Reg::Rsi,
                Reg::Rdi,
                Reg::R8,
                Reg::R9,
                Reg::R10,
                Reg::Rbx,
                Reg::R12,
                Reg::R13,
                Reg::R14,
            ],
            float_pool: float_pool(),
            callee_saved: RegSet::of(&[Reg::Rbx, Reg::R12, Reg::R13, Reg::R14]),
        }
    }

    /// Callee-saved registers of this profile's pool, in pool order.
    pub fn callee_saved_pool(&self) -> Vec<Reg> {
        self.int_pool
            .iter()
            .copied()
            .filter(|r| self.callee_saved.contains(*r))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pool_sizes_match_the_paper_setting() {
        assert_eq!(AllocProfile::native().int_pool.len(), 11);
        assert_eq!(AllocProfile::firefox().int_pool.len(), 9);
        assert_eq!(AllocProfile::chrome().int_pool.len(), 8);
    }

    #[test]
    fn reserved_registers_not_in_pools() {
        for p in [
            AllocProfile::native(),
            AllocProfile::chrome(),
            AllocProfile::firefox(),
        ] {
            for r in [Reg::Rax, Reg::Rcx, Reg::Rdx, Reg::Rsp, Reg::Rbp] {
                assert!(!p.int_pool.contains(&r), "{}: {r}", p.name);
            }
        }
        // Engine-reserved registers.
        let chrome = AllocProfile::chrome();
        for r in [Reg::Rbx, Reg::R10, Reg::R13] {
            assert!(!chrome.int_pool.contains(&r), "chrome reserves {r}");
        }
        let firefox = AllocProfile::firefox();
        for r in [Reg::R15, Reg::R11] {
            assert!(!firefox.int_pool.contains(&r), "firefox reserves {r}");
        }
    }

    #[test]
    fn float_pool_excludes_scratch() {
        let p = AllocProfile::native();
        assert_eq!(p.float_pool.len(), 14);
        assert!(!p.float_pool.contains(&Xmm(14)));
        assert!(!p.float_pool.contains(&Xmm(15)));
    }

    #[test]
    fn callee_saved_subsets() {
        assert_eq!(AllocProfile::native().callee_saved_pool().len(), 5);
        assert_eq!(AllocProfile::chrome().callee_saved_pool().len(), 3);
        assert_eq!(AllocProfile::firefox().callee_saved_pool().len(), 4);
    }
}
