//! Register allocation over a shared low-level IR (LIR).
//!
//! Both compiler backends lower to the same virtual-register LIR, then
//! differ in *how registers are assigned* — which is precisely the
//! contrast the paper draws in §6.1:
//!
//! - `wasmperf-clanglite` uses the **graph-coloring** allocator
//!   ([`coloring`]), the stand-in for LLVM's greedy allocator: it builds
//!   an interference graph from liveness, prefers callee-saved registers
//!   for values that live across calls, and spills rarely.
//! - `wasmperf-wasmjit` uses the **linear-scan** allocator
//!   ([`linearscan`]), as V8 and SpiderMonkey do: one pass over linearized
//!   live intervals, no interference graph, values that live across calls
//!   restricted to the (small) callee-saved subset or spilled outright.
//!
//! Allocation profiles ([`AllocProfile`]) describe each engine's register
//! pool: browsers reserve registers for the wasm heap base, GC roots, and
//! JIT scratch (§6.1.1 of the paper), shrinking the pool the allocator may
//! use. `rax`, `rcx`, and `rdx` are reserved as emitter scratch in every
//! profile (they also have fixed roles in division and shifts), so the
//! *relative* pool sizes — Clang 11, Firefox 9, Chrome 8 — mirror the
//! paper's setting.
//!
//! [`emit`] turns allocated LIR into executable `wasmperf-isa` code:
//! spilled values are accessed through `rbp`-relative slots via scratch
//! registers (producing exactly the `mov [rbp-0x28], rax` traffic visible
//! in the paper's Figure 7c), calls get System V argument moves with
//! proper parallel-move cycle breaking, and out-of-line trap stubs carry
//! WebAssembly's safety checks.

pub mod coloring;
pub mod emit;
pub mod linearscan;
pub mod lir;
pub mod liveness;
pub mod profile;

pub use coloring::allocate_coloring;
pub use emit::{emit_function, Assignment, Slot};
pub use linearscan::allocate_linear_scan;
pub use lir::{Arg, BlockId, FLoc, FOpnd, LBlock, LFunc, LInst, LMem, Loc, Opnd, RetVal, VClass};
pub use liveness::Liveness;
pub use profile::AllocProfile;
