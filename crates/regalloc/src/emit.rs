//! Emission: allocated LIR → executable `wasmperf-isa` code.
//!
//! The emitter is shared by both backends; all quality differences are
//! decided earlier (instruction selection in the backends, assignment in
//! the allocators). Responsibilities here:
//!
//! - frame construction: `push rbp; mov rbp, rsp; sub rsp, slots`,
//!   saving/restoring the callee-saved registers the assignment uses;
//! - spill-slot access through the scratch registers `rax`/`rcx`/`rdx`
//!   (and `xmm14`/`xmm15` for floats), producing the `[rbp-0x28]`-style
//!   traffic of the paper's Figure 7c when the allocator spilled;
//! - System V call lowering with parallel-move resolution (argument
//!   registers may be both sources and destinations);
//! - out-of-line trap stubs shared per function, as real JITs emit.

use crate::lir::{Arg, FLoc, FOpnd, LFunc, LInst, LMem, Loc, Opnd, RetVal, VClass};
use crate::profile::AllocProfile;
use wasmperf_isa::inst::FOperand;
use wasmperf_isa::module::NO_TAG;
use wasmperf_isa::{
    AluOp, AsmBuilder, Cc, FPrec, FuncId, Function, Inst, Label, MemRef, Operand, Reg, TrapKind,
    Width, Xmm,
};

/// Where a virtual register ended up.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Slot {
    /// An integer register.
    IntReg(Reg),
    /// A float register.
    FloatReg(Xmm),
    /// A stack slot (index; `[rbp - 8*(index+1)]`).
    Stack(u32),
    /// Never used.
    Unused,
}

/// The result of register allocation.
#[derive(Debug, Clone)]
pub struct Assignment {
    /// Assignment per virtual register.
    pub of: Vec<Slot>,
    /// Number of stack slots used.
    pub n_slots: u32,
    /// Callee-saved registers the assignment uses (must be saved).
    pub used_callee_saved: Vec<Reg>,
}

impl Assignment {
    /// Number of virtual registers spilled to the stack.
    pub fn spill_count(&self) -> usize {
        self.of
            .iter()
            .filter(|s| matches!(s, Slot::Stack(_)))
            .count()
    }
}

const SCRATCH: [Reg; 3] = [Reg::Rax, Reg::Rcx, Reg::Rdx];
const FSCRATCH: [Xmm; 2] = [Xmm(14), Xmm(15)];

struct Emitter<'a> {
    assign: &'a Assignment,
    asm: AsmBuilder,
    block_labels: Vec<Label>,
    trap_labels: Vec<(TrapKind, Label)>,
    /// Scratch registers handed out within the current instruction.
    scratch_used: usize,
    fscratch_used: usize,
}

fn slot_mem(idx: u32) -> MemRef {
    MemRef::base_disp(Reg::Rbp, -8 * (idx as i64 + 1))
}

impl<'a> Emitter<'a> {
    fn take_scratch(&mut self) -> Reg {
        let r = SCRATCH[self.scratch_used];
        self.scratch_used += 1;
        r
    }

    fn take_fscratch(&mut self) -> Xmm {
        let x = FSCRATCH[self.fscratch_used];
        self.fscratch_used += 1;
        x
    }

    fn reset_scratch(&mut self) {
        self.scratch_used = 0;
        self.fscratch_used = 0;
    }

    fn slot_of(&self, v: u32) -> Slot {
        self.assign.of[v as usize]
    }

    /// Resolves an integer location to a physical register, loading from
    /// the stack slot into a scratch register if spilled.
    fn reg_for_read(&mut self, loc: &Loc, width: Width) -> Reg {
        match loc {
            Loc::P(r) => *r,
            Loc::V(v) => match self.slot_of(*v) {
                Slot::IntReg(r) => r,
                Slot::Stack(i) => {
                    let s = self.take_scratch();
                    self.asm.emit(Inst::Mov {
                        dst: Operand::Reg(s),
                        src: Operand::Mem(slot_mem(i)),
                        width: width.max_w64(),
                    });
                    s
                }
                other => panic!("int vreg {v} assigned {other:?}"),
            },
        }
    }

    /// Resolves a destination location: returns the register to write and
    /// an optional slot to store back afterwards.
    fn reg_for_write(&mut self, loc: &Loc) -> (Reg, Option<u32>) {
        match loc {
            Loc::P(r) => (*r, None),
            Loc::V(v) => match self.slot_of(*v) {
                Slot::IntReg(r) => (r, None),
                Slot::Stack(i) => (self.take_scratch(), Some(i)),
                other => panic!("int vreg {v} assigned {other:?}"),
            },
        }
    }

    fn store_back(&mut self, reg: Reg, slot: Option<u32>) {
        if let Some(i) = slot {
            self.asm.emit(Inst::Mov {
                dst: Operand::Mem(slot_mem(i)),
                src: Operand::Reg(reg),
                width: Width::W64,
            });
        }
    }

    /// For two-address destinations: loads the current value if spilled.
    fn reg_for_rmw(&mut self, loc: &Loc, width: Width) -> (Reg, Option<u32>) {
        match loc {
            Loc::P(r) => (*r, None),
            Loc::V(v) => match self.slot_of(*v) {
                Slot::IntReg(r) => (r, None),
                Slot::Stack(i) => {
                    let s = self.take_scratch();
                    self.asm.emit(Inst::Mov {
                        dst: Operand::Reg(s),
                        src: Operand::Mem(slot_mem(i)),
                        width: width.max_w64(),
                    });
                    (s, Some(i))
                }
                other => panic!("int vreg {v} assigned {other:?}"),
            },
        }
    }

    fn mem(&mut self, m: &LMem, width: Width) -> MemRef {
        let base = m
            .base
            .as_ref()
            .map(|l| self.reg_for_read(l, width.max_w64()));
        let index = m
            .index
            .as_ref()
            .map(|(l, s)| (self.reg_for_read(l, width.max_w64()), *s));
        MemRef {
            base,
            index,
            disp: m.disp,
        }
    }

    fn opnd(&mut self, o: &Opnd, width: Width) -> Operand {
        match o {
            Opnd::Loc(l) => Operand::Reg(self.reg_for_read(l, width)),
            Opnd::Imm(v) => Operand::Imm(*v),
            Opnd::Mem(m) => Operand::Mem(self.mem(m, width)),
        }
    }

    fn xmm_for_read(&mut self, l: &FLoc, prec: FPrec) -> Xmm {
        match l {
            FLoc::P(x) => *x,
            FLoc::V(v) => match self.slot_of(*v) {
                Slot::FloatReg(x) => x,
                Slot::Stack(i) => {
                    let s = self.take_fscratch();
                    self.asm.emit(Inst::MovF {
                        dst: FOperand::Xmm(s),
                        src: FOperand::Mem(slot_mem(i)),
                        prec,
                    });
                    s
                }
                other => panic!("float vreg {v} assigned {other:?}"),
            },
        }
    }

    fn xmm_for_write(&mut self, l: &FLoc) -> (Xmm, Option<u32>) {
        match l {
            FLoc::P(x) => (*x, None),
            FLoc::V(v) => match self.slot_of(*v) {
                Slot::FloatReg(x) => (x, None),
                Slot::Stack(i) => (self.take_fscratch(), Some(i)),
                other => panic!("float vreg {v} assigned {other:?}"),
            },
        }
    }

    fn xmm_for_rmw(&mut self, l: &FLoc, prec: FPrec) -> (Xmm, Option<u32>) {
        match l {
            FLoc::P(x) => (*x, None),
            FLoc::V(v) => match self.slot_of(*v) {
                Slot::FloatReg(x) => (x, None),
                Slot::Stack(i) => {
                    let s = self.take_fscratch();
                    self.asm.emit(Inst::MovF {
                        dst: FOperand::Xmm(s),
                        src: FOperand::Mem(slot_mem(i)),
                        prec,
                    });
                    (s, Some(i))
                }
                other => panic!("float vreg {v} assigned {other:?}"),
            },
        }
    }

    fn fstore_back(&mut self, x: Xmm, slot: Option<u32>, prec: FPrec) {
        if let Some(i) = slot {
            self.asm.emit(Inst::MovF {
                dst: FOperand::Mem(slot_mem(i)),
                src: FOperand::Xmm(x),
                prec,
            });
        }
    }

    fn fopnd(&mut self, o: &FOpnd, prec: FPrec) -> FOperand {
        match o {
            FOpnd::Loc(l) => FOperand::Xmm(self.xmm_for_read(l, prec)),
            FOpnd::Mem(m) => FOperand::Mem(self.mem(m, Width::W64)),
        }
    }

    fn trap_label(&mut self, kind: TrapKind) -> Label {
        if let Some((_, l)) = self.trap_labels.iter().find(|(k, _)| *k == kind) {
            return *l;
        }
        let l = self.asm.new_label();
        self.trap_labels.push((kind, l));
        l
    }

    fn epilogue(&mut self) {
        for r in self.assign.used_callee_saved.iter().rev() {
            self.asm.emit(Inst::Pop { dst: *r });
        }
        self.asm.emit(Inst::Mov {
            dst: Operand::Reg(Reg::Rsp),
            src: Operand::Reg(Reg::Rbp),
            width: Width::W64,
        });
        self.asm.emit(Inst::Pop { dst: Reg::Rbp });
        self.asm.emit(Inst::Ret);
    }

    /// Parallel move of call arguments into System V registers.
    fn move_args(&mut self, args: &[Arg]) {
        // Resolve argument sources *before* writing any argument register,
        // since sources may live in argument registers.
        let mut int_idx = 0usize;
        let mut float_idx = 0usize;
        let mut int_moves: Vec<(Reg, Operand)> = Vec::new(); // dst <- src
        let mut float_moves: Vec<(Xmm, FOperand)> = Vec::new();
        for a in args {
            match a {
                Arg::Int(o) => {
                    let dst = Reg::SYSV_ARGS[int_idx];
                    int_idx += 1;
                    let src = match o {
                        Opnd::Loc(Loc::P(r)) => Operand::Reg(*r),
                        Opnd::Loc(Loc::V(v)) => match self.slot_of(*v) {
                            Slot::IntReg(r) => Operand::Reg(r),
                            Slot::Stack(i) => Operand::Mem(slot_mem(i)),
                            other => panic!("arg vreg {v} assigned {other:?}"),
                        },
                        Opnd::Imm(v) => Operand::Imm(*v),
                        Opnd::Mem(_) => panic!("memory call arguments unsupported"),
                    };
                    int_moves.push((dst, src));
                }
                Arg::Float(o) => {
                    let dst = Xmm::SYSV_ARGS[float_idx];
                    float_idx += 1;
                    let src = match o {
                        FOpnd::Loc(FLoc::P(x)) => FOperand::Xmm(*x),
                        FOpnd::Loc(FLoc::V(v)) => match self.slot_of(*v) {
                            Slot::FloatReg(x) => FOperand::Xmm(x),
                            Slot::Stack(i) => FOperand::Mem(slot_mem(i)),
                            other => panic!("float arg vreg {v} assigned {other:?}"),
                        },
                        FOpnd::Mem(_) => panic!("memory call arguments unsupported"),
                    };
                    float_moves.push((dst, src));
                }
            }
        }

        self.parallel_int_moves(int_moves);
        self.parallel_float_moves(float_moves);
    }

    /// Executes `dst <- src` register moves atomically (cycle breaking
    /// through rax).
    fn parallel_int_moves(&mut self, moves: Vec<(Reg, Operand)>) {
        let mut pending = moves;
        while !pending.is_empty() {
            // Emit every move whose destination is not a source of another
            // pending move.
            let mut progressed = false;
            let mut i = 0;
            while i < pending.len() {
                let (dst, _) = pending[i];
                let dst_is_source = pending
                    .iter()
                    .enumerate()
                    .any(|(j, (_, src))| j != i && matches!(src, Operand::Reg(r) if *r == dst));
                if !dst_is_source {
                    let (dst, src) = pending.remove(i);
                    if src != Operand::Reg(dst) {
                        self.asm.emit(Inst::Mov {
                            dst: Operand::Reg(dst),
                            src,
                            width: Width::W64,
                        });
                    }
                    progressed = true;
                } else {
                    i += 1;
                }
            }
            if !progressed {
                // A cycle: park one source in rax and re-enqueue the move
                // with rax as its source, which unblocks the chain.
                let (dst, src) = pending.remove(0);
                self.asm.emit(Inst::Mov {
                    dst: Operand::Reg(Reg::Rax),
                    src,
                    width: Width::W64,
                });
                pending.push((dst, Operand::Reg(Reg::Rax)));
            }
        }
    }

    /// Executes float `dst <- src` moves atomically (cycle breaking
    /// through xmm15).
    fn parallel_float_moves(&mut self, moves: Vec<(Xmm, FOperand)>) {
        let mut pending = moves;
        while !pending.is_empty() {
            let mut progressed = false;
            let mut i = 0;
            while i < pending.len() {
                let (dst, _) = pending[i];
                let dst_is_source = pending
                    .iter()
                    .enumerate()
                    .any(|(j, (_, src))| j != i && matches!(src, FOperand::Xmm(x) if *x == dst));
                if !dst_is_source {
                    let (dst, src) = pending.remove(i);
                    if src != FOperand::Xmm(dst) {
                        self.asm.emit(Inst::MovF {
                            dst: FOperand::Xmm(dst),
                            src,
                            prec: FPrec::F64,
                        });
                    }
                    progressed = true;
                } else {
                    i += 1;
                }
            }
            if !progressed {
                let (dst, src) = pending.remove(0);
                self.asm.emit(Inst::MovF {
                    dst: FOperand::Xmm(Xmm(15)),
                    src,
                    prec: FPrec::F64,
                });
                pending.push((dst, FOperand::Xmm(Xmm(15))));
            }
        }
    }

    fn finish_call(&mut self, ret: &Option<RetVal>) {
        match ret {
            Some(RetVal::Int(l)) => {
                let (r, sb) = self.reg_for_write(l);
                if r != Reg::Rax {
                    self.asm.emit(Inst::Mov {
                        dst: Operand::Reg(r),
                        src: Operand::Reg(Reg::Rax),
                        width: Width::W64,
                    });
                } else if sb.is_some() {
                    // Scratch happened to be rax; nothing to move.
                }
                if let Some(i) = sb {
                    self.asm.emit(Inst::Mov {
                        dst: Operand::Mem(slot_mem(i)),
                        src: Operand::Reg(Reg::Rax),
                        width: Width::W64,
                    });
                }
            }
            Some(RetVal::Float(l)) => {
                let (x, sb) = self.xmm_for_write(l);
                if x != Xmm(0) {
                    self.asm.emit(Inst::MovF {
                        dst: FOperand::Xmm(x),
                        src: FOperand::Xmm(Xmm(0)),
                        prec: FPrec::F64,
                    });
                    self.fstore_back(x, sb, FPrec::F64);
                } else if let Some(i) = sb {
                    self.asm.emit(Inst::MovF {
                        dst: FOperand::Mem(slot_mem(i)),
                        src: FOperand::Xmm(Xmm(0)),
                        prec: FPrec::F64,
                    });
                }
            }
            None => {}
        }
    }

    fn emit_inst(&mut self, inst: &LInst) {
        self.reset_scratch();
        match inst {
            LInst::Mov { dst, src, width } => {
                let s = self.opnd(src, *width);
                let (d, sb) = self.reg_for_write(dst);
                // Self-moves arise when the allocator coalesced a
                // move-related pair; elide them as real compilers do.
                if s != Operand::Reg(d) {
                    self.asm.emit(Inst::Mov {
                        dst: Operand::Reg(d),
                        src: s,
                        width: *width,
                    });
                }
                self.store_back(d, sb);
            }
            LInst::Store { mem, src, width } => {
                let s = self.opnd(src, *width);
                let m = self.mem(mem, *width);
                self.asm.emit(Inst::Mov {
                    dst: Operand::Mem(m),
                    src: s,
                    width: *width,
                });
            }
            LInst::Movzx { dst, src, from } => {
                let s = self.opnd(src, *from);
                let (d, sb) = self.reg_for_write(dst);
                self.asm.emit(Inst::Movzx {
                    dst: d,
                    src: s,
                    from: *from,
                });
                self.store_back(d, sb);
            }
            LInst::Movsx { dst, src, from, to } => {
                let s = self.opnd(src, *from);
                let (d, sb) = self.reg_for_write(dst);
                self.asm.emit(Inst::Movsx {
                    dst: d,
                    src: s,
                    from: *from,
                    to: *to,
                });
                self.store_back(d, sb);
            }
            LInst::Lea { dst, mem, width } => {
                let m = self.mem(mem, *width);
                let (d, sb) = self.reg_for_write(dst);
                self.asm.emit(Inst::Lea {
                    dst: d,
                    mem: m,
                    width: *width,
                });
                self.store_back(d, sb);
            }
            LInst::Alu {
                op,
                dst,
                src,
                width,
            } => {
                let s = self.opnd(src, *width);
                let (d, sb) = self.reg_for_rmw(dst, *width);
                self.asm.emit(Inst::Alu {
                    op: *op,
                    dst: Operand::Reg(d),
                    src: s,
                    width: *width,
                });
                self.store_back(d, sb);
            }
            LInst::AluMem {
                op,
                mem,
                src,
                width,
            } => {
                let s = self.opnd(src, *width);
                let m = self.mem(mem, *width);
                self.asm.emit(Inst::Alu {
                    op: *op,
                    dst: Operand::Mem(m),
                    src: s,
                    width: *width,
                });
            }
            LInst::Shift {
                op,
                dst,
                count,
                width,
            } => {
                // Variable counts go through cl. The destination must be
                // resolved BEFORE the count is parked in rcx: rcx doubles
                // as the second emitter scratch, and a spilled destination
                // resolved afterwards would reload into it, clobbering the
                // count (the shift would then rotate by the destination's
                // own low bits).
                let (d, sb) = self.reg_for_rmw(dst, *width);
                let count_op = match count {
                    Opnd::Imm(v) => Operand::Imm(*v),
                    Opnd::Loc(l) => {
                        // A spilled count loads straight into rcx rather
                        // than through a scratch register.
                        let src = match l {
                            Loc::P(r) => Operand::Reg(*r),
                            Loc::V(v) => match self.slot_of(*v) {
                                Slot::IntReg(r) => Operand::Reg(r),
                                Slot::Stack(i) => Operand::Mem(slot_mem(i)),
                                other => panic!("shift count vreg assigned {other:?}"),
                            },
                        };
                        if src != Operand::Reg(Reg::Rcx) {
                            self.asm.emit(Inst::Mov {
                                dst: Operand::Reg(Reg::Rcx),
                                src,
                                width: *width,
                            });
                        }
                        Operand::Reg(Reg::Rcx)
                    }
                    Opnd::Mem(m) => {
                        // Any spilled address component reloads into rcx or
                        // rdx at worst, and the mov below consumes it before
                        // rcx is overwritten.
                        let mm = self.mem(m, *width);
                        self.asm.emit(Inst::Mov {
                            dst: Operand::Reg(Reg::Rcx),
                            src: Operand::Mem(mm),
                            width: *width,
                        });
                        Operand::Reg(Reg::Rcx)
                    }
                };
                self.asm.emit(Inst::Alu {
                    op: *op,
                    dst: Operand::Reg(d),
                    src: count_op,
                    width: *width,
                });
                self.store_back(d, sb);
            }
            LInst::Neg { dst, width } => {
                let (d, sb) = self.reg_for_rmw(dst, *width);
                self.asm.emit(Inst::Neg {
                    dst: Operand::Reg(d),
                    width: *width,
                });
                self.store_back(d, sb);
            }
            LInst::Not { dst, width } => {
                let (d, sb) = self.reg_for_rmw(dst, *width);
                self.asm.emit(Inst::Not {
                    dst: Operand::Reg(d),
                    width: *width,
                });
                self.store_back(d, sb);
            }
            LInst::Imul { dst, src, width } => {
                let s = self.opnd(src, *width);
                let (d, sb) = self.reg_for_rmw(dst, *width);
                self.asm.emit(Inst::Imul {
                    dst: d,
                    src: s,
                    width: *width,
                });
                self.store_back(d, sb);
            }
            LInst::Imul3 {
                dst,
                src,
                imm,
                width,
            } => {
                let s = self.opnd(src, *width);
                let (d, sb) = self.reg_for_write(dst);
                self.asm.emit(Inst::Imul3 {
                    dst: d,
                    src: s,
                    imm: *imm,
                    width: *width,
                });
                self.store_back(d, sb);
            }
            LInst::Div {
                signed,
                rem,
                dst,
                lhs,
                rhs,
                width,
            } => {
                // Dividend into rax; rdx is the high half.
                let l = match lhs {
                    Loc::P(r) => Operand::Reg(*r),
                    Loc::V(v) => match self.slot_of(*v) {
                        Slot::IntReg(r) => Operand::Reg(r),
                        Slot::Stack(i) => Operand::Mem(slot_mem(i)),
                        other => panic!("div lhs {other:?}"),
                    },
                };
                self.asm.emit(Inst::Mov {
                    dst: Operand::Reg(Reg::Rax),
                    src: l,
                    width: *width,
                });
                // Divisor must not be rax/rdx; pool registers never are,
                // and spilled divisors go to rcx.
                let divisor = match rhs {
                    Loc::P(r) => Operand::Reg(*r),
                    Loc::V(v) => match self.slot_of(*v) {
                        Slot::IntReg(r) => Operand::Reg(r),
                        Slot::Stack(i) => {
                            self.asm.emit(Inst::Mov {
                                dst: Operand::Reg(Reg::Rcx),
                                src: Operand::Mem(slot_mem(i)),
                                width: *width,
                            });
                            Operand::Reg(Reg::Rcx)
                        }
                        other => panic!("div rhs {other:?}"),
                    },
                };
                if *signed {
                    self.asm.emit(Inst::Cqo { width: *width });
                } else {
                    self.asm.emit(Inst::Alu {
                        op: AluOp::Xor,
                        dst: Operand::Reg(Reg::Rdx),
                        src: Operand::Reg(Reg::Rdx),
                        width: Width::W32,
                    });
                }
                self.asm.emit(Inst::Div {
                    src: divisor,
                    signed: *signed,
                    width: *width,
                });
                let result = if *rem { Reg::Rdx } else { Reg::Rax };
                let (d, sb) = self.reg_for_write(dst);
                if d != result {
                    self.asm.emit(Inst::Mov {
                        dst: Operand::Reg(d),
                        src: Operand::Reg(result),
                        width: *width,
                    });
                    self.store_back(d, sb);
                } else if let Some(i) = sb {
                    self.asm.emit(Inst::Mov {
                        dst: Operand::Mem(slot_mem(i)),
                        src: Operand::Reg(result),
                        width: Width::W64,
                    });
                }
            }
            LInst::Cmp { lhs, rhs, width } => {
                let l = self.opnd(lhs, *width);
                let r = self.opnd(rhs, *width);
                self.asm.emit(Inst::Cmp {
                    lhs: l,
                    rhs: r,
                    width: *width,
                });
            }
            LInst::Test { lhs, rhs, width } => {
                let l = self.opnd(lhs, *width);
                let r = self.opnd(rhs, *width);
                self.asm.emit(Inst::Test {
                    lhs: l,
                    rhs: r,
                    width: *width,
                });
            }
            LInst::Cmov {
                cc,
                dst,
                src,
                width,
            } => {
                let s = self.opnd(src, *width);
                let (d, sb) = self.reg_for_rmw(dst, *width);
                self.asm.emit(Inst::Cmov {
                    cc: *cc,
                    dst: d,
                    src: s,
                    width: *width,
                });
                self.store_back(d, sb);
            }
            LInst::Setcc { cc, dst } => {
                let (d, sb) = self.reg_for_write(dst);
                self.asm.emit(Inst::Setcc { cc: *cc, dst: d });
                self.store_back(d, sb);
            }
            LInst::Lzcnt { dst, src, width } => {
                let s = self.opnd(src, *width);
                let (d, sb) = self.reg_for_write(dst);
                self.asm.emit(Inst::Lzcnt {
                    dst: d,
                    src: s,
                    width: *width,
                });
                self.store_back(d, sb);
            }
            LInst::Tzcnt { dst, src, width } => {
                let s = self.opnd(src, *width);
                let (d, sb) = self.reg_for_write(dst);
                self.asm.emit(Inst::Tzcnt {
                    dst: d,
                    src: s,
                    width: *width,
                });
                self.store_back(d, sb);
            }
            LInst::Popcnt { dst, src, width } => {
                let s = self.opnd(src, *width);
                let (d, sb) = self.reg_for_write(dst);
                self.asm.emit(Inst::Popcnt {
                    dst: d,
                    src: s,
                    width: *width,
                });
                self.store_back(d, sb);
            }
            LInst::MovF { dst, src, prec } => {
                let s = self.fopnd(src, *prec);
                match dst {
                    FOpnd::Loc(l) => {
                        let (x, sb) = self.xmm_for_write(l);
                        self.asm.emit(Inst::MovF {
                            dst: FOperand::Xmm(x),
                            src: s,
                            prec: *prec,
                        });
                        self.fstore_back(x, sb, *prec);
                    }
                    FOpnd::Mem(m) => {
                        // A memory-to-memory float move goes through
                        // scratch.
                        let s2 = match s {
                            FOperand::Mem(_) => {
                                let x = self.take_fscratch();
                                self.asm.emit(Inst::MovF {
                                    dst: FOperand::Xmm(x),
                                    src: s,
                                    prec: *prec,
                                });
                                FOperand::Xmm(x)
                            }
                            other => other,
                        };
                        let m2 = self.mem(m, Width::W64);
                        self.asm.emit(Inst::MovF {
                            dst: FOperand::Mem(m2),
                            src: s2,
                            prec: *prec,
                        });
                    }
                }
            }
            LInst::MovFImm { dst, bits, prec } => {
                self.asm.emit(Inst::Mov {
                    dst: Operand::Reg(Reg::Rax),
                    src: Operand::Imm(*bits as i64),
                    width: Width::W64,
                });
                let (x, sb) = self.xmm_for_write(dst);
                self.asm.emit(Inst::MovGprToXmm {
                    dst: x,
                    src: Reg::Rax,
                    width: Width::W64,
                });
                self.fstore_back(x, sb, *prec);
            }
            LInst::AluF { op, dst, src, prec } => {
                let s = self.fopnd(src, *prec);
                let (x, sb) = self.xmm_for_rmw(dst, *prec);
                self.asm.emit(Inst::AluF {
                    op: *op,
                    dst: x,
                    src: s,
                    prec: *prec,
                });
                self.fstore_back(x, sb, *prec);
            }
            LInst::RoundF {
                dst,
                src,
                prec,
                mode,
            } => {
                let s = self.fopnd(src, *prec);
                let (x, sb) = self.xmm_for_write(dst);
                self.asm.emit(Inst::RoundF {
                    dst: x,
                    src: s,
                    prec: *prec,
                    mode: *mode,
                });
                self.fstore_back(x, sb, *prec);
            }
            LInst::AbsF { dst, src, prec } => {
                let s = self.fopnd(src, *prec);
                let (x, sb) = self.xmm_for_write(dst);
                self.asm.emit(Inst::AbsF {
                    dst: x,
                    src: s,
                    prec: *prec,
                });
                self.fstore_back(x, sb, *prec);
            }
            LInst::SqrtF { dst, src, prec } => {
                let s = self.fopnd(src, *prec);
                let (x, sb) = self.xmm_for_write(dst);
                self.asm.emit(Inst::SqrtF {
                    dst: x,
                    src: s,
                    prec: *prec,
                });
                self.fstore_back(x, sb, *prec);
            }
            LInst::Ucomis { lhs, rhs, prec } => {
                let r = self.fopnd(rhs, *prec);
                let l = self.xmm_for_read(lhs, *prec);
                self.asm.emit(Inst::Ucomis {
                    lhs: l,
                    rhs: r,
                    prec: *prec,
                });
            }
            LInst::CvtIntToF {
                dst,
                src,
                width,
                prec,
                unsigned,
            } => {
                let s = self.opnd(src, *width);
                let (x, sb) = self.xmm_for_write(dst);
                self.asm.emit(Inst::CvtIntToF {
                    dst: x,
                    src: s,
                    width: *width,
                    prec: *prec,
                    unsigned: *unsigned,
                });
                self.fstore_back(x, sb, *prec);
            }
            LInst::CvtFToInt {
                dst,
                src,
                width,
                prec,
                unsigned,
            } => {
                let s = self.fopnd(src, *prec);
                let (d, sb) = self.reg_for_write(dst);
                self.asm.emit(Inst::CvtFToInt {
                    dst: d,
                    src: s,
                    width: *width,
                    prec: *prec,
                    unsigned: *unsigned,
                });
                self.store_back(d, sb);
            }
            LInst::CvtFToF { dst, src, from } => {
                let s = self.fopnd(src, *from);
                let (x, sb) = self.xmm_for_write(dst);
                self.asm.emit(Inst::CvtFToF {
                    dst: x,
                    src: s,
                    from: *from,
                });
                let to = match from {
                    FPrec::F32 => FPrec::F64,
                    FPrec::F64 => FPrec::F32,
                };
                self.fstore_back(x, sb, to);
            }
            LInst::Jmp { target } => {
                let l = self.block_labels[target.0 as usize];
                self.asm.emit(Inst::Jmp { target: l });
            }
            LInst::Jcc { cc, target } => {
                let l = self.block_labels[target.0 as usize];
                self.asm.emit(Inst::Jcc { cc: *cc, target: l });
            }
            LInst::TrapIf { cc, kind } => {
                let l = self.trap_label(*kind);
                self.asm.emit(Inst::Jcc { cc: *cc, target: l });
            }
            LInst::Trap { kind } => {
                self.asm.emit(Inst::Trap { kind: *kind });
            }
            LInst::StackCheck { limit_addr } => {
                self.asm.emit(Inst::Cmp {
                    lhs: Operand::Reg(Reg::Rsp),
                    rhs: Operand::Mem(MemRef::abs(*limit_addr as i64)),
                    width: Width::W64,
                });
                let l = self.trap_label(TrapKind::StackOverflow);
                self.asm.emit(Inst::Jcc {
                    cc: Cc::B,
                    target: l,
                });
            }
            LInst::Call { func, args, ret } => {
                self.move_args(args);
                self.asm.emit(Inst::Call {
                    target: FuncId(*func),
                });
                self.finish_call(ret);
            }
            LInst::CallIndirect { target, args, ret } => {
                // Park the resolved target on the machine stack across the
                // argument moves (which may clobber any caller-saved or
                // scratch register), then call through rax.
                let t = self.opnd(target, Width::W64);
                self.asm.emit(Inst::Push { src: t });
                self.move_args(args);
                self.asm.emit(Inst::Pop { dst: Reg::Rax });
                self.asm.emit(Inst::CallIndirect {
                    target: Operand::Reg(Reg::Rax),
                });
                self.finish_call(ret);
            }
            LInst::CallHost { id, args, ret } => {
                let wrapped: Vec<Arg> = args.iter().map(|o| Arg::Int(*o)).collect();
                self.move_args(&wrapped);
                self.asm.emit(Inst::CallHost { id: *id });
                if let Some(l) = ret {
                    self.finish_call(&Some(RetVal::Int(*l)));
                }
            }
            LInst::Ret { value } => {
                match value {
                    Some(Arg::Int(o)) => {
                        let s = self.opnd(o, Width::W64);
                        if s != Operand::Reg(Reg::Rax) {
                            self.asm.emit(Inst::Mov {
                                dst: Operand::Reg(Reg::Rax),
                                src: s,
                                width: Width::W64,
                            });
                        }
                    }
                    Some(Arg::Float(o)) => {
                        let s = self.fopnd(o, FPrec::F64);
                        if s != FOperand::Xmm(Xmm(0)) {
                            self.asm.emit(Inst::MovF {
                                dst: FOperand::Xmm(Xmm(0)),
                                src: s,
                                prec: FPrec::F64,
                            });
                        }
                    }
                    None => {}
                }
                self.epilogue();
            }
        }
    }
}

/// Extension trait: widths below 32 bits use full-register moves for slot
/// traffic.
trait WidthExt {
    fn max_w64(self) -> Width;
}

impl WidthExt for Width {
    fn max_w64(self) -> Width {
        Width::W64
    }
}

/// Emits one allocated function to executable form.
///
/// `param_vregs` gives, for each parameter in order, the virtual register
/// it binds to; the prologue moves the System V argument registers into
/// those assignments.
pub fn emit_function(f: &LFunc, assign: &Assignment, _profile: &AllocProfile) -> Function {
    let mut e = Emitter {
        assign,
        asm: AsmBuilder::new(f.name.clone()),
        block_labels: Vec::new(),
        trap_labels: Vec::new(),
        scratch_used: 0,
        fscratch_used: 0,
    };

    for _ in &f.blocks {
        let l = e.asm.new_label();
        e.block_labels.push(l);
    }

    // Prologue.
    e.asm.emit(Inst::Push {
        src: Operand::Reg(Reg::Rbp),
    });
    e.asm.emit(Inst::Mov {
        dst: Operand::Reg(Reg::Rbp),
        src: Operand::Reg(Reg::Rsp),
        width: Width::W64,
    });
    if assign.n_slots > 0 {
        e.asm.emit(Inst::Alu {
            op: AluOp::Sub,
            dst: Operand::Reg(Reg::Rsp),
            src: Operand::Imm(assign.n_slots as i64 * 8),
            width: Width::W64,
        });
    }
    for r in &assign.used_callee_saved {
        e.asm.emit(Inst::Push {
            src: Operand::Reg(*r),
        });
    }

    // Bind parameters: move the System V argument registers into their
    // assigned homes. Spill-slot destinations go first (their sources are
    // still intact), then the register destinations as one parallel move —
    // an argument register may be both a source and a destination.
    let mut int_idx = 0usize;
    let mut float_idx = 0usize;
    let mut int_moves: Vec<(Reg, Operand)> = Vec::new();
    let mut float_moves: Vec<(Xmm, FOperand)> = Vec::new();
    for (vi, class) in f.params.iter().enumerate() {
        match class {
            VClass::Int => {
                let src = Reg::SYSV_ARGS[int_idx];
                int_idx += 1;
                match assign.of[vi] {
                    Slot::IntReg(r) => {
                        if r != src {
                            int_moves.push((r, Operand::Reg(src)));
                        }
                    }
                    Slot::Stack(i) => {
                        e.asm.emit(Inst::Mov {
                            dst: Operand::Mem(slot_mem(i)),
                            src: Operand::Reg(src),
                            width: Width::W64,
                        });
                    }
                    Slot::Unused => {}
                    other => panic!("int param assigned {other:?}"),
                }
            }
            VClass::Float => {
                let src = Xmm::SYSV_ARGS[float_idx];
                float_idx += 1;
                match assign.of[vi] {
                    Slot::FloatReg(x) => {
                        if x != src {
                            float_moves.push((x, FOperand::Xmm(src)));
                        }
                    }
                    Slot::Stack(i) => {
                        e.asm.emit(Inst::MovF {
                            dst: FOperand::Mem(slot_mem(i)),
                            src: FOperand::Xmm(src),
                            prec: FPrec::F64,
                        });
                    }
                    Slot::Unused => {}
                    other => panic!("float param assigned {other:?}"),
                }
            }
        }
    }
    e.parallel_int_moves(int_moves);
    e.parallel_float_moves(float_moves);

    // Source tags, parallel to the emitted instruction stream. The
    // prologue and parameter moves carry no source tag; each body
    // instruction inherits the LIR instruction's tag (when the frontend
    // provided `src_tags`), covering however many machine instructions it
    // expanded to.
    let mut inst_tags = vec![NO_TAG; e.asm.len()];

    // Body. An unconditional jump to the immediately following block is
    // elided (both backends terminate every block explicitly and rely on
    // this layout cleanup, as real compilers do).
    for (bi, b) in f.blocks.iter().enumerate() {
        e.asm.bind(e.block_labels[bi]);
        let tag_of = |ii: usize| -> u32 {
            f.src_tags
                .get(bi)
                .and_then(|tags| tags.get(ii))
                .copied()
                .unwrap_or(NO_TAG)
        };
        let n = b.insts.len();
        let mut ii = 0;
        while ii < n {
            let inst = &b.insts[ii];
            // Layout peephole 1: `jcc T; jmp F` with T the next block
            // becomes `j!cc F` (fall through into T).
            if ii + 2 == n {
                if let (LInst::Jcc { cc, target }, LInst::Jmp { target: f_target }) =
                    (&b.insts[ii], &b.insts[ii + 1])
                {
                    if target.0 as usize == bi + 1 {
                        e.emit_inst(&LInst::Jcc {
                            cc: cc.negate(),
                            target: *f_target,
                        });
                        inst_tags.resize(e.asm.len(), tag_of(ii));
                        break;
                    }
                }
            }
            // Layout peephole 2: a trailing jump to the next block is a
            // fall-through.
            if ii + 1 == n {
                if let LInst::Jmp { target } = inst {
                    if target.0 as usize == bi + 1 {
                        break;
                    }
                }
            }
            e.emit_inst(inst);
            inst_tags.resize(e.asm.len(), tag_of(ii));
            ii += 1;
        }
    }

    // Out-of-line trap stubs.
    let stubs = std::mem::take(&mut e.trap_labels);
    for (kind, label) in stubs {
        e.asm.bind(label);
        e.asm.emit(Inst::Trap { kind });
    }

    e.asm.set_frame_size(assign.n_slots * 8);
    let mut func = e.asm.finish();
    inst_tags.resize(func.insts.len(), NO_TAG);
    func.inst_tags = inst_tags;
    func
}
