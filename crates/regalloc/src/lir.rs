//! The low-level IR: x86-shaped instructions over virtual registers.
//!
//! LIR mirrors the `wasmperf-isa` instruction set (two-address ALU forms,
//! explicit widths, full addressing modes) but references *locations*:
//! virtual registers awaiting assignment, or pinned physical registers
//! (used for reserved-register conventions like the wasm heap base).
//! Control flow is a vector of basic blocks; branches appear only at the
//! end of a block, and a block falls through to the next one unless it
//! ends in an unconditional transfer.

use wasmperf_isa::{AluOp, Cc, FAluOp, FPrec, Reg, TrapKind, Width, Xmm};

/// Register class of a virtual register.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum VClass {
    /// General-purpose (integer/pointer).
    Int,
    /// SSE scalar float.
    Float,
}

/// An integer location: virtual or pinned physical register.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Loc {
    /// Virtual register (index into [`LFunc::vclasses`]).
    V(u32),
    /// A pinned physical register (reserved-convention registers only;
    /// never part of the allocatable pool).
    P(Reg),
}

/// A float location.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FLoc {
    /// Virtual float register.
    V(u32),
    /// Pinned xmm register.
    P(Xmm),
}

/// A memory reference over locations.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LMem {
    /// Base location, if any.
    pub base: Option<Loc>,
    /// Index location and scale, if any.
    pub index: Option<(Loc, u8)>,
    /// Displacement.
    pub disp: i64,
}

impl LMem {
    /// `[base]`
    pub fn base(base: Loc) -> LMem {
        LMem {
            base: Some(base),
            index: None,
            disp: 0,
        }
    }

    /// `[base + disp]`
    pub fn base_disp(base: Loc, disp: i64) -> LMem {
        LMem {
            base: Some(base),
            index: None,
            disp,
        }
    }

    /// `[disp]`
    pub fn abs(disp: i64) -> LMem {
        LMem {
            base: None,
            index: None,
            disp,
        }
    }
}

/// An integer operand.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Opnd {
    /// A location.
    Loc(Loc),
    /// An immediate.
    Imm(i64),
    /// A memory operand.
    Mem(LMem),
}

/// A float operand.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FOpnd {
    /// A float location.
    Loc(FLoc),
    /// A memory operand.
    Mem(LMem),
}

/// A call argument.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Arg {
    /// Integer-class argument.
    Int(Opnd),
    /// Float-class argument.
    Float(FOpnd),
}

/// Where a call's return value lands.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RetVal {
    /// Integer result into a location.
    Int(Loc),
    /// Float result into a location.
    Float(FLoc),
}

/// Identifies a basic block within a function.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct BlockId(pub u32);

/// One LIR instruction.
#[derive(Debug, Clone, PartialEq)]
pub enum LInst {
    /// `dst <- src` (load when `src` is memory).
    Mov {
        /// Destination.
        dst: Loc,
        /// Source.
        src: Opnd,
        /// Width.
        width: Width,
    },
    /// `mem <- src` (store).
    Store {
        /// Destination memory.
        mem: LMem,
        /// Source (location or immediate).
        src: Opnd,
        /// Width.
        width: Width,
    },
    /// Zero-extending move/load.
    Movzx {
        /// Destination.
        dst: Loc,
        /// Source.
        src: Opnd,
        /// Source width.
        from: Width,
    },
    /// Sign-extending move/load.
    Movsx {
        /// Destination.
        dst: Loc,
        /// Source.
        src: Opnd,
        /// Source width.
        from: Width,
        /// Destination width.
        to: Width,
    },
    /// Address computation.
    Lea {
        /// Destination.
        dst: Loc,
        /// Address expression.
        mem: LMem,
        /// Result width.
        width: Width,
    },
    /// Two-address ALU: `dst = dst op src`.
    Alu {
        /// Operator.
        op: AluOp,
        /// Destination (and left operand).
        dst: Loc,
        /// Right operand.
        src: Opnd,
        /// Width.
        width: Width,
    },
    /// Read-modify-write ALU on memory: `mem = mem op src`
    /// (the addressing-mode fusion form only the native backend emits).
    AluMem {
        /// Operator.
        op: AluOp,
        /// Memory destination.
        mem: LMem,
        /// Right operand (location or immediate).
        src: Opnd,
        /// Width.
        width: Width,
    },
    /// Shift/rotate; a non-immediate count goes through `cl`.
    Shift {
        /// Shl/Shr/Sar/Rol/Ror.
        op: AluOp,
        /// Destination (and operand).
        dst: Loc,
        /// Count.
        count: Opnd,
        /// Width.
        width: Width,
    },
    /// Negation.
    Neg {
        /// Destination (and operand).
        dst: Loc,
        /// Width.
        width: Width,
    },
    /// Bitwise complement.
    Not {
        /// Destination (and operand).
        dst: Loc,
        /// Width.
        width: Width,
    },
    /// Two-operand multiply: `dst = dst * src`.
    Imul {
        /// Destination (and left operand).
        dst: Loc,
        /// Right operand.
        src: Opnd,
        /// Width.
        width: Width,
    },
    /// Multiply by immediate: `dst = src * imm`.
    Imul3 {
        /// Destination.
        dst: Loc,
        /// Source.
        src: Opnd,
        /// Immediate.
        imm: i64,
        /// Width.
        width: Width,
    },
    /// Division/remainder (expands to `mov rax, lhs; cqo; idiv` at emit).
    Div {
        /// True for signed division.
        signed: bool,
        /// True to produce the remainder instead of the quotient.
        rem: bool,
        /// Result destination.
        dst: Loc,
        /// Dividend.
        lhs: Loc,
        /// Divisor (location; immediates must be materialized).
        rhs: Loc,
        /// Width.
        width: Width,
    },
    /// Flag-setting compare.
    Cmp {
        /// Left operand.
        lhs: Opnd,
        /// Right operand.
        rhs: Opnd,
        /// Width.
        width: Width,
    },
    /// Flag-setting test.
    Test {
        /// Left operand.
        lhs: Opnd,
        /// Right operand.
        rhs: Opnd,
        /// Width.
        width: Width,
    },
    /// Conditional move: `if cc { dst = src }` (reads flags).
    Cmov {
        /// Condition.
        cc: Cc,
        /// Destination (read and conditionally written).
        dst: Loc,
        /// Source.
        src: Opnd,
        /// Width.
        width: Width,
    },
    /// Materialize a condition into 0/1.
    Setcc {
        /// Condition.
        cc: Cc,
        /// Destination.
        dst: Loc,
    },
    /// Count leading zeros.
    Lzcnt {
        /// Destination.
        dst: Loc,
        /// Source.
        src: Opnd,
        /// Width.
        width: Width,
    },
    /// Count trailing zeros.
    Tzcnt {
        /// Destination.
        dst: Loc,
        /// Source.
        src: Opnd,
        /// Width.
        width: Width,
    },
    /// Population count.
    Popcnt {
        /// Destination.
        dst: Loc,
        /// Source.
        src: Opnd,
        /// Width.
        width: Width,
    },
    /// Float move (load/store via [`FOpnd::Mem`]).
    MovF {
        /// Destination.
        dst: FOpnd,
        /// Source.
        src: FOpnd,
        /// Precision.
        prec: FPrec,
    },
    /// Materialize a float immediate (via integer scratch + `movq`).
    MovFImm {
        /// Destination.
        dst: FLoc,
        /// Bit pattern.
        bits: u64,
        /// Precision.
        prec: FPrec,
    },
    /// Two-address float ALU: `dst = dst op src`.
    AluF {
        /// Operator.
        op: FAluOp,
        /// Destination (and left operand).
        dst: FLoc,
        /// Right operand.
        src: FOpnd,
        /// Precision.
        prec: FPrec,
    },
    /// Rounding (`roundss`/`roundsd`).
    RoundF {
        /// Destination.
        dst: FLoc,
        /// Source.
        src: FOpnd,
        /// Precision.
        prec: FPrec,
        /// Rounding mode.
        mode: wasmperf_isa::RoundMode,
    },
    /// Absolute value (`andpd` with sign mask).
    AbsF {
        /// Destination.
        dst: FLoc,
        /// Source.
        src: FOpnd,
        /// Precision.
        prec: FPrec,
    },
    /// Square root.
    SqrtF {
        /// Destination.
        dst: FLoc,
        /// Source.
        src: FOpnd,
        /// Precision.
        prec: FPrec,
    },
    /// Float compare setting flags.
    Ucomis {
        /// Left operand.
        lhs: FLoc,
        /// Right operand.
        rhs: FOpnd,
        /// Precision.
        prec: FPrec,
    },
    /// Integer to float conversion.
    CvtIntToF {
        /// Destination.
        dst: FLoc,
        /// Integer source.
        src: Opnd,
        /// Source width.
        width: Width,
        /// Destination precision.
        prec: FPrec,
        /// Unsigned source.
        unsigned: bool,
    },
    /// Float to integer conversion (trapping).
    CvtFToInt {
        /// Destination.
        dst: Loc,
        /// Float source.
        src: FOpnd,
        /// Destination width.
        width: Width,
        /// Source precision.
        prec: FPrec,
        /// Unsigned destination.
        unsigned: bool,
    },
    /// Float precision conversion.
    CvtFToF {
        /// Destination.
        dst: FLoc,
        /// Source.
        src: FOpnd,
        /// Source precision.
        from: FPrec,
    },
    /// Unconditional branch (must be last in its block).
    Jmp {
        /// Target block.
        target: BlockId,
    },
    /// Conditional branch (falls through to the next block when untaken).
    Jcc {
        /// Condition.
        cc: Cc,
        /// Target block.
        target: BlockId,
    },
    /// Conditional trap (emitted as a branch to an out-of-line stub).
    TrapIf {
        /// Condition under which to trap.
        cc: Cc,
        /// Trap reason.
        kind: TrapKind,
    },
    /// Unconditional trap.
    Trap {
        /// Trap reason.
        kind: TrapKind,
    },
    /// Per-function stack-overflow check (`cmp rsp, [limit]; jb trap`),
    /// the §6.2.2 check JITs insert.
    StackCheck {
        /// Address of the stack-limit word in linear memory.
        limit_addr: u64,
    },
    /// Direct call.
    Call {
        /// Callee function index (module function order).
        func: u32,
        /// Arguments (moved to System V registers at emit).
        args: Vec<Arg>,
        /// Result location, if any.
        ret: Option<RetVal>,
    },
    /// Indirect call; `target` holds the callee function id at runtime.
    CallIndirect {
        /// Callee operand.
        target: Opnd,
        /// Arguments.
        args: Vec<Arg>,
        /// Result location, if any.
        ret: Option<RetVal>,
    },
    /// Host (kernel) call.
    CallHost {
        /// Host function id.
        id: u32,
        /// Arguments (integer class only).
        args: Vec<Opnd>,
        /// Result location, if any.
        ret: Option<Loc>,
    },
    /// Return (must be last in its block).
    Ret {
        /// Returned value, if any.
        value: Option<Arg>,
    },
}

impl LInst {
    /// True when control cannot fall through this instruction.
    pub fn is_terminator(&self) -> bool {
        matches!(
            self,
            LInst::Jmp { .. } | LInst::Ret { .. } | LInst::Trap { .. }
        )
    }
}

/// A basic block.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct LBlock {
    /// Instructions; branches only in the final positions.
    pub insts: Vec<LInst>,
}

/// A function in LIR form.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct LFunc {
    /// Name (propagated to the emitted function).
    pub name: String,
    /// Basic blocks in layout order; block 0 is the entry.
    pub blocks: Vec<LBlock>,
    /// Class of each virtual register.
    pub vclasses: Vec<VClass>,
    /// Number of integer-class parameters arriving in System V registers;
    /// they are bound to virtual registers `0..n` at entry by the emitter
    /// prologue (in declaration order, skipping float params).
    pub params: Vec<VClass>,
    /// Optional per-instruction source tags for the observability layer:
    /// `src_tags[block][inst]` is the pre-order wasm-instruction index the
    /// LIR instruction was compiled from. Empty (no tags) for the native
    /// backend; missing entries mean "untagged".
    pub src_tags: Vec<Vec<u32>>,
}

impl LFunc {
    /// Allocates a fresh virtual register of the given class.
    pub fn new_vreg(&mut self, class: VClass) -> u32 {
        self.vclasses.push(class);
        (self.vclasses.len() - 1) as u32
    }

    /// Successor blocks of `b` (branch targets plus fallthrough).
    pub fn successors(&self, b: BlockId) -> Vec<BlockId> {
        let mut out = Vec::new();
        let block = &self.blocks[b.0 as usize];
        let mut falls_through = true;
        for inst in &block.insts {
            match inst {
                LInst::Jmp { target } => {
                    out.push(*target);
                    falls_through = false;
                }
                LInst::Jcc { target, .. } => out.push(*target),
                LInst::Ret { .. } | LInst::Trap { .. } => falls_through = false,
                _ => {}
            }
        }
        if falls_through && (b.0 as usize + 1) < self.blocks.len() {
            out.push(BlockId(b.0 + 1));
        }
        out.sort_unstable();
        out.dedup();
        out
    }
}

/// Visits every virtual-register *use* in an instruction.
pub fn for_each_use(inst: &LInst, mut f: impl FnMut(u32, VClass)) {
    let loc = |l: &Loc, f: &mut dyn FnMut(u32, VClass)| {
        if let Loc::V(v) = l {
            f(*v, VClass::Int);
        }
    };
    let floc = |l: &FLoc, f: &mut dyn FnMut(u32, VClass)| {
        if let FLoc::V(v) = l {
            f(*v, VClass::Float);
        }
    };
    let mem = |m: &LMem, f: &mut dyn FnMut(u32, VClass)| {
        if let Some(Loc::V(v)) = m.base {
            f(v, VClass::Int);
        }
        if let Some((Loc::V(v), _)) = m.index {
            f(v, VClass::Int);
        }
    };
    let opnd = |o: &Opnd, f: &mut dyn FnMut(u32, VClass)| match o {
        Opnd::Loc(Loc::V(v)) => f(*v, VClass::Int),
        Opnd::Mem(m) => {
            if let Some(Loc::V(v)) = m.base {
                f(v, VClass::Int);
            }
            if let Some((Loc::V(v), _)) = m.index {
                f(v, VClass::Int);
            }
        }
        _ => {}
    };
    let fopnd = |o: &FOpnd, f: &mut dyn FnMut(u32, VClass)| match o {
        FOpnd::Loc(FLoc::V(v)) => f(*v, VClass::Float),
        FOpnd::Mem(m) => {
            if let Some(Loc::V(v)) = m.base {
                f(v, VClass::Int);
            }
            if let Some((Loc::V(v), _)) = m.index {
                f(v, VClass::Int);
            }
        }
        _ => {}
    };

    match inst {
        LInst::Mov { src, .. } => opnd(src, &mut f),
        LInst::Store { mem: m, src, .. } => {
            mem(m, &mut f);
            opnd(src, &mut f);
        }
        LInst::Movzx { src, .. } | LInst::Movsx { src, .. } => opnd(src, &mut f),
        LInst::Lea { mem: m, .. } => mem(m, &mut f),
        LInst::Alu { dst, src, .. } => {
            loc(dst, &mut f);
            opnd(src, &mut f);
        }
        LInst::AluMem { mem: m, src, .. } => {
            mem(m, &mut f);
            opnd(src, &mut f);
        }
        LInst::Shift { dst, count, .. } => {
            loc(dst, &mut f);
            opnd(count, &mut f);
        }
        LInst::Neg { dst, .. } | LInst::Not { dst, .. } => loc(dst, &mut f),
        LInst::Imul { dst, src, .. } => {
            loc(dst, &mut f);
            opnd(src, &mut f);
        }
        LInst::Imul3 { src, .. } => opnd(src, &mut f),
        LInst::Div { lhs, rhs, .. } => {
            loc(lhs, &mut f);
            loc(rhs, &mut f);
        }
        LInst::Cmp { lhs, rhs, .. } | LInst::Test { lhs, rhs, .. } => {
            opnd(lhs, &mut f);
            opnd(rhs, &mut f);
        }
        LInst::Setcc { .. } => {}
        LInst::Cmov { dst, src, .. } => {
            // The destination is also a use (it survives when untaken).
            loc(dst, &mut f);
            opnd(src, &mut f);
        }
        LInst::Lzcnt { src, .. } | LInst::Tzcnt { src, .. } | LInst::Popcnt { src, .. } => {
            opnd(src, &mut f)
        }
        LInst::MovF { dst, src, .. } => {
            // A memory destination's address registers are uses.
            if let FOpnd::Mem(m) = dst {
                mem(m, &mut f);
            }
            fopnd(src, &mut f);
        }
        LInst::MovFImm { .. } => {}
        LInst::AluF { dst, src, .. } => {
            floc(dst, &mut f);
            fopnd(src, &mut f);
        }
        LInst::SqrtF { src, .. } | LInst::RoundF { src, .. } | LInst::AbsF { src, .. } => {
            fopnd(src, &mut f)
        }
        LInst::Ucomis { lhs, rhs, .. } => {
            floc(lhs, &mut f);
            fopnd(rhs, &mut f);
        }
        LInst::CvtIntToF { src, .. } => opnd(src, &mut f),
        LInst::CvtFToInt { src, .. } => fopnd(src, &mut f),
        LInst::CvtFToF { src, .. } => fopnd(src, &mut f),
        LInst::Jmp { .. } | LInst::Jcc { .. } | LInst::TrapIf { .. } | LInst::Trap { .. } => {}
        LInst::StackCheck { .. } => {}
        LInst::Call { args, .. } => {
            for a in args {
                match a {
                    Arg::Int(o) => opnd(o, &mut f),
                    Arg::Float(o) => fopnd(o, &mut f),
                }
            }
        }
        LInst::CallIndirect { target, args, .. } => {
            opnd(target, &mut f);
            for a in args {
                match a {
                    Arg::Int(o) => opnd(o, &mut f),
                    Arg::Float(o) => fopnd(o, &mut f),
                }
            }
        }
        LInst::CallHost { args, .. } => {
            for a in args {
                opnd(a, &mut f);
            }
        }
        LInst::Ret { value } => {
            if let Some(a) = value {
                match a {
                    Arg::Int(o) => opnd(o, &mut f),
                    Arg::Float(o) => fopnd(o, &mut f),
                }
            }
        }
    }
}

/// Visits every virtual-register *definition* in an instruction.
///
/// Two-address destinations (`Alu`, `Shift`, `Neg`, `Not`, `Imul`,
/// `AluF`, ...) are both uses (reported by [`for_each_use`]) and defs.
pub fn for_each_def(inst: &LInst, mut f: impl FnMut(u32, VClass)) {
    let loc = |l: &Loc, f: &mut dyn FnMut(u32, VClass)| {
        if let Loc::V(v) = l {
            f(*v, VClass::Int);
        }
    };
    let floc = |l: &FLoc, f: &mut dyn FnMut(u32, VClass)| {
        if let FLoc::V(v) = l {
            f(*v, VClass::Float);
        }
    };
    match inst {
        LInst::Mov { dst, .. }
        | LInst::Movzx { dst, .. }
        | LInst::Movsx { dst, .. }
        | LInst::Lea { dst, .. }
        | LInst::Alu { dst, .. }
        | LInst::Shift { dst, .. }
        | LInst::Neg { dst, .. }
        | LInst::Not { dst, .. }
        | LInst::Imul { dst, .. }
        | LInst::Imul3 { dst, .. }
        | LInst::Div { dst, .. }
        | LInst::Setcc { dst, .. }
        | LInst::Cmov { dst, .. }
        | LInst::Lzcnt { dst, .. }
        | LInst::Tzcnt { dst, .. }
        | LInst::Popcnt { dst, .. }
        | LInst::CvtFToInt { dst, .. } => loc(dst, &mut f),
        LInst::MovF {
            dst: FOpnd::Loc(l), ..
        } => floc(l, &mut f),
        LInst::MovFImm { dst, .. }
        | LInst::AluF { dst, .. }
        | LInst::SqrtF { dst, .. }
        | LInst::RoundF { dst, .. }
        | LInst::AbsF { dst, .. }
        | LInst::CvtIntToF { dst, .. }
        | LInst::CvtFToF { dst, .. } => floc(dst, &mut f),
        LInst::Call { ret, .. } | LInst::CallIndirect { ret, .. } => {
            if let Some(r) = ret {
                match r {
                    RetVal::Int(l) => loc(l, &mut f),
                    RetVal::Float(l) => floc(l, &mut f),
                }
            }
        }
        LInst::CallHost { ret: Some(l), .. } => loc(l, &mut f),
        _ => {}
    }
}

/// True when the instruction is a call (clobbering caller-saved registers).
pub fn is_call(inst: &LInst) -> bool {
    matches!(
        inst,
        LInst::Call { .. } | LInst::CallIndirect { .. } | LInst::CallHost { .. }
    )
}

#[cfg(test)]
// Tests build `LFunc` fixtures field-by-field for readability.
#[allow(clippy::field_reassign_with_default)]
mod tests {
    use super::*;

    #[test]
    fn successors_with_fallthrough() {
        let mut f = LFunc::default();
        f.blocks = vec![
            LBlock {
                insts: vec![LInst::Jcc {
                    cc: Cc::E,
                    target: BlockId(2),
                }],
            },
            LBlock {
                insts: vec![LInst::Jmp { target: BlockId(0) }],
            },
            LBlock {
                insts: vec![LInst::Ret { value: None }],
            },
        ];
        assert_eq!(f.successors(BlockId(0)), vec![BlockId(1), BlockId(2)]);
        assert_eq!(f.successors(BlockId(1)), vec![BlockId(0)]);
        assert!(f.successors(BlockId(2)).is_empty());
    }

    #[test]
    fn use_def_extraction() {
        let i = LInst::Alu {
            op: AluOp::Add,
            dst: Loc::V(3),
            src: Opnd::Mem(LMem {
                base: Some(Loc::V(1)),
                index: Some((Loc::V(2), 4)),
                disp: 8,
            }),
            width: Width::W32,
        };
        let mut uses = Vec::new();
        for_each_use(&i, |v, _| uses.push(v));
        uses.sort_unstable();
        assert_eq!(uses, vec![1, 2, 3]);
        let mut defs = Vec::new();
        for_each_def(&i, |v, _| defs.push(v));
        assert_eq!(defs, vec![3]);
    }

    #[test]
    fn call_uses_args_and_defs_ret() {
        let i = LInst::Call {
            func: 0,
            args: vec![
                Arg::Int(Opnd::Loc(Loc::V(5))),
                Arg::Float(FOpnd::Loc(FLoc::V(6))),
            ],
            ret: Some(RetVal::Int(Loc::V(7))),
        };
        let mut uses = Vec::new();
        for_each_use(&i, |v, c| uses.push((v, c)));
        assert!(uses.contains(&(5, VClass::Int)));
        assert!(uses.contains(&(6, VClass::Float)));
        let mut defs = Vec::new();
        for_each_def(&i, |v, _| defs.push(v));
        assert_eq!(defs, vec![7]);
        assert!(is_call(&i));
    }

    #[test]
    fn pinned_registers_are_not_reported() {
        let i = LInst::Mov {
            dst: Loc::V(0),
            src: Opnd::Mem(LMem::base(Loc::P(Reg::Rbx))),
            width: Width::W32,
        };
        let mut uses = Vec::new();
        for_each_use(&i, |v, _| uses.push(v));
        assert!(uses.is_empty());
    }
}
