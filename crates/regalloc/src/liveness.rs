//! Live-variable dataflow analysis.
//!
//! LIR blocks are *extended* basic blocks: conditional branches (and
//! conditional traps) may appear mid-block, with execution continuing in
//! the same block when untaken — the natural shape of single-pass JIT
//! output. Liveness therefore cannot use whole-block gen/kill sets (a def
//! below a mid-block branch is conditional); instead, each fixed-point
//! iteration walks every block backward instruction-by-instruction,
//! merging the target block's live-in at each branch:
//!
//! - `jmp T`            → live := live-in(T)
//! - `jcc T` / trap-if  → live ∪= live-in(T) (fall-through continues)
//! - `ret` / `trap`     → live := ∅
//!
//! The same walk drives live-range construction, the interference builder
//! in [`crate::coloring`], and assignment verification, so all three see
//! identical semantics.

use crate::lir::{for_each_def, for_each_use, is_call, LBlock, LFunc, LInst};
use std::collections::BTreeSet;

/// Liveness results for one function.
#[derive(Debug, Clone)]
pub struct Liveness {
    /// Live-in virtual registers per block.
    pub live_in: Vec<BTreeSet<u32>>,
    /// Live registers at the (fall-through) end of each block.
    pub live_out: Vec<BTreeSet<u32>>,
    /// Global linear position of each instruction: `pos[block][i]`.
    pub pos: Vec<Vec<u32>>,
    /// Per-vreg live range `[start, end]` in linear positions
    /// (`None` for never-used vregs).
    pub range: Vec<Option<(u32, u32)>>,
    /// Vregs live across at least one call instruction.
    pub live_across_call: BTreeSet<u32>,
    /// Static use count per vreg (spill-cost heuristic).
    pub use_count: Vec<u32>,
}

/// The live set at the point *after* the last instruction of `block`,
/// before the backward walk begins: the fall-through successor's live-in
/// (empty when the block cannot fall through).
fn exit_live(f: &LFunc, bi: usize, block: &LBlock, live_in: &[BTreeSet<u32>]) -> BTreeSet<u32> {
    match block.insts.last() {
        Some(last) if last.is_terminator() => BTreeSet::new(),
        _ => {
            if bi + 1 < f.blocks.len() {
                live_in[bi + 1].clone()
            } else {
                BTreeSet::new()
            }
        }
    }
}

/// Walks `block` backward, invoking `visit(index, inst, live_after)` for
/// each instruction with the live set *after* it, and returns the block's
/// live-in.
pub fn backward_walk(
    f: &LFunc,
    bi: usize,
    live_in: &[BTreeSet<u32>],
    mut visit: impl FnMut(usize, &LInst, &BTreeSet<u32>),
) -> BTreeSet<u32> {
    let block = &f.blocks[bi];
    let mut live = exit_live(f, bi, block, live_in);
    for (ii, inst) in block.insts.iter().enumerate().rev() {
        // Control effects first: the live set after `inst` includes what
        // its branch targets need.
        match inst {
            LInst::Jmp { target } => live = live_in[target.0 as usize].clone(),
            LInst::Jcc { target, .. } => {
                live.extend(live_in[target.0 as usize].iter().copied());
            }
            LInst::Ret { .. } | LInst::Trap { .. } => live.clear(),
            // TrapIf transfers to an out-of-line stub that only traps; the
            // fall-through set is unchanged.
            _ => {}
        }
        visit(ii, inst, &live);
        for_each_def(inst, |v, _| {
            live.remove(&v);
        });
        for_each_use(inst, |v, _| {
            live.insert(v);
        });
    }
    live
}

/// Computes liveness for `f`.
pub fn analyze(f: &LFunc) -> Liveness {
    let nb = f.blocks.len();
    let nv = f.vclasses.len();

    let mut live_in: Vec<BTreeSet<u32>> = vec![BTreeSet::new(); nb];
    let mut changed = true;
    while changed {
        changed = false;
        for bi in (0..nb).rev() {
            let inn = backward_walk(f, bi, &live_in, |_, _, _| {});
            if inn != live_in[bi] {
                live_in[bi] = inn;
                changed = true;
            }
        }
    }

    // Linear positions.
    let mut pos: Vec<Vec<u32>> = Vec::with_capacity(nb);
    let mut counter: u32 = 0;
    for b in &f.blocks {
        let mut ps = Vec::with_capacity(b.insts.len());
        for _ in &b.insts {
            counter += 2;
            ps.push(counter);
        }
        pos.push(ps);
    }

    let mut range: Vec<Option<(u32, u32)>> = vec![None; nv];
    let mut use_count = vec![0u32; nv];
    let mut live_out: Vec<BTreeSet<u32>> = vec![BTreeSet::new(); nb];
    let mut live_across_call = BTreeSet::new();

    fn extend(range: &mut [Option<(u32, u32)>], v: u32, p: u32) {
        let r = &mut range[v as usize];
        *r = Some(match *r {
            None => (p, p),
            Some((s, e)) => (s.min(p), e.max(p)),
        });
    }

    // Parameters are live from position 0 (defined by the prologue).
    for i in 0..f.params.len() {
        extend(&mut range, i as u32, 0);
    }

    for bi in 0..nb {
        live_out[bi] = exit_live(f, bi, &f.blocks[bi], &live_in);
        let block_start = pos[bi].first().copied().unwrap_or(counter);
        // Everything live-in covers the block start.
        for &v in &live_in[bi] {
            extend(&mut range, v, block_start);
        }
        backward_walk(f, bi, &live_in, |ii, inst, live_after| {
            let p = pos[bi][ii];
            for &v in live_after {
                extend(&mut range, v, p);
            }
            for_each_use(inst, |v, _| {
                use_count[v as usize] += 1;
                extend(&mut range, v, p);
            });
            for_each_def(inst, |v, _| {
                extend(&mut range, v, p);
            });
            if is_call(inst) {
                // Anything live after the call (other than its results)
                // must survive it.
                let mut defs = BTreeSet::new();
                for_each_def(inst, |v, _| {
                    defs.insert(v);
                });
                for &v in live_after {
                    if !defs.contains(&v) {
                        live_across_call.insert(v);
                    }
                }
            }
        });
    }

    Liveness {
        live_in,
        live_out,
        pos,
        range,
        live_across_call,
        use_count,
    }
}

#[cfg(test)]
// Tests build `LFunc` fixtures field-by-field for readability.
#[allow(clippy::field_reassign_with_default)]
mod tests {
    use super::*;
    use crate::lir::{Arg, BlockId, LBlock, LFunc, LInst, Loc, Opnd, RetVal, VClass};
    use wasmperf_isa::{AluOp, Cc, Width};

    fn v(n: u32) -> Loc {
        Loc::V(n)
    }

    #[test]
    fn straight_line_ranges() {
        // v0 = 1; v1 = v0 + 2; ret v1.
        let mut f = LFunc::default();
        f.vclasses = vec![VClass::Int, VClass::Int];
        f.blocks = vec![LBlock {
            insts: vec![
                LInst::Mov {
                    dst: v(0),
                    src: Opnd::Imm(1),
                    width: Width::W64,
                },
                LInst::Mov {
                    dst: v(1),
                    src: Opnd::Loc(v(0)),
                    width: Width::W64,
                },
                LInst::Alu {
                    op: AluOp::Add,
                    dst: v(1),
                    src: Opnd::Imm(2),
                    width: Width::W64,
                },
                LInst::Ret {
                    value: Some(Arg::Int(Opnd::Loc(v(1)))),
                },
            ],
        }];
        let l = analyze(&f);
        let r0 = l.range[0].unwrap();
        let r1 = l.range[1].unwrap();
        assert!(r0.0 < r1.1);
        assert!(r0.1 <= r1.1);
        assert!(l.live_across_call.is_empty());
        assert_eq!(l.use_count[0], 1);
        assert_eq!(l.use_count[1], 2);
    }

    #[test]
    fn loop_extends_ranges_to_backedge() {
        let mut f = LFunc::default();
        f.vclasses = vec![VClass::Int];
        f.blocks = vec![
            LBlock {
                insts: vec![LInst::Mov {
                    dst: v(0),
                    src: Opnd::Imm(10),
                    width: Width::W64,
                }],
            },
            LBlock {
                insts: vec![
                    LInst::Alu {
                        op: AluOp::Sub,
                        dst: v(0),
                        src: Opnd::Imm(1),
                        width: Width::W64,
                    },
                    LInst::Jcc {
                        cc: Cc::Ne,
                        target: BlockId(1),
                    },
                ],
            },
            LBlock {
                insts: vec![LInst::Ret {
                    value: Some(Arg::Int(Opnd::Loc(v(0)))),
                }],
            },
        ];
        let l = analyze(&f);
        assert!(l.live_in[1].contains(&0));
        let (s, e) = l.range[0].unwrap();
        assert!(s <= l.pos[0][0]);
        assert!(e >= l.pos[2][0]);
    }

    #[test]
    fn call_crossing_detected() {
        let mut f = LFunc::default();
        f.vclasses = vec![VClass::Int, VClass::Int];
        f.blocks = vec![LBlock {
            insts: vec![
                LInst::Mov {
                    dst: v(0),
                    src: Opnd::Imm(1),
                    width: Width::W64,
                },
                LInst::Call {
                    func: 0,
                    args: vec![],
                    ret: Some(RetVal::Int(v(1))),
                },
                LInst::Alu {
                    op: AluOp::Add,
                    dst: v(1),
                    src: Opnd::Loc(v(0)),
                    width: Width::W64,
                },
                LInst::Ret {
                    value: Some(Arg::Int(Opnd::Loc(v(1)))),
                },
            ],
        }];
        let l = analyze(&f);
        assert!(l.live_across_call.contains(&0));
        assert!(!l.live_across_call.contains(&1));
    }

    #[test]
    fn dead_vreg_has_no_range() {
        let mut f = LFunc::default();
        f.vclasses = vec![VClass::Int, VClass::Int];
        f.blocks = vec![LBlock {
            insts: vec![LInst::Ret { value: None }],
        }];
        let l = analyze(&f);
        assert_eq!(l.range[0], None);
        assert_eq!(l.range[1], None);
    }

    /// The shape that exposed the extended-basic-block bug: a conditional
    /// def mid-block must not kill liveness of the value along the
    /// untaken path, even when the reading block sits *earlier* in layout
    /// order than the writing block.
    #[test]
    fn conditional_midblock_def_keeps_value_live() {
        let mut f = LFunc::default();
        f.vclasses = vec![VClass::Int, VClass::Int, VClass::Int];
        f.blocks = vec![
            // b0: v0 = 0; v1 = 10; jmp b2.
            LBlock {
                insts: vec![
                    LInst::Mov {
                        dst: v(0),
                        src: Opnd::Imm(0),
                        width: Width::W64,
                    },
                    LInst::Mov {
                        dst: v(1),
                        src: Opnd::Imm(10),
                        width: Width::W64,
                    },
                    LInst::Jmp { target: BlockId(2) },
                ],
            },
            // b1: ret v0.
            LBlock {
                insts: vec![LInst::Ret {
                    value: Some(Arg::Int(Opnd::Loc(v(0)))),
                }],
            },
            // b2: cmp v1,0; je b1; v0 = 7 (conditionally skipped);
            //     v2 = v1; v1 -= v2; jmp b2.
            LBlock {
                insts: vec![
                    LInst::Cmp {
                        lhs: Opnd::Loc(v(1)),
                        rhs: Opnd::Imm(0),
                        width: Width::W64,
                    },
                    LInst::Jcc {
                        cc: Cc::E,
                        target: BlockId(1),
                    },
                    LInst::Mov {
                        dst: v(0),
                        src: Opnd::Imm(7),
                        width: Width::W64,
                    },
                    LInst::Mov {
                        dst: v(2),
                        src: Opnd::Imm(1),
                        width: Width::W64,
                    },
                    LInst::Alu {
                        op: AluOp::Sub,
                        dst: v(1),
                        src: Opnd::Loc(v(2)),
                        width: Width::W64,
                    },
                    LInst::Jmp { target: BlockId(2) },
                ],
            },
        ];
        let l = analyze(&f);
        // v0 must be live-in to b2 (the je path reaches the ret).
        assert!(l.live_in[2].contains(&0), "{:?}", l.live_in);
        // Its range must cover the temp v2's, so allocators keep them
        // apart.
        let r0 = l.range[0].unwrap();
        let r2 = l.range[2].unwrap();
        assert!(r0.0 <= r2.0 && r0.1 >= r2.1, "v0 {r0:?} v2 {r2:?}");
        let profile = crate::profile::AllocProfile::chrome();
        for assign in [
            crate::linearscan::allocate_linear_scan(&f, &profile),
            crate::coloring::allocate_coloring(&f, &profile),
        ] {
            crate::linearscan::verify_no_conflicts(&f, &assign).unwrap();
        }
    }
}
