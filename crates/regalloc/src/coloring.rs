//! Graph-coloring register allocation (the Clang-like allocator).
//!
//! A Chaitin–Briggs-style allocator standing in for LLVM's greedy
//! allocator: build the interference graph from liveness, simplify nodes
//! of insignificant degree, select colors in preference order, and spill
//! only when coloring genuinely fails. Values that live across calls are
//! constrained to callee-saved colors (they interfere with the
//! caller-saved registers a call clobbers), so the paper's contrast —
//! native code keeps loop-carried values in registers where JIT code
//! spills them — emerges directly.

use crate::emit::{Assignment, Slot};
use crate::linearscan::collect_callee_saved;
use crate::lir::{for_each_def, LFunc, LInst, VClass};
use crate::liveness::analyze;
use crate::profile::AllocProfile;
use std::collections::{BTreeSet, HashSet};

/// Allocates `f` with graph coloring, returning the assignment.
pub fn allocate_coloring(f: &LFunc, profile: &AllocProfile) -> Assignment {
    let live = analyze(f);
    let nv = f.vclasses.len();

    // Interference graph (same-class edges only), built with the same
    // extended-basic-block backward walk liveness uses: a def interferes
    // with everything live after the instruction (minus a move's source).
    let mut adj: Vec<BTreeSet<u32>> = vec![BTreeSet::new(); nv];
    {
        let add_edge = |a: u32, b: u32, adj: &mut Vec<BTreeSet<u32>>| {
            if a != b {
                adj[a as usize].insert(b);
                adj[b as usize].insert(a);
            }
        };
        for bi in 0..f.blocks.len() {
            crate::liveness::backward_walk(f, bi, &live.live_in, |_, inst, live_after| {
                let move_src: Option<u32> = match inst {
                    LInst::Mov {
                        src: crate::lir::Opnd::Loc(crate::lir::Loc::V(s)),
                        ..
                    } => Some(*s),
                    _ => None,
                };
                let mut defs: Vec<u32> = Vec::new();
                for_each_def(inst, |v, _| defs.push(v));
                for &d in &defs {
                    for &l in live_after {
                        if l != d
                            && f.vclasses[d as usize] == f.vclasses[l as usize]
                            && Some(l) != move_src
                        {
                            add_edge(d, l, &mut adj);
                        }
                    }
                }
            });
        }
    }

    // Parameters all interfere with each other (they arrive simultaneously
    // in argument registers).
    let params: Vec<u32> = (0..f.params.len() as u32).collect();
    for (i, &a) in params.iter().enumerate() {
        for &b in &params[i + 1..] {
            if a != b && f.vclasses[a as usize] == f.vclasses[b as usize] {
                adj[a as usize].insert(b);
                adj[b as usize].insert(a);
            }
        }
    }

    let across: &BTreeSet<u32> = &live.live_across_call;
    let callee_saved_count = profile.callee_saved_pool().len();

    // Available color count for a node.
    let colors_for = |v: u32| -> usize {
        match f.vclasses[v as usize] {
            VClass::Int => {
                if across.contains(&v) {
                    callee_saved_count
                } else {
                    profile.int_pool.len()
                }
            }
            VClass::Float => {
                if across.contains(&v) {
                    0 // All xmm are caller-saved.
                } else {
                    profile.float_pool.len()
                }
            }
        }
    };

    // Simplify phase.
    let mut degree: Vec<usize> = adj.iter().map(BTreeSet::len).collect();
    let mut removed = vec![false; nv];
    let mut stack: Vec<u32> = Vec::new();
    let alive: Vec<u32> = (0..nv as u32)
        .filter(|v| live.range[*v as usize].is_some())
        .collect();
    let mut remaining: usize = alive.len();

    while remaining > 0 {
        // Prefer a trivially colorable node.
        let pick = alive
            .iter()
            .copied()
            .find(|&v| !removed[v as usize] && degree[v as usize] < colors_for(v).max(1));
        let v = match pick {
            Some(v) => v,
            None => {
                // Potential spill: cheapest by use-count / degree.
                alive
                    .iter()
                    .copied()
                    .filter(|&v| !removed[v as usize])
                    .min_by_key(|&v| {
                        let d = degree[v as usize].max(1);
                        // Scale to compare use_count/degree without floats.
                        (live.use_count[v as usize] as u64 * 1000) / d as u64
                    })
                    .expect("nodes remain")
            }
        };
        removed[v as usize] = true;
        remaining -= 1;
        stack.push(v);
        for &n in &adj[v as usize] {
            if !removed[n as usize] {
                degree[n as usize] = degree[n as usize].saturating_sub(1);
            }
        }
    }

    // Select phase.
    let mut assign = vec![Slot::Unused; nv];
    let mut n_slots: u32 = 0;
    while let Some(v) = stack.pop() {
        let class = f.vclasses[v as usize];
        let crossing = across.contains(&v);
        let taken: HashSet<Slot> = adj[v as usize]
            .iter()
            .filter_map(|&n| match assign[n as usize] {
                s @ (Slot::IntReg(_) | Slot::FloatReg(_)) => Some(s),
                _ => None,
            })
            .collect();
        let slot = match class {
            VClass::Int => {
                // Prefer caller-saved colors for values that do not cross
                // calls (so leaf code avoids save/restore traffic) and
                // callee-saved colors for those that do.
                let mut candidates: Vec<&wasmperf_isa::Reg> = profile
                    .int_pool
                    .iter()
                    .filter(|r| !crossing || profile.callee_saved.contains(**r))
                    .collect();
                candidates.sort_by_key(|r| profile.callee_saved.contains(**r) != crossing);
                candidates
                    .into_iter()
                    .map(|r| Slot::IntReg(*r))
                    .find(|s| !taken.contains(s))
            }
            VClass::Float => {
                if crossing {
                    None
                } else {
                    profile
                        .float_pool
                        .iter()
                        .map(|x| Slot::FloatReg(*x))
                        .find(|s| !taken.contains(s))
                }
            }
        };
        assign[v as usize] = match slot {
            Some(s) => s,
            None => {
                let s = Slot::Stack(n_slots);
                n_slots += 1;
                s
            }
        };
    }

    let used_callee_saved = collect_callee_saved(&assign, profile);
    Assignment {
        of: assign,
        n_slots,
        used_callee_saved,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::linearscan::{allocate_linear_scan, verify_no_conflicts};
    use crate::lir::{Arg, BlockId, LBlock, LInst, Loc, Opnd, RetVal};
    use wasmperf_isa::{AluOp, Cc, Width};

    fn v(n: u32) -> Loc {
        Loc::V(n)
    }

    /// The matmul-like pattern: several long-lived loop-carried values
    /// plus short-lived temporaries inside a loop.
    fn loopy_func(n_carried: u32, n_temps: u32) -> LFunc {
        let mut f = LFunc::default();
        for _ in 0..(n_carried + n_temps) {
            f.new_vreg(VClass::Int);
        }
        let mut head = Vec::new();
        for i in 0..n_carried {
            head.push(LInst::Mov {
                dst: v(i),
                src: Opnd::Imm(i as i64),
                width: Width::W64,
            });
        }
        let mut body = Vec::new();
        for t in 0..n_temps {
            let tv = n_carried + t;
            body.push(LInst::Mov {
                dst: v(tv),
                src: Opnd::Loc(v(t % n_carried)),
                width: Width::W64,
            });
            body.push(LInst::Alu {
                op: AluOp::Add,
                dst: v(t % n_carried),
                src: Opnd::Loc(v(tv)),
                width: Width::W64,
            });
        }
        body.push(LInst::Alu {
            op: AluOp::Sub,
            dst: v(0),
            src: Opnd::Imm(1),
            width: Width::W64,
        });
        body.push(LInst::Jcc {
            cc: Cc::Ne,
            target: BlockId(1),
        });
        let mut tail = vec![LInst::Ret {
            value: Some(Arg::Int(Opnd::Loc(v(n_carried - 1)))),
        }];
        // Keep all carried values live to the end.
        for i in 1..n_carried {
            tail.insert(
                0,
                LInst::Alu {
                    op: AluOp::Add,
                    dst: v(n_carried - 1),
                    src: Opnd::Loc(v(i - 1)),
                    width: Width::W64,
                },
            );
        }
        f.blocks = vec![
            LBlock { insts: head },
            LBlock { insts: body },
            LBlock { insts: tail },
        ];
        f
    }

    #[test]
    fn coloring_is_conflict_free() {
        let f = loopy_func(6, 4);
        let a = allocate_coloring(&f, &AllocProfile::native());
        verify_no_conflicts(&f, &a).unwrap();
    }

    #[test]
    fn coloring_spills_less_than_linear_scan_under_pressure() {
        // More carried values than Chrome's pool.
        let f = loopy_func(10, 4);
        let gc = allocate_coloring(&f, &AllocProfile::chrome());
        let ls = allocate_linear_scan(&f, &AllocProfile::chrome());
        verify_no_conflicts(&f, &gc).unwrap();
        verify_no_conflicts(&f, &ls).unwrap();
        assert!(
            gc.spill_count() <= ls.spill_count(),
            "coloring {} vs linear scan {}",
            gc.spill_count(),
            ls.spill_count()
        );
    }

    #[test]
    fn call_crossing_gets_callee_saved_color() {
        let mut f = LFunc::default();
        f.new_vreg(VClass::Int);
        f.new_vreg(VClass::Int);
        f.blocks = vec![LBlock {
            insts: vec![
                LInst::Mov {
                    dst: v(0),
                    src: Opnd::Imm(5),
                    width: Width::W64,
                },
                LInst::Call {
                    func: 0,
                    args: vec![Arg::Int(Opnd::Loc(v(0)))],
                    ret: Some(RetVal::Int(v(1))),
                },
                LInst::Alu {
                    op: AluOp::Add,
                    dst: v(1),
                    src: Opnd::Loc(v(0)),
                    width: Width::W64,
                },
                LInst::Ret {
                    value: Some(Arg::Int(Opnd::Loc(v(1)))),
                },
            ],
        }];
        let profile = AllocProfile::native();
        let a = allocate_coloring(&f, &profile);
        verify_no_conflicts(&f, &a).unwrap();
        match a.of[0] {
            Slot::IntReg(r) => assert!(profile.callee_saved.contains(r), "{r}"),
            Slot::Stack(_) => {}
            other => panic!("{other:?}"),
        }
        assert!(!a.used_callee_saved.is_empty());
    }

    #[test]
    fn small_pool_forces_spills_eventually() {
        let f = loopy_func(12, 2);
        let a = allocate_coloring(&f, &AllocProfile::chrome());
        verify_no_conflicts(&f, &a).unwrap();
        assert!(a.spill_count() >= 12 - 8, "12 values into 8 regs");
    }

    #[test]
    fn params_interfere_with_each_other() {
        let mut f = LFunc::default();
        f.new_vreg(VClass::Int);
        f.new_vreg(VClass::Int);
        f.params = vec![VClass::Int, VClass::Int];
        f.blocks = vec![LBlock {
            insts: vec![
                LInst::Alu {
                    op: AluOp::Add,
                    dst: v(0),
                    src: Opnd::Loc(v(1)),
                    width: Width::W64,
                },
                LInst::Ret {
                    value: Some(Arg::Int(Opnd::Loc(v(0)))),
                },
            ],
        }];
        let a = allocate_coloring(&f, &AllocProfile::native());
        verify_no_conflicts(&f, &a).unwrap();
        match (a.of[0], a.of[1]) {
            (Slot::IntReg(x), Slot::IntReg(y)) => assert_ne!(x, y),
            other => panic!("{other:?}"),
        }
    }
}
