// Tests build `LFunc` fixtures field-by-field for readability.
#![allow(clippy::field_reassign_with_default)]

//! End-to-end tests: LIR → allocate → emit → execute on the CPU simulator.
//!
//! Both allocators must produce code with identical results; the
//! graph-coloring code should retire no more instructions than the
//! linear-scan code on the same input.

use wasmperf_cpu::{Machine, NullHost};
use wasmperf_isa::{AluOp, Cc, FPrec, FuncId, Module, Width};
use wasmperf_regalloc::lir::{FLoc, FOpnd};
use wasmperf_regalloc::{
    allocate_coloring, allocate_linear_scan, emit_function, Arg, BlockId, LBlock, LFunc, LInst,
    LMem, Loc, Opnd, RetVal, VClass,
};

fn v(n: u32) -> Loc {
    Loc::V(n)
}

fn run_lir(funcs: Vec<LFunc>, entry: usize, args: &[u64], coloring: bool) -> (u64, u64) {
    let profile = wasmperf_regalloc::AllocProfile::native();
    let mut module = Module {
        funcs: Vec::new(),
        table: Vec::new(),
        entry: Some(FuncId(entry as u32)),
        memory_size: 0x10000,
        data: vec![],
        sandbox: None,
    };
    for f in &funcs {
        let assign = if coloring {
            allocate_coloring(f, &profile)
        } else {
            allocate_linear_scan(f, &profile)
        };
        module.funcs.push(emit_function(f, &assign, &profile));
    }
    module.assign_addresses();
    let mut machine = Machine::new(&module, NullHost);
    let out = machine
        .run(FuncId(entry as u32), args, 10_000_000)
        .expect("runs");
    (out.ret, out.counters.instructions_retired)
}

/// sum(i*i for i in 1..=n) with a loop, high register pressure from many
/// accumulators, plus memory traffic.
fn pressure_func() -> LFunc {
    let mut f = LFunc::default();
    f.name = "pressure".into();
    f.params = vec![VClass::Int];
    let n = f.new_vreg(VClass::Int); // v0 = n (param).
    assert_eq!(n, 0);
    // Accumulators v1..v14.
    for _ in 0..14 {
        f.new_vreg(VClass::Int);
    }
    let i = f.new_vreg(VClass::Int); // v15
    let t = f.new_vreg(VClass::Int); // v16

    let mut head = Vec::new();
    for a in 1..=14u32 {
        head.push(LInst::Mov {
            dst: v(a),
            src: Opnd::Imm(0),
            width: Width::W64,
        });
    }
    head.push(LInst::Mov {
        dst: v(i),
        src: Opnd::Imm(1),
        width: Width::W64,
    });

    // loop body: t = i*i; acc[i%14] += t; memory store A[i] = t.
    let mut body = Vec::new();
    body.push(LInst::Mov {
        dst: v(t),
        src: Opnd::Loc(v(i)),
        width: Width::W64,
    });
    body.push(LInst::Imul {
        dst: v(t),
        src: Opnd::Loc(v(i)),
        width: Width::W64,
    });
    for a in 1..=14u32 {
        body.push(LInst::Alu {
            op: AluOp::Add,
            dst: v(a),
            src: Opnd::Loc(v(t)),
            width: Width::W64,
        });
    }
    body.push(LInst::Store {
        mem: LMem {
            base: None,
            index: Some((v(i), 8)),
            disp: 0x100,
        },
        src: Opnd::Loc(v(t)),
        width: Width::W64,
    });
    body.push(LInst::Alu {
        op: AluOp::Add,
        dst: v(i),
        src: Opnd::Imm(1),
        width: Width::W64,
    });
    body.push(LInst::Cmp {
        lhs: Opnd::Loc(v(i)),
        rhs: Opnd::Loc(v(0)),
        width: Width::W64,
    });
    body.push(LInst::Jcc {
        cc: Cc::Le,
        target: BlockId(1),
    });

    // tail: ret v1 + v2 (v1 == v2 == ... == v14 == sum of squares) plus a
    // reload from memory.
    let tail = vec![
        LInst::Alu {
            op: AluOp::Add,
            dst: v(1),
            src: Opnd::Loc(v(2)),
            width: Width::W64,
        },
        LInst::Alu {
            op: AluOp::Add,
            dst: v(1),
            src: Opnd::Mem(LMem::abs(0x100 + 8)), // A[1] = 1.
            width: Width::W64,
        },
        LInst::Ret {
            value: Some(Arg::Int(Opnd::Loc(v(1)))),
        },
    ];

    f.blocks = vec![
        LBlock { insts: head },
        LBlock { insts: body },
        LBlock { insts: tail },
    ];
    f
}

#[test]
fn both_allocators_agree_on_results() {
    let n = 100u64;
    let expect = 2 * (1..=n).map(|i| i * i).sum::<u64>() + 1;
    let (r1, i1) = run_lir(vec![pressure_func()], 0, &[n], true);
    let (r2, i2) = run_lir(vec![pressure_func()], 0, &[n], false);
    assert_eq!(r1, expect);
    assert_eq!(r2, expect);
    // Graph coloring must not be worse than linear scan.
    assert!(i1 <= i2, "coloring {i1} vs linear scan {i2}");
}

fn callee_add() -> LFunc {
    let mut f = LFunc::default();
    f.name = "add".into();
    f.params = vec![VClass::Int, VClass::Int];
    f.new_vreg(VClass::Int);
    f.new_vreg(VClass::Int);
    f.blocks = vec![LBlock {
        insts: vec![
            LInst::Alu {
                op: AluOp::Add,
                dst: v(0),
                src: Opnd::Loc(v(1)),
                width: Width::W64,
            },
            LInst::Ret {
                value: Some(Arg::Int(Opnd::Loc(v(0)))),
            },
        ],
    }];
    f
}

/// Calls `add` in a loop keeping values live across the call.
fn caller_func() -> LFunc {
    let mut f = LFunc::default();
    f.name = "caller".into();
    f.params = vec![VClass::Int];
    f.new_vreg(VClass::Int); // v0 = n.
    let acc = f.new_vreg(VClass::Int); // v1.
    let i = f.new_vreg(VClass::Int); // v2.
    let r = f.new_vreg(VClass::Int); // v3.
    f.blocks = vec![
        LBlock {
            insts: vec![
                LInst::Mov {
                    dst: v(acc),
                    src: Opnd::Imm(0),
                    width: Width::W64,
                },
                LInst::Mov {
                    dst: v(i),
                    src: Opnd::Imm(0),
                    width: Width::W64,
                },
            ],
        },
        LBlock {
            insts: vec![
                LInst::Call {
                    func: 1,
                    args: vec![Arg::Int(Opnd::Loc(v(i))), Arg::Int(Opnd::Imm(3))],
                    ret: Some(RetVal::Int(v(r))),
                },
                LInst::Alu {
                    op: AluOp::Add,
                    dst: v(acc),
                    src: Opnd::Loc(v(r)),
                    width: Width::W64,
                },
                LInst::Alu {
                    op: AluOp::Add,
                    dst: v(i),
                    src: Opnd::Imm(1),
                    width: Width::W64,
                },
                LInst::Cmp {
                    lhs: Opnd::Loc(v(i)),
                    rhs: Opnd::Loc(v(0)),
                    width: Width::W64,
                },
                LInst::Jcc {
                    cc: Cc::L,
                    target: BlockId(1),
                },
            ],
        },
        LBlock {
            insts: vec![LInst::Ret {
                value: Some(Arg::Int(Opnd::Loc(v(acc)))),
            }],
        },
    ];
    f
}

#[test]
fn calls_preserve_live_values() {
    let n = 50u64;
    // sum(i + 3 for i in 0..n).
    let expect: u64 = (0..n).map(|i| i + 3).sum();
    for coloring in [true, false] {
        let (r, _) = run_lir(vec![caller_func(), callee_add()], 0, &[n], coloring);
        assert_eq!(r, expect, "coloring={coloring}");
    }
}

/// Float pipeline: dot product with a call in the loop to force float
/// spills.
fn float_func() -> LFunc {
    let mut f = LFunc::default();
    f.name = "floats".into();
    f.params = vec![VClass::Int];
    f.new_vreg(VClass::Int); // v0 = n.
    let facc = f.new_vreg(VClass::Float); // v1.
    let ftmp = f.new_vreg(VClass::Float); // v2.
    let i = f.new_vreg(VClass::Int); // v3.
    let r = f.new_vreg(VClass::Int); // v4.
    f.blocks = vec![
        LBlock {
            insts: vec![
                LInst::MovFImm {
                    dst: FLoc::V(facc),
                    bits: 0f64.to_bits(),
                    prec: FPrec::F64,
                },
                LInst::Mov {
                    dst: v(i),
                    src: Opnd::Imm(0),
                    width: Width::W64,
                },
            ],
        },
        LBlock {
            insts: vec![
                LInst::CvtIntToF {
                    dst: FLoc::V(ftmp),
                    src: Opnd::Loc(v(i)),
                    width: Width::W64,
                    prec: FPrec::F64,
                    unsigned: false,
                },
                LInst::AluF {
                    op: wasmperf_isa::FAluOp::Mul,
                    dst: FLoc::V(ftmp),
                    src: FOpnd::Loc(FLoc::V(ftmp)),
                    prec: FPrec::F64,
                },
                LInst::AluF {
                    op: wasmperf_isa::FAluOp::Add,
                    dst: FLoc::V(facc),
                    src: FOpnd::Loc(FLoc::V(ftmp)),
                    prec: FPrec::F64,
                },
                // A call: facc must survive (spilled — xmm are
                // caller-saved).
                LInst::Call {
                    func: 1,
                    args: vec![Arg::Int(Opnd::Loc(v(i))), Arg::Int(Opnd::Imm(0))],
                    ret: Some(RetVal::Int(v(r))),
                },
                LInst::Alu {
                    op: AluOp::Add,
                    dst: v(i),
                    src: Opnd::Imm(1),
                    width: Width::W64,
                },
                LInst::Cmp {
                    lhs: Opnd::Loc(v(i)),
                    rhs: Opnd::Loc(v(0)),
                    width: Width::W64,
                },
                LInst::Jcc {
                    cc: Cc::L,
                    target: BlockId(1),
                },
            ],
        },
        LBlock {
            insts: vec![
                LInst::CvtFToInt {
                    dst: v(r),
                    src: FOpnd::Loc(FLoc::V(facc)),
                    width: Width::W64,
                    prec: FPrec::F64,
                    unsigned: false,
                },
                LInst::Ret {
                    value: Some(Arg::Int(Opnd::Loc(v(r)))),
                },
            ],
        },
    ];
    f
}

#[test]
fn float_values_survive_calls_via_spills() {
    let n = 20u64;
    let expect: u64 = (0..n).map(|i| i * i).sum();
    for coloring in [true, false] {
        let (r, _) = run_lir(vec![float_func(), callee_add()], 0, &[n], coloring);
        assert_eq!(r, expect, "coloring={coloring}");
    }
}

#[test]
fn chrome_profile_executes_correctly_with_fewer_registers() {
    // Same pressure function under the smallest pool must still compute
    // the right answer, just with more memory traffic.
    let profile_chrome = wasmperf_regalloc::AllocProfile::chrome();
    let profile_native = wasmperf_regalloc::AllocProfile::native();
    let f = pressure_func();
    let n = 100u64;
    let expect = 2 * (1..=n).map(|i| i * i).sum::<u64>() + 1;

    let mut results = Vec::new();
    for profile in [&profile_chrome, &profile_native] {
        let assign = allocate_linear_scan(&f, profile);
        let mut module = Module {
            funcs: vec![emit_function(&f, &assign, profile)],
            table: vec![],
            entry: Some(FuncId(0)),
            memory_size: 0x10000,
            data: vec![],
            sandbox: None,
        };
        module.assign_addresses();
        let mut machine = Machine::new(&module, NullHost);
        let out = machine.run(FuncId(0), &[n], 10_000_000).unwrap();
        results.push((
            out.ret,
            out.counters.loads_retired + out.counters.stores_retired,
        ));
    }
    assert_eq!(results[0].0, expect);
    assert_eq!(results[1].0, expect);
    // The smaller pool must generate at least as much memory traffic.
    assert!(
        results[0].1 >= results[1].1,
        "chrome {} vs native {}",
        results[0].1,
        results[1].1
    );
}

/// `dst = 0xFFFF_FFE2 ror count` under enough pressure that both the
/// destination and the count spill. A variable count travels through
/// cl; the emitter once resolved a spilled destination *after* parking
/// the count in rcx, reloading the destination into rcx (the second
/// emitter scratch) and rotating by the destination's own low bits.
#[test]
fn spilled_shift_dest_does_not_clobber_count_in_cl() {
    let profile = wasmperf_regalloc::AllocProfile::chrome();
    let mut f = LFunc::default();
    f.name = "rot".into();
    f.params = vec![];

    // Fillers v0..=v13 occupy the whole 8-register chrome pool with
    // ranges spanning the shift; count and dst are defined late so the
    // linear scan leaves them on the stack.
    let fillers: Vec<u32> = (0..14).map(|_| f.new_vreg(VClass::Int)).collect();
    let count = f.new_vreg(VClass::Int);
    let dst = f.new_vreg(VClass::Int);

    let mut insts = Vec::new();
    for (k, &vr) in fillers.iter().enumerate() {
        insts.push(LInst::Mov {
            dst: v(vr),
            src: Opnd::Imm(k as i64 + 1),
            width: Width::W64,
        });
    }
    insts.push(LInst::Mov {
        dst: v(count),
        src: Opnd::Imm(1),
        width: Width::W64,
    });
    insts.push(LInst::Mov {
        dst: v(dst),
        src: Opnd::Imm(0xFFFF_FFE2),
        width: Width::W64,
    });
    insts.push(LInst::Shift {
        op: AluOp::Ror,
        dst: v(dst),
        count: Opnd::Loc(v(count)),
        width: Width::W32,
    });
    // Keep every filler live past the shift, and use the count *after*
    // them: the linear scan spills the interval with the furthest end,
    // so the late uses push both count and dst onto the stack.
    for &vr in &fillers {
        insts.push(LInst::Alu {
            op: AluOp::Add,
            dst: v(dst),
            src: Opnd::Loc(v(vr)),
            width: Width::W64,
        });
    }
    insts.push(LInst::Alu {
        op: AluOp::Add,
        dst: v(dst),
        src: Opnd::Loc(v(count)),
        width: Width::W64,
    });
    insts.push(LInst::Ret {
        value: Some(Arg::Int(Opnd::Loc(v(dst)))),
    });
    f.blocks = vec![LBlock { insts }];

    let assign = allocate_linear_scan(&f, &profile);
    // The hazard needs both operands on the stack — if an allocator
    // change invalidates this, grow the filler set or push the uses
    // later.
    for (name, vr) in [("count", count), ("dst", dst)] {
        assert!(
            matches!(assign.of[vr as usize], wasmperf_regalloc::Slot::Stack(_)),
            "{name} must spill for this test to bite: {:?}",
            assign.of[vr as usize]
        );
    }

    let mut module = Module {
        funcs: vec![emit_function(&f, &assign, &profile)],
        table: vec![],
        entry: Some(FuncId(0)),
        memory_size: 0x10000,
        data: vec![],
        sandbox: None,
    };
    module.assign_addresses();
    let mut machine = Machine::new(&module, NullHost);
    let out = machine.run(FuncId(0), &[], 10_000_000).unwrap();
    let fill_sum: u64 = (1..=14).sum();
    assert_eq!(out.ret, 0x7FFF_FFF1 + fill_sum + 1);
}
