//! Property-based allocator tests: random extended-basic-block LIR
//! functions must allocate without interference violations under both
//! allocators and every engine profile.

use proptest::prelude::*;
use wasmperf_isa::{AluOp, Cc, Width};
use wasmperf_regalloc::lir::{FLoc, FOpnd};
use wasmperf_regalloc::{
    allocate_coloring, allocate_linear_scan, linearscan::verify_no_conflicts, AllocProfile, Arg,
    BlockId, LBlock, LFunc, LInst, LMem, Loc, Opnd, RetVal, VClass,
};

/// A compact program description the strategy generates.
#[derive(Debug, Clone)]
struct Shape {
    n_int: u32,
    n_float: u32,
    blocks: Vec<Vec<Op>>,
}

#[derive(Debug, Clone)]
enum Op {
    MovImm(u32, i64),
    Add(u32, u32),
    Load(u32, i64),
    Store(u32, i64),
    CmpJcc(u32, u32, usize),
    MidJcc(u32, usize),
    Call(Vec<u32>, u32),
    FMovImm(u32, u64),
    FAdd(u32, u32),
}

fn op_strategy(n_int: u32, n_float: u32, n_blocks: usize) -> impl Strategy<Value = Op> {
    let iv = 0..n_int;
    let fv = 0..n_float;
    prop_oneof![
        (iv.clone(), -100i64..100).prop_map(|(v, k)| Op::MovImm(v, k)),
        (iv.clone(), iv.clone()).prop_map(|(a, b)| Op::Add(a, b)),
        (iv.clone(), 0i64..64).prop_map(|(v, a)| Op::Load(v, a * 8)),
        (iv.clone(), 0i64..64).prop_map(|(v, a)| Op::Store(v, a * 8)),
        (iv.clone(), iv.clone(), 0..n_blocks).prop_map(|(a, b, t)| Op::CmpJcc(a, b, t)),
        (iv.clone(), 0..n_blocks).prop_map(|(v, t)| Op::MidJcc(v, t)),
        (proptest::collection::vec(iv.clone(), 0..3), iv.clone())
            .prop_map(|(args, r)| Op::Call(args, r)),
        (fv.clone(), proptest::arbitrary::any::<u64>()).prop_map(|(v, bits)| Op::FMovImm(v, bits)),
        (fv.clone(), fv).prop_map(|(a, b)| Op::FAdd(a, b)),
    ]
}

fn shape_strategy() -> impl Strategy<Value = Shape> {
    (2u32..14, 1u32..5, 2usize..6).prop_flat_map(|(n_int, n_float, n_blocks)| {
        proptest::collection::vec(
            proptest::collection::vec(op_strategy(n_int, n_float, n_blocks), 1..10),
            n_blocks..=n_blocks,
        )
        .prop_map(move |blocks| Shape {
            n_int,
            n_float,
            blocks,
        })
    })
}

fn build(shape: &Shape) -> LFunc {
    let mut f = LFunc::default();
    for _ in 0..shape.n_int {
        f.new_vreg(VClass::Int);
    }
    for _ in 0..shape.n_float {
        f.new_vreg(VClass::Float);
    }
    let fbase = shape.n_int;
    let nb = shape.blocks.len();
    for (bi, ops) in shape.blocks.iter().enumerate() {
        let mut insts = Vec::new();
        for op in ops {
            match op {
                Op::MovImm(v, k) => insts.push(LInst::Mov {
                    dst: Loc::V(*v),
                    src: Opnd::Imm(*k),
                    width: Width::W64,
                }),
                Op::Add(a, b) => insts.push(LInst::Alu {
                    op: AluOp::Add,
                    dst: Loc::V(*a),
                    src: Opnd::Loc(Loc::V(*b)),
                    width: Width::W64,
                }),
                Op::Load(v, addr) => insts.push(LInst::Mov {
                    dst: Loc::V(*v),
                    src: Opnd::Mem(LMem::abs(*addr)),
                    width: Width::W64,
                }),
                Op::Store(v, addr) => insts.push(LInst::Store {
                    mem: LMem::abs(*addr),
                    src: Opnd::Loc(Loc::V(*v)),
                    width: Width::W64,
                }),
                Op::CmpJcc(a, b, t) => {
                    insts.push(LInst::Cmp {
                        lhs: Opnd::Loc(Loc::V(*a)),
                        rhs: Opnd::Loc(Loc::V(*b)),
                        width: Width::W64,
                    });
                    insts.push(LInst::Jcc {
                        cc: Cc::L,
                        target: BlockId((*t % nb) as u32),
                    });
                }
                Op::MidJcc(v, t) => {
                    insts.push(LInst::Test {
                        lhs: Opnd::Loc(Loc::V(*v)),
                        rhs: Opnd::Loc(Loc::V(*v)),
                        width: Width::W64,
                    });
                    insts.push(LInst::Jcc {
                        cc: Cc::Ne,
                        target: BlockId((*t % nb) as u32),
                    });
                }
                Op::Call(args, ret) => insts.push(LInst::Call {
                    func: 0,
                    args: args
                        .iter()
                        .map(|a| Arg::Int(Opnd::Loc(Loc::V(*a))))
                        .collect(),
                    ret: Some(RetVal::Int(Loc::V(*ret))),
                }),
                Op::FMovImm(v, bits) => insts.push(LInst::MovFImm {
                    dst: FLoc::V(fbase + *v),
                    bits: *bits,
                    prec: wasmperf_isa::FPrec::F64,
                }),
                Op::FAdd(a, b) => insts.push(LInst::AluF {
                    op: wasmperf_isa::FAluOp::Add,
                    dst: FLoc::V(fbase + *a),
                    src: FOpnd::Loc(FLoc::V(fbase + *b)),
                    prec: wasmperf_isa::FPrec::F64,
                }),
            }
        }
        // Terminate: last block returns, others jump forward (keeps every
        // block reachable-ish and explicitly terminated).
        if bi + 1 == nb {
            insts.push(LInst::Ret {
                value: Some(Arg::Int(Opnd::Loc(Loc::V(0)))),
            });
        } else {
            insts.push(LInst::Jmp {
                target: BlockId((bi + 1) as u32),
            });
        }
        f.blocks.push(LBlock { insts });
    }
    f
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn allocations_never_violate_interference(shape in shape_strategy()) {
        let f = build(&shape);
        for profile in [
            AllocProfile::native(),
            AllocProfile::chrome(),
            AllocProfile::firefox(),
        ] {
            let ls = allocate_linear_scan(&f, &profile);
            verify_no_conflicts(&f, &ls)
                .map_err(|e| TestCaseError::fail(format!("linear scan/{}: {e}", profile.name)))?;
            let gc = allocate_coloring(&f, &profile);
            verify_no_conflicts(&f, &gc)
                .map_err(|e| TestCaseError::fail(format!("coloring/{}: {e}", profile.name)))?;
            // Registers assigned must come from the profile's pools.
            for assign in [&ls, &gc] {
                for slot in &assign.of {
                    match slot {
                        wasmperf_regalloc::Slot::IntReg(r) => {
                            prop_assert!(profile.int_pool.contains(r), "{r} not in pool");
                        }
                        wasmperf_regalloc::Slot::FloatReg(x) => {
                            prop_assert!(profile.float_pool.contains(x), "{x} not in pool");
                        }
                        _ => {}
                    }
                }
            }
        }
    }
}
