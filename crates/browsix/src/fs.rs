//! BROWSERFS-analog in-memory filesystem.
//!
//! Flat path → node store with explicit buffer-capacity management so the
//! paper's append pathology is reproducible: under
//! [`AppendPolicy::ExactFit`], every append reallocates the file's backing
//! buffer to exactly the new length and copies the old contents (the
//! original BROWSERFS behaviour); under [`AppendPolicy::Chunked4K`]
//! (the paper's fix, §2), capacity grows by at least 4 KiB — doubling up
//! to that floor — so appends amortize. The filesystem reports the bytes
//! it copied for buffer management, which the kernel charges as kernel
//! time.

use std::collections::BTreeMap;

/// Buffer-growth policy for file appends (§2 of the paper).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AppendPolicy {
    /// Reallocate to the exact new size on every append (original
    /// BROWSERFS; quadratic copying on repeated small appends).
    ExactFit,
    /// Grow capacity by `max(4 KiB, 2x)` when space runs out (the fix).
    Chunked4K,
}

/// Filesystem errors (negative errno-style codes at the syscall layer).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FsError {
    /// Path does not exist.
    NotFound,
    /// Path exists but has the wrong kind (file vs directory).
    IsDirectory,
    /// Parent directory missing.
    NoParent,
    /// Directory not empty on rmdir.
    NotEmpty,
    /// Path already exists.
    Exists,
}

/// The errno value for an error.
pub fn errno(e: &FsError) -> i32 {
    match e {
        FsError::NotFound => -2,     // ENOENT
        FsError::IsDirectory => -21, // EISDIR
        FsError::NoParent => -2,
        FsError::NotEmpty => -39, // ENOTEMPTY
        FsError::Exists => -17,   // EEXIST
    }
}

#[derive(Debug, Clone)]
enum Node {
    File {
        /// Backing buffer; `len` bytes are valid.
        buf: Vec<u8>,
        len: usize,
    },
    Dir,
}

/// Copy/allocation statistics for buffer management (the Figure-4 lever).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FsStats {
    /// Bytes copied while growing file buffers.
    pub grow_copy_bytes: u64,
    /// Number of buffer reallocations.
    pub reallocs: u64,
}

/// The in-memory filesystem.
#[derive(Debug, Clone)]
pub struct BrowserFs {
    nodes: BTreeMap<String, Node>,
    policy: AppendPolicy,
    /// Buffer-management statistics.
    pub stats: FsStats,
}

fn normalize(path: &str) -> String {
    let mut out = String::from("/");
    for part in path.split('/') {
        if part.is_empty() || part == "." {
            continue;
        }
        if !out.ends_with('/') {
            out.push('/');
        }
        out.push_str(part);
    }
    out
}

fn parent_of(path: &str) -> String {
    match path.rfind('/') {
        Some(0) | None => "/".to_string(),
        Some(i) => path[..i].to_string(),
    }
}

impl BrowserFs {
    /// Creates an empty filesystem rooted at `/` with the given policy.
    pub fn new(policy: AppendPolicy) -> BrowserFs {
        let mut nodes = BTreeMap::new();
        nodes.insert("/".to_string(), Node::Dir);
        BrowserFs {
            nodes,
            policy,
            stats: FsStats::default(),
        }
    }

    /// The active append policy.
    pub fn policy(&self) -> AppendPolicy {
        self.policy
    }

    /// Creates a directory.
    pub fn mkdir(&mut self, path: &str) -> Result<(), FsError> {
        let p = normalize(path);
        if self.nodes.contains_key(&p) {
            return Err(FsError::Exists);
        }
        if !matches!(self.nodes.get(&parent_of(&p)), Some(Node::Dir)) {
            return Err(FsError::NoParent);
        }
        self.nodes.insert(p, Node::Dir);
        Ok(())
    }

    /// Removes an empty directory.
    pub fn rmdir(&mut self, path: &str) -> Result<(), FsError> {
        let p = normalize(path);
        match self.nodes.get(&p) {
            Some(Node::Dir) => {}
            Some(_) => return Err(FsError::NotFound),
            None => return Err(FsError::NotFound),
        }
        let prefix = format!("{}/", p);
        if self.nodes.keys().any(|k| k.starts_with(&prefix)) {
            return Err(FsError::NotEmpty);
        }
        self.nodes.remove(&p);
        Ok(())
    }

    /// Creates or truncates a file.
    pub fn create(&mut self, path: &str) -> Result<(), FsError> {
        let p = normalize(path);
        if matches!(self.nodes.get(&p), Some(Node::Dir)) {
            return Err(FsError::IsDirectory);
        }
        if !matches!(self.nodes.get(&parent_of(&p)), Some(Node::Dir)) {
            return Err(FsError::NoParent);
        }
        self.nodes.insert(
            p,
            Node::File {
                buf: Vec::new(),
                len: 0,
            },
        );
        Ok(())
    }

    /// True when `path` exists (file or directory).
    pub fn exists(&self, path: &str) -> bool {
        self.nodes.contains_key(&normalize(path))
    }

    /// True when `path` is a file.
    pub fn is_file(&self, path: &str) -> bool {
        matches!(self.nodes.get(&normalize(path)), Some(Node::File { .. }))
    }

    /// File size in bytes.
    pub fn size(&self, path: &str) -> Result<u64, FsError> {
        match self.nodes.get(&normalize(path)) {
            Some(Node::File { len, .. }) => Ok(*len as u64),
            Some(Node::Dir) => Err(FsError::IsDirectory),
            None => Err(FsError::NotFound),
        }
    }

    /// Removes a file.
    pub fn unlink(&mut self, path: &str) -> Result<(), FsError> {
        let p = normalize(path);
        match self.nodes.get(&p) {
            Some(Node::File { .. }) => {
                self.nodes.remove(&p);
                Ok(())
            }
            Some(Node::Dir) => Err(FsError::IsDirectory),
            None => Err(FsError::NotFound),
        }
    }

    /// Reads up to `out.len()` bytes at `offset`; returns bytes read.
    pub fn read(&self, path: &str, offset: u64, out: &mut [u8]) -> Result<usize, FsError> {
        match self.nodes.get(&normalize(path)) {
            Some(Node::File { buf, len }) => {
                let start = (offset as usize).min(*len);
                let n = out.len().min(*len - start);
                out[..n].copy_from_slice(&buf[start..start + n]);
                Ok(n)
            }
            Some(Node::Dir) => Err(FsError::IsDirectory),
            None => Err(FsError::NotFound),
        }
    }

    /// Writes `data` at `offset` (extending the file if needed); returns
    /// bytes written. Growth beyond capacity follows the append policy and
    /// is charged to [`FsStats::grow_copy_bytes`].
    pub fn write(&mut self, path: &str, offset: u64, data: &[u8]) -> Result<usize, FsError> {
        let p = normalize(path);
        let policy = self.policy;
        let stats = &mut self.stats;
        match self.nodes.get_mut(&p) {
            Some(Node::File { buf, len }) => {
                let end = offset as usize + data.len();
                if end > buf.len() {
                    // Reallocate per policy, copying the live contents.
                    let new_cap = match policy {
                        AppendPolicy::ExactFit => end,
                        AppendPolicy::Chunked4K => end.max(buf.len() * 2).max(buf.len() + 4096),
                    };
                    let mut nb = vec![0u8; new_cap];
                    nb[..*len].copy_from_slice(&buf[..*len]);
                    stats.grow_copy_bytes += *len as u64;
                    stats.reallocs += 1;
                    *buf = nb;
                }
                if offset as usize > *len {
                    // Hole fill already zeroed.
                }
                buf[offset as usize..end].copy_from_slice(data);
                *len = (*len).max(end);
                Ok(data.len())
            }
            Some(Node::Dir) => Err(FsError::IsDirectory),
            None => Err(FsError::NotFound),
        }
    }

    /// Sets the file's length to `new_len` (ftruncate). Growth allocates
    /// per the append policy and charges the copy like [`write`]; the new
    /// tail reads as zeros. Shrinking zeroes the dropped bytes so a later
    /// extension keeps the hole-fill invariant (buffer beyond `len` is
    /// always zero).
    ///
    /// [`write`]: BrowserFs::write
    pub fn truncate(&mut self, path: &str, new_len: u64) -> Result<(), FsError> {
        let p = normalize(path);
        let policy = self.policy;
        let stats = &mut self.stats;
        match self.nodes.get_mut(&p) {
            Some(Node::File { buf, len }) => {
                let nl = new_len as usize;
                if nl > buf.len() {
                    let new_cap = match policy {
                        AppendPolicy::ExactFit => nl,
                        AppendPolicy::Chunked4K => nl.max(buf.len() * 2).max(buf.len() + 4096),
                    };
                    let mut nb = vec![0u8; new_cap];
                    nb[..*len].copy_from_slice(&buf[..*len]);
                    stats.grow_copy_bytes += *len as u64;
                    stats.reallocs += 1;
                    *buf = nb;
                } else if nl < *len {
                    buf[nl..*len].fill(0);
                }
                *len = nl;
                Ok(())
            }
            Some(Node::Dir) => Err(FsError::IsDirectory),
            None => Err(FsError::NotFound),
        }
    }

    /// Convenience: whole-file read.
    pub fn read_all(&self, path: &str) -> Result<Vec<u8>, FsError> {
        let n = self.size(path)? as usize;
        let mut out = vec![0u8; n];
        self.read(path, 0, &mut out)?;
        Ok(out)
    }

    /// Convenience: create + write whole file.
    pub fn write_all(&mut self, path: &str, data: &[u8]) -> Result<(), FsError> {
        self.create(path)?;
        self.write(path, 0, data)?;
        Ok(())
    }

    /// Lists directory entries (names only).
    pub fn readdir(&self, path: &str) -> Result<Vec<String>, FsError> {
        let p = normalize(path);
        if !matches!(self.nodes.get(&p), Some(Node::Dir)) {
            return Err(FsError::NotFound);
        }
        let prefix = if p == "/" {
            "/".to_string()
        } else {
            format!("{}/", p)
        };
        Ok(self
            .nodes
            .keys()
            .filter(|k| k.starts_with(&prefix) && **k != p && !k[prefix.len()..].contains('/'))
            .map(|k| k[prefix.len()..].to_string())
            .collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn create_write_read_roundtrip() {
        let mut fs = BrowserFs::new(AppendPolicy::Chunked4K);
        fs.write_all("/data/in.txt", b"hello world")
            .expect_err("no parent yet");
        fs.mkdir("/data").unwrap();
        fs.write_all("/data/in.txt", b"hello world").unwrap();
        assert_eq!(fs.read_all("/data/in.txt").unwrap(), b"hello world");
        assert_eq!(fs.size("/data/in.txt").unwrap(), 11);
    }

    #[test]
    fn offset_reads_and_writes() {
        let mut fs = BrowserFs::new(AppendPolicy::Chunked4K);
        fs.write_all("/f", b"abcdefgh").unwrap();
        let mut buf = [0u8; 3];
        assert_eq!(fs.read("/f", 2, &mut buf).unwrap(), 3);
        assert_eq!(&buf, b"cde");
        fs.write("/f", 4, b"XY").unwrap();
        assert_eq!(fs.read_all("/f").unwrap(), b"abcdXYgh");
        // Read past end truncates.
        let mut big = [0u8; 64];
        assert_eq!(fs.read("/f", 6, &mut big).unwrap(), 2);
    }

    #[test]
    fn append_policies_differ_in_copying() {
        // 1000 appends of 32 bytes: exact-fit copies O(n^2) bytes, the
        // 4 KiB-chunked policy O(n) — the paper's h264ref fix.
        let run = |policy| {
            let mut fs = BrowserFs::new(policy);
            fs.write_all("/log", b"").unwrap();
            let mut off = 0u64;
            for _ in 0..1000 {
                fs.write("/log", off, &[7u8; 32]).unwrap();
                off += 32;
            }
            fs.stats
        };
        let exact = run(AppendPolicy::ExactFit);
        let chunked = run(AppendPolicy::Chunked4K);
        assert!(
            exact.grow_copy_bytes > 20 * chunked.grow_copy_bytes,
            "exact {} vs chunked {}",
            exact.grow_copy_bytes,
            chunked.grow_copy_bytes
        );
        assert!(exact.reallocs > 10 * chunked.reallocs);
    }

    #[test]
    fn unlink_and_errors() {
        let mut fs = BrowserFs::new(AppendPolicy::Chunked4K);
        assert_eq!(fs.unlink("/nope").unwrap_err(), FsError::NotFound);
        fs.mkdir("/d").unwrap();
        assert_eq!(fs.unlink("/d").unwrap_err(), FsError::IsDirectory);
        fs.write_all("/d/f", b"x").unwrap();
        assert_eq!(fs.rmdir("/d").unwrap_err(), FsError::NotEmpty);
        fs.unlink("/d/f").unwrap();
        fs.rmdir("/d").unwrap();
        assert!(!fs.exists("/d"));
    }

    #[test]
    fn readdir_lists_children() {
        let mut fs = BrowserFs::new(AppendPolicy::Chunked4K);
        fs.mkdir("/a").unwrap();
        fs.write_all("/a/x", b"1").unwrap();
        fs.write_all("/a/y", b"2").unwrap();
        fs.mkdir("/a/sub").unwrap();
        fs.write_all("/a/sub/z", b"3").unwrap();
        let mut names = fs.readdir("/a").unwrap();
        names.sort();
        assert_eq!(names, vec!["sub", "x", "y"]);
    }

    #[test]
    fn path_normalization() {
        let mut fs = BrowserFs::new(AppendPolicy::Chunked4K);
        fs.write_all("/f.txt", b"data").unwrap();
        assert!(fs.exists("//f.txt"));
        assert!(fs.exists("/./f.txt"));
        assert!(fs.exists("f.txt"));
    }

    #[test]
    fn truncate_grows_shrinks_and_zeroes() {
        let mut fs = BrowserFs::new(AppendPolicy::ExactFit);
        assert_eq!(fs.truncate("/nope", 4).unwrap_err(), FsError::NotFound);
        fs.mkdir("/d").unwrap();
        assert_eq!(fs.truncate("/d", 4).unwrap_err(), FsError::IsDirectory);
        fs.write_all("/f", b"abcdef").unwrap();
        // Grow: new tail reads as zeros, copy charged.
        let before = fs.stats;
        fs.truncate("/f", 10).unwrap();
        assert_eq!(fs.read_all("/f").unwrap(), b"abcdef\0\0\0\0");
        assert_eq!(fs.stats.grow_copy_bytes, before.grow_copy_bytes + 6);
        assert_eq!(fs.stats.reallocs, before.reallocs + 1);
        // Shrink, then extend again: dropped bytes must not reappear.
        fs.truncate("/f", 3).unwrap();
        assert_eq!(fs.read_all("/f").unwrap(), b"abc");
        fs.truncate("/f", 6).unwrap();
        assert_eq!(fs.read_all("/f").unwrap(), b"abc\0\0\0");
    }

    #[test]
    fn sparse_write_zero_fills() {
        let mut fs = BrowserFs::new(AppendPolicy::Chunked4K);
        fs.write_all("/s", b"ab").unwrap();
        fs.write("/s", 6, b"z").unwrap();
        assert_eq!(fs.read_all("/s").unwrap(), b"ab\0\0\0\0z");
    }
}
