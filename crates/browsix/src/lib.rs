//! BROWSIX-WASM: the in-browser Unix kernel.
//!
//! The paper's central engineering contribution is a Unix-compatible
//! kernel running inside the browser, giving unmodified WebAssembly
//! programs files, pipes, and processes (§2). This crate implements that
//! kernel for the simulated platform:
//!
//! - [`fs`]: the BROWSERFS-analog in-memory filesystem, including the
//!   paper's append-growth pathology as a switchable
//!   [`fs::AppendPolicy`] — the original exact-fit reallocation cost
//!   `464.h264ref` 25 seconds of kernel time; the fix grows buffers by at
//!   least 4 KiB;
//! - [`pipe`]: kernel pipe buffers;
//! - [`kernel`]: the process/file-descriptor layer and the syscall
//!   dispatcher, with the §2 *auxiliary-buffer transport* cost model:
//!   every syscall pays a fixed process↔kernel message latency (the
//!   `postMessage`/`Atomics` round trip) plus a copy cost for the data
//!   marshalled through the shared auxiliary buffer, and transfers larger
//!   than the 64 MiB buffer are split into chunks that each pay the
//!   message latency again.
//!
//! Kernel time is accounted separately from user cycles (the executor's
//! `host_cycles` counter), which is exactly what the paper's Figure 4
//! reports as "% of time spent in Browsix".

pub mod fs;
pub mod kernel;
pub mod pipe;

pub use fs::{AppendPolicy, BrowserFs, FsError};
pub use kernel::{Kernel, KernelStats, KernelTiming, Syscall};
pub use pipe::Pipe;
