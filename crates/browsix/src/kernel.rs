//! The BROWSIX-WASM kernel: file descriptors, syscall dispatch, and the
//! auxiliary-buffer transport cost model.
//!
//! ## Syscall convention
//!
//! Programs issue `syscall(num, a, b, c, ...)`; the kernel dispatches on
//! `num` (Linux-flavoured numbers, see [`Syscall`]). Buffer arguments are
//! addresses in the process's linear memory.
//!
//! ## The §2 transport model
//!
//! BROWSIX-WASM processes run in WebWorkers; the kernel runs on the main
//! JS context. WebAssembly memory cannot be shared, so each syscall
//! marshals its data through a 64 MiB `SharedArrayBuffer`:
//!
//! 1. the process copies outgoing buffers into the auxiliary buffer,
//! 2. a message (Atomics wait/notify round trip) transfers control,
//! 3. the kernel services the call against BROWSERFS / pipes,
//! 4. results are copied back into process memory.
//!
//! [`KernelTiming`] charges a fixed `message_latency_cycles` per kernel
//! round trip, `copy_bytes_per_cycle` for the two marshalling copies, and
//! splits transfers larger than [`KernelTiming::aux_buffer_bytes`] into
//! chunks that each pay the message latency again. Filesystem buffer
//! growth (the append-policy pathology) is charged at the same copy rate.
//! All of it lands in the executor's `host_cycles`, i.e. the paper's
//! "time spent in Browsix" (Figure 4).

use crate::fs::{errno, AppendPolicy, BrowserFs};
use crate::pipe::Pipe;
use wasmperf_cpu::{HostEnv, HostOutcome, Memory};
use wasmperf_isa::TrapKind;

/// Syscall numbers (Linux i386-flavoured, as Browsix used).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[allow(missing_docs)]
pub enum Syscall {
    Exit = 1,
    Read = 3,
    Write = 4,
    Open = 5,
    Close = 6,
    Unlink = 10,
    Lseek = 19,
    Getpid = 20,
    Access = 33,
    Mkdir = 39,
    Rmdir = 40,
    Dup = 41,
    Pipe = 42,
    Ftruncate = 93,
    Stat = 106,
    Fstat = 108,
    Fsync = 118,
}

impl Syscall {
    /// Every syscall the kernel services, in number order. Keep in sync
    /// with the enum and the dispatch in `syscall_inner`; the trace
    /// crate's name/class tables are tested against this list.
    pub const ALL: [Syscall; 17] = [
        Syscall::Exit,
        Syscall::Read,
        Syscall::Write,
        Syscall::Open,
        Syscall::Close,
        Syscall::Unlink,
        Syscall::Lseek,
        Syscall::Getpid,
        Syscall::Access,
        Syscall::Mkdir,
        Syscall::Rmdir,
        Syscall::Dup,
        Syscall::Pipe,
        Syscall::Ftruncate,
        Syscall::Stat,
        Syscall::Fstat,
        Syscall::Fsync,
    ];

    /// The syscall number.
    pub fn nr(self) -> i32 {
        self as i32
    }
}

/// `open` flags understood by the kernel.
pub mod flags {
    /// Read only.
    pub const O_RDONLY: i32 = 0;
    /// Write only.
    pub const O_WRONLY: i32 = 1;
    /// Read/write.
    pub const O_RDWR: i32 = 2;
    /// Create if missing.
    pub const O_CREAT: i32 = 0x40;
    /// Truncate on open.
    pub const O_TRUNC: i32 = 0x200;
    /// Append mode.
    pub const O_APPEND: i32 = 0x400;
}

/// Transport and service cost parameters, in CPU cycles.
#[derive(Debug, Clone)]
pub struct KernelTiming {
    /// Fixed cost of one process↔kernel message round trip.
    pub message_latency_cycles: u64,
    /// Marshalling throughput (bytes per cycle, applied to 2x the payload:
    /// copy-in plus copy-out).
    pub copy_bytes_per_cycle: u64,
    /// Base in-kernel service cost per syscall.
    pub service_cycles: u64,
    /// Auxiliary shared-buffer size; larger transfers are chunked.
    pub aux_buffer_bytes: u64,
}

impl Default for KernelTiming {
    fn default() -> Self {
        KernelTiming {
            // ~1.1 us at 3.5 GHz — an Atomics wait/notify round trip.
            message_latency_cycles: 4_000,
            copy_bytes_per_cycle: 8,
            service_cycles: 600,
            aux_buffer_bytes: 64 << 20,
        }
    }
}

/// Aggregate kernel statistics for one run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct KernelStats {
    /// Syscalls serviced.
    pub syscalls: u64,
    /// Total kernel cycles charged (transport + service + fs copying).
    pub kernel_cycles: u64,
    /// Transport component of `kernel_cycles`: message round trips plus
    /// the two marshalling copies through the auxiliary buffer.
    pub transport_cycles: u64,
    /// In-kernel service component of `kernel_cycles`.
    pub service_cycles: u64,
    /// Filesystem buffer-growth copying component of `kernel_cycles`.
    /// The three components sum to `kernel_cycles`.
    pub fs_copy_cycles: u64,
    /// Payload bytes marshalled through the auxiliary buffer.
    pub bytes_marshalled: u64,
    /// Extra messages due to >aux-buffer chunking.
    pub chunk_messages: u64,
}

#[derive(Debug, Clone)]
enum Fd {
    File {
        path: String,
        pos: u64,
        append: bool,
    },
    PipeRead(usize),
    PipeWrite(usize),
    Stdin,
    Stdout,
    Stderr,
}

/// The kernel: one foreground process, full fd table, fs, and pipes.
#[derive(Debug)]
pub struct Kernel {
    /// The filesystem.
    pub fs: BrowserFs,
    pipes: Vec<Pipe>,
    fds: Vec<Option<Fd>>,
    /// Captured stdout bytes.
    pub stdout: Vec<u8>,
    /// Captured stderr bytes.
    pub stderr: Vec<u8>,
    /// Bytes served to stdin reads.
    pub stdin: Vec<u8>,
    stdin_pos: usize,
    /// Cost model.
    pub timing: KernelTiming,
    /// Statistics.
    pub stats: KernelStats,
    /// Exit code observed via the exit syscall.
    pub exit_code: Option<i32>,
    /// When present, every serviced syscall is appended here (the strace
    /// analog). `None` (the default) records nothing.
    pub strace: Option<wasmperf_trace::StraceLog>,
    /// Payload bytes of the most recent syscall, captured by `finish`.
    last_payload: u64,
    /// Cycle split (transport, service, fs copy) of the most recent
    /// syscall, captured by `finish` for the strace record.
    last_split: (u64, u64, u64),
}

impl Default for Kernel {
    fn default() -> Self {
        Kernel::new(AppendPolicy::Chunked4K)
    }
}

/// Abstracts process memory so the same kernel serves the CPU simulator,
/// the CLite interpreter, and the wasm interpreter.
///
/// `Err(())` means the access faulted; the kernel turns it into `EFAULT`,
/// so the error carries no further information.
#[allow(clippy::result_unit_err)]
pub trait ProcMem {
    /// Reads `len` bytes at `addr`.
    fn read_mem(&self, addr: u32, len: u32) -> Result<Vec<u8>, ()>;
    /// Writes `data` at `addr`.
    fn write_mem(&mut self, addr: u32, data: &[u8]) -> Result<(), ()>;
}

impl ProcMem for Memory {
    fn read_mem(&self, addr: u32, len: u32) -> Result<Vec<u8>, ()> {
        self.slice(addr as u64, len as u64)
            .map(<[u8]>::to_vec)
            .map_err(|_| ())
    }

    fn write_mem(&mut self, addr: u32, data: &[u8]) -> Result<(), ()> {
        self.write_bytes(addr as u64, data).map_err(|_| ())
    }
}

impl ProcMem for [u8] {
    fn read_mem(&self, addr: u32, len: u32) -> Result<Vec<u8>, ()> {
        let (a, l) = (addr as usize, len as usize);
        if a + l > self.len() {
            return Err(());
        }
        Ok(self[a..a + l].to_vec())
    }

    fn write_mem(&mut self, addr: u32, data: &[u8]) -> Result<(), ()> {
        let a = addr as usize;
        if a + data.len() > self.len() {
            return Err(());
        }
        self[a..a + data.len()].copy_from_slice(data);
        Ok(())
    }
}

impl Kernel {
    /// Creates a kernel with an empty filesystem and standard fds 0/1/2.
    pub fn new(policy: AppendPolicy) -> Kernel {
        Kernel {
            fs: BrowserFs::new(policy),
            pipes: Vec::new(),
            fds: vec![Some(Fd::Stdin), Some(Fd::Stdout), Some(Fd::Stderr)],
            stdout: Vec::new(),
            stderr: Vec::new(),
            stdin: Vec::new(),
            stdin_pos: 0,
            timing: KernelTiming::default(),
            stats: KernelStats::default(),
            exit_code: None,
            strace: None,
            last_payload: 0,
            last_split: (0, 0, 0),
        }
    }

    fn alloc_fd(&mut self, fd: Fd) -> i32 {
        for (i, slot) in self.fds.iter_mut().enumerate() {
            if slot.is_none() {
                *slot = Some(fd);
                return i as i32;
            }
        }
        self.fds.push(Some(fd));
        (self.fds.len() - 1) as i32
    }

    /// Charges transport and service costs for a syscall marshalling
    /// `payload` bytes; returns `(transport, service)` cycles.
    fn charge(&mut self, payload: u64) -> (u64, u64) {
        let t = &self.timing;
        let chunks = payload.div_ceil(t.aux_buffer_bytes).max(1);
        let transport = t.message_latency_cycles * chunks + (payload * 2) / t.copy_bytes_per_cycle;
        let service = t.service_cycles;
        self.stats.syscalls += 1;
        self.stats.kernel_cycles += transport + service;
        self.stats.transport_cycles += transport;
        self.stats.service_cycles += service;
        self.stats.bytes_marshalled += payload;
        self.stats.chunk_messages += chunks - 1;
        (transport, service)
    }

    /// Charges filesystem buffer-growth copying accumulated since the last
    /// syscall; returns cycles.
    fn charge_fs_copies(&mut self, before: u64) -> u64 {
        let grown = self.fs.stats.grow_copy_bytes - before;
        let cycles = grown / self.timing.copy_bytes_per_cycle;
        self.stats.kernel_cycles += cycles;
        self.stats.fs_copy_cycles += cycles;
        cycles
    }

    fn read_cstr<M: ProcMem + ?Sized>(mem: &M, addr: u32) -> Result<String, ()> {
        // Read in chunks until NUL.
        let mut out = Vec::new();
        let mut a = addr;
        loop {
            let chunk = mem.read_mem(a, 64).or_else(|_| mem.read_mem(a, 1))?;
            match chunk.iter().position(|&b| b == 0) {
                Some(n) => {
                    out.extend_from_slice(&chunk[..n]);
                    break;
                }
                None => {
                    out.extend_from_slice(&chunk);
                    a += chunk.len() as u32;
                    if out.len() > 4096 {
                        return Err(());
                    }
                }
            }
        }
        String::from_utf8(out).map_err(|_| ())
    }

    /// Services one syscall. `args[0]` is the number; returns the result
    /// value and the kernel cycles charged.
    pub fn syscall<M: ProcMem + ?Sized>(&mut self, args: &[i32], mem: &mut M) -> (i32, u64) {
        if self.strace.is_none() {
            return self.syscall_inner(args, mem);
        }
        let start_cycles = self.stats.kernel_cycles;
        let (ret, cycles) = self.syscall_inner(args, mem);
        let mut rec_args = [0i32; wasmperf_trace::MAX_ARGS];
        for (slot, &arg) in rec_args.iter_mut().zip(args.iter().skip(1)) {
            *slot = arg;
        }
        let (transport_cycles, service_cycles, fs_cycles) = self.last_split;
        let record = wasmperf_trace::SyscallRecord {
            nr: args.first().copied().unwrap_or(-1),
            args: rec_args,
            ret,
            payload: self.last_payload,
            cycles,
            transport_cycles,
            service_cycles,
            fs_cycles,
            start_cycles,
        };
        if let Some(log) = self.strace.as_mut() {
            log.records.push(record);
        }
        (ret, cycles)
    }

    fn syscall_inner<M: ProcMem + ?Sized>(&mut self, args: &[i32], mem: &mut M) -> (i32, u64) {
        let num = args.first().copied().unwrap_or(-1);
        let a = |i: usize| args.get(i).copied().unwrap_or(0);
        let fs_before = self.fs.stats.grow_copy_bytes;
        let mut payload: u64 = 0;

        let ret: i32 = match num {
            1 => {
                // exit(code): recorded; the adapter terminates execution.
                self.exit_code = Some(a(1));
                0
            }
            3 => {
                // read(fd, buf, len).
                let (fd, buf, len) = (a(1), a(2) as u32, a(3) as u32);
                match self.fds.get(fd as usize).and_then(Clone::clone) {
                    Some(Fd::File { path, pos, .. }) => {
                        let mut data = vec![0u8; len as usize];
                        match self.fs.read(&path, pos, &mut data) {
                            Ok(n) => {
                                if mem.write_mem(buf, &data[..n]).is_err() {
                                    -14 // EFAULT
                                } else {
                                    if let Some(Some(Fd::File { pos, .. })) =
                                        self.fds.get_mut(fd as usize)
                                    {
                                        *pos += n as u64;
                                    }
                                    payload = n as u64;
                                    n as i32
                                }
                            }
                            Err(e) => errno(&e),
                        }
                    }
                    Some(Fd::PipeRead(id)) => {
                        let mut data = vec![0u8; len as usize];
                        let n = self.pipes[id].read(&mut data);
                        if mem.write_mem(buf, &data[..n]).is_err() {
                            -14
                        } else {
                            payload = n as u64;
                            n as i32
                        }
                    }
                    Some(Fd::Stdin) => {
                        let remaining = &self.stdin[self.stdin_pos.min(self.stdin.len())..];
                        let n = remaining.len().min(len as usize);
                        if mem.write_mem(buf, &remaining[..n]).is_err() {
                            -14
                        } else {
                            self.stdin_pos += n;
                            payload = n as u64;
                            n as i32
                        }
                    }
                    _ => -9, // EBADF
                }
            }
            4 => {
                // write(fd, buf, len).
                let (fd, buf, len) = (a(1), a(2) as u32, a(3) as u32);
                match mem.read_mem(buf, len) {
                    Err(()) => -14,
                    Ok(data) => {
                        payload = data.len() as u64;
                        match self.fds.get(fd as usize).and_then(Clone::clone) {
                            Some(Fd::File { path, pos, append }) => {
                                let at = if append {
                                    self.fs.size(&path).unwrap_or(0)
                                } else {
                                    pos
                                };
                                match self.fs.write(&path, at, &data) {
                                    Ok(n) => {
                                        if let Some(Some(Fd::File { pos, .. })) =
                                            self.fds.get_mut(fd as usize)
                                        {
                                            *pos = at + n as u64;
                                        }
                                        n as i32
                                    }
                                    Err(e) => errno(&e),
                                }
                            }
                            Some(Fd::PipeWrite(id)) => match self.pipes[id].write(&data) {
                                Ok(n) => n as i32,
                                Err(()) => -32, // EPIPE
                            },
                            Some(Fd::Stdout) => {
                                self.stdout.extend_from_slice(&data);
                                data.len() as i32
                            }
                            Some(Fd::Stderr) => {
                                self.stderr.extend_from_slice(&data);
                                data.len() as i32
                            }
                            _ => -9,
                        }
                    }
                }
            }
            5 => {
                // open(path, flags, mode).
                match Self::read_cstr(mem, a(1) as u32) {
                    Err(()) => -14,
                    Ok(path) => {
                        payload = path.len() as u64;
                        let fl = a(2);
                        let exists = self.fs.is_file(&path);
                        if !exists && fl & flags::O_CREAT == 0 {
                            -2 // ENOENT
                        } else {
                            if !exists || fl & flags::O_TRUNC != 0 {
                                if let Err(e) = self.fs.create(&path) {
                                    return self.finish(errno(&e), payload, fs_before);
                                }
                            }
                            self.alloc_fd(Fd::File {
                                path,
                                pos: 0,
                                append: fl & flags::O_APPEND != 0,
                            })
                        }
                    }
                }
            }
            6 => {
                // close(fd).
                let fd = a(1) as usize;
                match self.fds.get_mut(fd) {
                    Some(slot @ Some(_)) => {
                        if let Some(Fd::PipeWrite(id)) = slot {
                            self.pipes[*id].write_closed = true;
                        }
                        if let Some(Fd::PipeRead(id)) = slot {
                            self.pipes[*id].read_closed = true;
                        }
                        *slot = None;
                        0
                    }
                    _ => -9,
                }
            }
            10 => match Self::read_cstr(mem, a(1) as u32) {
                Err(()) => -14,
                Ok(path) => {
                    payload = path.len() as u64;
                    match self.fs.unlink(&path) {
                        Ok(()) => 0,
                        Err(e) => errno(&e),
                    }
                }
            },
            19 => {
                // lseek(fd, offset, whence).
                let (fd, off, whence) = (a(1) as usize, a(2) as i64, a(3));
                match self.fds.get_mut(fd) {
                    Some(Some(Fd::File { path, pos, .. })) => {
                        let size = self.fs.size(path).unwrap_or(0) as i64;
                        let base = match whence {
                            0 => 0,
                            1 => *pos as i64,
                            2 => size,
                            _ => return self.finish(-22, 0, fs_before), // EINVAL
                        };
                        let np = base + off;
                        if np < 0 {
                            -22
                        } else {
                            *pos = np as u64;
                            np as i32
                        }
                    }
                    _ => -9,
                }
            }
            20 => 1, // getpid: the single foreground process.
            33 => match Self::read_cstr(mem, a(1) as u32) {
                Err(()) => -14,
                Ok(path) => {
                    payload = path.len() as u64;
                    if self.fs.exists(&path) {
                        0
                    } else {
                        -2
                    }
                }
            },
            39 => match Self::read_cstr(mem, a(1) as u32) {
                Err(()) => -14,
                Ok(path) => {
                    payload = path.len() as u64;
                    match self.fs.mkdir(&path) {
                        Ok(()) => 0,
                        Err(e) => errno(&e),
                    }
                }
            },
            40 => match Self::read_cstr(mem, a(1) as u32) {
                Err(()) => -14,
                Ok(path) => match self.fs.rmdir(&path) {
                    Ok(()) => 0,
                    Err(e) => errno(&e),
                },
            },
            41 => {
                // dup(fd): clones the fd entry into the lowest free slot.
                // File clones copy the offset (Browsix fds don't share
                // a file description); duping a pipe end aliases it, but
                // closing *any* write-end fd closes the pipe for writing.
                let fd = a(1) as usize;
                match self.fds.get(fd).and_then(Clone::clone) {
                    Some(entry) => self.alloc_fd(entry),
                    None => -9,
                }
            }
            42 => {
                // pipe(fds_ptr): writes two i32 fds.
                let ptr = a(1) as u32;
                let id = self.pipes.len();
                self.pipes.push(Pipe::default());
                let rfd = self.alloc_fd(Fd::PipeRead(id));
                let wfd = self.alloc_fd(Fd::PipeWrite(id));
                let mut buf = [0u8; 8];
                buf[..4].copy_from_slice(&rfd.to_le_bytes());
                buf[4..].copy_from_slice(&wfd.to_le_bytes());
                if mem.write_mem(ptr, &buf).is_err() {
                    -14
                } else {
                    payload = 8;
                    0
                }
            }
            93 => {
                // ftruncate(fd, len).
                let (fd, len) = (a(1) as usize, a(2));
                if len < 0 {
                    -22 // EINVAL
                } else {
                    match self.fds.get(fd).and_then(Clone::clone) {
                        Some(Fd::File { path, .. }) => match self.fs.truncate(&path, len as u64) {
                            Ok(()) => 0,
                            Err(e) => errno(&e),
                        },
                        Some(_) => -22, // EINVAL: not a regular file.
                        None => -9,
                    }
                }
            }
            106 => {
                // stat(path, statbuf): writes {size: i64, is_dir: i32}.
                match Self::read_cstr(mem, a(1) as u32) {
                    Err(()) => -14,
                    Ok(path) => {
                        payload = path.len() as u64 + 16;
                        if !self.fs.exists(&path) {
                            -2
                        } else {
                            let size = self.fs.size(&path).unwrap_or(0);
                            let is_dir = u32::from(!self.fs.is_file(&path));
                            let mut buf = [0u8; 16];
                            buf[..8].copy_from_slice(&size.to_le_bytes());
                            buf[8..12].copy_from_slice(&is_dir.to_le_bytes());
                            if mem.write_mem(a(2) as u32, &buf).is_err() {
                                -14
                            } else {
                                0
                            }
                        }
                    }
                }
            }
            108 => {
                // fstat(fd, statbuf).
                let fd = a(1) as usize;
                match self.fds.get(fd).and_then(Clone::clone) {
                    Some(Fd::File { path, .. }) => {
                        payload = 16;
                        let size = self.fs.size(&path).unwrap_or(0);
                        let mut buf = [0u8; 16];
                        buf[..8].copy_from_slice(&size.to_le_bytes());
                        if mem.write_mem(a(2) as u32, &buf).is_err() {
                            -14
                        } else {
                            0
                        }
                    }
                    Some(_) => {
                        payload = 16;
                        let buf = [0u8; 16];
                        if mem.write_mem(a(2) as u32, &buf).is_err() {
                            -14
                        } else {
                            0
                        }
                    }
                    None => -9,
                }
            }
            118 => {
                // fsync(fd): the in-memory fs is always durable, so this
                // only validates the descriptor — but still pays the full
                // message round trip, which is the point for profiling.
                match self.fds.get(a(1) as usize) {
                    Some(Some(Fd::File { .. })) => 0,
                    Some(Some(_)) => -22, // EINVAL: not fsync-able.
                    _ => -9,
                }
            }
            _ => -38, // ENOSYS
        };
        self.finish(ret, payload, fs_before)
    }

    fn finish(&mut self, ret: i32, payload: u64, fs_before: u64) -> (i32, u64) {
        self.last_payload = payload;
        let (transport, service) = self.charge(payload);
        let fs_copy = self.charge_fs_copies(fs_before);
        self.last_split = (transport, service, fs_copy);
        (ret, transport + service + fs_copy)
    }
}

impl HostEnv for Kernel {
    fn call(
        &mut self,
        _id: u32,
        args: &[u64; 6],
        mem: &mut Memory,
    ) -> Result<HostOutcome, TrapKind> {
        let iargs: Vec<i32> = args.iter().map(|&v| v as u32 as i32).collect();
        let (ret, cycles) = self.syscall(&iargs, mem);
        if let Some(code) = self.exit_code {
            return Ok(HostOutcome::Exit {
                code,
                kernel_cycles: cycles,
            });
        }
        Ok(HostOutcome::Ret {
            value: ret as u32 as u64,
            kernel_cycles: cycles,
        })
    }
}

impl wasmperf_cir::CliteHost for Kernel {
    fn syscall(&mut self, args: &[i32], mem: &mut [u8]) -> Result<i32, String> {
        let (ret, _) = Kernel::syscall(self, args, mem);
        if let Some(code) = self.exit_code {
            return Err(format!("exit({code})"));
        }
        Ok(ret)
    }
}

impl wasmperf_wasm::ImportHost for Kernel {
    fn call(
        &mut self,
        _module: &str,
        _field: &str,
        args: &[wasmperf_wasm::Value],
        mem: &mut Vec<u8>,
    ) -> Result<Option<wasmperf_wasm::Value>, wasmperf_wasm::WasmTrap> {
        let iargs: Vec<i32> = args.iter().map(wasmperf_wasm::Value::unwrap_i32).collect();
        let (ret, _) = Kernel::syscall(self, &iargs, mem.as_mut_slice());
        if let Some(code) = self.exit_code {
            return Err(wasmperf_wasm::WasmTrap::Host(format!("exit({code})")));
        }
        Ok(Some(wasmperf_wasm::Value::I32(ret)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mem_with(bytes: &[(u32, &[u8])]) -> Vec<u8> {
        let mut m = vec![0u8; 65536];
        for (addr, data) in bytes {
            m[*addr as usize..*addr as usize + data.len()].copy_from_slice(data);
        }
        m
    }

    #[test]
    fn open_write_read_roundtrip() {
        let mut k = Kernel::default();
        let mut mem = mem_with(&[(100, b"/out.txt\0"), (200, b"hello kernel")]);
        // open(path, O_CREAT|O_WRONLY).
        let (fd, _) = k.syscall(
            &[5, 100, flags::O_CREAT | flags::O_WRONLY, 0],
            mem.as_mut_slice(),
        );
        assert!(fd >= 3, "{fd}");
        let (n, _) = k.syscall(&[4, fd, 200, 12], mem.as_mut_slice());
        assert_eq!(n, 12);
        let (r, _) = k.syscall(&[6, fd, 0, 0], mem.as_mut_slice());
        assert_eq!(r, 0);
        // Reopen and read back at offset.
        let (fd2, _) = k.syscall(&[5, 100, flags::O_RDONLY, 0], mem.as_mut_slice());
        let (s, _) = k.syscall(&[19, fd2, 6, 0], mem.as_mut_slice());
        assert_eq!(s, 6);
        let (n2, _) = k.syscall(&[3, fd2, 300, 32], mem.as_mut_slice());
        assert_eq!(n2, 6);
        assert_eq!(&mem[300..306], b"kernel");
    }

    #[test]
    fn stdout_capture_and_errors() {
        let mut k = Kernel::default();
        let mut mem = mem_with(&[(50, b"hi\n")]);
        let (n, _) = k.syscall(&[4, 1, 50, 3], mem.as_mut_slice());
        assert_eq!(n, 3);
        assert_eq!(k.stdout, b"hi\n");
        // Bad fd.
        let (e, _) = k.syscall(&[4, 77, 50, 3], mem.as_mut_slice());
        assert_eq!(e, -9);
        // ENOENT open without O_CREAT.
        let mut mem2 = mem_with(&[(10, b"/missing\0")]);
        let (e2, _) = k.syscall(&[5, 10, 0, 0], mem2.as_mut_slice());
        assert_eq!(e2, -2);
        // ENOSYS.
        let (e3, _) = k.syscall(&[9999], mem.as_mut_slice());
        assert_eq!(e3, -38);
    }

    #[test]
    fn pipes_roundtrip() {
        let mut k = Kernel::default();
        let mut mem = mem_with(&[(500, b"through the pipe")]);
        let (r, _) = k.syscall(&[42, 40, 0, 0], mem.as_mut_slice());
        assert_eq!(r, 0);
        let rfd = i32::from_le_bytes(mem[40..44].try_into().unwrap());
        let wfd = i32::from_le_bytes(mem[44..48].try_into().unwrap());
        let (n, _) = k.syscall(&[4, wfd, 500, 16], mem.as_mut_slice());
        assert_eq!(n, 16);
        let (n2, _) = k.syscall(&[3, rfd, 600, 7], mem.as_mut_slice());
        assert_eq!(n2, 7);
        assert_eq!(&mem[600..607], b"through");
        // Close the write end: drain then EOF.
        k.syscall(&[6, wfd, 0, 0], mem.as_mut_slice());
        let (n3, _) = k.syscall(&[3, rfd, 600, 100], mem.as_mut_slice());
        assert_eq!(n3, 9);
        let (n4, _) = k.syscall(&[3, rfd, 600, 100], mem.as_mut_slice());
        assert_eq!(n4, 0);
    }

    #[test]
    fn strace_records_every_syscall() {
        let mut k = Kernel {
            strace: Some(wasmperf_trace::StraceLog::default()),
            ..Kernel::default()
        };
        let mut mem = mem_with(&[(50, b"/f\0"), (200, b"hello")]);
        let (fd, _) = k.syscall(
            &[5, 50, flags::O_CREAT | flags::O_WRONLY, 0],
            mem.as_mut_slice(),
        );
        let (n, write_cycles) = k.syscall(&[4, fd, 200, 5], mem.as_mut_slice());
        assert_eq!(n, 5);
        k.syscall(&[6, fd], mem.as_mut_slice());

        let log = k.strace.take().unwrap();
        assert_eq!(log.records.len(), 3);
        assert_eq!(
            log.records.iter().map(|r| r.nr).collect::<Vec<_>>(),
            vec![5, 4, 6]
        );
        let w = &log.records[1];
        assert_eq!(w.args[0], fd);
        assert_eq!(w.ret, 5);
        assert_eq!(w.payload, 5);
        assert_eq!(w.cycles, write_cycles);
        // Records tile the kernel timeline: totals match the stats counter.
        assert_eq!(log.total_cycles(), k.stats.kernel_cycles);
        assert_eq!(
            log.records[2].start_cycles,
            log.records[0].cycles + w.cycles
        );
    }

    #[test]
    fn transport_costs_charged() {
        let mut k = Kernel::default();
        let mut mem = mem_with(&[(50, b"/f\0")]);
        let before = k.stats.kernel_cycles;
        k.syscall(
            &[5, 50, flags::O_CREAT | flags::O_WRONLY, 0],
            mem.as_mut_slice(),
        );
        assert!(k.stats.kernel_cycles >= before + k.timing.message_latency_cycles);
        assert_eq!(k.stats.syscalls, 1);
        // A big write charges copy cycles proportional to the payload.
        let (fd, _) = (3, 0);
        let before = k.stats.kernel_cycles;
        let (n, cycles) = k.syscall(&[4, fd, 0, 32768], mem.as_mut_slice());
        assert_eq!(n, 32768);
        assert!(cycles > k.timing.message_latency_cycles + 32768 * 2 / 8 - 1);
        assert!(k.stats.kernel_cycles > before);
    }

    #[test]
    fn oversized_transfers_chunked() {
        let mut k = Kernel::default();
        k.timing.aux_buffer_bytes = 1024; // Shrink for the test.
        let mut mem = vec![0u8; 10 * 1024];
        mem[..3].copy_from_slice(b"/f\0");
        let (fd, _) = k.syscall(
            &[5, 0, flags::O_CREAT | flags::O_WRONLY, 0],
            mem.as_mut_slice(),
        );
        let (n, _) = k.syscall(&[4, fd, 0, 5000], mem.as_mut_slice());
        assert_eq!(n, 5000);
        // ceil(5000/1024) = 5 chunks -> 4 extra messages.
        assert_eq!(k.stats.chunk_messages, 4);
    }

    #[test]
    fn append_mode_and_policy_cost() {
        for (policy, expect_expensive) in [
            (AppendPolicy::ExactFit, true),
            (AppendPolicy::Chunked4K, false),
        ] {
            let mut k = Kernel::new(policy);
            let mut mem = mem_with(&[(10, b"/log\0"), (100, &[7u8; 64])]);
            let (fd, _) = k.syscall(
                &[5, 10, flags::O_CREAT | flags::O_WRONLY | flags::O_APPEND, 0],
                mem.as_mut_slice(),
            );
            for _ in 0..500 {
                k.syscall(&[4, fd, 100, 64], mem.as_mut_slice());
            }
            let grow = k.fs.stats.grow_copy_bytes;
            if expect_expensive {
                assert!(grow > 2_000_000, "exact-fit grow copies: {grow}");
            } else {
                assert!(grow < 200_000, "chunked grow copies: {grow}");
            }
        }
    }

    #[test]
    fn stat_and_access() {
        let mut k = Kernel::default();
        k.fs.write_all("/data", b"12345").unwrap();
        let mut mem = mem_with(&[(10, b"/data\0"), (30, b"/nope\0")]);
        let (r, _) = k.syscall(&[33, 10, 0, 0], mem.as_mut_slice());
        assert_eq!(r, 0);
        let (r2, _) = k.syscall(&[33, 30, 0, 0], mem.as_mut_slice());
        assert_eq!(r2, -2);
        let (r3, _) = k.syscall(&[106, 10, 200, 0], mem.as_mut_slice());
        assert_eq!(r3, 0);
        let size = u64::from_le_bytes(mem[200..208].try_into().unwrap());
        assert_eq!(size, 5);
    }

    #[test]
    fn exit_records_code() {
        let mut k = Kernel::default();
        let mut mem = vec![0u8; 64];
        k.syscall(&[1, 17, 0, 0], mem.as_mut_slice());
        assert_eq!(k.exit_code, Some(17));
    }

    #[test]
    fn every_syscall_has_a_name_and_class() {
        // The trace crate's tables must cover the full enum: nothing the
        // kernel services may render as `unknown` in profiles or exports.
        for sc in Syscall::ALL {
            let nr = sc.nr();
            assert_ne!(
                wasmperf_trace::syscall_name(nr),
                "unknown",
                "syscall_name missing for {sc:?} ({nr})"
            );
            assert_ne!(
                wasmperf_trace::syscall_class(nr),
                "unknown",
                "syscall_class missing for {sc:?} ({nr})"
            );
        }
    }

    #[test]
    fn dup_clones_the_descriptor() {
        let mut k = Kernel::default();
        let mut mem = mem_with(&[(10, b"/f\0"), (100, b"abcdef")]);
        let (fd, _) = k.syscall(
            &[5, 10, flags::O_CREAT | flags::O_RDWR, 0],
            mem.as_mut_slice(),
        );
        k.syscall(&[4, fd, 100, 6], mem.as_mut_slice());
        let (dup, _) = k.syscall(&[41, fd, 0, 0], mem.as_mut_slice());
        assert!(dup >= 0 && dup != fd, "{dup}");
        // The clone carries its own offset; close the original, the
        // clone still works.
        k.syscall(&[6, fd, 0, 0], mem.as_mut_slice());
        k.syscall(&[19, dup, 0, 0], mem.as_mut_slice());
        let (n, _) = k.syscall(&[3, dup, 200, 6], mem.as_mut_slice());
        assert_eq!(n, 6);
        assert_eq!(&mem[200..206], b"abcdef");
        // dup of a bad fd.
        let (e, _) = k.syscall(&[41, 77, 0, 0], mem.as_mut_slice());
        assert_eq!(e, -9);
    }

    #[test]
    fn ftruncate_resizes_and_charges_growth() {
        let mut k = Kernel::new(AppendPolicy::ExactFit);
        let mut mem = mem_with(&[(10, b"/f\0"), (100, b"123456")]);
        let (fd, _) = k.syscall(
            &[5, 10, flags::O_CREAT | flags::O_RDWR, 0],
            mem.as_mut_slice(),
        );
        k.syscall(&[4, fd, 100, 6], mem.as_mut_slice());
        // Shrink, then stat shows the new size.
        assert_eq!(k.syscall(&[93, fd, 2, 0], mem.as_mut_slice()).0, 0);
        assert_eq!(k.fs.size("/f").unwrap(), 2);
        // Grow charges fs-copy cycles (the buffer is reallocated).
        let before = k.stats.fs_copy_cycles;
        assert_eq!(k.syscall(&[93, fd, 4096, 0], mem.as_mut_slice()).0, 0);
        assert_eq!(k.fs.size("/f").unwrap(), 4096);
        assert!(k.stats.fs_copy_cycles >= before);
        // Negative length and bad fds.
        assert_eq!(k.syscall(&[93, fd, -1, 0], mem.as_mut_slice()).0, -22);
        assert_eq!(k.syscall(&[93, 0, 4, 0], mem.as_mut_slice()).0, -22);
        assert_eq!(k.syscall(&[93, 77, 4, 0], mem.as_mut_slice()).0, -9);
    }

    #[test]
    fn fsync_validates_the_descriptor() {
        let mut k = Kernel::default();
        let mut mem = mem_with(&[(10, b"/f\0")]);
        let (fd, _) = k.syscall(
            &[5, 10, flags::O_CREAT | flags::O_WRONLY, 0],
            mem.as_mut_slice(),
        );
        assert_eq!(k.syscall(&[118, fd, 0, 0], mem.as_mut_slice()).0, 0);
        assert_eq!(k.syscall(&[118, 1, 0, 0], mem.as_mut_slice()).0, -22);
        assert_eq!(k.syscall(&[118, 77, 0, 0], mem.as_mut_slice()).0, -9);
    }

    #[test]
    fn cycle_split_components_sum_exactly() {
        // Per-record transport/service/fs components must sum to the
        // record's cycles, and the stats components to kernel_cycles —
        // the invariant wasmperf-prof's attribution rests on.
        let mut k = Kernel {
            strace: Some(wasmperf_trace::StraceLog::default()),
            ..Kernel::new(AppendPolicy::ExactFit)
        };
        let mut mem = mem_with(&[(10, b"/log\0"), (100, &[9u8; 256])]);
        let (fd, _) = k.syscall(
            &[5, 10, flags::O_CREAT | flags::O_WRONLY | flags::O_APPEND, 0],
            mem.as_mut_slice(),
        );
        for _ in 0..50 {
            k.syscall(&[4, fd, 100, 256], mem.as_mut_slice());
        }
        k.syscall(&[6, fd, 0, 0], mem.as_mut_slice());

        let log = k.strace.take().unwrap();
        for r in &log.records {
            assert_eq!(
                r.transport_cycles + r.service_cycles + r.fs_cycles,
                r.cycles,
                "split must sum per record"
            );
        }
        let s = k.stats;
        assert_eq!(
            s.transport_cycles + s.service_cycles + s.fs_copy_cycles,
            s.kernel_cycles
        );
        assert_eq!(log.total_cycles(), s.kernel_cycles);
        // Appends under exact-fit actually exercised the fs-copy lane.
        assert!(s.fs_copy_cycles > 0);
        assert_eq!(
            log.records.iter().map(|r| r.fs_cycles).sum::<u64>(),
            s.fs_copy_cycles
        );
    }

    #[test]
    fn mkdir_rmdir_unlink_via_syscalls() {
        let mut k = Kernel::default();
        let mut mem = mem_with(&[(10, b"/d\0"), (20, b"/d/f\0")]);
        assert_eq!(k.syscall(&[39, 10, 0, 0], mem.as_mut_slice()).0, 0);
        let (fd, _) = k.syscall(
            &[5, 20, flags::O_CREAT | flags::O_WRONLY, 0],
            mem.as_mut_slice(),
        );
        assert!(fd >= 0);
        k.syscall(&[6, fd, 0, 0], mem.as_mut_slice());
        assert_eq!(k.syscall(&[40, 10, 0, 0], mem.as_mut_slice()).0, -39);
        assert_eq!(k.syscall(&[10, 20, 0, 0], mem.as_mut_slice()).0, 0);
        assert_eq!(k.syscall(&[40, 10, 0, 0], mem.as_mut_slice()).0, 0);
    }
}
