//! Kernel pipes.
//!
//! Byte-stream buffers connecting a write fd to a read fd. The original
//! BROWSIX performed avoidable allocation and copying per transfer; the
//! BROWSIX-WASM rework (§2) reduced both. The buffer here is a simple
//! ring-less `VecDeque`, and the kernel charges marshalling costs at the
//! transport layer.

use std::collections::VecDeque;

/// A unidirectional pipe.
#[derive(Debug, Clone, Default)]
pub struct Pipe {
    buf: VecDeque<u8>,
    /// Write end closed: reads drain then return 0 (EOF).
    pub write_closed: bool,
    /// Read end closed: writes fail with EPIPE.
    pub read_closed: bool,
}

impl Pipe {
    /// Writes all of `data`; returns `Err(())` (EPIPE) if the read end is
    /// closed — the only failure, so the error carries no information.
    #[allow(clippy::result_unit_err)]
    pub fn write(&mut self, data: &[u8]) -> Result<usize, ()> {
        if self.read_closed {
            return Err(());
        }
        self.buf.extend(data.iter().copied());
        Ok(data.len())
    }

    /// Reads up to `out.len()` bytes; returns 0 at EOF (write end closed
    /// and buffer drained). A read on an open-but-empty pipe also returns
    /// 0 here — the simulated kernel runs one process, so blocking would
    /// deadlock.
    pub fn read(&mut self, out: &mut [u8]) -> usize {
        let n = out.len().min(self.buf.len());
        for b in out.iter_mut().take(n) {
            *b = self.buf.pop_front().expect("len checked");
        }
        n
    }

    /// Bytes currently buffered.
    pub fn available(&self) -> usize {
        self.buf.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn write_then_read_fifo() {
        let mut p = Pipe::default();
        p.write(b"abc").unwrap();
        p.write(b"de").unwrap();
        let mut out = [0u8; 4];
        assert_eq!(p.read(&mut out), 4);
        assert_eq!(&out, b"abcd");
        assert_eq!(p.available(), 1);
        let mut rest = [0u8; 8];
        assert_eq!(p.read(&mut rest), 1);
        assert_eq!(rest[0], b'e');
    }

    #[test]
    fn eof_and_epipe() {
        let mut p = Pipe::default();
        p.write(b"x").unwrap();
        p.write_closed = true;
        let mut out = [0u8; 4];
        assert_eq!(p.read(&mut out), 1);
        assert_eq!(p.read(&mut out), 0); // EOF.
        let mut q = Pipe {
            read_closed: true,
            ..Pipe::default()
        };
        assert!(q.write(b"y").is_err()); // EPIPE.
    }
}
