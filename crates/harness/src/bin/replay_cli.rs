//! `wasmperf-replay`: the record–reduce–replay command line.
//!
//! ```text
//! wasmperf-replay record <bench> [--size test|ref] [-o FILE]
//! wasmperf-replay record --source FILE.clite --name NAME [--size S] [-o FILE]
//! wasmperf-replay reduce <FILE.replay> [-o FILE] [--verify]
//! wasmperf-replay replay <FILE.replay ...>
//! wasmperf-replay info <FILE.replay ...>
//! ```
//!
//! `record` runs a benchmark on the native pipeline under the recorder,
//! capturing the complete nondeterminism boundary (every syscall with its
//! returned bytes, errno, and cycle split) into a `.replay` file.
//! `reduce` collapses repeated syscall patterns into loops and dedupes
//! payload bytes; `--verify` replays both forms and proves the results
//! byte-identical. `replay` re-executes recordings on all four standard
//! pipelines (native, Chrome, Firefox, Chrome-asm.js); a checksum or
//! syscall-stream divergence is a hard error. `info` prints a recording's
//! header without running anything.

use std::path::{Path, PathBuf};
use std::sync::Arc;
use wasmperf_benchsuite::Size;
use wasmperf_browsix::AppendPolicy;
use wasmperf_harness::{execute_recorded, prepare, run_one, Engine, Error, RunResult};
use wasmperf_replay::{reduce, Recording};
use wasmperf_wasmjit::EngineProfile;

fn pipelines() -> Vec<Engine> {
    vec![
        Engine::Native,
        Engine::Jit(EngineProfile::chrome()),
        Engine::Jit(EngineProfile::firefox()),
        Engine::Jit(EngineProfile::chrome_asmjs()),
    ]
}

fn fail(message: &str) -> ! {
    eprintln!("error: {message}");
    std::process::exit(1);
}

fn usage() -> ! {
    eprintln!(
        "usage: wasmperf-replay <command>\n\
         \x20 record <bench> [--size test|ref] [-o FILE]\n\
         \x20 record --source FILE.clite --name NAME [--size test|ref] [-o FILE]\n\
         \x20        run a benchmark natively under the recorder; write NAME.replay\n\
         \x20 reduce <FILE.replay> [-o FILE] [--verify]\n\
         \x20        collapse loops + dedupe payloads; --verify replays raw and\n\
         \x20        reduced on every pipeline and proves the results identical\n\
         \x20 replay <FILE.replay ...>\n\
         \x20        re-execute recordings on all four pipelines\n\
         \x20 info   <FILE.replay ...>\n\
         \x20        print recording headers"
    );
    std::process::exit(2);
}

fn load(path: &str) -> Recording {
    wasmperf_replay::load(Path::new(path)).unwrap_or_else(|e| fail(&format!("{path}: {e}")))
}

/// Replays `rec` as a standalone benchmark on one engine.
fn run_replay(rec: &Arc<Recording>, engine: &Engine) -> Result<RunResult, Error> {
    let bench = wasmperf_benchsuite::replay::from_recording(Arc::clone(rec));
    run_one(&bench, engine, AppendPolicy::Chunked4K)
}

fn cmd_record(args: &[String]) {
    let mut size = Size::Test;
    let mut out: Option<PathBuf> = None;
    let mut source: Option<String> = None;
    let mut name: Option<String> = None;
    let mut bench_name: Option<String> = None;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--size" => {
                let v = it.next().cloned().unwrap_or_default();
                size = Size::parse(&v)
                    .unwrap_or_else(|| fail(&format!("unknown size `{v}` (use test|ref)")));
            }
            "-o" | "--out" => out = Some(PathBuf::from(it.next().cloned().unwrap_or_default())),
            "--source" => source = Some(it.next().cloned().unwrap_or_default()),
            "--name" => name = Some(it.next().cloned().unwrap_or_default()),
            other if bench_name.is_none() && !other.starts_with('-') => {
                bench_name = Some(other.to_string());
            }
            other => fail(&format!("unexpected argument `{other}`")),
        }
    }

    let bench = match (&source, &bench_name) {
        (Some(path), _) => {
            let src = std::fs::read_to_string(path)
                .unwrap_or_else(|e| fail(&format!("reading {path}: {e}")));
            let name = name.unwrap_or_else(|| fail("--source needs --name NAME"));
            wasmperf_benchsuite::Benchmark {
                name,
                suite: wasmperf_benchsuite::Suite::Spec,
                source: src,
                inputs: Vec::new(),
                outputs: Vec::new(),
                replay: None,
            }
        }
        (None, Some(wanted)) => wasmperf_benchsuite::all(size)
            .into_iter()
            .find(|b| &b.name == wanted)
            .unwrap_or_else(|| fail(&format!("no benchmark named `{wanted}` at size {size:?}"))),
        (None, None) => usage(),
    };

    let artifact =
        prepare(&bench, &Engine::Native).unwrap_or_else(|e| fail(&format!("compile: {e}")));
    let (result, recording) = execute_recorded(&bench, &artifact, AppendPolicy::Chunked4K, size)
        .unwrap_or_else(|e| fail(&format!("record: {e}")));
    let path = out.unwrap_or_else(|| {
        PathBuf::from(format!(
            "{}.{}",
            recording.name.replace('/', "_"),
            wasmperf_replay::EXTENSION
        ))
    });
    wasmperf_replay::save(&recording, &path).unwrap_or_else(|e| fail(&e.to_string()));
    println!(
        "recorded {}: {} syscalls, {} kernel cycles, checksum {} -> {} ({} bytes)",
        recording.name,
        recording.records.len(),
        recording.total_cycles(),
        result.checksum,
        path.display(),
        recording.to_jsonl().len(),
    );
}

fn cmd_reduce(args: &[String]) {
    let mut input: Option<String> = None;
    let mut out: Option<PathBuf> = None;
    let mut verify = false;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "-o" | "--out" => out = Some(PathBuf::from(it.next().cloned().unwrap_or_default())),
            "--verify" => verify = true,
            other if input.is_none() && !other.starts_with('-') => {
                input = Some(other.to_string());
            }
            other => fail(&format!("unexpected argument `{other}`")),
        }
    }
    let input = input.unwrap_or_else(|| usage());
    let raw = load(&input);
    let reduced = reduce::reduce(&raw);
    let ratio = reduce::ratio(&raw, &reduced);

    if verify {
        let raw = Arc::new(raw.clone());
        let red = Arc::new(reduced.clone());
        for engine in pipelines() {
            let a = run_replay(&raw, &engine)
                .unwrap_or_else(|e| fail(&format!("raw replay on {}: {e}", engine.name())));
            let b = run_replay(&red, &engine)
                .unwrap_or_else(|e| fail(&format!("reduced replay on {}: {e}", engine.name())));
            if a != b {
                fail(&format!(
                    "verify failed on {}: reduced replay diverged from raw \
                     (checksum {} vs {}, cycles {} vs {})",
                    engine.name(),
                    b.checksum,
                    a.checksum,
                    b.counters.total_cycles(),
                    a.counters.total_cycles(),
                ));
            }
        }
        println!(
            "verified: reduced replay is byte-identical to raw on {} pipelines",
            pipelines().len()
        );
    }

    let path = out.unwrap_or_else(|| PathBuf::from(&input));
    wasmperf_replay::save(&reduced, &path).unwrap_or_else(|e| fail(&e.to_string()));
    println!(
        "reduced {}: {} records -> {} encoded lines, {:.2}x smaller -> {}",
        reduced.name,
        raw.records.len(),
        count_encoded(&reduced),
        ratio,
        path.display(),
    );
}

/// Lines in the reduced encoding that carry syscalls (calls + loops),
/// for the record-count side of the reduction summary.
fn count_encoded(rec: &Recording) -> usize {
    // The reduced form still *replays* every record; what shrinks is the
    // encoding. Report the serialized line count minus header + source.
    rec.to_jsonl().lines().count().saturating_sub(2)
}

fn cmd_replay(files: &[String]) {
    if files.is_empty() {
        usage();
    }
    for path in files {
        let rec = Arc::new(load(path));
        println!(
            "{}: {} ({} records{})",
            path,
            rec.name,
            rec.records.len(),
            if rec.reduced { ", reduced" } else { "" }
        );
        for engine in pipelines() {
            let r = run_replay(&rec, &engine)
                .unwrap_or_else(|e| fail(&format!("{path} on {}: {e}", engine.name())));
            println!(
                "  {:>12}: checksum {} syscalls {} kernel_cycles {} total_cycles {}",
                r.engine,
                r.checksum,
                r.kernel_syscalls,
                r.counters.host_cycles,
                r.counters.total_cycles(),
            );
        }
    }
}

fn cmd_info(files: &[String]) {
    if files.is_empty() {
        usage();
    }
    for path in files {
        let rec = load(path);
        let payload: u64 = rec.records.iter().map(|r| r.payload).sum();
        println!(
            "{path}: name={} size={} records={} reduced={} checksum={} \
             payload_bytes={payload} kernel_cycles={} content_hash={:016x}",
            rec.name,
            rec.size,
            rec.records.len(),
            rec.reduced,
            rec.checksum,
            rec.total_cycles(),
            rec.content_hash(),
        );
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some((cmd, rest)) = args.split_first() else {
        usage();
    };
    match cmd.as_str() {
        "record" => cmd_record(rest),
        "reduce" => cmd_reduce(rest),
        "replay" => cmd_replay(rest),
        "info" => cmd_info(rest),
        "--help" | "-h" | "help" => usage(),
        _ => usage(),
    }
}
