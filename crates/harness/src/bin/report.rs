//! Regenerates the paper's tables and figures.
//!
//! ```text
//! report [--size test|ref] [--jobs N] [--results DIR] [--trace DIR]
//!        [--progress] [experiment ...]
//! ```
//!
//! With no experiment arguments, everything is produced in paper order.
//! Experiments: fig1 fig3a fig3b table1 table2 fig4 fig5 fig6 fig7 fig8
//! fig9 fig10 table3 table4 overhead ablations; `sandbox` (opt-in) adds
//! the heap-protection ablation matrix (docs/SANDBOX.md).
//!
//! `--jobs N` runs benchmark×engine jobs on an N-worker farm. The output
//! is byte-identical to a serial run — the farm's determinism guarantee
//! (see docs/FARM.md).
//!
//! `--results DIR` records every completed job in `DIR/results.jsonl` and
//! resumes from it: rerunning skips all recorded jobs and renders the
//! identical report from the store.
//!
//! `--trace DIR` runs the observability demo: traced matmul runs (native
//! and Chrome-JIT) and a traced SPEC-analog run, writing Chrome
//! `trace_event` JSON, perf-report/annotate listings, JSONL, and an
//! strace log under DIR. With no experiment arguments it runs only the
//! demo.

use wasmperf_benchsuite::Size;
use wasmperf_harness::experiments as exp;
use wasmperf_harness::{Error, Session};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut size = Size::Ref;
    let mut jobs: usize = 1;
    let mut results_dir: Option<std::path::PathBuf> = None;
    let mut trace_dir: Option<std::path::PathBuf> = None;
    let mut progress = false;
    let mut filter: Option<String> = None;
    let mut wanted: Vec<String> = Vec::new();
    let mut it = args.into_iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--trace" => {
                let v = it.next().unwrap_or_default();
                if v.is_empty() {
                    eprintln!("--trace needs a directory argument");
                    std::process::exit(2);
                }
                trace_dir = Some(std::path::PathBuf::from(v));
            }
            "--results" => {
                let v = it.next().unwrap_or_default();
                if v.is_empty() {
                    eprintln!("--results needs a directory argument");
                    std::process::exit(2);
                }
                results_dir = Some(std::path::PathBuf::from(v));
            }
            "--jobs" => {
                let v = it.next().unwrap_or_default();
                jobs = match v.parse() {
                    Ok(n) if n >= 1 => n,
                    _ => {
                        eprintln!("--jobs needs a worker count >= 1");
                        std::process::exit(2);
                    }
                };
            }
            "--progress" => progress = true,
            "--syscalls" => wanted.push("syscalls".to_string()),
            "--filter" => {
                let v = it.next().unwrap_or_default();
                if v.is_empty() {
                    eprintln!("--filter needs a benchmark-name substring");
                    std::process::exit(2);
                }
                filter = Some(v);
            }
            "--size" => {
                let v = it.next().unwrap_or_default();
                size = match Size::parse(&v) {
                    Some(s) => s,
                    None => {
                        eprintln!("unknown size `{v}` (use test|ref)");
                        std::process::exit(2);
                    }
                };
            }
            "--help" | "-h" => {
                println!(
                    "usage: report [--size test|ref] [--jobs N] [--results DIR]\n\
                     \x20             [--trace DIR] [--filter SUBSTR] [--progress]\n\
                     \x20             [experiment ...]\n\
                     --jobs N       run benchmark jobs on an N-worker farm\n\
                     \x20              (output is byte-identical to serial)\n\
                     --results DIR  record/resume job results in DIR/results.jsonl\n\
                     --filter S     restrict syscalls/replay/sandbox to benchmarks\n\
                     \x20              whose name contains S\n\
                     --progress     per-job progress lines on stderr\n\
                     experiments: fig1 fig3a fig3b table1 table2 fig4 fig5 fig6\n\
                     fig7 fig8 fig9 fig10 table3 table4 overhead ablations\n\
                     sandbox (bounds/guard/pku heap-protection ablation matrix,\n\
                     \x20              SPEC+PolyBench+I/O; see docs/SANDBOX.md)\n\
                     syscalls (or --syscalls): wasmperf-prof per-syscall\n\
                     \x20              profile + cycle attribution, I/O suite x 4 engines\n\
                     replay (replays ./recordings/*.replay on all 4 pipelines;\n\
                     \x20              dir override via $WASMPERF_RECORDINGS)\n\
                     trace (observability demo; --trace DIR sets the output dir)\n\
                     dump-sources (writes the benchmark programs to ./programs/)"
                );
                return;
            }
            other => wanted.push(other.to_string()),
        }
    }
    if wanted.is_empty() {
        wanted = if trace_dir.is_some() {
            vec!["trace".to_string()]
        } else {
            [
                "fig1",
                "fig3a",
                "fig3b",
                "table1",
                "table2",
                "fig4",
                "fig5",
                "fig6",
                "fig7",
                "fig8",
                "fig9",
                "fig10",
                "table3",
                "table4",
                "overhead",
                "ablations",
            ]
            .iter()
            .map(|s| s.to_string())
            .collect()
        };
    }

    let mut session = Session::new(size).with_jobs(jobs);
    if progress {
        session = session.with_progress();
    }
    if let Some(dir) = &results_dir {
        session = match session.with_results_dir(dir) {
            Ok(s) => s,
            Err(e) => {
                eprintln!("error: {e}");
                std::process::exit(1);
            }
        };
    }
    eprintln!(
        "running {} experiment(s) at size {:?} with {jobs} worker(s)...",
        wanted.len(),
        size
    );
    for w in &wanted {
        let t0 = std::time::Instant::now();
        let out: Result<String, Error> = match w.as_str() {
            "fig1" => exp::fig1(&mut session),
            "fig3a" => exp::fig3a(&mut session),
            "fig3b" => exp::fig3b(&mut session),
            "table1" => exp::table1(&mut session),
            "table2" => exp::table2(&mut session),
            "fig4" => exp::fig4(&mut session),
            "fig5" => exp::fig5(&mut session),
            "fig6" => exp::fig6(&mut session),
            "fig7" => exp::fig7(),
            "fig8" => {
                // The paper sweeps 200..2000; scaled to simulator budgets.
                let sizes: Vec<u32> = match size {
                    Size::Test => vec![20, 40, 60],
                    Size::Ref => vec![20, 40, 60, 80, 100, 120, 140, 160, 180, 200],
                };
                exp::fig8(&mut session, &sizes)
            }
            "fig9" => exp::fig9(&mut session),
            "fig10" => exp::fig10(&mut session),
            "table3" => Ok(exp::table3()),
            "dump-sources" => (|| {
                let dir = std::path::Path::new("programs");
                let io_err = |e: std::io::Error| Error::Io {
                    path: dir.display().to_string(),
                    message: e.to_string(),
                };
                std::fs::create_dir_all(dir).map_err(io_err)?;
                let mut listing = String::new();
                for b in wasmperf_benchsuite::all(size) {
                    let fname = format!("{}.clite", b.name.replace('.', "_"));
                    std::fs::write(dir.join(&fname), &b.source).map_err(io_err)?;
                    listing.push_str(&format!("programs/{fname}\n"));
                }
                Ok(format!("wrote CLite sources:\n{listing}"))
            })(),
            "trace" => {
                let dir = trace_dir
                    .clone()
                    .unwrap_or_else(|| std::path::PathBuf::from("trace-out"));
                exp::trace_demo(&dir, size)
            }
            "table4" => exp::table4(&mut session),
            "syscalls" => exp::syscalls_report(size, filter.as_deref()),
            "replay" => exp::replay_report(&mut session, filter.as_deref()),
            "overhead" => exp::overhead(&mut session),
            "sandbox" => exp::sandbox(&mut session, filter.as_deref()),
            "ablation-regs" => exp::ablation_reserved_regs(&mut session),
            "ablations" => (|| {
                let mut s = String::new();
                s.push_str(&exp::ablation_browserfs(&mut session)?);
                s.push('\n');
                s.push_str(&exp::ablation_safety_checks(&mut session)?);
                s.push('\n');
                s.push_str(&exp::ablation_reserved_regs(&mut session)?);
                s.push('\n');
                s.push_str(&exp::ablation_native_codegen(&mut session)?);
                Ok(s)
            })(),
            other => {
                eprintln!("unknown experiment `{other}` (see --help)");
                std::process::exit(2);
            }
        };
        match out {
            Ok(out) => {
                println!("{out}");
                eprintln!("[{w} done in {:.1}s]", t0.elapsed().as_secs_f64());
            }
            Err(e) => {
                eprintln!("error in {w}: {e}");
                std::process::exit(1);
            }
        }
    }
    eprintln!("{}", session.farm_summary());
}
