//! The harness ⇄ farm bridge.
//!
//! `wasmperf-farm` knows nothing about compilers; this module supplies
//! the two translations that wire it to the measurement pipeline:
//!
//! - [`job_spec`]: a `(Benchmark, Engine, Size, AppendPolicy, trial)`
//!   tuple → a content-addressed [`JobSpec`] (source hash over the CLite
//!   text *and* staged inputs; engine fingerprint over the full
//!   configuration);
//! - [`encode_result`] / [`decode_result`]: [`RunResult`] ⇄ the JSON
//!   payload held by the farm's resumable [`ResultStore`] — a lossless
//!   round-trip (proven by test), so a resumed report renders
//!   byte-identically to the run that recorded it.
//!
//! [`ResultStore`]: wasmperf_farm::ResultStore

use crate::engine::{Engine, RunResult};
use crate::error::Error;
use wasmperf_benchsuite::{Benchmark, Size};
use wasmperf_browsix::AppendPolicy;
use wasmperf_cpu::PerfCounters;
use wasmperf_farm::hash::Fnv;
use wasmperf_farm::{JobSpec, Json};

/// Content hash of a benchmark: source text, staged input files, and
/// declared outputs. Two benchmarks sharing a display name (the Figure 8
/// `matmul`s) hash apart; a renamed copy hashes the same.
///
/// Replay benchmarks hash the recording's content address instead: the
/// workload is the recorded syscall boundary, not the source alone, and
/// a recording's raw and reduced forms (which share a content address)
/// must hit the same farm cache entries.
pub fn source_hash(bench: &Benchmark) -> u64 {
    if let Some(rec) = &bench.replay {
        return Fnv::new()
            .write_str("replay")
            .write_u64(rec.content_hash())
            .finish();
    }
    let mut h = Fnv::new();
    h.write_str(&bench.source);
    h.write_u64(bench.inputs.len() as u64);
    for (path, data) in &bench.inputs {
        h.write_str(path);
        h.write_u64(data.len() as u64);
        h.write(data);
    }
    h.write_u64(bench.outputs.len() as u64);
    for path in &bench.outputs {
        h.write_str(path);
    }
    h.finish()
}

/// Builds the [`JobSpec`] identifying one run.
pub fn job_spec(
    bench: &Benchmark,
    engine: &Engine,
    size: Size,
    policy: AppendPolicy,
    trial: u32,
) -> JobSpec {
    JobSpec {
        bench: bench.name.to_string(),
        engine: engine.name(),
        source_hash: source_hash(bench),
        engine_fingerprint: engine.fingerprint(),
        size,
        policy,
        trial,
    }
}

fn hex_bytes(data: &[u8]) -> String {
    let mut out = String::with_capacity(data.len() * 2);
    for b in data {
        out.push_str(&format!("{b:02x}"));
    }
    out
}

fn unhex_bytes(s: &str) -> Option<Vec<u8>> {
    if !s.len().is_multiple_of(2) {
        return None;
    }
    (0..s.len() / 2)
        .map(|i| u8::from_str_radix(s.get(2 * i..2 * i + 2)?, 16).ok())
        .collect()
}

/// One codec row: field name, reader, writer.
type CounterField = (
    &'static str,
    fn(&PerfCounters) -> &u64,
    fn(&mut PerfCounters) -> &mut u64,
);

/// The counter fields, in store order. One table drives both directions
/// of the codec so they cannot drift apart.
const COUNTER_FIELDS: [CounterField; 13] = [
    (
        "instructions_retired",
        |c| &c.instructions_retired,
        |c| &mut c.instructions_retired,
    ),
    (
        "loads_retired",
        |c| &c.loads_retired,
        |c| &mut c.loads_retired,
    ),
    (
        "stores_retired",
        |c| &c.stores_retired,
        |c| &mut c.stores_retired,
    ),
    (
        "branches_retired",
        |c| &c.branches_retired,
        |c| &mut c.branches_retired,
    ),
    (
        "cond_branches_retired",
        |c| &c.cond_branches_retired,
        |c| &mut c.cond_branches_retired,
    ),
    ("cycles", |c| &c.cycles, |c| &mut c.cycles),
    (
        "icache_accesses",
        |c| &c.icache_accesses,
        |c| &mut c.icache_accesses,
    ),
    (
        "icache_misses",
        |c| &c.icache_misses,
        |c| &mut c.icache_misses,
    ),
    (
        "dcache_accesses",
        |c| &c.dcache_accesses,
        |c| &mut c.dcache_accesses,
    ),
    (
        "dcache_misses",
        |c| &c.dcache_misses,
        |c| &mut c.dcache_misses,
    ),
    (
        "branch_mispredicts",
        |c| &c.branch_mispredicts,
        |c| &mut c.branch_mispredicts,
    ),
    ("host_calls", |c| &c.host_calls, |c| &mut c.host_calls),
    ("host_cycles", |c| &c.host_cycles, |c| &mut c.host_cycles),
];

/// Encodes a [`RunResult`] as the store payload.
pub fn encode_result(r: &RunResult) -> Json {
    let counters = Json::Obj(
        COUNTER_FIELDS
            .iter()
            .map(|(name, get, _)| (name.to_string(), Json::u64(*get(&r.counters))))
            .collect(),
    );
    let outputs = Json::Arr(
        r.outputs
            .iter()
            .map(|(path, data)| {
                Json::Arr(vec![Json::Str(path.clone()), Json::Str(hex_bytes(data))])
            })
            .collect(),
    );
    Json::Obj(vec![
        ("bench".into(), Json::Str(r.bench.clone())),
        ("engine".into(), Json::Str(r.engine.clone())),
        ("checksum".into(), Json::Num(r.checksum as f64)),
        ("counters".into(), counters),
        ("kernel_syscalls".into(), Json::u64(r.kernel_syscalls)),
        ("kernel_bytes".into(), Json::u64(r.kernel_bytes)),
        ("outputs".into(), outputs),
        ("compile_cycles".into(), Json::u64(r.compile_cycles)),
        ("code_bytes".into(), Json::u64(r.code_bytes)),
    ])
}

/// Decodes a store payload back into a [`RunResult`].
pub fn decode_result(payload: &Json) -> Result<RunResult, Error> {
    let bad = |what: &str| Error::Io {
        path: "results.jsonl".into(),
        message: format!("malformed stored result: {what}"),
    };
    let field = |name: &str| payload.get(name).ok_or_else(|| bad(name));
    let str_field = |name: &str| {
        field(name).and_then(|v| v.as_str().map(str::to_string).ok_or_else(|| bad(name)))
    };
    let u64_field = |obj: &Json, name: &str| {
        obj.get(name)
            .and_then(Json::as_u64)
            .ok_or_else(|| bad(name))
    };

    let mut counters = PerfCounters::default();
    let cobj = field("counters")?;
    for (name, _, set) in &COUNTER_FIELDS {
        *set(&mut counters) = u64_field(cobj, name)?;
    }

    let mut outputs = Vec::new();
    for entry in field("outputs")?.as_arr().ok_or_else(|| bad("outputs"))? {
        let pair = entry.as_arr().ok_or_else(|| bad("outputs entry"))?;
        let [path, hex] = pair else {
            return Err(bad("outputs entry arity"));
        };
        let data = hex
            .as_str()
            .and_then(unhex_bytes)
            .ok_or_else(|| bad("outputs hex"))?;
        outputs.push((
            path.as_str()
                .ok_or_else(|| bad("outputs path"))?
                .to_string(),
            data,
        ));
    }

    let checksum = field("checksum")?
        .as_f64()
        .filter(|v| v.fract() == 0.0 && *v >= i32::MIN as f64 && *v <= i32::MAX as f64)
        .ok_or_else(|| bad("checksum"))? as i32;

    Ok(RunResult {
        bench: str_field("bench")?,
        engine: str_field("engine")?,
        checksum,
        counters,
        kernel_syscalls: u64_field(payload, "kernel_syscalls")?,
        kernel_bytes: u64_field(payload, "kernel_bytes")?,
        outputs,
        compile_cycles: u64_field(payload, "compile_cycles")?,
        code_bytes: u64_field(payload, "code_bytes")?,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use wasmperf_wasmjit::EngineProfile;

    fn bench(name: &'static str, source: &str) -> Benchmark {
        Benchmark {
            name: name.into(),
            suite: wasmperf_benchsuite::Suite::Spec,
            source: source.to_string(),
            inputs: vec![("/in".into(), vec![1, 2, 3])],
            outputs: vec!["/out".into()],
            replay: None,
        }
    }

    #[test]
    fn source_hash_is_content_not_name() {
        let a = bench("a", "fn main() -> i32 { return 1; }");
        let renamed = bench("b", "fn main() -> i32 { return 1; }");
        assert_eq!(source_hash(&a), source_hash(&renamed));
        let edited = bench("a", "fn main() -> i32 { return 2; }");
        assert_ne!(source_hash(&a), source_hash(&edited));
        let mut input_changed = bench("a", "fn main() -> i32 { return 1; }");
        input_changed.inputs[0].1 = vec![9];
        assert_ne!(source_hash(&a), source_hash(&input_changed));
    }

    #[test]
    fn job_spec_carries_both_identities() {
        let b = bench("x", "fn main() -> i32 { return 1; }");
        let chrome = Engine::Jit(EngineProfile::chrome());
        let s = job_spec(&b, &chrome, Size::Test, AppendPolicy::Chunked4K, 0);
        assert_eq!(s.bench, "x");
        assert_eq!(s.engine, "chrome");
        assert_eq!(s.source_hash, source_hash(&b));
        assert_eq!(s.engine_fingerprint, chrome.fingerprint());
        let firefox = job_spec(
            &b,
            &Engine::Jit(EngineProfile::firefox()),
            Size::Test,
            AppendPolicy::Chunked4K,
            0,
        );
        assert_ne!(s.key(), firefox.key());
    }

    #[test]
    fn result_roundtrips_losslessly() {
        let counters = PerfCounters {
            instructions_retired: 123_456_789_012,
            cycles: 987_654_321,
            host_cycles: 55,
            icache_misses: 7,
            ..PerfCounters::default()
        };
        let r = RunResult {
            bench: "401.bzip2".into(),
            engine: "chrome".into(),
            checksum: -19_088_744,
            counters,
            kernel_syscalls: 42,
            kernel_bytes: 12_345,
            outputs: vec![
                ("/out.bz2".into(), vec![0, 1, 2, 254, 255]),
                ("/empty".into(), vec![]),
            ],
            compile_cycles: 61_000_000,
            code_bytes: 4096,
        };
        let encoded = encode_result(&r);
        // Through the actual wire format, not just the value tree.
        let wire = encoded.render();
        let decoded = decode_result(&Json::parse(&wire).unwrap()).unwrap();
        assert_eq!(decoded, r);
    }

    #[test]
    fn decode_rejects_malformed_payloads() {
        assert!(decode_result(&Json::Null).is_err());
        assert!(decode_result(&Json::Obj(vec![])).is_err());
        let mut good = encode_result(&RunResult {
            bench: "b".into(),
            engine: "e".into(),
            checksum: 0,
            counters: PerfCounters::default(),
            kernel_syscalls: 0,
            kernel_bytes: 0,
            outputs: vec![],
            compile_cycles: 0,
            code_bytes: 0,
        });
        // Corrupt one counter.
        if let Json::Obj(fields) = &mut good {
            for (k, v) in fields.iter_mut() {
                if k == "counters" {
                    *v = Json::Obj(vec![("cycles".into(), Json::Str("NaN".into()))]);
                }
            }
        }
        assert!(decode_result(&good).is_err());
    }

    #[test]
    fn hex_roundtrip() {
        let data: Vec<u8> = (0..=255).collect();
        assert_eq!(unhex_bytes(&hex_bytes(&data)).unwrap(), data);
        assert_eq!(unhex_bytes("0"), None);
        assert_eq!(unhex_bytes("zz"), None);
    }
}
