//! Statistics and the measurement-noise model.

/// Arithmetic mean.
pub fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    xs.iter().sum::<f64>() / xs.len() as f64
}

/// Standard error of the mean (sample stddev / sqrt(n)).
pub fn stderr(xs: &[f64]) -> f64 {
    if xs.len() < 2 {
        return 0.0;
    }
    let m = mean(xs);
    let var = xs.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / (xs.len() - 1) as f64;
    (var / xs.len() as f64).sqrt()
}

/// Geometric mean (inputs must be positive).
pub fn geomean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    (xs.iter().map(|x| x.ln()).sum::<f64>() / xs.len() as f64).exp()
}

/// Median. NaNs sort last (IEEE total order), so a stray NaN never
/// panics the whole report — it only pollutes the answer if it lands in
/// the middle.
pub fn median(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    let mut v = xs.to_vec();
    v.sort_by(f64::total_cmp);
    let n = v.len();
    if n % 2 == 1 {
        v[n / 2]
    } else {
        (v[n / 2 - 1] + v[n / 2]) / 2.0
    }
}

/// Derives `n` noisy measurements from a deterministic value.
///
/// The simulator is exactly repeatable, but the paper reports the mean and
/// standard error of five wall-clock runs. This synthesizes run-to-run OS
/// noise: multiplicative, ~0.17% sigma, from a seeded xorshift generator —
/// so reports are reproducible *and* the ± columns are meaningful.
pub fn noisy_trials(value: f64, n: usize, seed: u64) -> Vec<f64> {
    let mut state = seed.wrapping_mul(0x9e37_79b9_7f4a_7c15) | 1;
    let mut next = move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        // Uniform in [0,1).
        (state >> 11) as f64 / (1u64 << 53) as f64
    };
    (0..n)
        .map(|_| {
            // Sum of 4 uniforms ~ approximately normal with sigma
            // sqrt(4/12); halved and scaled by 0.006 that is ~0.17%.
            let g = (next() + next() + next() + next() - 2.0) / 2.0;
            value * (1.0 + 0.006 * g)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_stats() {
        let xs = [1.0, 2.0, 3.0, 4.0];
        assert!((mean(&xs) - 2.5).abs() < 1e-12);
        assert!((median(&xs) - 2.5).abs() < 1e-12);
        assert!((median(&[1.0, 5.0, 100.0]) - 5.0).abs() < 1e-12);
        assert!((geomean(&[2.0, 8.0]) - 4.0).abs() < 1e-12);
        assert!(stderr(&xs) > 0.0);
        assert_eq!(stderr(&[1.0]), 0.0);
    }

    #[test]
    fn noise_is_reproducible_and_small() {
        let a = noisy_trials(100.0, 5, 42);
        let b = noisy_trials(100.0, 5, 42);
        assert_eq!(a, b);
        let c = noisy_trials(100.0, 5, 43);
        assert_ne!(a, c);
        for x in &a {
            assert!((x - 100.0).abs() < 2.0, "{x}");
        }
        // Not all identical (noise actually applied).
        assert!(a.iter().any(|x| (x - a[0]).abs() > 1e-9));
    }

    #[test]
    fn empty_inputs_yield_zero() {
        assert_eq!(mean(&[]), 0.0);
        assert_eq!(stderr(&[]), 0.0);
        assert_eq!(geomean(&[]), 0.0);
        assert_eq!(median(&[]), 0.0);
        assert!(noisy_trials(100.0, 0, 7).is_empty());
    }

    #[test]
    fn single_element_is_its_own_statistic() {
        assert_eq!(mean(&[3.25]), 3.25);
        assert_eq!(median(&[3.25]), 3.25);
        assert!((geomean(&[3.25]) - 3.25).abs() < 1e-12);
        // One sample has no spread.
        assert_eq!(stderr(&[3.25]), 0.0);
    }

    #[test]
    fn median_tolerates_nan_and_infinities() {
        // Positive NaN sorts after +inf under total_cmp: NaNs pile up at
        // the top (still counted as elements) and nothing panics.
        let m = median(&[3.0, f64::NAN, 1.0, 2.0, f64::NAN]);
        assert_eq!(m, 3.0);
        assert_eq!(median(&[f64::NEG_INFINITY, 0.0, f64::INFINITY]), 0.0);
        // All-NaN input: still no panic (the value is NaN, as it must be).
        assert!(median(&[f64::NAN]).is_nan());
    }

    #[test]
    fn geomean_with_zero_collapses_to_zero() {
        // ln(0) = -inf, so any zero factor drives the geomean to 0 —
        // callers feeding slowdown ratios must keep them positive.
        assert_eq!(geomean(&[0.0, 4.0, 9.0]), 0.0);
    }

    #[test]
    fn noise_seed_zero_is_not_degenerate() {
        // The xorshift state is or'd with 1, so seed 0 must still vary.
        let a = noisy_trials(100.0, 5, 0);
        assert!(a.iter().any(|x| (x - a[0]).abs() > 1e-9));
    }

    #[test]
    fn geomean_of_ratios() {
        // Slowdown-style usage.
        let r = geomean(&[1.5, 1.6, 1.4]);
        assert!(r > 1.4 && r < 1.6);
    }
}
