//! BROWSIX-SPEC: the measurement harness.
//!
//! The paper's harness (§3) launches browsers via Selenium, serves
//! benchmark assets, attaches `perf` to the right browser thread, collects
//! counters, and validates outputs with `cmp`. This crate is its analog
//! for the simulated platform:
//!
//! - [`engine`]: the engines under test — native (clanglite), the wasm
//!   JITs (Chrome/Firefox profiles at any tier), and the asm.js modes —
//!   with a uniform "compile, stage inputs, execute, collect counters"
//!   entry point;
//! - [`session`]: the front end of the **farm** — submits (benchmark ×
//!   engine) jobs to a worker pool, compiles each pair exactly once via a
//!   content-addressed artifact cache, resumes recorded jobs from a
//!   persistent result store, and *validates* that every engine produced
//!   the same checksum and output files (the `cmp` step);
//! - [`farm`]: the bridge to `wasmperf-farm` — content hashing of
//!   benchmarks/engines into job specs, and the lossless result codec
//!   used by the store;
//! - [`error`]: the structured [`Error`] every stage surfaces instead of
//!   panicking;
//! - [`stats`]: mean/standard-error/geomean/median, plus the seeded
//!   measurement-noise model that gives the paper's "± stderr of 5 runs"
//!   columns meaning in a deterministic simulator;
//! - [`experiments`]: one function per paper table and figure, each
//!   returning both raw series and a rendered table;
//! - the `report` binary, which regenerates any or all of them.

pub mod engine;
pub mod error;
pub mod experiments;
pub mod farm;
pub mod render;
pub mod session;
pub mod stats;

pub use engine::{
    execute, execute_recorded, execute_with_fuel, execute_with_mode, execute_with_mode_and_fuel,
    prepare, run_one, run_one_traced, Artifact, Engine, RunResult, DEFAULT_FUEL,
};
pub use error::Error;
pub use session::{FarmStats, Session};
pub use wasmperf_trace::{TraceConfig, TraceSession};
