//! The harness error type.
//!
//! The hot path (compile → stage → execute → validate) used to be a chain
//! of `expect("runs")`/`expect("compiles")` panics; one bad benchmark
//! killed a whole report run. Every stage now surfaces a structured
//! [`Error`] instead, and the farm carries them through per-job failure
//! reporting: a failed or panicked job produces an [`Error::Job`] naming
//! the job, while the rest of the batch completes.

use std::fmt;

/// Anything that can go wrong producing or validating a run.
#[derive(Debug, Clone, PartialEq)]
pub enum Error {
    /// Frontend or backend compilation failed.
    Compile {
        /// Benchmark name.
        bench: String,
        /// Pipeline stage and message.
        message: String,
    },
    /// Staging inputs, executing, or reading outputs failed.
    Exec {
        /// Benchmark name.
        bench: String,
        /// Engine name.
        engine: String,
        /// What happened.
        message: String,
    },
    /// A benchmark name not present in the session's registry.
    MissingBenchmark {
        /// The unknown name.
        name: String,
    },
    /// Execution exhausted its fuel budget before `main` returned — a
    /// run-level deadline (wasmperf-serve maps request deadlines onto
    /// fuel), distinguished from [`Error::Exec`] so services can answer
    /// "deadline exceeded" rather than "internal failure".
    OutOfFuel {
        /// Benchmark name.
        bench: String,
        /// Engine name.
        engine: String,
        /// The fuel budget (retired instructions) that ran out.
        fuel: u64,
    },
    /// Cross-engine validation (the `cmp` step) found a disagreement.
    Mismatch {
        /// Benchmark name.
        bench: String,
        /// The two engines that disagree.
        engines: (String, String),
        /// Which artifact disagreed (checksum, output files).
        what: String,
    },
    /// An experiment-level invariant did not hold.
    Invariant {
        /// What was violated.
        message: String,
    },
    /// A farm job failed or panicked; the farm's per-job failure report.
    Job {
        /// The job's `bench/engine` label.
        label: String,
        /// Error message or panic payload.
        message: String,
        /// True if the job panicked rather than returning an error.
        panicked: bool,
        /// How many other jobs in the same batch also failed.
        other_failures: usize,
    },
    /// The result store or a report artifact could not be read/written.
    Io {
        /// The path involved.
        path: String,
        /// The underlying error.
        message: String,
    },
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::Compile { bench, message } => write!(f, "{bench}: compile: {message}"),
            Error::Exec {
                bench,
                engine,
                message,
            } => write!(f, "{bench} on {engine}: {message}"),
            Error::MissingBenchmark { name } => write!(f, "unknown benchmark {name}"),
            Error::OutOfFuel {
                bench,
                engine,
                fuel,
            } => write!(
                f,
                "{bench} on {engine}: out of fuel after {fuel} retired instructions"
            ),
            Error::Mismatch {
                bench,
                engines: (a, b),
                what,
            } => write!(f, "{bench}: {what} mismatch between {a} and {b}"),
            Error::Invariant { message } => write!(f, "invariant violated: {message}"),
            Error::Job {
                label,
                message,
                panicked,
                other_failures,
            } => {
                let kind = if *panicked { "panicked" } else { "failed" };
                write!(f, "job {label} {kind}: {message}")?;
                if *other_failures > 0 {
                    write!(f, " (+{other_failures} more failed job(s) in this batch)")?;
                }
                Ok(())
            }
            Error::Io { path, message } => write!(f, "{path}: {message}"),
        }
    }
}

impl std::error::Error for Error {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = Error::Job {
            label: "401.bzip2/chrome".into(),
            message: "no main".into(),
            panicked: true,
            other_failures: 2,
        };
        let s = e.to_string();
        assert!(s.contains("401.bzip2/chrome"), "{s}");
        assert!(s.contains("panicked"), "{s}");
        assert!(s.contains("+2 more"), "{s}");
        let m = Error::Mismatch {
            bench: "gemm".into(),
            engines: ("native".into(), "chrome".into()),
            what: "checksum".into(),
        };
        assert!(m.to_string().contains("checksum mismatch"), "{m}");
    }
}
