//! Plain-text table rendering for reports.

/// Renders an aligned text table with a header row.
pub fn table(title: &str, header: &[&str], rows: &[Vec<String>]) -> String {
    let ncols = header.len();
    let mut widths: Vec<usize> = header.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate().take(ncols) {
            widths[i] = widths[i].max(cell.len());
        }
    }
    let mut out = String::new();
    out.push_str(title);
    out.push('\n');
    let fmt_row = |cells: &[String], widths: &[usize]| -> String {
        let mut line = String::from("| ");
        for (i, c) in cells.iter().enumerate() {
            line.push_str(&format!("{:<w$} | ", c, w = widths[i]));
        }
        line.trim_end().to_string()
    };
    let header_cells: Vec<String> = header.iter().map(|s| s.to_string()).collect();
    out.push_str(&fmt_row(&header_cells, &widths));
    out.push('\n');
    let mut sep = String::from("|");
    for w in &widths {
        sep.push_str(&"-".repeat(w + 2));
        sep.push('|');
    }
    out.push_str(&sep);
    out.push('\n');
    for row in rows {
        out.push_str(&fmt_row(row, &widths));
        out.push('\n');
    }
    out
}

/// Formats a ratio like `1.55x`.
pub fn ratio(x: f64) -> String {
    format!("{x:.2}x")
}

/// Formats `mean ± stderr` with sensible precision.
pub fn pm(mean: f64, se: f64) -> String {
    if mean >= 100.0 {
        format!("{mean:.0} ± {se:.1}")
    } else if mean >= 1.0 {
        format!("{mean:.2} ± {se:.2}")
    } else {
        format!("{mean:.4} ± {se:.4}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_table() {
        let t = table(
            "Demo",
            &["name", "value"],
            &[
                vec!["a".into(), "1".into()],
                vec!["longer-name".into(), "2.50".into()],
            ],
        );
        assert!(t.contains("Demo"));
        assert!(t.contains("| name"));
        assert!(t.contains("| longer-name | 2.50"));
        // All data lines have the same length.
        let lines: Vec<&str> = t.lines().skip(1).collect();
        assert!(lines.windows(2).all(|w| w[0].len() == w[1].len()));
    }

    #[test]
    fn formatting_helpers() {
        assert_eq!(ratio(1.553), "1.55x");
        assert_eq!(pm(370.2, 0.64), "370 ± 0.6");
        assert_eq!(pm(1.93, 0.018), "1.93 ± 0.02");
    }
}
