//! Engines under test and the single-run entry point.

use std::time::Instant;
use wasmperf_benchsuite::Benchmark;
use wasmperf_browsix::{AppendPolicy, Kernel};
use wasmperf_clanglite::CompileOptions;
use wasmperf_cpu::{Machine, PerfCounters};
use wasmperf_trace::{SpanLog, StraceLog, SymbolMap, TraceConfig, TraceSession};
use wasmperf_wasmjit::{EngineProfile, Tier};

/// An execution engine (compiler pipeline + runtime conventions).
#[derive(Debug, Clone, PartialEq)]
pub enum Engine {
    /// Clang-like native compilation.
    Native,
    /// Native with custom options (ablations).
    NativeWith(CompileOptions),
    /// A browser JIT profile (wasm or asm.js, any tier).
    Jit(EngineProfile),
}

impl Engine {
    /// Display name.
    pub fn name(&self) -> String {
        match self {
            Engine::Native => "native".to_string(),
            Engine::NativeWith(_) => "native-custom".to_string(),
            Engine::Jit(p) => p.name.clone(),
        }
    }

    /// The paper's engine set for the headline SPEC comparison.
    pub fn headline() -> Vec<Engine> {
        vec![
            Engine::Native,
            Engine::Jit(EngineProfile::chrome()),
            Engine::Jit(EngineProfile::firefox()),
        ]
    }

    /// Engines for the asm.js comparison (Figures 5/6).
    pub fn asmjs_set() -> Vec<Engine> {
        vec![
            Engine::Jit(EngineProfile::chrome()),
            Engine::Jit(EngineProfile::firefox()),
            Engine::Jit(EngineProfile::chrome_asmjs()),
            Engine::Jit(EngineProfile::firefox_asmjs()),
        ]
    }

    /// Tiered engines for the Figure 1 vintages.
    pub fn vintages() -> Vec<(u32, Vec<Engine>)> {
        let years = [
            (2017, Tier::Y2017),
            (2018, Tier::Y2018),
            (2019, Tier::Y2019),
        ];
        years
            .into_iter()
            .map(|(y, t)| {
                (
                    y,
                    vec![
                        Engine::Jit(EngineProfile::chrome().at_tier(t)),
                        Engine::Jit(EngineProfile::firefox().at_tier(t)),
                    ],
                )
            })
            .collect()
    }
}

/// Result of one (benchmark, engine) execution.
#[derive(Debug, Clone)]
pub struct RunResult {
    /// Benchmark name.
    pub bench: String,
    /// Engine name.
    pub engine: String,
    /// The program's returned checksum.
    pub checksum: i32,
    /// Performance counters of the run.
    pub counters: PerfCounters,
    /// Kernel (Browsix) statistics.
    pub kernel_syscalls: u64,
    /// Output file contents, for cross-engine `cmp` validation.
    pub outputs: Vec<(String, Vec<u8>)>,
    /// Host-measured compile time in seconds (Table 2).
    pub compile_seconds: f64,
    /// Emitted machine-code bytes.
    pub code_bytes: u64,
}

/// Execution fuel: generous; runs are bounded by workload size.
const FUEL: u64 = 20_000_000_000;

/// Compiles and runs `bench` on `engine`, with inputs staged in a fresh
/// Browsix kernel using the given append policy.
pub fn run_one(
    bench: &Benchmark,
    engine: &Engine,
    policy: AppendPolicy,
) -> Result<RunResult, String> {
    run_one_traced(bench, engine, policy, TraceConfig::off()).map(|(r, _)| r)
}

/// [`run_one`] with observability: per the config, attributes cycles to
/// instruction addresses, records every Browsix syscall, and wraps compile
/// stages and execution in wall-clock spans.
///
/// Tracing is observation-only: the returned [`RunResult`] is identical to
/// an untraced run's, counter for counter and byte for byte. With
/// [`TraceConfig::off`] no [`TraceSession`] is returned and no collection
/// work happens.
pub fn run_one_traced(
    bench: &Benchmark,
    engine: &Engine,
    policy: AppendPolicy,
    config: TraceConfig,
) -> Result<(RunResult, Option<TraceSession>), String> {
    let mut spans = if config.spans {
        Some(SpanLog::new())
    } else {
        None
    };

    let prog = match spans.as_mut() {
        Some(log) => log.scope("compile", "cir/frontend", || {
            wasmperf_cir::compile(&bench.source)
        }),
        None => wasmperf_cir::compile(&bench.source),
    }
    .map_err(|e| format!("{}: {e}", bench.name))?;

    // `func_texts` is non-empty only for the JIT pipeline: per-function wat
    // texts indexed by the source tags on the emitted machine code.
    let (module, compile_seconds, func_texts) = match engine {
        Engine::Native | Engine::NativeWith(_) => {
            let default_opts;
            let opts = match engine {
                Engine::NativeWith(o) => o,
                _ => {
                    default_opts = CompileOptions::default();
                    &default_opts
                }
            };
            let t0 = Instant::now();
            let m = wasmperf_clanglite::compile_traced(&prog, opts, spans.as_mut());
            (m, t0.elapsed().as_secs_f64(), Vec::new())
        }
        Engine::Jit(profile) => {
            // The wasm module ships to the browser; only JIT time counts
            // (the paper measures Chrome's compile time, not Emscripten's).
            let wasm = match spans.as_mut() {
                Some(log) => log.scope("compile", "emcc/compile", || wasmperf_emcc::compile(&prog)),
                None => wasmperf_emcc::compile(&prog),
            };
            wasmperf_wasm::validate(&wasm).map_err(|e| format!("{}: {e}", bench.name))?;
            let t0 = Instant::now();
            let out = match spans.as_mut() {
                Some(log) => log.scope("compile", "wasmjit/compile", || {
                    wasmperf_wasmjit::compile(&wasm, profile)
                }),
                None => wasmperf_wasmjit::compile(&wasm, profile),
            }
            .map_err(|e| format!("{}: {e}", bench.name))?;
            (out.module, t0.elapsed().as_secs_f64(), out.func_texts)
        }
    };

    let symbols = if config.profile {
        let mut s = SymbolMap::from_module(&module);
        s.attach_source(&wasmperf_clanglite::source_table(&prog));
        if !func_texts.is_empty() {
            s.attach_wasm_texts(&module, &func_texts);
        }
        Some(s)
    } else {
        None
    };

    let mut kernel = Kernel::new(policy);
    if config.strace {
        kernel.strace = Some(StraceLog::default());
    }
    for (path, data) in &bench.inputs {
        kernel
            .fs
            .write_all(path, data)
            .map_err(|e| format!("{}: staging {path}: {e:?}", bench.name))?;
    }

    let entry = module
        .entry
        .ok_or_else(|| format!("{}: no main", bench.name))?;
    let mut machine = Machine::new(&module, kernel);
    if config.profile {
        machine.enable_profile();
    }
    let open = spans.as_ref().map(SpanLog::enter);
    let out = machine
        .run(entry, &[], FUEL)
        .map_err(|e| format!("{} on {}: {e}", bench.name, engine.name()))?;
    if let (Some(log), Some(open)) = (spans.as_mut(), open) {
        log.exit(open, "exec", "run");
    }
    let profile = machine.take_profile();

    let kernel = machine.into_host();
    let mut outputs = Vec::new();
    for path in &bench.outputs {
        let data = kernel
            .fs
            .read_all(path)
            .map_err(|e| format!("{}: output {path}: {e:?}", bench.name))?;
        outputs.push((path.clone(), data));
    }

    let result = RunResult {
        bench: bench.name.to_string(),
        engine: engine.name(),
        checksum: out.ret as u32 as i32,
        counters: out.counters,
        kernel_syscalls: kernel.stats.syscalls,
        outputs,
        compile_seconds,
        code_bytes: module.code_bytes(),
    };

    let trace = if config.is_off() {
        None
    } else {
        let mut t = TraceSession::new(&result.bench, &result.engine);
        t.spans = spans.map(|l| l.spans).unwrap_or_default();
        t.strace = kernel.strace;
        t.profile = profile;
        t.symbols = symbols;
        let c = &result.counters;
        t.totals = vec![
            ("instructions_retired", c.instructions_retired),
            ("cycles", c.cycles),
            ("icache_misses", c.icache_misses),
            ("dcache_misses", c.dcache_misses),
            ("branch_mispredicts", c.branch_mispredicts),
            ("host_calls", c.host_calls),
            ("host_cycles", c.host_cycles),
            ("total_cycles", c.total_cycles()),
        ];
        Some(t)
    };

    Ok((result, trace))
}

#[cfg(test)]
mod tests {
    use super::*;
    use wasmperf_benchsuite::{spec, Size};

    #[test]
    fn engines_have_distinct_names() {
        let names: Vec<String> = Engine::headline()
            .iter()
            .chain(Engine::asmjs_set().iter())
            .map(Engine::name)
            .collect();
        let mut dedup = names.clone();
        dedup.sort();
        dedup.dedup();
        // headline ∩ asmjs_set share chrome/firefox.
        assert!(dedup.len() >= 5, "{names:?}");
    }

    #[test]
    fn one_io_benchmark_runs_on_all_headline_engines() {
        let b = spec::all(Size::Test)
            .into_iter()
            .find(|b| b.name == "401.bzip2")
            .unwrap();
        let mut checksums = Vec::new();
        for e in Engine::headline() {
            let r = run_one(&b, &e, AppendPolicy::Chunked4K).expect("runs");
            assert!(r.counters.instructions_retired > 0);
            assert!(r.kernel_syscalls > 0);
            assert!(!r.outputs[0].1.is_empty());
            checksums.push((r.checksum, r.outputs));
        }
        // Every engine agrees on checksum and output bytes (the cmp step).
        for w in checksums.windows(2) {
            assert_eq!(w[0], w[1]);
        }
    }
}
