//! Engines under test, the compile/execute split, and the single-run
//! entry points.
//!
//! Compilation and execution are separate stages so the farm's
//! content-addressed artifact cache can share one compiled [`Artifact`]
//! across every trial, append policy, and experiment that needs it:
//!
//! - [`prepare`] compiles a benchmark for an engine (cir → clanglite, or
//!   cir → emcc → wasmjit) and returns the artifact;
//! - [`execute`] stages inputs into a fresh Browsix kernel and runs an
//!   artifact, producing a [`RunResult`];
//! - [`run_one`] / [`run_one_traced`] glue the two together for callers
//!   that don't cache.

use wasmperf_benchsuite::{Benchmark, Size};
use wasmperf_browsix::{AppendPolicy, Kernel, KernelStats};
use wasmperf_cir::hir::HProgram;
use wasmperf_clanglite::CompileOptions;
use wasmperf_cpu::{ExecMode, HostEnv, HostOutcome, Machine, Memory, PerfCounters};
use wasmperf_farm::hash::fnv1a;
use wasmperf_isa::{Module, TrapKind};
use wasmperf_replay::{Recorder, Recording, ReplayKernel};
use wasmperf_trace::{SpanLog, StraceLog, SymbolMap, TraceConfig, TraceSession};
use wasmperf_wasmjit::{EngineProfile, SandboxModel, Tier, PKU_SWITCH_CYCLES};

use crate::error::Error;

/// An execution engine (compiler pipeline + runtime conventions).
#[derive(Debug, Clone, PartialEq)]
pub enum Engine {
    /// Clang-like native compilation.
    Native,
    /// Native with custom options (ablations).
    NativeWith(CompileOptions),
    /// A browser JIT profile (wasm or asm.js, any tier).
    Jit(EngineProfile),
}

impl Engine {
    /// Display name. Ablation configurations carry a short fingerprint
    /// suffix so two different [`Engine::NativeWith`] engines never share
    /// a name in result rows, labels, or trace keys.
    pub fn name(&self) -> String {
        match self {
            Engine::Native => "native".to_string(),
            Engine::NativeWith(_) => {
                format!("native-custom-{:08x}", self.fingerprint() as u32)
            }
            Engine::Jit(p) => p.name.clone(),
        }
    }

    /// A stable hash of the **full** engine configuration — register
    /// pools, tier, safety checks, compile options — used as the
    /// artifact-cache key component. Two profiles that differ in any
    /// knob (even sharing a display name) fingerprint differently.
    pub fn fingerprint(&self) -> u64 {
        // Engine (and everything inside it) derives a total Debug
        // representation; FNV over it is stable across processes.
        fnv1a(format!("{self:?}").as_bytes())
    }

    /// Parses the display name of a standard engine configuration — the
    /// inverse of [`Engine::name`] for every engine a remote client can
    /// name over the wasmperf-serve wire protocol (native-compile
    /// ablation engines are constructed programmatically, not by name).
    /// The wasm profiles accept a `+bounds` / `+pku` sandbox-ablation
    /// suffix (`chrome+bounds`, `firefox+pku`, ...); the unsuffixed name
    /// is the guard-page baseline.
    pub fn parse(name: &str) -> Option<Engine> {
        if let Some((base, suffix)) = name.split_once('+') {
            let model = match suffix {
                "bounds" => SandboxModel::Bounds,
                "pku" => SandboxModel::Pku {
                    switch_cycles: PKU_SWITCH_CYCLES,
                },
                _ => return None,
            };
            let profile = match base {
                "chrome" => EngineProfile::chrome(),
                "firefox" => EngineProfile::firefox(),
                _ => return None,
            };
            return Some(Engine::Jit(profile.with_sandbox(model)));
        }
        match name {
            "native" => Some(Engine::Native),
            "chrome" => Some(Engine::Jit(EngineProfile::chrome())),
            "firefox" => Some(Engine::Jit(EngineProfile::firefox())),
            "chrome-asmjs" => Some(Engine::Jit(EngineProfile::chrome_asmjs())),
            "firefox-asmjs" => Some(Engine::Jit(EngineProfile::firefox_asmjs())),
            _ => None,
        }
    }

    /// The sandbox-ablation set for `report sandbox`: native, the
    /// guard-page baseline, and the two alternative protection
    /// strategies on the Chrome profile.
    pub fn sandbox_set() -> Vec<Engine> {
        vec![
            Engine::Native,
            Engine::Jit(EngineProfile::chrome()),
            Engine::Jit(EngineProfile::chrome().with_sandbox(SandboxModel::Bounds)),
            Engine::Jit(EngineProfile::chrome().with_sandbox(SandboxModel::Pku {
                switch_cycles: PKU_SWITCH_CYCLES,
            })),
        ]
    }

    /// The paper's engine set for the headline SPEC comparison.
    pub fn headline() -> Vec<Engine> {
        vec![
            Engine::Native,
            Engine::Jit(EngineProfile::chrome()),
            Engine::Jit(EngineProfile::firefox()),
        ]
    }

    /// Engines for the asm.js comparison (Figures 5/6).
    pub fn asmjs_set() -> Vec<Engine> {
        vec![
            Engine::Jit(EngineProfile::chrome()),
            Engine::Jit(EngineProfile::firefox()),
            Engine::Jit(EngineProfile::chrome_asmjs()),
            Engine::Jit(EngineProfile::firefox_asmjs()),
        ]
    }

    /// Tiered engines for the Figure 1 vintages.
    pub fn vintages() -> Vec<(u32, Vec<Engine>)> {
        let years = [
            (2017, Tier::Y2017),
            (2018, Tier::Y2018),
            (2019, Tier::Y2019),
        ];
        years
            .into_iter()
            .map(|(y, t)| {
                (
                    y,
                    vec![
                        Engine::Jit(EngineProfile::chrome().at_tier(t)),
                        Engine::Jit(EngineProfile::firefox().at_tier(t)),
                    ],
                )
            })
            .collect()
    }
}

/// Result of one (benchmark, engine) execution.
#[derive(Debug, Clone, PartialEq)]
pub struct RunResult {
    /// Benchmark name.
    pub bench: String,
    /// Engine name.
    pub engine: String,
    /// The program's returned checksum.
    pub checksum: i32,
    /// Performance counters of the run.
    pub counters: PerfCounters,
    /// Kernel (Browsix) statistics.
    pub kernel_syscalls: u64,
    /// Payload bytes marshalled through the kernel's auxiliary buffer.
    pub kernel_bytes: u64,
    /// Output file contents, for cross-engine `cmp` validation.
    pub outputs: Vec<(String, Vec<u8>)>,
    /// Modeled compile cost in cycles (Table 2); see [`Artifact`].
    pub compile_cycles: u64,
    /// Emitted machine-code bytes.
    pub code_bytes: u64,
}

/// A compiled, executable build of one benchmark on one engine.
///
/// This is the unit the farm's content-addressed cache shares (behind an
/// `Arc`): immutable once built, reusable by any number of concurrent
/// executions.
#[derive(Debug, Clone)]
pub struct Artifact {
    /// The executable x86-64 module.
    pub module: Module,
    /// Per-function wasm instruction texts (JIT pipeline only), for
    /// trace symbolization.
    pub func_texts: Vec<Vec<String>>,
    /// Modeled compile cost in cycles (see below).
    pub compile_cycles: u64,
}

/// Modeled AOT compile cost per emitted code byte. The clanglite
/// pipeline runs graph-coloring allocation, unrolling, and fusion — the
/// slow, thorough path (paper Table 2: tens of seconds for SPEC).
const NATIVE_COMPILE_CYCLES_PER_BYTE: u64 = 60_000;

/// Modeled JIT compile cost per emitted code byte: single pass, linear
/// scan — roughly 15× cheaper than the AOT pipeline, matching Table 2's
/// contrast. The model is deterministic (a pure function of the emitted
/// module) so compile-time tables are byte-reproducible and resumable,
/// where the previous wall-clock measurement changed on every run.
const JIT_COMPILE_CYCLES_PER_BYTE: u64 = 4_000;

/// Default execution fuel (retired-instruction budget): generous; runs
/// are bounded by workload size. wasmperf-serve maps per-request
/// deadlines onto smaller budgets via [`execute_with_fuel`].
pub const DEFAULT_FUEL: u64 = 20_000_000_000;

/// Compiles `bench` for `engine`.
pub fn prepare(bench: &Benchmark, engine: &Engine) -> Result<Artifact, Error> {
    prepare_traced(bench, engine, None).map(|(a, _)| a)
}

/// [`prepare`] with optional compile-stage spans, also returning the HIR
/// program (needed to symbolize traces).
pub fn prepare_traced(
    bench: &Benchmark,
    engine: &Engine,
    mut spans: Option<&mut SpanLog>,
) -> Result<(Artifact, HProgram), Error> {
    let compile_err = |message: String| Error::Compile {
        bench: bench.name.to_string(),
        message,
    };

    let prog = match spans.as_mut() {
        Some(log) => log.scope("compile", "cir/frontend", || {
            wasmperf_cir::compile(&bench.source)
        }),
        None => wasmperf_cir::compile(&bench.source),
    }
    .map_err(compile_err)?;

    let artifact = match engine {
        Engine::Native | Engine::NativeWith(_) => {
            let default_opts;
            let opts = match engine {
                Engine::NativeWith(o) => o,
                _ => {
                    default_opts = CompileOptions::default();
                    &default_opts
                }
            };
            let module = wasmperf_clanglite::compile_traced(&prog, opts, spans.as_deref_mut());
            let compile_cycles = NATIVE_COMPILE_CYCLES_PER_BYTE * module.code_bytes();
            Artifact {
                module,
                func_texts: Vec::new(),
                compile_cycles,
            }
        }
        Engine::Jit(profile) => {
            // The wasm module ships to the browser; only JIT cost counts
            // (the paper measures Chrome's compile time, not
            // Emscripten's).
            let wasm = match spans.as_mut() {
                Some(log) => log.scope("compile", "emcc/compile", || wasmperf_emcc::compile(&prog)),
                None => wasmperf_emcc::compile(&prog),
            };
            wasmperf_wasm::validate(&wasm).map_err(|e| compile_err(format!("{e:?}")))?;
            let out = match spans.as_mut() {
                Some(log) => log.scope("compile", "wasmjit/compile", || {
                    wasmperf_wasmjit::compile(&wasm, profile)
                }),
                None => wasmperf_wasmjit::compile(&wasm, profile),
            }
            .map_err(compile_err)?;
            let compile_cycles = JIT_COMPILE_CYCLES_PER_BYTE * out.module.code_bytes();
            Artifact {
                module: out.module,
                func_texts: out.func_texts,
                compile_cycles,
            }
        }
    };
    Ok((artifact, prog))
}

/// Runs a compiled artifact: stages inputs into a fresh Browsix kernel,
/// executes, and collects counters and output files.
pub fn execute(
    bench: &Benchmark,
    engine: &Engine,
    artifact: &Artifact,
    policy: AppendPolicy,
) -> Result<RunResult, Error> {
    execute_traced(
        bench,
        engine,
        artifact,
        None,
        policy,
        TraceConfig::off(),
        None,
    )
    .map(|(r, _)| r)
}

/// [`execute`] pinned to a specific interpreter loop. `wasmperf-bench`
/// uses this to time the threaded and predecoded engines against the
/// legacy reference on identical workloads; results must match byte for
/// byte.
pub fn execute_with_mode(
    bench: &Benchmark,
    engine: &Engine,
    artifact: &Artifact,
    policy: AppendPolicy,
    mode: ExecMode,
) -> Result<RunResult, Error> {
    execute_inner(bench, engine, artifact, policy, mode, DEFAULT_FUEL)
}

/// [`execute_with_mode`] with an explicit fuel budget, for differential
/// tests that exercise out-of-fuel traps under every interpreter loop.
pub fn execute_with_mode_and_fuel(
    bench: &Benchmark,
    engine: &Engine,
    artifact: &Artifact,
    policy: AppendPolicy,
    mode: ExecMode,
    fuel: u64,
) -> Result<RunResult, Error> {
    execute_inner(bench, engine, artifact, policy, mode, fuel)
}

/// [`execute`] with an explicit fuel budget. A run that exhausts `fuel`
/// before `main` returns yields [`Error::OutOfFuel`] — the simulated-time
/// half of wasmperf-serve's request deadlines.
pub fn execute_with_fuel(
    bench: &Benchmark,
    engine: &Engine,
    artifact: &Artifact,
    policy: AppendPolicy,
    fuel: u64,
) -> Result<RunResult, Error> {
    execute_inner(bench, engine, artifact, policy, ExecMode::Threaded, fuel)
}

/// The host behind one execution: a live Browsix kernel, or a replay
/// kernel answering syscalls from a recording ([`Suite::Replay`]
/// benchmarks).
///
/// [`Suite::Replay`]: wasmperf_benchsuite::Suite::Replay
enum RunHost {
    Live(Box<Kernel>),
    Replay(ReplayKernel),
}

impl RunHost {
    /// Builds the host for `bench`: a replay kernel when the benchmark
    /// carries a recording, else a fresh kernel with inputs staged.
    fn for_bench(
        bench: &Benchmark,
        policy: AppendPolicy,
        strace: bool,
        exec_err: &impl Fn(String) -> Error,
    ) -> Result<RunHost, Error> {
        if let Some(rec) = &bench.replay {
            let mut k = ReplayKernel::new(rec.clone());
            if strace {
                k.strace = Some(StraceLog::default());
            }
            return Ok(RunHost::Replay(k));
        }
        let mut kernel = Kernel::new(policy);
        if strace {
            kernel.strace = Some(StraceLog::default());
        }
        for (path, data) in &bench.inputs {
            kernel
                .fs
                .write_all(path, data)
                .map_err(|e| exec_err(format!("staging {path}: {e:?}")))?;
        }
        Ok(RunHost::Live(Box::new(kernel)))
    }

    fn stats(&self) -> &KernelStats {
        match self {
            RunHost::Live(k) => &k.stats,
            RunHost::Replay(k) => &k.stats,
        }
    }

    fn take_strace(&mut self) -> Option<StraceLog> {
        match self {
            RunHost::Live(k) => k.strace.take(),
            RunHost::Replay(k) => k.strace.take(),
        }
    }

    /// Post-run validation and output collection. A replay host must have
    /// consumed its recording exactly and reproduced the recorded
    /// checksum; a live host yields the benchmark's declared output
    /// files.
    fn finish(
        &self,
        bench: &Benchmark,
        checksum: i32,
        exec_err: &impl Fn(String) -> Error,
    ) -> Result<Vec<(String, Vec<u8>)>, Error> {
        match self {
            RunHost::Replay(k) => {
                k.finish().map_err(|e| exec_err(e.to_string()))?;
                let rec = bench
                    .replay
                    .as_ref()
                    .expect("replay host without recording");
                if checksum != rec.checksum {
                    return Err(exec_err(format!(
                        "replay checksum {checksum} != recorded {}",
                        rec.checksum
                    )));
                }
                Ok(Vec::new())
            }
            RunHost::Live(kernel) => {
                let mut outputs = Vec::new();
                for path in &bench.outputs {
                    let data = kernel
                        .fs
                        .read_all(path)
                        .map_err(|e| exec_err(format!("output {path}: {e:?}")))?;
                    outputs.push((path.clone(), data));
                }
                Ok(outputs)
            }
        }
    }

    /// The divergence message, if this is a replay host that strayed
    /// from its recording (the cause behind an `Abort` trap).
    fn divergence(&self) -> Option<&str> {
        match self {
            RunHost::Live(_) => None,
            RunHost::Replay(k) => k.divergence(),
        }
    }
}

impl HostEnv for RunHost {
    fn call(
        &mut self,
        id: u32,
        args: &[u64; 6],
        mem: &mut Memory,
    ) -> Result<HostOutcome, TrapKind> {
        match self {
            RunHost::Live(k) => k.call(id, args, mem),
            RunHost::Replay(k) => k.call(id, args, mem),
        }
    }
}

fn execute_inner(
    bench: &Benchmark,
    engine: &Engine,
    artifact: &Artifact,
    policy: AppendPolicy,
    mode: ExecMode,
    fuel: u64,
) -> Result<RunResult, Error> {
    let exec_err = |message: String| Error::Exec {
        bench: bench.name.to_string(),
        engine: engine.name(),
        message,
    };

    let module = &artifact.module;
    let host = RunHost::for_bench(bench, policy, false, &exec_err)?;

    let entry = module.entry.ok_or_else(|| exec_err("no main".into()))?;
    let mut machine = Machine::new(module, host);
    machine.set_exec_mode(mode);
    let run = machine.run(entry, &[], fuel);
    let host = machine.into_host();
    let out = run.map_err(|e| {
        if e.kind == TrapKind::OutOfFuel {
            Error::OutOfFuel {
                bench: bench.name.to_string(),
                engine: engine.name(),
                fuel,
            }
        } else if let Some(msg) = host.divergence() {
            exec_err(format!("replay divergence: {msg}"))
        } else {
            exec_err(format!("{e:?}"))
        }
    })?;

    let checksum = out.ret as u32 as i32;
    let outputs = host.finish(bench, checksum, &exec_err)?;

    Ok(RunResult {
        bench: bench.name.to_string(),
        engine: engine.name(),
        checksum,
        counters: out.counters,
        kernel_syscalls: host.stats().syscalls,
        kernel_bytes: host.stats().bytes_marshalled,
        outputs,
        compile_cycles: artifact.compile_cycles,
        code_bytes: module.code_bytes(),
    })
}

/// Runs `bench` natively while recording its complete nondeterminism
/// boundary. Returns the run's result (byte-identical to an un-recorded
/// [`execute`] — recording is observation-only) and the captured
/// [`Recording`], ready to [`wasmperf_replay::save`] and replay on every
/// pipeline.
pub fn execute_recorded(
    bench: &Benchmark,
    artifact: &Artifact,
    policy: AppendPolicy,
    size: Size,
) -> Result<(RunResult, Recording), Error> {
    let engine = Engine::Native;
    let exec_err = |message: String| Error::Exec {
        bench: bench.name.to_string(),
        engine: engine.name(),
        message,
    };

    let module = &artifact.module;
    let mut recorder = Recorder::new(policy);
    for (path, data) in &bench.inputs {
        recorder
            .kernel
            .fs
            .write_all(path, data)
            .map_err(|e| exec_err(format!("staging {path}: {e:?}")))?;
    }

    let entry = module.entry.ok_or_else(|| exec_err("no main".into()))?;
    let mut machine = Machine::new(module, recorder);
    let out = machine
        .run(entry, &[], DEFAULT_FUEL)
        .map_err(|e| exec_err(format!("{e:?}")))?;
    let recorder = machine.into_host();

    let mut outputs = Vec::new();
    for path in &bench.outputs {
        let data = recorder
            .kernel
            .fs
            .read_all(path)
            .map_err(|e| exec_err(format!("output {path}: {e:?}")))?;
        outputs.push((path.clone(), data));
    }

    let result = RunResult {
        bench: bench.name.to_string(),
        engine: engine.name(),
        checksum: out.ret as u32 as i32,
        counters: out.counters,
        kernel_syscalls: recorder.kernel.stats.syscalls,
        kernel_bytes: recorder.kernel.stats.bytes_marshalled,
        outputs,
        compile_cycles: artifact.compile_cycles,
        code_bytes: module.code_bytes(),
    };
    let recording = recorder
        .into_recording(
            &bench.name,
            size.as_str(),
            &bench.source,
            bench.inputs.clone(),
            result.checksum,
        )
        .map_err(|e| exec_err(e.to_string()))?;
    Ok((result, recording))
}

/// [`execute`] with observability; `prog` is required only when
/// `config.profile` asks for source-line symbolization.
pub fn execute_traced(
    bench: &Benchmark,
    engine: &Engine,
    artifact: &Artifact,
    prog: Option<&HProgram>,
    policy: AppendPolicy,
    config: TraceConfig,
    mut spans: Option<SpanLog>,
) -> Result<(RunResult, Option<TraceSession>), Error> {
    let exec_err = |message: String| Error::Exec {
        bench: bench.name.to_string(),
        engine: engine.name(),
        message,
    };

    let module = &artifact.module;
    let symbols = if config.profile {
        let mut s = SymbolMap::from_module(module);
        if let Some(prog) = prog {
            s.attach_source(&wasmperf_clanglite::source_table(prog));
        }
        if !artifact.func_texts.is_empty() {
            s.attach_wasm_texts(module, &artifact.func_texts);
        }
        Some(s)
    } else {
        None
    };

    let host = RunHost::for_bench(bench, policy, config.strace, &exec_err)?;

    let entry = module.entry.ok_or_else(|| exec_err("no main".into()))?;
    let mut machine = Machine::new(module, host);
    if config.profile {
        machine.enable_profile();
    }
    let open = spans.as_ref().map(SpanLog::enter);
    let run = machine.run(entry, &[], DEFAULT_FUEL);
    if let (Some(log), Some(open)) = (spans.as_mut(), open) {
        log.exit(open, "exec", "run");
    }
    let profile = machine.take_profile();

    let mut host = machine.into_host();
    let out = run.map_err(|e| match host.divergence() {
        Some(msg) => exec_err(format!("replay divergence: {msg}")),
        None => exec_err(format!("{e:?}")),
    })?;
    let checksum = out.ret as u32 as i32;
    let outputs = host.finish(bench, checksum, &exec_err)?;

    let result = RunResult {
        bench: bench.name.to_string(),
        engine: engine.name(),
        checksum,
        counters: out.counters,
        kernel_syscalls: host.stats().syscalls,
        kernel_bytes: host.stats().bytes_marshalled,
        outputs,
        compile_cycles: artifact.compile_cycles,
        code_bytes: module.code_bytes(),
    };

    let trace = if config.is_off() {
        None
    } else {
        let mut t = TraceSession::new(&result.bench, &result.engine);
        t.spans = spans.map(|l| l.spans).unwrap_or_default();
        t.strace = host.take_strace();
        t.profile = profile;
        t.symbols = symbols;
        let c = &result.counters;
        t.totals = vec![
            ("instructions_retired", c.instructions_retired),
            ("cycles", c.cycles),
            ("icache_misses", c.icache_misses),
            ("dcache_misses", c.dcache_misses),
            ("branch_mispredicts", c.branch_mispredicts),
            ("host_calls", c.host_calls),
            ("host_cycles", c.host_cycles),
            ("total_cycles", c.total_cycles()),
        ];
        Some(t)
    };

    Ok((result, trace))
}

/// Compiles and runs `bench` on `engine`, with inputs staged in a fresh
/// Browsix kernel using the given append policy. Uncached — the farm
/// path ([`crate::Session`]) shares compiled artifacts instead.
pub fn run_one(
    bench: &Benchmark,
    engine: &Engine,
    policy: AppendPolicy,
) -> Result<RunResult, Error> {
    run_one_traced(bench, engine, policy, TraceConfig::off()).map(|(r, _)| r)
}

/// [`run_one`] with observability: per the config, attributes cycles to
/// instruction addresses, records every Browsix syscall, and wraps compile
/// stages and execution in wall-clock spans.
///
/// Tracing is observation-only: the returned [`RunResult`] is identical to
/// an untraced run's, counter for counter and byte for byte. With
/// [`TraceConfig::off`] no [`TraceSession`] is returned and no collection
/// work happens.
pub fn run_one_traced(
    bench: &Benchmark,
    engine: &Engine,
    policy: AppendPolicy,
    config: TraceConfig,
) -> Result<(RunResult, Option<TraceSession>), Error> {
    let mut spans = if config.spans {
        Some(SpanLog::new())
    } else {
        None
    };
    let (artifact, prog) = prepare_traced(bench, engine, spans.as_mut())?;
    execute_traced(bench, engine, &artifact, Some(&prog), policy, config, spans)
}

#[cfg(test)]
mod tests {
    use super::*;
    use wasmperf_benchsuite::{spec, Size};

    #[test]
    fn parse_inverts_name_for_standard_engines() {
        for e in Engine::headline()
            .iter()
            .chain(Engine::asmjs_set().iter())
            .chain(Engine::sandbox_set().iter())
        {
            assert_eq!(Engine::parse(&e.name()).as_ref(), Some(e), "{}", e.name());
        }
        assert_eq!(Engine::parse("safari"), None);
        assert_eq!(Engine::parse(""), None);
        assert_eq!(Engine::parse("chrome+guard"), None);
        assert_eq!(Engine::parse("chrome-asmjs+bounds"), None);
        assert_eq!(Engine::parse("native+pku"), None);
        // Ablation engines are not nameable over the wire.
        let ablation = Engine::NativeWith(CompileOptions {
            unroll: false,
            ..CompileOptions::default()
        });
        assert_eq!(Engine::parse(&ablation.name()), None);
    }

    #[test]
    fn fuel_budget_bounds_execution() -> Result<(), Error> {
        let b = spec::all(Size::Test)
            .into_iter()
            .find(|b| b.name == "401.bzip2")
            .unwrap();
        let e = Engine::Native;
        let artifact = prepare(&b, &e)?;
        // A generous budget matches the default-fuel path byte for byte.
        let full = execute_with_fuel(&b, &e, &artifact, AppendPolicy::Chunked4K, DEFAULT_FUEL)?;
        assert_eq!(full, execute(&b, &e, &artifact, AppendPolicy::Chunked4K)?);
        // A budget below the run's retired instructions is a structured
        // deadline error, not a stringly Exec failure.
        let tiny = execute_with_fuel(&b, &e, &artifact, AppendPolicy::Chunked4K, 1_000);
        assert_eq!(
            tiny.unwrap_err(),
            Error::OutOfFuel {
                bench: "401.bzip2".into(),
                engine: "native".into(),
                fuel: 1_000,
            }
        );
        Ok(())
    }

    #[test]
    fn engines_have_distinct_names() {
        let names: Vec<String> = Engine::headline()
            .iter()
            .chain(Engine::asmjs_set().iter())
            .map(Engine::name)
            .collect();
        let mut dedup = names.clone();
        dedup.sort();
        dedup.dedup();
        // headline ∩ asmjs_set share chrome/firefox.
        assert!(dedup.len() >= 5, "{names:?}");
    }

    #[test]
    fn distinct_ablation_configs_share_neither_name_nor_result_key() {
        let a = Engine::NativeWith(CompileOptions {
            unroll: false,
            ..CompileOptions::default()
        });
        let b = Engine::NativeWith(CompileOptions {
            fuse_addressing: false,
            ..CompileOptions::default()
        });
        // Result rows, labels, and trace keys use the display name, so a
        // shared "native-custom" would silently merge two ablations.
        assert_ne!(a.name(), b.name());
        assert!(a.name().starts_with("native-custom-"), "{}", a.name());
        let bench = spec::all(Size::Test)
            .into_iter()
            .find(|b| b.name == "401.bzip2")
            .unwrap();
        let key = |e: &Engine| {
            crate::farm::job_spec(&bench, e, Size::Test, AppendPolicy::Chunked4K, 0).key()
        };
        assert_ne!(key(&a), key(&b));
        // Name and key stay deterministic run to run.
        assert_eq!(a.name(), a.name());
        assert_eq!(key(&a), key(&a));
    }

    #[test]
    fn fingerprints_distinguish_every_configuration() {
        let mut engines: Vec<Engine> = Engine::headline();
        engines.extend(Engine::asmjs_set());
        for (_, vintage) in Engine::vintages() {
            engines.extend(vintage);
        }
        engines.push(Engine::NativeWith(CompileOptions {
            unroll: false,
            ..CompileOptions::default()
        }));
        engines.push(Engine::Jit(EngineProfile {
            stack_check: false,
            ..EngineProfile::chrome()
        }));
        engines.push(Engine::Jit(
            EngineProfile::chrome().with_sandbox(SandboxModel::Bounds),
        ));
        engines.push(Engine::Jit(EngineProfile::firefox().with_sandbox(
            SandboxModel::Pku {
                switch_cycles: PKU_SWITCH_CYCLES,
            },
        )));
        let mut prints: Vec<u64> = engines.iter().map(Engine::fingerprint).collect();
        let before = prints.len();
        prints.sort();
        prints.dedup();
        // headline ∩ asmjs_set ∩ vintages share chrome/firefox at Y2019
        // (identical configurations fingerprint identically); everything
        // configured differently must differ.
        assert_eq!(prints.len(), before - 2, "{engines:?}");
        // Determinism: same configuration, same fingerprint.
        assert_eq!(Engine::Native.fingerprint(), Engine::Native.fingerprint());
    }

    #[test]
    fn one_io_benchmark_runs_on_all_headline_engines() -> Result<(), Error> {
        let b = spec::all(Size::Test)
            .into_iter()
            .find(|b| b.name == "401.bzip2")
            .unwrap();
        let mut checksums = Vec::new();
        for e in Engine::headline() {
            let r = run_one(&b, &e, AppendPolicy::Chunked4K)?;
            assert!(r.counters.instructions_retired > 0);
            assert!(r.kernel_syscalls > 0);
            assert!(!r.outputs[0].1.is_empty());
            checksums.push((r.checksum, r.outputs));
        }
        // Every engine agrees on checksum and output bytes (the cmp step).
        for w in checksums.windows(2) {
            assert_eq!(w[0], w[1]);
        }
        Ok(())
    }

    #[test]
    fn prepare_execute_split_matches_run_one() -> Result<(), Error> {
        let b = spec::all(Size::Test)
            .into_iter()
            .find(|b| b.name == "401.bzip2")
            .unwrap();
        let e = Engine::Jit(EngineProfile::chrome());
        let artifact = prepare(&b, &e)?;
        assert!(artifact.compile_cycles > 0);
        let split = execute(&b, &e, &artifact, AppendPolicy::Chunked4K)?;
        let fused = run_one(&b, &e, AppendPolicy::Chunked4K)?;
        assert_eq!(split, fused);
        // The artifact is reusable: a second execution is identical.
        let again = execute(&b, &e, &artifact, AppendPolicy::Chunked4K)?;
        assert_eq!(split, again);
        Ok(())
    }

    #[test]
    fn compile_cost_model_contrasts_aot_and_jit() -> Result<(), Error> {
        let b = spec::all(Size::Test)
            .into_iter()
            .find(|b| b.name == "401.bzip2")
            .unwrap();
        let native = prepare(&b, &Engine::Native)?;
        let jit = prepare(&b, &Engine::Jit(EngineProfile::chrome()))?;
        // Table 2's shape: the AOT pipeline is far more expensive than
        // the JIT, even though the JIT emits more code.
        assert!(native.compile_cycles > 3 * jit.compile_cycles);
        Ok(())
    }
}
