//! Engines under test and the single-run entry point.

use std::time::Instant;
use wasmperf_benchsuite::Benchmark;
use wasmperf_browsix::{AppendPolicy, Kernel};
use wasmperf_clanglite::CompileOptions;
use wasmperf_cpu::{Machine, PerfCounters};
use wasmperf_wasmjit::{EngineProfile, Tier};

/// An execution engine (compiler pipeline + runtime conventions).
#[derive(Debug, Clone, PartialEq)]
pub enum Engine {
    /// Clang-like native compilation.
    Native,
    /// Native with custom options (ablations).
    NativeWith(CompileOptions),
    /// A browser JIT profile (wasm or asm.js, any tier).
    Jit(EngineProfile),
}

impl Engine {
    /// Display name.
    pub fn name(&self) -> String {
        match self {
            Engine::Native => "native".to_string(),
            Engine::NativeWith(_) => "native-custom".to_string(),
            Engine::Jit(p) => p.name.clone(),
        }
    }

    /// The paper's engine set for the headline SPEC comparison.
    pub fn headline() -> Vec<Engine> {
        vec![
            Engine::Native,
            Engine::Jit(EngineProfile::chrome()),
            Engine::Jit(EngineProfile::firefox()),
        ]
    }

    /// Engines for the asm.js comparison (Figures 5/6).
    pub fn asmjs_set() -> Vec<Engine> {
        vec![
            Engine::Jit(EngineProfile::chrome()),
            Engine::Jit(EngineProfile::firefox()),
            Engine::Jit(EngineProfile::chrome_asmjs()),
            Engine::Jit(EngineProfile::firefox_asmjs()),
        ]
    }

    /// Tiered engines for the Figure 1 vintages.
    pub fn vintages() -> Vec<(u32, Vec<Engine>)> {
        let years = [(2017, Tier::Y2017), (2018, Tier::Y2018), (2019, Tier::Y2019)];
        years
            .into_iter()
            .map(|(y, t)| {
                (
                    y,
                    vec![
                        Engine::Jit(EngineProfile::chrome().at_tier(t)),
                        Engine::Jit(EngineProfile::firefox().at_tier(t)),
                    ],
                )
            })
            .collect()
    }
}

/// Result of one (benchmark, engine) execution.
#[derive(Debug, Clone)]
pub struct RunResult {
    /// Benchmark name.
    pub bench: String,
    /// Engine name.
    pub engine: String,
    /// The program's returned checksum.
    pub checksum: i32,
    /// Performance counters of the run.
    pub counters: PerfCounters,
    /// Kernel (Browsix) statistics.
    pub kernel_syscalls: u64,
    /// Output file contents, for cross-engine `cmp` validation.
    pub outputs: Vec<(String, Vec<u8>)>,
    /// Host-measured compile time in seconds (Table 2).
    pub compile_seconds: f64,
    /// Emitted machine-code bytes.
    pub code_bytes: u64,
}

/// Execution fuel: generous; runs are bounded by workload size.
const FUEL: u64 = 20_000_000_000;

/// Compiles and runs `bench` on `engine`, with inputs staged in a fresh
/// Browsix kernel using the given append policy.
pub fn run_one(
    bench: &Benchmark,
    engine: &Engine,
    policy: AppendPolicy,
) -> Result<RunResult, String> {
    let prog = wasmperf_cir::compile(&bench.source)
        .map_err(|e| format!("{}: {e}", bench.name))?;

    let (module, compile_seconds) = match engine {
        Engine::Native => {
            let t0 = Instant::now();
            let m = wasmperf_clanglite::compile(&prog, &CompileOptions::default());
            (m, t0.elapsed().as_secs_f64())
        }
        Engine::NativeWith(opts) => {
            let t0 = Instant::now();
            let m = wasmperf_clanglite::compile(&prog, opts);
            (m, t0.elapsed().as_secs_f64())
        }
        Engine::Jit(profile) => {
            // The wasm module ships to the browser; only JIT time counts
            // (the paper measures Chrome's compile time, not Emscripten's).
            let wasm = wasmperf_emcc::compile(&prog);
            wasmperf_wasm::validate(&wasm).map_err(|e| format!("{}: {e}", bench.name))?;
            let t0 = Instant::now();
            let out = wasmperf_wasmjit::compile(&wasm, profile)
                .map_err(|e| format!("{}: {e}", bench.name))?;
            (out.module, t0.elapsed().as_secs_f64())
        }
    };

    let mut kernel = Kernel::new(policy);
    for (path, data) in &bench.inputs {
        kernel
            .fs
            .write_all(path, data)
            .map_err(|e| format!("{}: staging {path}: {e:?}", bench.name))?;
    }

    let entry = module
        .entry
        .ok_or_else(|| format!("{}: no main", bench.name))?;
    let mut machine = Machine::new(&module, kernel);
    let out = machine
        .run(entry, &[], FUEL)
        .map_err(|e| format!("{} on {}: {e}", bench.name, engine.name()))?;

    let kernel = machine.into_host();
    let mut outputs = Vec::new();
    for path in &bench.outputs {
        let data = kernel
            .fs
            .read_all(path)
            .map_err(|e| format!("{}: output {path}: {e:?}", bench.name))?;
        outputs.push((path.clone(), data));
    }

    Ok(RunResult {
        bench: bench.name.to_string(),
        engine: engine.name(),
        checksum: out.ret as u32 as i32,
        counters: out.counters,
        kernel_syscalls: kernel.stats.syscalls,
        outputs,
        compile_seconds,
        code_bytes: module.code_bytes(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use wasmperf_benchsuite::{spec, Size};

    #[test]
    fn engines_have_distinct_names() {
        let names: Vec<String> = Engine::headline()
            .iter()
            .chain(Engine::asmjs_set().iter())
            .map(Engine::name)
            .collect();
        let mut dedup = names.clone();
        dedup.sort();
        dedup.dedup();
        // headline ∩ asmjs_set share chrome/firefox.
        assert!(dedup.len() >= 5, "{names:?}");
    }

    #[test]
    fn one_io_benchmark_runs_on_all_headline_engines() {
        let b = spec::all(Size::Test)
            .into_iter()
            .find(|b| b.name == "401.bzip2")
            .unwrap();
        let mut checksums = Vec::new();
        for e in Engine::headline() {
            let r = run_one(&b, &e, AppendPolicy::Chunked4K).expect("runs");
            assert!(r.counters.instructions_retired > 0);
            assert!(r.kernel_syscalls > 0);
            assert!(!r.outputs[0].1.is_empty());
            checksums.push((r.checksum, r.outputs));
        }
        // Every engine agrees on checksum and output bytes (the cmp step).
        for w in checksums.windows(2) {
            assert_eq!(w[0], w[1]);
        }
    }
}
