//! Session: cached, validated suite execution.

use crate::engine::{run_one_traced, Engine, RunResult};
use std::collections::HashMap;
use wasmperf_benchsuite::{Benchmark, Size};
use wasmperf_browsix::AppendPolicy;
use wasmperf_trace::{TraceConfig, TraceSession};

/// Runs (benchmark × engine) pairs at a fixed size, caching results and
/// validating cross-engine agreement (checksums and output files must be
/// identical — BROWSIX-SPEC's `cmp` step).
pub struct Session {
    /// Workload size for every run in this session.
    pub size: Size,
    /// What to collect on every run (default: nothing).
    trace_config: TraceConfig,
    cache: HashMap<(String, String), RunResult>,
    traces: HashMap<(String, String), TraceSession>,
    benches: HashMap<String, Benchmark>,
}

impl Session {
    /// Creates a session at `size`.
    pub fn new(size: Size) -> Session {
        let mut benches = HashMap::new();
        for b in wasmperf_benchsuite::all(size) {
            benches.insert(b.name.to_string(), b);
        }
        Session {
            size,
            trace_config: TraceConfig::off(),
            cache: HashMap::new(),
            traces: HashMap::new(),
            benches,
        }
    }

    /// This session with tracing enabled for every subsequent run.
    pub fn with_trace(mut self, config: TraceConfig) -> Session {
        self.trace_config = config;
        self
    }

    /// The trace collected for a completed (benchmark, engine) run, when
    /// tracing was enabled.
    pub fn trace(&self, bench: &str, engine: &Engine) -> Option<&TraceSession> {
        self.traces.get(&(bench.to_string(), engine.name()))
    }

    /// The benchmark definition for `name`.
    ///
    /// # Panics
    ///
    /// Panics if the benchmark does not exist.
    pub fn bench(&self, name: &str) -> &Benchmark {
        &self.benches[name]
    }

    /// Names of all SPEC-analog benchmarks, in paper order.
    pub fn spec_names(&self) -> Vec<String> {
        wasmperf_benchsuite::spec::all(self.size)
            .iter()
            .map(|b| b.name.to_string())
            .collect()
    }

    /// Names of all PolyBench kernels.
    pub fn polybench_names(&self) -> Vec<String> {
        wasmperf_benchsuite::polybench::all(self.size)
            .iter()
            .map(|b| b.name.to_string())
            .collect()
    }

    /// Runs (or returns the cached result for) one pair, validating that
    /// the checksum agrees with any previously-run engine on the same
    /// benchmark.
    pub fn run(&mut self, bench: &str, engine: &Engine) -> &RunResult {
        let key = (bench.to_string(), engine.name());
        if !self.cache.contains_key(&key) {
            let b = self
                .benches
                .get(bench)
                .unwrap_or_else(|| panic!("unknown benchmark {bench}"));
            let (r, trace) = run_one_traced(b, engine, AppendPolicy::Chunked4K, self.trace_config)
                .unwrap_or_else(|e| panic!("run failed: {e}"));
            if let Some(t) = trace {
                self.traces.insert(key.clone(), t);
            }
            // Validate against any prior engine's result for this bench.
            for ((b2, _), prior) in &self.cache {
                if b2 == bench {
                    assert_eq!(
                        prior.checksum, r.checksum,
                        "{bench}: checksum mismatch between {} and {}",
                        prior.engine, r.engine
                    );
                    assert_eq!(
                        prior.outputs, r.outputs,
                        "{bench}: output files differ between {} and {}",
                        prior.engine, r.engine
                    );
                    break;
                }
            }
            self.cache.insert(key.clone(), r);
        }
        &self.cache[&key]
    }

    /// Relative execution time of `engine` vs native for `bench`
    /// (total cycles including kernel time, as wall clock would measure).
    pub fn slowdown(&mut self, bench: &str, engine: &Engine) -> f64 {
        let native = self.run(bench, &Engine::Native).counters.total_cycles() as f64;
        let e = self.run(bench, engine).counters.total_cycles() as f64;
        e / native
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn caching_returns_identical_results() {
        let mut s = Session::new(Size::Test);
        let a = s.run("gemm", &Engine::Native).counters;
        let b = s.run("gemm", &Engine::Native).counters;
        assert_eq!(a, b);
    }

    #[test]
    fn slowdown_is_positive() {
        let mut s = Session::new(Size::Test);
        let sd = s.slowdown("gemm", &Engine::headline()[1].clone());
        assert!(sd > 0.5 && sd < 10.0, "{sd}");
    }
}
