//! Session: farm-backed, cached, validated suite execution.
//!
//! A `Session` is the front end of the benchmark farm. Experiments submit
//! *batches* of (benchmark, engine, append-policy) jobs; the session
//! resolves each job in this order:
//!
//! 1. **in-memory result cache** — already run in this session;
//! 2. **on-disk result store** (`--results DIR`) — recorded by a previous
//!    process; decoded, validated, and counted as *resumed*;
//! 3. **the worker pool** — executed on `jobs` threads, compiling through
//!    the content-addressed artifact cache so each (benchmark, engine)
//!    pair is compiled exactly once per process.
//!
//! Every result, wherever it came from, passes the cross-engine
//! validation step (checksums and output files must agree across engines
//! on the same source — BROWSIX-SPEC's `cmp`). Determinism holds by
//! construction: jobs are pure functions of their spec, the pool returns
//! outcomes in submission order, and validation state is updated in that
//! same order — so any worker count (and any cache/store state) renders
//! byte-identical reports.

use crate::engine::{execute, prepare, run_one_traced, Artifact, Engine, RunResult};
use crate::error::Error;
use crate::farm::{decode_result, encode_result, job_spec};
use std::collections::{HashMap, HashSet};
use std::path::Path;
use std::sync::{Arc, Mutex, PoisonError};
use wasmperf_benchsuite::{Benchmark, Size};
use wasmperf_browsix::AppendPolicy;
use wasmperf_farm::cache::CacheStats;
use wasmperf_farm::pool::{run_jobs, JobEvent};
use wasmperf_farm::{ArtifactCache, JobSpec, ResultStore};
use wasmperf_trace::{TraceConfig, TraceSession};

fn policy_tag(policy: AppendPolicy) -> u8 {
    match policy {
        AppendPolicy::ExactFit => 0,
        AppendPolicy::Chunked4K => 1,
    }
}

/// Farm activity counters for one session.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FarmStats {
    /// Jobs executed by this process's worker pool.
    pub executed: u64,
    /// Jobs skipped because the result store already held them.
    pub resumed: u64,
}

/// One pending unit of pool work.
struct Pending<'a> {
    spec: JobSpec,
    bench: &'a Benchmark,
    engine: &'a Engine,
    policy: AppendPolicy,
}

/// What the `cmp` step remembers about the first engine to produce a
/// result for a validation group: its name, checksum, and output files.
type ValidationRecord = (String, i32, Vec<(String, Vec<u8>)>);

/// Runs (benchmark × engine) jobs at a fixed size through the farm,
/// caching results and validating cross-engine agreement.
pub struct Session {
    /// Workload size for every run in this session.
    pub size: Size,
    /// What to collect on every run (default: nothing).
    trace_config: TraceConfig,
    /// Worker threads per batch (1 = serial).
    jobs: usize,
    /// Emit per-job progress lines on stderr.
    verbose: bool,
    artifacts: Arc<ArtifactCache<Artifact>>,
    store: Option<Arc<Mutex<ResultStore>>>,
    /// Completed results, by `JobSpec::key()`.
    results: HashMap<u64, RunResult>,
    /// First-seen (engine, checksum, outputs) per (source, policy), for
    /// the `cmp` validation step.
    validated: HashMap<(u64, u8), ValidationRecord>,
    traces: HashMap<(String, String), TraceSession>,
    benches: HashMap<String, Benchmark>,
    stats: FarmStats,
}

impl Session {
    /// Creates a serial (1-worker) session at `size`.
    pub fn new(size: Size) -> Session {
        let mut benches = HashMap::new();
        for b in wasmperf_benchsuite::all(size) {
            benches.insert(b.name.to_string(), b);
        }
        // Replay benchmarks come from the recordings directory
        // (`$WASMPERF_RECORDINGS` or `./recordings`); an absent directory
        // just means an empty replay suite.
        for b in wasmperf_benchsuite::replay::all(size) {
            benches.insert(b.name.to_string(), b);
        }
        Session {
            size,
            trace_config: TraceConfig::off(),
            jobs: 1,
            verbose: false,
            artifacts: Arc::new(ArtifactCache::new()),
            store: None,
            results: HashMap::new(),
            validated: HashMap::new(),
            traces: HashMap::new(),
            benches,
            stats: FarmStats::default(),
        }
    }

    /// This session with an `n`-worker pool (clamped to ≥ 1).
    pub fn with_jobs(mut self, n: usize) -> Session {
        self.jobs = n.max(1);
        self
    }

    /// This session backed by a persistent result store under `dir`
    /// (created if absent): completed jobs are recorded as they finish,
    /// and already-recorded jobs are never re-executed.
    pub fn with_results_dir(mut self, dir: &Path) -> Result<Session, Error> {
        let store = ResultStore::open(dir).map_err(|e| Error::Io {
            path: dir.display().to_string(),
            message: e.to_string(),
        })?;
        self.store = Some(Arc::new(Mutex::new(store)));
        Ok(self)
    }

    /// This session with per-job progress lines on stderr.
    pub fn with_progress(mut self) -> Session {
        self.verbose = true;
        self
    }

    /// This session with tracing enabled for every subsequent run.
    ///
    /// Traced jobs bypass the worker pool and artifact cache (the trace
    /// wants compile-stage spans from a real compile) and run serially;
    /// their `RunResult`s are still byte-identical to untraced ones.
    pub fn with_trace(mut self, config: TraceConfig) -> Session {
        self.trace_config = config;
        self
    }

    /// The trace collected for a completed (benchmark, engine) run, when
    /// tracing was enabled.
    pub fn trace(&self, bench: &str, engine: &Engine) -> Option<&TraceSession> {
        self.traces.get(&(bench.to_string(), engine.name()))
    }

    /// The benchmark definition for `name`.
    pub fn bench(&self, name: &str) -> Result<&Benchmark, Error> {
        self.benches
            .get(name)
            .ok_or_else(|| Error::MissingBenchmark {
                name: name.to_string(),
            })
    }

    /// Names of all SPEC-analog benchmarks, in paper order.
    pub fn spec_names(&self) -> Vec<String> {
        wasmperf_benchsuite::spec::all(self.size)
            .iter()
            .map(|b| b.name.to_string())
            .collect()
    }

    /// Names of all PolyBench kernels.
    pub fn polybench_names(&self) -> Vec<String> {
        wasmperf_benchsuite::polybench::all(self.size)
            .iter()
            .map(|b| b.name.to_string())
            .collect()
    }

    /// Names of the I/O-heavy benchmark class.
    pub fn io_names(&self) -> Vec<String> {
        wasmperf_benchsuite::io::all(self.size)
            .iter()
            .map(|b| b.name.to_string())
            .collect()
    }

    /// Names of the loaded replay benchmarks, sorted. Read from this
    /// session's registry (loaded once at construction), not the disk.
    pub fn replay_names(&self) -> Vec<String> {
        let mut names: Vec<String> = self
            .benches
            .values()
            .filter(|b| b.suite == wasmperf_benchsuite::Suite::Replay)
            .map(|b| b.name.clone())
            .collect();
        names.sort();
        names
    }

    /// The job spec a registry benchmark runs under.
    fn registry_spec(&self, bench: &str, engine: &Engine) -> Result<JobSpec, Error> {
        let b = self.bench(bench)?;
        Ok(job_spec(b, engine, self.size, AppendPolicy::Chunked4K, 0))
    }

    /// A measurement-noise seed keyed by the job's identity (benchmark
    /// content × engine configuration × trial), never by execution order —
    /// the farm's determinism guarantee extends to the ± columns.
    pub fn noise_seed(&self, bench: &str, engine: &Engine, salt: u64) -> Result<u64, Error> {
        Ok(self.registry_spec(bench, engine)?.seed(salt))
    }

    /// Submits the full (benchmark × engine) cross product to the farm,
    /// so subsequent [`Session::run`] lookups are cache hits. This is how
    /// experiments parallelize: declare the batch up front, render
    /// serially afterwards.
    pub fn ensure(&mut self, benches: &[String], engines: &[Engine]) -> Result<(), Error> {
        let mut jobs = Vec::with_capacity(benches.len() * engines.len());
        for name in benches {
            let b = self.bench(name)?.clone();
            for e in engines {
                jobs.push((b.clone(), e.clone(), AppendPolicy::Chunked4K));
            }
        }
        self.run_batch(&jobs)?;
        Ok(())
    }

    /// Runs (or returns the cached result for) one registry pair.
    pub fn run(&mut self, bench: &str, engine: &Engine) -> Result<&RunResult, Error> {
        let key = self.registry_spec(bench, engine)?.key();
        if !self.results.contains_key(&key) {
            let b = self.bench(bench)?.clone();
            self.run_batch(&[(b, engine.clone(), AppendPolicy::Chunked4K)])?;
        }
        Ok(&self.results[&key])
    }

    /// Runs (or returns the cached result for) one ad-hoc benchmark —
    /// the Figure 8 size sweep, the ablation stress programs — with full
    /// farm treatment: content-addressed (two `matmul`s with different
    /// sources never collide), artifact-cached, store-resumable.
    pub fn run_bench(
        &mut self,
        bench: &Benchmark,
        engine: &Engine,
        policy: AppendPolicy,
    ) -> Result<RunResult, Error> {
        Ok(self
            .run_batch(&[(bench.clone(), engine.clone(), policy)])?
            .remove(0))
    }

    /// Relative execution time of `engine` vs native for `bench`
    /// (total cycles including kernel time, as wall clock would measure).
    pub fn slowdown(&mut self, bench: &str, engine: &Engine) -> Result<f64, Error> {
        let native = self.run(bench, &Engine::Native)?.counters.total_cycles() as f64;
        let e = self.run(bench, engine)?.counters.total_cycles() as f64;
        Ok(e / native)
    }

    /// Artifact-cache counters (the "compiled exactly once" accounting).
    pub fn artifact_stats(&self) -> CacheStats {
        self.artifacts.stats()
    }

    /// The artifact cache itself (shared with worker threads).
    pub fn artifact_cache(&self) -> &Arc<ArtifactCache<Artifact>> {
        &self.artifacts
    }

    /// Executed/resumed counters.
    pub fn farm_stats(&self) -> FarmStats {
        self.stats
    }

    /// One-line activity summary for the end of a report run.
    pub fn farm_summary(&self) -> String {
        let a = self.artifact_stats();
        format!(
            "[farm] jobs: executed={} resumed={}; artifacts: built={} hits={}",
            self.stats.executed, self.stats.resumed, a.builds, a.hits
        )
    }

    /// Runs a batch of jobs through the farm. Results come back in
    /// submission order; every job also lands in the in-memory cache
    /// (and the result store, when configured).
    pub fn run_batch(
        &mut self,
        jobs: &[(Benchmark, Engine, AppendPolicy)],
    ) -> Result<Vec<RunResult>, Error> {
        let specs: Vec<JobSpec> = jobs
            .iter()
            .map(|(b, e, p)| job_spec(b, e, self.size, *p, 0))
            .collect();

        // Resolve what we can from memory and the store; queue the rest.
        let mut pending: Vec<Pending<'_>> = Vec::new();
        let mut queued: HashSet<u64> = HashSet::new();
        for ((bench, engine, policy), spec) in jobs.iter().zip(&specs) {
            let key = spec.key();
            if self.results.contains_key(&key) || queued.contains(&key) {
                continue;
            }
            let stored = self.store.as_ref().and_then(|s| {
                s.lock()
                    .unwrap_or_else(PoisonError::into_inner)
                    .get(key)
                    .cloned()
            });
            if let Some(payload) = stored {
                let r = decode_result(&payload)?;
                self.admit(spec, r)?;
                self.stats.resumed += 1;
                continue;
            }
            pending.push(Pending {
                spec: spec.clone(),
                bench,
                engine,
                policy: *policy,
            });
            queued.insert(key);
        }

        if !pending.is_empty() {
            if self.trace_config.is_off() {
                self.execute_pool(&pending)?;
            } else {
                self.execute_traced_serially(&pending)?;
            }
        }

        Ok(specs
            .iter()
            .map(|s| self.results[&s.key()].clone())
            .collect())
    }

    /// Runs pending jobs on the worker pool.
    fn execute_pool(&mut self, pending: &[Pending<'_>]) -> Result<(), Error> {
        let artifacts = Arc::clone(&self.artifacts);
        let store = self.store.clone();
        let runner = |p: &Pending<'_>| -> Result<RunResult, String> {
            let artifact = artifacts
                .get_or_build(p.spec.artifact_key(), || prepare(p.bench, p.engine))
                .map_err(|e| e.to_string())?;
            let result =
                execute(p.bench, p.engine, &artifact, p.policy).map_err(|e| e.to_string())?;
            // Record as soon as the job finishes, so an interrupted run
            // resumes from its last completed job, not its last batch.
            if let Some(store) = &store {
                store
                    .lock()
                    .unwrap_or_else(PoisonError::into_inner)
                    .record(p.spec.key(), &p.spec.label(), encode_result(&result))
                    .map_err(|e| format!("result store: {e}"))?;
            }
            Ok(result)
        };
        let progress = |e: JobEvent<'_>| {
            let status = if e.ok { "" } else { " FAILED" };
            eprintln!(
                "[farm w{}] {}/{} {}{status}",
                e.worker, e.completed, e.total, e.label
            );
        };
        let progress_fn: wasmperf_farm::pool::ProgressFn<'_> = &progress;
        let (outcomes, pool_stats) = run_jobs(
            pending,
            self.jobs,
            |p| p.spec.label(),
            runner,
            self.verbose.then_some(progress_fn),
        );

        let mut first_failure: Option<Error> = None;
        let failures = pool_stats.failures;
        for (p, outcome) in pending.iter().zip(outcomes) {
            match outcome {
                Ok(result) => {
                    self.admit(&p.spec, result)?;
                    self.stats.executed += 1;
                }
                Err(f) if first_failure.is_none() => {
                    first_failure = Some(Error::Job {
                        label: f.label,
                        message: f.message,
                        panicked: f.panicked,
                        other_failures: failures - 1,
                    });
                }
                Err(_) => {}
            }
        }
        match first_failure {
            Some(e) => Err(e),
            None => Ok(()),
        }
    }

    /// Runs pending jobs serially with tracing, collecting the traces.
    fn execute_traced_serially(&mut self, pending: &[Pending<'_>]) -> Result<(), Error> {
        for p in pending {
            let (result, trace) = run_one_traced(p.bench, p.engine, p.policy, self.trace_config)?;
            if let Some(t) = trace {
                self.traces
                    .insert((p.spec.bench.clone(), p.spec.engine.clone()), t);
            }
            if let Some(store) = &self.store {
                store
                    .lock()
                    .unwrap_or_else(PoisonError::into_inner)
                    .record(p.spec.key(), &p.spec.label(), encode_result(&result))
                    .map_err(|e| Error::Io {
                        path: "results.jsonl".into(),
                        message: e.to_string(),
                    })?;
            }
            self.admit(&p.spec, result)?;
            self.stats.executed += 1;
        }
        Ok(())
    }

    /// Validates a result against previously-admitted engines on the same
    /// source (the `cmp` step) and inserts it into the in-memory cache.
    fn admit(&mut self, spec: &JobSpec, result: RunResult) -> Result<(), Error> {
        let group = (spec.source_hash, policy_tag(spec.policy));
        match self.validated.get(&group) {
            None => {
                self.validated.insert(
                    group,
                    (
                        result.engine.clone(),
                        result.checksum,
                        result.outputs.clone(),
                    ),
                );
            }
            Some((prior_engine, checksum, outputs)) => {
                if result.checksum != *checksum {
                    return Err(Error::Mismatch {
                        bench: spec.bench.clone(),
                        engines: (prior_engine.clone(), result.engine.clone()),
                        what: "checksum".into(),
                    });
                }
                if result.outputs != *outputs {
                    return Err(Error::Mismatch {
                        bench: spec.bench.clone(),
                        engines: (prior_engine.clone(), result.engine.clone()),
                        what: "output files".into(),
                    });
                }
            }
        }
        self.results.insert(spec.key(), result);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn caching_returns_identical_results() -> Result<(), Error> {
        let mut s = Session::new(Size::Test);
        let a = s.run("gemm", &Engine::Native)?.counters;
        let b = s.run("gemm", &Engine::Native)?.counters;
        assert_eq!(a, b);
        // The second lookup was a pure cache hit.
        assert_eq!(s.farm_stats().executed, 1);
        Ok(())
    }

    #[test]
    fn slowdown_is_positive() -> Result<(), Error> {
        let mut s = Session::new(Size::Test);
        let sd = s.slowdown("gemm", &Engine::headline()[1].clone())?;
        assert!(sd > 0.5 && sd < 10.0, "{sd}");
        Ok(())
    }

    #[test]
    fn unknown_benchmark_is_an_error_not_a_panic() {
        let mut s = Session::new(Size::Test);
        let err = s.run("no-such-bench", &Engine::Native).unwrap_err();
        assert_eq!(
            err,
            Error::MissingBenchmark {
                name: "no-such-bench".into()
            }
        );
    }

    #[test]
    fn parallel_batch_matches_serial_lookups() -> Result<(), Error> {
        let engines = Engine::headline();
        let names: Vec<String> = vec!["gemm".into(), "bicg".into(), "2mm".into()];

        let mut serial = Session::new(Size::Test);
        let mut parallel = Session::new(Size::Test).with_jobs(4);
        parallel.ensure(&names, &engines)?;
        for name in &names {
            for e in &engines {
                let expected = serial.run(name, e)?.clone();
                assert_eq!(&expected, parallel.run(name, e)?);
            }
        }
        // The batch ran everything up front; rendering added no work.
        assert_eq!(
            parallel.farm_stats().executed,
            (names.len() * engines.len()) as u64
        );
        Ok(())
    }

    #[test]
    fn artifacts_compile_exactly_once_across_experiments() -> Result<(), Error> {
        let mut s = Session::new(Size::Test).with_jobs(3);
        let chrome = Engine::headline()[1].clone();
        s.run("gemm", &chrome)?;
        let after_first = s.artifact_stats();
        // A rerun, a different policy, and a direct artifact fetch all
        // reuse the same compiled module.
        s.run("gemm", &chrome)?;
        let gemm = s.bench("gemm")?.clone();
        s.run_bench(&gemm, &chrome, AppendPolicy::ExactFit)?;
        assert_eq!(s.artifact_stats().builds, after_first.builds);
        Ok(())
    }
}
