//! One function per paper table/figure, plus the ablations.
//!
//! Each experiment consumes a [`Session`] (results are cached across
//! experiments) and returns a rendered report section, or a structured
//! [`Error`] naming the job that failed. Experiments follow the farm's
//! two-phase shape: **declare** the whole (benchmark × engine) batch up
//! front — so a `--jobs N` session spreads it across N workers and the
//! artifact cache compiles each pair exactly once — then **render**
//! serially from the session's result cache. Rendering never blocks on
//! execution order, which is why the output is byte-identical at any
//! worker count. EXPERIMENTS.md in the repository root records the
//! paper-vs-measured comparison produced by running them all at
//! `Size::Ref`.

use crate::engine::Engine;
use crate::error::Error;
use crate::render::{pm, ratio, table};
use crate::session::Session;
use crate::stats::{geomean, mean, median, noisy_trials, stderr};
use wasmperf_browsix::AppendPolicy;
use wasmperf_clanglite::CompileOptions;
use wasmperf_cpu::PerfCounters;
use wasmperf_wasmjit::EngineProfile;

/// Simulated core frequency (the paper's Xeon E5-1650 v3 turbo bin).
pub const FREQ_HZ: f64 = 3.5e9;

/// Number of trials reported (the paper runs each benchmark 5 times).
pub const TRIALS: usize = 5;

fn chrome() -> Engine {
    Engine::Jit(EngineProfile::chrome())
}

fn firefox() -> Engine {
    Engine::Jit(EngineProfile::firefox())
}

/// Figure 1: number of PolyBenchC benchmarks within 1.1x/1.5x/2x/2.5x of
/// native, per engine vintage (best of Chrome/Firefox per kernel).
pub fn fig1(s: &mut Session) -> Result<String, Error> {
    let kernels = s.polybench_names();
    let mut all_engines = vec![Engine::Native];
    for (_, engines) in Engine::vintages() {
        all_engines.extend(engines);
    }
    s.ensure(&kernels, &all_engines)?;
    let mut rows = Vec::new();
    for (year, engines) in Engine::vintages() {
        let mut counts = [0u32; 4];
        for k in &kernels {
            let mut best = f64::INFINITY;
            for e in &engines {
                best = best.min(s.slowdown(k, e)?);
            }
            for (i, bound) in [1.1, 1.5, 2.0, 2.5].iter().enumerate() {
                if best < *bound {
                    counts[i] += 1;
                }
            }
        }
        rows.push(vec![
            year.to_string(),
            counts[0].to_string(),
            counts[1].to_string(),
            counts[2].to_string(),
            counts[3].to_string(),
        ]);
    }
    Ok(table(
        "Figure 1: # PolyBenchC kernels within Nx of native (best browser, by JIT vintage)",
        &["vintage", "<1.1x", "<1.5x", "<2x", "<2.5x"],
        &rows,
    ))
}

fn relative_time_figure(s: &mut Session, names: &[String], title: &str) -> Result<String, Error> {
    s.ensure(names, &[Engine::Native, chrome(), firefox()])?;
    let mut rows = Vec::new();
    let mut ch = Vec::new();
    let mut fx = Vec::new();
    for name in names {
        let c = s.slowdown(name, &chrome())?;
        let f = s.slowdown(name, &firefox())?;
        ch.push(c);
        fx.push(f);
        rows.push(vec![name.clone(), ratio(c), ratio(f)]);
    }
    rows.push(vec![
        "geomean".to_string(),
        ratio(geomean(&ch)),
        ratio(geomean(&fx)),
    ]);
    Ok(table(title, &["benchmark", "chrome", "firefox"], &rows))
}

/// Figure 3a: PolyBenchC relative execution time (native = 1.0).
pub fn fig3a(s: &mut Session) -> Result<String, Error> {
    let names = s.polybench_names();
    relative_time_figure(
        s,
        &names,
        "Figure 3a: PolyBenchC execution time relative to native",
    )
}

/// Figure 3b: SPEC relative execution time (native = 1.0).
pub fn fig3b(s: &mut Session) -> Result<String, Error> {
    let names = s.spec_names();
    relative_time_figure(
        s,
        &names,
        "Figure 3b: SPEC CPU execution time relative to native",
    )
}

/// Table 1: absolute SPEC execution times (seconds, mean ± stderr of 5
/// runs) and the geomean/median slowdowns. Noise seeds are keyed by the
/// job spec (benchmark content × engine config), never by loop index or
/// execution order, so the ± columns are identical at any `--jobs N`.
pub fn table1(s: &mut Session) -> Result<String, Error> {
    let names = s.spec_names();
    s.ensure(&names, &[Engine::Native, chrome(), firefox()])?;
    let mut rows = Vec::new();
    let mut ch = Vec::new();
    let mut fx = Vec::new();
    for name in names.iter() {
        let seconds = |s: &mut Session, e: &Engine| -> Result<(f64, f64), Error> {
            let t = s.run(name, e)?.counters.total_cycles() as f64 / FREQ_HZ;
            let trials = noisy_trials(t, TRIALS, s.noise_seed(name, e, 1)?);
            Ok((mean(&trials), stderr(&trials)))
        };
        let (nt, ne) = seconds(s, &Engine::Native)?;
        let (ct, ce) = seconds(s, &chrome())?;
        let (ft, fe) = seconds(s, &firefox())?;
        ch.push(ct / nt);
        fx.push(ft / nt);
        rows.push(vec![name.clone(), pm(nt, ne), pm(ct, ce), pm(ft, fe)]);
    }
    rows.push(vec![
        "slowdown: geomean".to_string(),
        "-".to_string(),
        ratio(geomean(&ch)),
        ratio(geomean(&fx)),
    ]);
    rows.push(vec![
        "slowdown: median".to_string(),
        "-".to_string(),
        ratio(median(&ch)),
        ratio(median(&fx)),
    ]);
    Ok(table(
        "Table 1: SPEC execution times (seconds, mean ± stderr of 5 runs)",
        &["benchmark", "native", "chrome", "firefox"],
        &rows,
    ))
}

/// Table 2: compile times — clanglite (AOT, graph coloring, unrolling)
/// vs the Chrome JIT (single pass, linear scan), from the deterministic
/// compile-cost model (`RunResult::compile_cycles`). The costs ride the
/// same cached/stored results as every other column, so the table is
/// byte-stable, resumable, and never triggers a recompile.
pub fn table2(s: &mut Session) -> Result<String, Error> {
    let names = s.spec_names();
    s.ensure(&names, &[Engine::Native, chrome()])?;
    let mut rows = Vec::new();
    for name in &names {
        let ms = |s: &mut Session, e: &Engine| -> Result<(f64, f64), Error> {
            let cycles = s.run(name, e)?.compile_cycles;
            let t = cycles as f64 / FREQ_HZ * 1e3;
            let trials = noisy_trials(t, TRIALS, s.noise_seed(name, e, 2)?);
            Ok((mean(&trials), stderr(&trials)))
        };
        let (nt, ne) = ms(s, &Engine::Native)?;
        let (jt, je) = ms(s, &chrome())?;
        rows.push(vec![name.clone(), pm(nt, ne), pm(jt, je)]);
    }
    Ok(table(
        "Table 2: compile times (modeled milliseconds, mean ± stderr of 5 runs)",
        &["benchmark", "clanglite (AOT)", "chrome JIT"],
        &rows,
    ))
}

/// Figure 4: percentage of total time spent in the Browsix kernel
/// (Firefox runs, as in the paper).
pub fn fig4(s: &mut Session) -> Result<String, Error> {
    let names = s.spec_names();
    s.ensure(&names, &[firefox()])?;
    let mut rows = Vec::new();
    let mut percents = Vec::new();
    for name in &names {
        let r = s.run(name, &firefox())?;
        let pct = r.counters.host_time_percent();
        let syscalls = r.kernel_syscalls;
        percents.push(pct);
        rows.push(vec![
            name.clone(),
            format!("{pct:.2}%"),
            syscalls.to_string(),
        ]);
    }
    rows.push(vec![
        "average".to_string(),
        format!("{:.2}%", mean(&percents)),
        "-".to_string(),
    ]);
    Ok(table(
        "Figure 4: time spent in BROWSIX-WASM syscalls (Firefox)",
        &["benchmark", "% of total time", "syscalls"],
        &rows,
    ))
}

/// Figure 5: asm.js execution time relative to WebAssembly, per browser.
pub fn fig5(s: &mut Session) -> Result<String, Error> {
    let names = s.spec_names();
    let engines = [
        chrome(),
        firefox(),
        Engine::Jit(EngineProfile::chrome_asmjs()),
        Engine::Jit(EngineProfile::firefox_asmjs()),
    ];
    s.ensure(&names, &engines)?;
    let mut rows = Vec::new();
    let (mut ch, mut fx) = (Vec::new(), Vec::new());
    for name in &names {
        let cw = s.run(name, &chrome())?.counters.total_cycles() as f64;
        let ca = s
            .run(name, &Engine::Jit(EngineProfile::chrome_asmjs()))?
            .counters
            .total_cycles() as f64;
        let fw = s.run(name, &firefox())?.counters.total_cycles() as f64;
        let fa = s
            .run(name, &Engine::Jit(EngineProfile::firefox_asmjs()))?
            .counters
            .total_cycles() as f64;
        ch.push(ca / cw);
        fx.push(fa / fw);
        rows.push(vec![name.clone(), ratio(ca / cw), ratio(fa / fw)]);
    }
    rows.push(vec![
        "geomean".to_string(),
        ratio(geomean(&ch)),
        ratio(geomean(&fx)),
    ]);
    Ok(table(
        "Figure 5: asm.js time relative to WebAssembly (wasm = 1.0)",
        &["benchmark", "chrome", "firefox"],
        &rows,
    ))
}

/// Figure 6: best asm.js time relative to best WebAssembly time.
pub fn fig6(s: &mut Session) -> Result<String, Error> {
    let names = s.spec_names();
    let wasm_engines = [chrome(), firefox()];
    let asm_engines = [
        Engine::Jit(EngineProfile::chrome_asmjs()),
        Engine::Jit(EngineProfile::firefox_asmjs()),
    ];
    s.ensure(
        &names,
        &[wasm_engines.as_slice(), asm_engines.as_slice()].concat(),
    )?;
    let mut rows = Vec::new();
    let mut ratios = Vec::new();
    for name in &names {
        let mut best = |engines: &[Engine]| -> Result<f64, Error> {
            let mut b = f64::INFINITY;
            for e in engines {
                b = b.min(s.run(name, e)?.counters.total_cycles() as f64);
            }
            Ok(b)
        };
        let wasm_best = best(&wasm_engines)?;
        let asm_best = best(&asm_engines)?;
        ratios.push(asm_best / wasm_best);
        rows.push(vec![name.clone(), ratio(asm_best / wasm_best)]);
    }
    rows.push(vec!["geomean".to_string(), ratio(geomean(&ratios))]);
    Ok(table(
        "Figure 6: best asm.js relative to best WebAssembly",
        &["benchmark", "best-asm.js / best-wasm"],
        &rows,
    ))
}

/// Figure 7: the matmul case study — disassembly of the native and
/// Chrome-JIT code for `matmul`.
pub fn fig7() -> Result<String, Error> {
    let src = "
const NI = 32; const NK = 36; const NJ = 40;
array i32 C[NI * NJ];
array i32 A[NI * NK];
array i32 B[NK * NJ];
fn matmul() {
    var i: i32 = 0; var k: i32 = 0; var j: i32 = 0;
    for (i = 0; i < NI; i += 1) {
        for (k = 0; k < NK; k += 1) {
            for (j = 0; j < NJ; j += 1) {
                C[i * NJ + j] += A[i * NK + k] * B[k * NJ + j];
            }
        }
    }
}
fn main() -> i32 { matmul(); return C[7]; }
";
    let compile_err = |message: String| Error::Compile {
        bench: "matmul".into(),
        message,
    };
    let prog = wasmperf_cir::compile(src).map_err(|e| compile_err(e.to_string()))?;
    // Match the paper's listing: no unrolling for the exposition.
    let native = wasmperf_clanglite::compile(
        &prog,
        &CompileOptions {
            unroll: false,
            ..CompileOptions::default()
        },
    );
    let wasm = wasmperf_emcc::compile(&prog);
    let jit = wasmperf_wasmjit::compile(&wasm, &EngineProfile::chrome())
        .map_err(|e| compile_err(format!("jit: {e:?}")))?;

    let pick = |m: &wasmperf_isa::Module, name: &str| -> Result<String, Error> {
        let id = m
            .func_by_name(name)
            .ok_or_else(|| compile_err(format!("function {name} missing from module")))?;
        Ok(wasmperf_isa::disasm::format_function(m.func(id)))
    };
    let native_asm = pick(&native, "matmul")?;
    let jit_asm = pick(&jit.module, "matmul")?;
    let count = |s: &str| s.lines().filter(|l| l.starts_with("    ")).count();
    Ok(format!(
        "Figure 7: matmul case study\n\n\
         (b) clanglite native code — {} instructions:\n{}\n\
         (c) chrome-JIT code — {} instructions:\n{}\n\
         The JIT code is larger, uses explicit address arithmetic instead of\n\
         scaled-index operands, spills to [rbp-...] slots, and begins with the\n\
         stack-overflow check.\n",
        count(&native_asm),
        native_asm,
        count(&jit_asm),
        jit_asm
    ))
}

/// The Figure 8 matmul source at one size point.
fn fig8_matmul_src(n: u32) -> String {
    format!(
        "const NI = {n}; const NK = {nk}; const NJ = {nj};
array i32 C[NI * NJ];
array i32 A[NI * NK];
array i32 B[NK * NJ];
fn main() -> i32 {{
    var i: i32 = 0; var k: i32 = 0; var j: i32 = 0;
    for (i = 0; i < NI * NK; i += 1) {{ A[i] = i % 7; }}
    for (i = 0; i < NK * NJ; i += 1) {{ B[i] = i % 5; }}
    for (i = 0; i < NI; i += 1) {{
        for (k = 0; k < NK; k += 1) {{
            for (j = 0; j < NJ; j += 1) {{
                C[i * NJ + j] += A[i * NK + k] * B[k * NJ + j];
            }}
        }}
    }}
    var cs: i32 = 0;
    for (i = 0; i < NI * NJ; i += 1) {{ cs = cs * 31 + C[i]; }}
    return cs;
}}",
        nk = n + n / 10,
        nj = n + n / 5
    )
}

/// Figure 8: matmul relative time across matrix sizes.
///
/// Every size point is a distinct ad-hoc benchmark — all *named* `matmul`,
/// all distinct to the farm, whose job identity is the content hash. The
/// whole sweep is submitted as one batch (3 engines × N sizes), and the
/// session's `cmp` validation replaces the old inline checksum asserts.
pub fn fig8(s: &mut Session, size_scale: &[u32]) -> Result<String, Error> {
    let engines = [Engine::Native, chrome(), firefox()];
    let mut jobs = Vec::new();
    for &n in size_scale {
        let b = wasmperf_benchsuite::Benchmark {
            name: "matmul".into(),
            suite: wasmperf_benchsuite::Suite::PolyBench,
            replay: None,
            source: fig8_matmul_src(n),
            inputs: vec![],
            outputs: vec![],
        };
        for e in &engines {
            jobs.push((b.clone(), e.clone(), AppendPolicy::Chunked4K));
        }
    }
    let results = s.run_batch(&jobs)?;

    let mut rows = Vec::new();
    for (i, &n) in size_scale.iter().enumerate() {
        let [native, c, f] = &results[3 * i..3 * i + 3] else {
            unreachable!("three engines per size point");
        };
        let nc = native.counters.total_cycles() as f64;
        rows.push(vec![
            format!("{n}x{}x{}", n + n / 10, n + n / 5),
            ratio(c.counters.total_cycles() as f64 / nc),
            ratio(f.counters.total_cycles() as f64 / nc),
        ]);
    }
    Ok(table(
        "Figure 8: matmul relative execution time by size (native = 1.0)",
        &["size (NIxNKxNJ)", "chrome", "firefox"],
        &rows,
    ))
}

/// A labelled counter column: display name and its extractor.
type CounterCol = (&'static str, fn(&PerfCounters) -> u64);

/// The six counters of Figure 9 plus Figure 10's icache misses.
const COUNTERS: [CounterCol; 7] = [
    ("all-loads-retired", |c| c.loads_retired),
    ("all-stores-retired", |c| c.stores_retired),
    ("branch-instructions-retired", |c| c.branches_retired),
    ("conditional-branches", |c| c.cond_branches_retired),
    ("instructions-retired", |c| c.instructions_retired),
    ("cpu-cycles", |c| c.total_cycles()),
    ("L1-icache-load-misses", |c| c.icache_misses),
];

/// Figure 9 (a–f): per-benchmark counter values relative to native.
pub fn fig9(s: &mut Session) -> Result<String, Error> {
    let names = s.spec_names();
    s.ensure(&names, &[Engine::Native, chrome(), firefox()])?;
    let mut out = String::new();
    for (label, get) in COUNTERS.iter().take(6) {
        let mut rows = Vec::new();
        let (mut ch, mut fx) = (Vec::new(), Vec::new());
        for name in &names {
            let n = get(&s.run(name, &Engine::Native)?.counters) as f64;
            let c = get(&s.run(name, &chrome())?.counters) as f64 / n;
            let f = get(&s.run(name, &firefox())?.counters) as f64 / n;
            ch.push(c);
            fx.push(f);
            rows.push(vec![name.clone(), ratio(c), ratio(f)]);
        }
        rows.push(vec![
            "geomean".to_string(),
            ratio(geomean(&ch)),
            ratio(geomean(&fx)),
        ]);
        out.push_str(&table(
            &format!("Figure 9: {label} relative to native"),
            &["benchmark", "chrome", "firefox"],
            &rows,
        ));
        out.push('\n');
    }
    Ok(out)
}

/// Figure 10: L1 icache load misses relative to native.
pub fn fig10(s: &mut Session) -> Result<String, Error> {
    let names = s.spec_names();
    s.ensure(&names, &[Engine::Native, chrome(), firefox()])?;
    let mut rows = Vec::new();
    let (mut ch, mut fx) = (Vec::new(), Vec::new());
    for name in &names {
        let n = (s.run(name, &Engine::Native)?.counters.icache_misses).max(1) as f64;
        let c = s.run(name, &chrome())?.counters.icache_misses as f64 / n;
        let f = s.run(name, &firefox())?.counters.icache_misses as f64 / n;
        ch.push(c.max(0.01));
        fx.push(f.max(0.01));
        rows.push(vec![name.clone(), ratio(c), ratio(f)]);
    }
    rows.push(vec![
        "geomean".to_string(),
        ratio(geomean(&ch)),
        ratio(geomean(&fx)),
    ]);
    Ok(table(
        "Figure 10: L1-icache-load-misses relative to native",
        &["benchmark", "chrome", "firefox"],
        &rows,
    ))
}

/// Table 3: the perf events used and what they diagnose.
pub fn table3() -> String {
    table(
        "Table 3: performance counters (perf event -> simulator counter)",
        &["perf event", "summary"],
        &[
            vec![
                "all-loads-retired (r81d0)".into(),
                "increased register pressure".into(),
            ],
            vec![
                "all-stores-retired (r82d0)".into(),
                "increased register pressure".into(),
            ],
            vec![
                "branches-retired (r00c4)".into(),
                "more branch statements".into(),
            ],
            vec![
                "conditional-branches (r01c4)".into(),
                "more branch statements".into(),
            ],
            vec![
                "instructions-retired (r1c0)".into(),
                "increased code size".into(),
            ],
            vec!["cpu-cycles".into(), "bottom line".into()],
            vec!["L1-icache-load-misses".into(), "increased code size".into()],
        ],
    )
}

/// Table 4: geomean counter increases over the SPEC suite.
pub fn table4(s: &mut Session) -> Result<String, Error> {
    let names = s.spec_names();
    s.ensure(&names, &[Engine::Native, chrome(), firefox()])?;
    let mut rows = Vec::new();
    for (label, get) in COUNTERS {
        let (mut ch, mut fx) = (Vec::new(), Vec::new());
        for name in &names {
            let n = get(&s.run(name, &Engine::Native)?.counters).max(1) as f64;
            ch.push((get(&s.run(name, &chrome())?.counters) as f64 / n).max(0.01));
            fx.push((get(&s.run(name, &firefox())?.counters) as f64 / n).max(0.01));
        }
        rows.push(vec![
            label.to_string(),
            ratio(geomean(&ch)),
            ratio(geomean(&fx)),
        ]);
    }
    Ok(table(
        "Table 4: geomean counter increases for SPEC under WebAssembly",
        &["performance counter", "chrome", "firefox"],
        &rows,
    ))
}

/// §4.2.1 / §4.1: Browsix overhead on PolyBench (no syscalls) and SPEC.
pub fn overhead(s: &mut Session) -> Result<String, Error> {
    let spec = s.spec_names();
    let poly = s.polybench_names();
    s.ensure(&[spec.clone(), poly.clone()].concat(), &[firefox()])?;
    let mut rows = Vec::new();
    let mut max_pct: f64 = 0.0;
    let mut all = Vec::new();
    for name in spec {
        let pct = s.run(&name, &firefox())?.counters.host_time_percent();
        max_pct = max_pct.max(pct);
        all.push(pct);
        rows.push(vec![name, format!("{pct:.2}%")]);
    }
    for name in poly {
        let pct = s.run(&name, &firefox())?.counters.host_time_percent();
        if pct != 0.0 {
            return Err(Error::Invariant {
                message: format!("PolyBench makes no syscalls, but {name} spent {pct}% in kernel"),
            });
        }
    }
    rows.push(vec!["mean (SPEC)".into(), format!("{:.2}%", mean(&all))]);
    rows.push(vec!["max (SPEC)".into(), format!("{max_pct:.2}%")]);
    rows.push(vec!["PolyBench (all)".into(), "0.00%".into()]);
    Ok(table(
        "BROWSIX-WASM overhead (kernel time as % of total)",
        &["benchmark", "% in kernel"],
        &rows,
    ))
}

/// §2 ablation: the BROWSERFS append pathology.
///
/// The paper reports that exact-fit reallocation cost 464.h264ref 25
/// seconds of kernel time, fixed by >=4 KiB growth. The h264 analog's
/// output is miniature, so this ablation uses a dedicated append-stress
/// program (the same 16-byte-append pattern at a realistic output size).
/// The two policy runs share one compiled artifact — policy is a staging
/// concern, not part of the artifact cache key.
pub fn ablation_browserfs(s: &mut Session) -> Result<String, Error> {
    let src = "
        array u8 row[16];
        array u8 path = \"/out.264\\0\";
        fn main() -> i32 {
            var i: i32 = 0;
            for (i = 0; i < 16; i += 1) { row[i] = i * 17; }
            var fd: i32 = syscall(5, path, 0x641, 0);
            var n: i32 = 0;
            for (n = 0; n < 24000; n += 1) { syscall(4, fd, row, 16); }
            syscall(6, fd);
            return n;
        }";
    let b = wasmperf_benchsuite::Benchmark {
        name: "h264-append-stress".into(),
        suite: wasmperf_benchsuite::Suite::Spec,
        replay: None,
        source: src.to_string(),
        inputs: vec![],
        outputs: vec!["/out.264".to_string()],
    };
    let mut rows = Vec::new();
    let mut cycles = Vec::new();
    for (policy, label) in [
        (AppendPolicy::ExactFit, "exact-fit (original BrowserFS)"),
        (AppendPolicy::Chunked4K, ">=4 KiB growth (the paper's fix)"),
    ] {
        let r = s.run_bench(&b, &firefox(), policy)?;
        cycles.push(r.counters.host_cycles as f64);
        rows.push(vec![
            label.to_string(),
            format!("{}", r.counters.host_cycles),
        ]);
    }
    rows.push(vec![
        "speedup from the fix".to_string(),
        ratio(cycles[0] / cycles[1]),
    ]);
    Ok(table(
        "Ablation: BROWSERFS append policy (24k x 16-byte appends, Firefox; \
the paper reports 464.h264ref kernel time dropping 25s -> 1.5s)",
        &["policy", "kernel cycles"],
        &rows,
    ))
}

/// Ablation: what each JIT safety mechanism costs (Chrome, SPEC geomean).
pub fn ablation_safety_checks(s: &mut Session) -> Result<String, Error> {
    let names = s.spec_names();
    let variants: Vec<(&str, EngineProfile)> = vec![
        ("full checks", EngineProfile::chrome()),
        (
            "no stack checks",
            EngineProfile {
                stack_check: false,
                ..EngineProfile::chrome()
            },
        ),
        (
            "no indirect-call checks",
            EngineProfile {
                indirect_checks: false,
                ..EngineProfile::chrome()
            },
        ),
        (
            "no checks at all",
            EngineProfile {
                stack_check: false,
                indirect_checks: false,
                ..EngineProfile::chrome()
            },
        ),
    ];
    // A call-dense microbenchmark where the per-call checks are visible
    // undiluted (SPEC-scale functions amortize them heavily).
    let micro = wasmperf_benchsuite::Benchmark {
        name: "call-dense-micro".into(),
        suite: wasmperf_benchsuite::Suite::Spec,
        replay: None,
        source: "
            fn leaf(x: i32) -> i32 { return x + 1; }
            fn main() -> i32 {
                var s: i32 = 0;
                var i: i32 = 0;
                for (i = 0; i < 300000; i += 1) { s = leaf(s) ^ i; }
                return s;
            }"
        .to_string(),
        inputs: vec![],
        outputs: vec![],
    };

    // Declare the whole grid: (SPEC ∪ micro) × (native ∪ every variant).
    let mut variant_engines = vec![Engine::Native];
    for (_, profile) in &variants {
        variant_engines.push(Engine::Jit(profile.clone()));
    }
    let mut jobs = vec![];
    for e in &variant_engines {
        jobs.push((micro.clone(), e.clone(), AppendPolicy::Chunked4K));
        for name in &names {
            jobs.push((s.bench(name)?.clone(), e.clone(), AppendPolicy::Chunked4K));
        }
    }
    s.run_batch(&jobs)?;

    let micro_native = s
        .run_bench(&micro, &Engine::Native, AppendPolicy::Chunked4K)?
        .counters
        .total_cycles() as f64;
    let mut rows = Vec::new();
    for (label, profile) in variants {
        let engine = Engine::Jit(profile);
        let mut slowdowns = Vec::new();
        let mut gobmk = 0.0;
        for name in &names {
            let native = s.run(name, &Engine::Native)?.counters.total_cycles() as f64;
            let b = s.bench(name)?.clone();
            let r = s.run_bench(&b, &engine, AppendPolicy::Chunked4K)?;
            let sd = r.counters.total_cycles() as f64 / native;
            if name == "445.gobmk" {
                gobmk = sd;
            }
            slowdowns.push(sd);
        }
        let micro_sd = s
            .run_bench(&micro, &engine, AppendPolicy::Chunked4K)?
            .counters
            .total_cycles() as f64
            / micro_native;
        rows.push(vec![
            label.to_string(),
            format!("{:.3}x", geomean(&slowdowns)),
            format!("{gobmk:.3}x"),
            format!("{micro_sd:.3}x"),
        ]);
    }
    Ok(table(
        "Ablation: JIT safety checks (Chrome profile, slowdown vs native)",
        &[
            "configuration",
            "SPEC geomean",
            "445.gobmk (call-heavy)",
            "call-dense micro",
        ],
        &rows,
    ))
}

/// Ablation: what the browsers' reserved registers cost (§6.1.1): the
/// Chrome JIT run with its real 8-register pool vs. a hypothetical
/// no-reservations 11-register pool.
pub fn ablation_reserved_regs(s: &mut Session) -> Result<String, Error> {
    let names = s.spec_names();
    // The hypothetical pool returns r10/r13 to the allocator; rbx stays
    // pinned as the wasm memory base (it cannot be freed without changing
    // the memory-access convention).
    let mut wide = wasmperf_regalloc::AllocProfile::native();
    wide.int_pool.retain(|r| *r != wasmperf_isa::Reg::Rbx);
    wide.callee_saved.remove(wasmperf_isa::Reg::Rbx);
    let full_pool = EngineProfile {
        alloc: wide,
        ..EngineProfile::chrome()
    };
    let variants: Vec<(&str, EngineProfile)> = vec![
        (
            "chrome pool (8 regs: rbx/r10/r13 reserved)",
            EngineProfile::chrome(),
        ),
        ("no GC-root/scratch reservations (10 regs)", full_pool),
    ];
    let mut engines = vec![Engine::Native];
    for (_, profile) in &variants {
        engines.push(Engine::Jit(profile.clone()));
    }
    s.ensure(&names, &engines)?;
    let mut rows = Vec::new();
    for (label, profile) in variants {
        let engine = Engine::Jit(profile);
        let mut slowdowns = Vec::new();
        let mut spills_total = 0u64;
        for name in &names {
            let native = s.run(name, &Engine::Native)?.counters.total_cycles() as f64;
            let r = s.run(name, &engine)?.clone();
            spills_total += r.counters.stores_retired;
            slowdowns.push(r.counters.total_cycles() as f64 / native);
        }
        rows.push(vec![
            label.to_string(),
            format!("{:.3}x", geomean(&slowdowns)),
            spills_total.to_string(),
        ]);
    }
    Ok(table(
        "Ablation: reserved registers (Chrome JIT, SPEC geomean slowdown vs native)",
        &["register pool", "geomean slowdown", "total stores retired"],
        &rows,
    ))
}

/// Ablation: native codegen features turned off one at a time.
pub fn ablation_native_codegen(s: &mut Session) -> Result<String, Error> {
    let names = s.spec_names();
    let variants: Vec<(&str, CompileOptions)> = vec![
        ("full (-O2-like)", CompileOptions::default()),
        (
            "no addressing-mode fusion",
            CompileOptions {
                fuse_addressing: false,
                ..CompileOptions::default()
            },
        ),
        (
            "no loop inversion",
            CompileOptions {
                invert_loops: false,
                ..CompileOptions::default()
            },
        ),
        (
            "no unrolling",
            CompileOptions {
                unroll: false,
                ..CompileOptions::default()
            },
        ),
    ];
    let mut engines = vec![Engine::Native];
    for (_, opts) in &variants {
        engines.push(Engine::NativeWith(opts.clone()));
    }
    s.ensure(&names, &engines)?;
    let mut rows = Vec::new();
    for (label, opts) in variants {
        let engine = Engine::NativeWith(opts);
        let mut cycles = Vec::new();
        for name in &names {
            let r = s.run(name, &engine)?.counters.total_cycles() as f64;
            let base = s.run(name, &Engine::Native)?.counters.total_cycles() as f64;
            cycles.push(r / base);
        }
        rows.push(vec![label.to_string(), ratio(geomean(&cycles))]);
    }
    Ok(table(
        "Ablation: clanglite codegen features (SPEC geomean cycles vs full)",
        &["configuration", "relative cycles"],
        &rows,
    ))
}

/// The matmul source used by the observability demo: self-checksumming,
/// no file I/O, so the whole profile is user code.
pub fn trace_matmul_bench(n: u32) -> wasmperf_benchsuite::Benchmark {
    let src = format!(
        "const NI = {n}; const NK = {nk}; const NJ = {nj};
array i32 C[NI * NJ];
array i32 A[NI * NK];
array i32 B[NK * NJ];
fn matmul() {{
    var i: i32 = 0; var k: i32 = 0; var j: i32 = 0;
    for (i = 0; i < NI; i += 1) {{
        for (k = 0; k < NK; k += 1) {{
            for (j = 0; j < NJ; j += 1) {{
                C[i * NJ + j] += A[i * NK + k] * B[k * NJ + j];
            }}
        }}
    }}
}}
fn main() -> i32 {{
    var i: i32 = 0;
    for (i = 0; i < NI * NK; i += 1) {{ A[i] = i % 7; }}
    for (i = 0; i < NK * NJ; i += 1) {{ B[i] = i % 5; }}
    matmul();
    var cs: i32 = 0;
    for (i = 0; i < NI * NJ; i += 1) {{ cs = cs * 31 + C[i]; }}
    return cs;
}}",
        nk = n + n / 10,
        nj = n + n / 5
    );
    wasmperf_benchsuite::Benchmark {
        name: "matmul".into(),
        suite: wasmperf_benchsuite::Suite::PolyBench,
        replay: None,
        source: src,
        inputs: vec![],
        outputs: vec![],
    }
}

/// The wasmperf-prof report (`report --syscalls`): the aggregated
/// per-syscall table and three-way cycle attribution for every I/O-class
/// benchmark plus one compute kernel, on all four standard pipelines.
///
/// Runs are traced (strace only) and serial — they never touch the farm
/// pool or the results store, so the output is byte-identical at any
/// `--jobs` value and across repeated invocations. Each section's cycle
/// column is checked against the run's kernel `host_cycles` before
/// rendering; a mismatch is an invariant error naming the benchmark,
/// engine, and every profiled syscall's cycle split — not a wrong table.
/// `filter` restricts the benchmark set by name substring; `None` (and a
/// matching-everything filter) renders the exact full report.
pub fn syscalls_report(
    size: wasmperf_benchsuite::Size,
    filter: Option<&str>,
) -> Result<String, Error> {
    use crate::engine::run_one_traced;
    use wasmperf_trace::{SyscallProfile, TraceConfig};

    let config = TraceConfig {
        strace: true,
        profile: false,
        spans: false,
    };
    let engines = [
        Engine::Native,
        chrome(),
        firefox(),
        Engine::Jit(EngineProfile::chrome_asmjs()),
    ];
    let mut benches = wasmperf_benchsuite::io::all(size);
    benches.push(
        wasmperf_benchsuite::spec::all(size)
            .into_iter()
            .find(|b| b.name == "401.bzip2")
            .ok_or(Error::MissingBenchmark {
                name: "401.bzip2".into(),
            })?,
    );
    if let Some(f) = filter {
        benches.retain(|b| b.name.contains(f));
    }

    let mut out = String::from("wasmperf-prof: per-syscall kernel profile and cycle attribution\n");
    for b in &benches {
        for engine in &engines {
            let (r, trace) = run_one_traced(b, engine, AppendPolicy::Chunked4K, config)?;
            let log = trace
                .as_ref()
                .and_then(|t| t.strace.as_ref())
                .ok_or(Error::Invariant {
                    message: "strace was on but no log came back".into(),
                })?;
            let profile = SyscallProfile::from_log(log);
            if profile.total_cycles() != r.counters.host_cycles {
                // Name the run AND each syscall's contribution: a bare
                // total is useless for locating which charge drifted.
                let mut detail = String::new();
                for st in &profile.stats {
                    detail.push_str(&format!(
                        "\n  {} on {}: syscall {}: calls={} cycles={} (transport={} service={} fs_copy={})",
                        b.name,
                        r.engine,
                        st.name,
                        st.calls,
                        st.split.total(),
                        st.split.transport,
                        st.split.service,
                        st.split.fs_copy,
                    ));
                }
                return Err(Error::Invariant {
                    message: format!(
                        "{} on {}: profile cycles {} != host_cycles {}{detail}",
                        b.name,
                        r.engine,
                        profile.total_cycles(),
                        r.counters.host_cycles
                    ),
                });
            }
            out.push_str(&format!(
                "\n== {} x {} (checksum {}) ==\n{}{}",
                b.name,
                r.engine,
                r.checksum,
                profile.render(),
                profile
                    .attribution(r.counters.cycles, r.compile_cycles)
                    .render()
            ));
        }
    }
    Ok(out)
}

/// The replay report (`report replay`): every recording in the
/// recordings directory (`$WASMPERF_RECORDINGS` or `./recordings`),
/// replayed as a standalone benchmark on all four standard pipelines
/// through the farm. The replay kernel answers each syscall from the
/// recording while charging the recorded cycle splits, so the kernel
/// columns are identical across engines by construction — the table
/// shows what *does* differ: user-code cycles, and the slowdown vs
/// native. `filter` restricts by benchmark-name substring.
pub fn replay_report(s: &mut Session, filter: Option<&str>) -> Result<String, Error> {
    let mut names = s.replay_names();
    if let Some(f) = filter {
        names.retain(|n| n.contains(f));
    }
    if names.is_empty() {
        return Ok(
            "replay: no recordings found (checked $WASMPERF_RECORDINGS, then ./recordings)\n"
                .to_string(),
        );
    }
    let engines = [
        Engine::Native,
        chrome(),
        firefox(),
        Engine::Jit(EngineProfile::chrome_asmjs()),
    ];
    s.ensure(&names, &engines)?;
    let mut rows = Vec::new();
    for name in &names {
        let native_cycles = s.run(name, &Engine::Native)?.counters.total_cycles() as f64;
        for e in &engines {
            let r = s.run(name, e)?.clone();
            rows.push(vec![
                name.clone(),
                r.engine.clone(),
                r.checksum.to_string(),
                r.kernel_syscalls.to_string(),
                r.counters.host_cycles.to_string(),
                r.counters.total_cycles().to_string(),
                ratio(r.counters.total_cycles() as f64 / native_cycles),
            ]);
        }
    }
    Ok(table(
        "Replay: recorded workloads re-executed on every pipeline",
        &[
            "recording",
            "engine",
            "checksum",
            "syscalls",
            "kernel cyc",
            "total cyc",
            "vs native",
        ],
        &rows,
    ))
}

/// The observability demo (`report --trace <dir>`): traced matmul runs on
/// native and Chrome-JIT (perf-report + annotate + Chrome trace JSON +
/// JSONL) and a traced SPEC-analog run (strace log + per-class summary),
/// written as files under `dir`.
///
/// Traced runs execute serially and off the artifact cache on purpose:
/// the trace wants compile-stage spans from a real compile, and span
/// timestamps are per-run state that cannot be shared.
pub fn trace_demo(dir: &std::path::Path, size: wasmperf_benchsuite::Size) -> Result<String, Error> {
    use crate::engine::run_one_traced;
    use wasmperf_trace::TraceConfig;

    let io_err = |e: std::io::Error| Error::Io {
        path: dir.display().to_string(),
        message: e.to_string(),
    };
    std::fs::create_dir_all(dir).map_err(io_err)?;
    let mut out = String::new();
    let write = |name: &str, data: &str| {
        std::fs::write(dir.join(name), data).map_err(|e| Error::Io {
            path: dir.join(name).display().to_string(),
            message: e.to_string(),
        })
    };

    let b = trace_matmul_bench(32);
    for engine in [Engine::Native, chrome()] {
        let (r, trace) = run_one_traced(&b, &engine, AppendPolicy::Chunked4K, TraceConfig::full())?;
        let t = trace.ok_or(Error::Invariant {
            message: "tracing was on but no trace came back".into(),
        })?;
        let tag = r.engine.clone();
        write(&format!("matmul-{tag}.trace.json"), &t.chrome_trace())?;
        write(&format!("matmul-{tag}.jsonl"), &t.jsonl())?;
        let report = format!("{}\n{}", t.perf_report(), t.annotate_hottest(1));
        write(&format!("matmul-{tag}.perf.txt"), &report)?;
        out.push_str(&format!(
            "== matmul on {tag}: checksum {} ==\n{}\n",
            r.checksum,
            t.perf_report()
        ));
    }

    // One SPEC-analog with real file I/O for the strace side.
    let spec = wasmperf_benchsuite::spec::all(size)
        .into_iter()
        .find(|b| b.name == "401.bzip2")
        .ok_or(Error::MissingBenchmark {
            name: "401.bzip2".into(),
        })?;
    let (r, trace) = run_one_traced(
        &spec,
        &Engine::Native,
        AppendPolicy::Chunked4K,
        TraceConfig::full(),
    )?;
    let t = trace.ok_or(Error::Invariant {
        message: "tracing was on but no trace came back".into(),
    })?;
    write(
        "401.bzip2-native.strace.txt",
        &format!("{}\n{}", t.strace_text(), t.strace_summary()),
    )?;
    write("401.bzip2-native.trace.json", &t.chrome_trace())?;
    let kernel_cycles = t
        .strace
        .as_ref()
        .map_or(0, wasmperf_trace::StraceLog::total_cycles);
    out.push_str(&format!(
        "== 401.bzip2 on native: {} syscalls, kernel cycles {} (host_cycles {}) ==\n{}\n",
        t.strace.as_ref().map_or(0, |l| l.records.len()),
        kernel_cycles,
        r.counters.host_cycles,
        t.strace_summary()
    ));

    out.push_str(&format!("trace artifacts written to {}\n", dir.display()));
    Ok(out)
}

/// The sandboxing-cost ablation matrix: for every benchmark in the
/// SPEC, PolyBench, and I/O classes, the cost of each heap-protection
/// strategy (explicit bounds checks, guard pages, PKU domain switching)
/// relative to the guard-page baseline and to native. All three
/// strategies are result-identical — `Session::admit` rejects any run
/// whose checksum or output bytes differ from the other engines on the
/// same source — so the matrix isolates pure protection cost, the
/// quantity the source paper could not measure (docs/SANDBOX.md).
///
/// `filter` restricts the matrix to benchmarks whose name contains the
/// substring; classes left empty are skipped entirely (no geomean over
/// an empty set). `None` renders the exact full matrix.
pub fn sandbox(s: &mut Session, filter: Option<&str>) -> Result<String, Error> {
    let mut classes: Vec<(&str, Vec<String>)> = vec![
        ("SPEC", s.spec_names()),
        ("PolyBench", s.polybench_names()),
        ("I/O", s.io_names()),
    ];
    if let Some(f) = filter {
        for (_, names) in &mut classes {
            names.retain(|n| n.contains(f));
        }
        classes.retain(|(_, names)| !names.is_empty());
        if classes.is_empty() {
            return Err(Error::MissingBenchmark {
                name: format!("no benchmark matches --filter {f}"),
            });
        }
    }
    let engines = Engine::sandbox_set();
    let all_names: Vec<String> = classes.iter().flat_map(|(_, n)| n.clone()).collect();
    s.ensure(&all_names, &engines)?;

    let guard = &engines[1];
    let bounds = &engines[2];
    let pku = &engines[3];
    let mut rows = Vec::new();
    let mut out = String::new();
    for (class, names) in &classes {
        let mut guard_sd = Vec::new();
        let mut bounds_ov = Vec::new();
        let mut pku_ov = Vec::new();
        for name in names {
            let native = s.run(name, &Engine::Native)?.counters.total_cycles() as f64;
            let g = s.run(name, guard)?.counters.total_cycles() as f64;
            let b = s.run(name, bounds)?.counters.total_cycles() as f64;
            let p = s.run(name, pku)?.counters.total_cycles() as f64;
            guard_sd.push(g / native);
            bounds_ov.push(b / g);
            pku_ov.push(p / g);
            rows.push(vec![
                class.to_string(),
                name.clone(),
                format!("{:.3}x", g / native),
                format!("{:.3}x", b / native),
                format!("{:.3}x", p / native),
                format!("{:.3}x", b / g),
                format!("{:.3}x", p / g),
            ]);
        }
        out.push_str(&format!(
            "{class} geomean: guard {:.3}x native, bounds +{:.1}% over guard, pku +{:.1}% over guard\n",
            geomean(&guard_sd),
            (geomean(&bounds_ov) - 1.0) * 100.0,
            (geomean(&pku_ov) - 1.0) * 100.0,
        ));
    }
    let rendered = table(
        "Sandboxing-cost ablation (Chrome profile): bounds checks vs guard pages vs PKU",
        &[
            "class",
            "benchmark",
            "guard/nat",
            "bounds/nat",
            "pku/nat",
            "bounds/guard",
            "pku/guard",
        ],
        &rows,
    );
    Ok(format!("{rendered}{out}"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use wasmperf_benchsuite::Size;

    #[test]
    fn fig7_listings_show_the_papers_contrast() {
        let out = fig7().expect("fig7 renders");
        assert!(out.contains("clanglite native code"));
        assert!(out.contains("chrome-JIT code"));
        // Native fuses the accumulate into memory.
        assert!(out.contains("add ["), "{out}");
        // The JIT checks the stack and spills to rbp slots.
        assert!(out.contains("cmp rsp"), "{out}");
    }

    #[test]
    fn table3_is_static() {
        let t = table3();
        assert!(t.contains("all-loads-retired"));
        assert!(t.contains("L1-icache-load-misses"));
    }

    #[test]
    fn fig8_small_sweep_runs() -> Result<(), Error> {
        let mut s = Session::new(Size::Test).with_jobs(2);
        let out = fig8(&mut s, &[20, 30])?;
        assert!(out.contains("20x22x24"), "{out}");
        assert!(out.lines().count() >= 5);
        // Two size points are two distinct sources sharing the name
        // "matmul": the farm must have built 3 engines x 2 sources.
        assert_eq!(s.artifact_stats().builds, 6);
        Ok(())
    }

    #[test]
    fn sandbox_filter_restricts_the_matrix_and_skips_empty_classes() -> Result<(), Error> {
        let mut s = Session::new(Size::Test).with_jobs(2);
        let out = sandbox(&mut s, Some("gemm"))?;
        // Only the PolyBench class has a benchmark named "gemm"; the
        // SPEC and I/O classes are skipped, not rendered as empty
        // geomeans.
        assert!(out.contains("| PolyBench | gemm "), "{out}");
        assert!(out.contains("PolyBench geomean:"), "{out}");
        assert!(!out.contains("SPEC geomean:"), "{out}");
        assert!(!out.contains("I/O geomean:"), "{out}");
        assert!(!out.contains("2mm"), "{out}");

        let err = sandbox(&mut s, Some("no-such-benchmark")).unwrap_err();
        assert!(err.to_string().contains("no benchmark matches"), "{err}");
        Ok(())
    }

    #[test]
    fn stats_pipeline_on_one_benchmark() -> Result<(), Error> {
        // A miniature end-to-end: gemm through fig3a-style math.
        let mut s = Session::new(Size::Test);
        let c = s.slowdown("gemm", &chrome())?;
        let f = s.slowdown("gemm", &firefox())?;
        assert!(c > 0.8 && c < 6.0, "chrome {c}");
        assert!(f > 0.8 && f < 6.0, "firefox {f}");
        Ok(())
    }
}
