//! clanglite: the Clang-analog ahead-of-time native compiler.
//!
//! Compiles CLite HIR to simulated x86-64 with the code-generation
//! properties the paper credits for native code's advantage (§5, §6):
//!
//! - **graph-coloring register allocation** over the full register pool
//!   (`wasmperf-regalloc`'s coloring allocator with the native profile);
//! - **addressing-mode selection**: array accesses compile to
//!   `[base + index*scale + disp]` operands, loads fuse into ALU operands
//!   (`add eax, [rdi + rcx*4 + 4400]`), and read-modify-write statements
//!   fuse into memory-destination ALU ops (`add [mem], ebx` — Figure 7b
//!   line 14);
//! - **loop inversion**: one conditional branch per iteration, testing at
//!   the bottom (Figure 7b);
//! - **loop unrolling** of small innermost loop bodies (the `-O2` habit
//!   that trades code size for branch reduction — the mechanism behind the
//!   paper's 429.mcf I-cache anomaly, where native code outgrows L1i);
//! - constant folding and local two-address reuse (`i = i + 1` compiles to
//!   a single `add` on the local's register);
//! - **no dynamic safety checks**: no stack-overflow probes, no
//!   indirect-call signature checks.
//!
//! Compilation is deliberately the *slow, thorough* pipeline (Table 2 of
//! the paper contrasts Clang's compile time against the JITs').

use wasmperf_cir::hir::{HBinOp, HExpr, HFunc, HProgram, HStmt, HTy, HUnOp, MemWidth};
use wasmperf_isa::{AluOp, Cc, FPrec, Module, RoundMode, Width};
use wasmperf_regalloc::lir::{FLoc, FOpnd, LBlock};
use wasmperf_regalloc::{
    allocate_coloring, emit_function, AllocProfile, Arg, BlockId, LFunc, LInst, LMem, Loc, Opnd,
    RetVal, VClass,
};

/// Compilation options (each is an ablation knob; see DESIGN.md §4).
#[derive(Debug, Clone, PartialEq)]
pub struct CompileOptions {
    /// Fold loads into ALU memory operands and RMW stores into
    /// memory-destination ALU ops.
    pub fuse_addressing: bool,
    /// Invert loops (bottom-tested, one branch per iteration).
    pub invert_loops: bool,
    /// Unroll small innermost loops.
    pub unroll: bool,
    /// Unroll factor.
    pub unroll_factor: usize,
    /// Maximum HIR node count of a body eligible for unrolling.
    pub unroll_max_body: usize,
    /// Fold constant expressions.
    pub fold_constants: bool,
}

impl Default for CompileOptions {
    fn default() -> Self {
        CompileOptions {
            fuse_addressing: true,
            invert_loops: true,
            unroll: true,
            unroll_factor: 2,
            unroll_max_body: 40,
            fold_constants: true,
        }
    }
}

fn width(ty: HTy) -> Width {
    match ty {
        HTy::I32 => Width::W32,
        HTy::I64 => Width::W64,
        HTy::F32 => Width::W32,
        HTy::F64 => Width::W64,
    }
}

fn prec(ty: HTy) -> FPrec {
    match ty {
        HTy::F32 => FPrec::F32,
        _ => FPrec::F64,
    }
}

fn mw(w: MemWidth) -> Width {
    match w {
        MemWidth::W8 => Width::W8,
        MemWidth::W16 => Width::W16,
        MemWidth::W32 => Width::W32,
        MemWidth::W64 => Width::W64,
    }
}

/// Condition code for an integer comparison operator.
fn int_cc(op: HBinOp) -> Cc {
    match op {
        HBinOp::Eq => Cc::E,
        HBinOp::Ne => Cc::Ne,
        HBinOp::LtS => Cc::L,
        HBinOp::LtU => Cc::B,
        HBinOp::GtS => Cc::G,
        HBinOp::GtU => Cc::A,
        HBinOp::LeS => Cc::Le,
        HBinOp::LeU => Cc::Be,
        HBinOp::GeS => Cc::Ge,
        HBinOp::GeU => Cc::Ae,
        other => unreachable!("not a comparison: {other:?}"),
    }
}

/// How to repair a `ucomis`-based equality test for unordered inputs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum ParityFix {
    /// `==`: ZF is also set for unordered, so AND with !PF.
    AndNotParity,
    /// `!=`: NaN != NaN must be true, so OR with PF.
    OrParity,
}

/// Condition for a float comparison via `ucomis`: the condition code,
/// whether the operands must be swapped, and an optional parity fixup.
///
/// `ucomis` sets ZF=PF=CF=1 for unordered operands, so the naive
/// below/below-equal codes would come out true when a NaN is involved.
/// Lt/Le therefore compare with swapped operands and test
/// above/above-equal (false on unordered — IEEE semantics), the way
/// clang compiles them, and Eq/Ne carry an explicit parity fixup.
fn float_cc(op: HBinOp) -> (Cc, bool, Option<ParityFix>) {
    match op {
        HBinOp::Eq => (Cc::E, false, Some(ParityFix::AndNotParity)),
        HBinOp::Ne => (Cc::Ne, false, Some(ParityFix::OrParity)),
        HBinOp::LtS => (Cc::A, true, None),
        HBinOp::GtS => (Cc::A, false, None),
        HBinOp::LeS => (Cc::Ae, true, None),
        HBinOp::GeS => (Cc::Ae, false, None),
        other => unreachable!("not a float comparison: {other:?}"),
    }
}

struct Lower<'p> {
    prog: &'p HProgram,
    opts: &'p CompileOptions,
    lf: LFunc,
    cur: usize,
    /// vreg of each HIR local.
    locals: Vec<u32>,
    /// (continue_target, break_target) stack.
    loops: Vec<(BlockId, BlockId)>,
}

impl<'p> Lower<'p> {
    fn emit(&mut self, inst: LInst) {
        self.lf.blocks[self.cur].insts.push(inst);
    }

    /// Appends a fresh block and makes it current.
    fn start_block(&mut self) -> BlockId {
        self.lf.blocks.push(LBlock::default());
        self.cur = self.lf.blocks.len() - 1;
        BlockId(self.cur as u32)
    }

    /// Reserves a block id that will be placed later (forward target).
    /// LIR blocks are explicitly terminated, so layout order is free.
    fn reserve_block(&mut self) -> BlockId {
        self.lf.blocks.push(LBlock::default());
        BlockId((self.lf.blocks.len() - 1) as u32)
    }

    fn place_block(&mut self, id: BlockId) {
        self.cur = id.0 as usize;
    }

    fn vreg_int(&mut self) -> u32 {
        self.lf.new_vreg(VClass::Int)
    }

    fn vreg_float(&mut self) -> u32 {
        self.lf.new_vreg(VClass::Float)
    }

    // ---- integer expressions -----------------------------------------

    /// Lowers an integer expression into an operand; constants become
    /// immediates, loads may become memory operands (fusion).
    fn opnd_int(&mut self, e: &HExpr, allow_mem: bool) -> Opnd {
        match e {
            HExpr::Const { bits, ty } => {
                let v = match ty {
                    HTy::I32 => *bits as u32 as i32 as i64,
                    _ => *bits as i64,
                };
                Opnd::Imm(v)
            }
            HExpr::Load {
                ty, width: w, addr, ..
            } if allow_mem && self.opts.fuse_addressing && *w == MemWidth::of(*ty) => {
                let mem = self.addr_mem(addr);
                Opnd::Mem(mem)
            }
            HExpr::Local { idx, .. } => Opnd::Loc(Loc::V(self.locals[*idx as usize])),
            _ => Opnd::Loc(Loc::V(self.value_int(e))),
        }
    }

    /// Lowers an integer expression into a vreg.
    fn value_int(&mut self, e: &HExpr) -> u32 {
        match e {
            HExpr::Local { idx, .. } => return self.locals[*idx as usize],
            HExpr::Const { bits, ty } => {
                let dst = self.vreg_int();
                let v = match ty {
                    HTy::I32 => *bits as u32 as i32 as i64,
                    _ => *bits as i64,
                };
                self.emit(LInst::Mov {
                    dst: Loc::V(dst),
                    src: Opnd::Imm(v),
                    width: width(*ty),
                });
                return dst;
            }
            _ => {}
        }
        let dst = self.vreg_int();
        self.value_int_into(e, dst);
        dst
    }

    fn value_int_into(&mut self, e: &HExpr, dst: u32) {
        match e {
            HExpr::Const { bits, ty } => {
                let v = match ty {
                    HTy::I32 => *bits as u32 as i32 as i64,
                    _ => *bits as i64,
                };
                self.emit(LInst::Mov {
                    dst: Loc::V(dst),
                    src: Opnd::Imm(v),
                    width: width(*ty),
                });
            }
            HExpr::Local { idx, .. } => {
                let src = self.locals[*idx as usize];
                self.emit(LInst::Mov {
                    dst: Loc::V(dst),
                    src: Opnd::Loc(Loc::V(src)),
                    width: Width::W64,
                });
            }
            HExpr::Load {
                ty,
                width: w,
                signed,
                addr,
            } => {
                let mem = self.addr_mem(addr);
                if *w == MemWidth::of(*ty) {
                    self.emit(LInst::Mov {
                        dst: Loc::V(dst),
                        src: Opnd::Mem(mem),
                        width: mw(*w),
                    });
                } else if *signed {
                    self.emit(LInst::Movsx {
                        dst: Loc::V(dst),
                        src: Opnd::Mem(mem),
                        from: mw(*w),
                        to: width(*ty),
                    });
                } else {
                    self.emit(LInst::Movzx {
                        dst: Loc::V(dst),
                        src: Opnd::Mem(mem),
                        from: mw(*w),
                    });
                }
            }
            HExpr::Unary { op, ty, arg } => match op {
                HUnOp::Neg => {
                    self.value_int_into(arg, dst);
                    self.emit(LInst::Neg {
                        dst: Loc::V(dst),
                        width: width(*ty),
                    });
                }
                HUnOp::BitNot => {
                    self.value_int_into(arg, dst);
                    self.emit(LInst::Not {
                        dst: Loc::V(dst),
                        width: width(*ty),
                    });
                }
                HUnOp::Eqz => {
                    let v = self.opnd_int(arg, true);
                    self.emit(LInst::Cmp {
                        lhs: v,
                        rhs: Opnd::Imm(0),
                        width: width(*ty),
                    });
                    self.emit(LInst::Setcc {
                        cc: Cc::E,
                        dst: Loc::V(dst),
                    });
                }
                HUnOp::Clz => {
                    let v = self.opnd_int(arg, true);
                    self.emit(LInst::Lzcnt {
                        dst: Loc::V(dst),
                        src: v,
                        width: width(*ty),
                    });
                }
                HUnOp::Ctz => {
                    let v = self.opnd_int(arg, true);
                    self.emit(LInst::Tzcnt {
                        dst: Loc::V(dst),
                        src: v,
                        width: width(*ty),
                    });
                }
                HUnOp::Popcnt => {
                    let v = self.opnd_int(arg, true);
                    self.emit(LInst::Popcnt {
                        dst: Loc::V(dst),
                        src: v,
                        width: width(*ty),
                    });
                }
                other => unreachable!("float unop {other:?} in int context"),
            },
            HExpr::Binary { op, ty, lhs, rhs } if op.is_cmp() => {
                if ty.is_int() {
                    let l = self.opnd_int(lhs, false);
                    let r = self.opnd_int(rhs, true);
                    self.emit(LInst::Cmp {
                        lhs: l,
                        rhs: r,
                        width: width(*ty),
                    });
                    self.emit(LInst::Setcc {
                        cc: int_cc(*op),
                        dst: Loc::V(dst),
                    });
                } else {
                    let (cc, fix) = self.emit_float_cmp(*op, *ty, lhs, rhs);
                    self.emit(LInst::Setcc {
                        cc,
                        dst: Loc::V(dst),
                    });
                    if let Some(fix) = fix {
                        let p = self.vreg_int();
                        let (pcc, aop) = match fix {
                            ParityFix::AndNotParity => (Cc::Np, AluOp::And),
                            ParityFix::OrParity => (Cc::P, AluOp::Or),
                        };
                        self.emit(LInst::Setcc {
                            cc: pcc,
                            dst: Loc::V(p),
                        });
                        self.emit(LInst::Alu {
                            op: aop,
                            dst: Loc::V(dst),
                            src: Opnd::Loc(Loc::V(p)),
                            width: Width::W32,
                        });
                    }
                }
            }
            HExpr::Binary { op, ty, lhs, rhs } => {
                let w = width(*ty);
                match op {
                    HBinOp::Add | HBinOp::Sub | HBinOp::And | HBinOp::Or | HBinOp::Xor => {
                        self.value_int_into(lhs, dst);
                        let r = self.opnd_int(rhs, true);
                        let aop = match op {
                            HBinOp::Add => AluOp::Add,
                            HBinOp::Sub => AluOp::Sub,
                            HBinOp::And => AluOp::And,
                            HBinOp::Or => AluOp::Or,
                            _ => AluOp::Xor,
                        };
                        self.emit(LInst::Alu {
                            op: aop,
                            dst: Loc::V(dst),
                            src: r,
                            width: w,
                        });
                    }
                    HBinOp::Mul => {
                        if let HExpr::Const { bits, .. } = **rhs {
                            let src = self.opnd_int(lhs, true);
                            self.emit(LInst::Imul3 {
                                dst: Loc::V(dst),
                                src,
                                imm: bits as i64,
                                width: w,
                            });
                        } else {
                            self.value_int_into(lhs, dst);
                            let r = self.opnd_int(rhs, true);
                            self.emit(LInst::Imul {
                                dst: Loc::V(dst),
                                src: r,
                                width: w,
                            });
                        }
                    }
                    HBinOp::DivS | HBinOp::DivU | HBinOp::RemS | HBinOp::RemU => {
                        let l = self.value_int(lhs);
                        let r = self.value_int(rhs);
                        self.emit(LInst::Div {
                            signed: matches!(op, HBinOp::DivS | HBinOp::RemS),
                            rem: matches!(op, HBinOp::RemS | HBinOp::RemU),
                            dst: Loc::V(dst),
                            lhs: Loc::V(l),
                            rhs: Loc::V(r),
                            width: w,
                        });
                    }
                    HBinOp::Shl | HBinOp::ShrS | HBinOp::ShrU | HBinOp::Rotl | HBinOp::Rotr => {
                        self.value_int_into(lhs, dst);
                        let count = self.opnd_int(rhs, false);
                        let sop = match op {
                            HBinOp::Shl => AluOp::Shl,
                            HBinOp::ShrS => AluOp::Sar,
                            HBinOp::ShrU => AluOp::Shr,
                            HBinOp::Rotl => AluOp::Rol,
                            _ => AluOp::Ror,
                        };
                        self.emit(LInst::Shift {
                            op: sop,
                            dst: Loc::V(dst),
                            count,
                            width: w,
                        });
                    }
                    other => unreachable!("{other:?} in int context"),
                }
            }
            HExpr::ShortCircuit { .. } => {
                // dst = 0; branch; dst = 1 pattern via blocks.
                let true_b = self.reserve_block();
                let false_b = self.reserve_block();
                let join = self.reserve_block();
                self.branch_bool(e, true_b, false_b);
                self.place_block(true_b);
                self.emit(LInst::Mov {
                    dst: Loc::V(dst),
                    src: Opnd::Imm(1),
                    width: Width::W64,
                });
                self.emit(LInst::Jmp { target: join });
                self.place_block(false_b);
                self.emit(LInst::Mov {
                    dst: Loc::V(dst),
                    src: Opnd::Imm(0),
                    width: Width::W64,
                });
                self.emit(LInst::Jmp { target: join });
                self.place_block(join);
            }
            HExpr::Cast {
                from,
                to,
                signed,
                arg,
            } => match (from.is_int(), to.is_int()) {
                (true, true) => {
                    if *to == HTy::I64 && *from == HTy::I32 {
                        if *signed {
                            let v = self.opnd_int(arg, true);
                            self.emit(LInst::Movsx {
                                dst: Loc::V(dst),
                                src: v,
                                from: Width::W32,
                                to: Width::W64,
                            });
                        } else {
                            let v = self.opnd_int(arg, true);
                            self.emit(LInst::Mov {
                                dst: Loc::V(dst),
                                src: v,
                                width: Width::W32,
                            });
                        }
                    } else {
                        // i64 -> i32 truncation: a 32-bit move.
                        let v = self.opnd_int(arg, true);
                        self.emit(LInst::Mov {
                            dst: Loc::V(dst),
                            src: v,
                            width: Width::W32,
                        });
                    }
                }
                (false, true) => {
                    let v = self.fopnd(arg);
                    self.emit(LInst::CvtFToInt {
                        dst: Loc::V(dst),
                        src: v,
                        width: width(*to),
                        prec: prec(*from),
                        unsigned: !*signed,
                    });
                }
                _ => unreachable!("cast to float in int context"),
            },
            HExpr::Call { .. } | HExpr::CallIndirect { .. } | HExpr::Syscall { .. } => {
                self.lower_call(e, Some(RetVal::Int(Loc::V(dst))));
            }
        }
    }

    // ---- float expressions ---------------------------------------------

    /// Emit the `ucomis` for a float comparison and return the condition
    /// code plus the parity fixup Eq/Ne need. Operands are evaluated in
    /// source order even when the comparison swaps them, so calls inside
    /// the operands keep their order.
    fn emit_float_cmp(
        &mut self,
        op: HBinOp,
        ty: HTy,
        lhs: &HExpr,
        rhs: &HExpr,
    ) -> (Cc, Option<ParityFix>) {
        let (cc, swap, fix) = float_cc(op);
        if swap {
            let l = self.value_float(lhs);
            let r = self.value_float(rhs);
            self.emit(LInst::Ucomis {
                lhs: FLoc::V(r),
                rhs: FOpnd::Loc(FLoc::V(l)),
                prec: prec(ty),
            });
        } else {
            let l = self.value_float(lhs);
            let r = self.fopnd(rhs);
            self.emit(LInst::Ucomis {
                lhs: FLoc::V(l),
                rhs: r,
                prec: prec(ty),
            });
        }
        (cc, fix)
    }

    fn fopnd(&mut self, e: &HExpr) -> FOpnd {
        match e {
            HExpr::Load {
                ty, width: w, addr, ..
            } if self.opts.fuse_addressing && *w == MemWidth::of(*ty) => {
                let mem = self.addr_mem(addr);
                FOpnd::Mem(mem)
            }
            HExpr::Local { idx, .. } => FOpnd::Loc(FLoc::V(self.locals[*idx as usize])),
            _ => FOpnd::Loc(FLoc::V(self.value_float(e))),
        }
    }

    fn value_float(&mut self, e: &HExpr) -> u32 {
        if let HExpr::Local { idx, .. } = e {
            return self.locals[*idx as usize];
        }
        let dst = self.vreg_float();
        self.value_float_into(e, dst);
        dst
    }

    fn value_float_into(&mut self, e: &HExpr, dst: u32) {
        let p = prec(e.ty().expect("float expr"));
        match e {
            HExpr::Const { bits, ty } => {
                self.emit(LInst::MovFImm {
                    dst: FLoc::V(dst),
                    bits: *bits,
                    prec: prec(*ty),
                });
            }
            HExpr::Local { idx, .. } => {
                let src = self.locals[*idx as usize];
                self.emit(LInst::MovF {
                    dst: FOpnd::Loc(FLoc::V(dst)),
                    src: FOpnd::Loc(FLoc::V(src)),
                    prec: p,
                });
            }
            HExpr::Load { addr, ty, .. } => {
                let mem = self.addr_mem(addr);
                self.emit(LInst::MovF {
                    dst: FOpnd::Loc(FLoc::V(dst)),
                    src: FOpnd::Mem(mem),
                    prec: prec(*ty),
                });
            }
            HExpr::Unary { op, ty, arg } => {
                let pr = prec(*ty);
                match op {
                    HUnOp::Neg => {
                        // Exact sign flip: multiply by -1.0.
                        self.value_float_into(arg, dst);
                        let m1 = self.vreg_float();
                        self.emit(LInst::MovFImm {
                            dst: FLoc::V(m1),
                            bits: match ty {
                                HTy::F32 => (-1.0f32).to_bits() as u64,
                                _ => (-1.0f64).to_bits(),
                            },
                            prec: pr,
                        });
                        self.emit(LInst::AluF {
                            op: wasmperf_isa::FAluOp::Mul,
                            dst: FLoc::V(dst),
                            src: FOpnd::Loc(FLoc::V(m1)),
                            prec: pr,
                        });
                    }
                    HUnOp::Sqrt => {
                        let s = self.fopnd(arg);
                        self.emit(LInst::SqrtF {
                            dst: FLoc::V(dst),
                            src: s,
                            prec: pr,
                        });
                    }
                    HUnOp::Abs => {
                        let s = self.fopnd(arg);
                        self.emit(LInst::AbsF {
                            dst: FLoc::V(dst),
                            src: s,
                            prec: pr,
                        });
                    }
                    HUnOp::Floor | HUnOp::Ceil | HUnOp::TruncF | HUnOp::Nearest => {
                        let s = self.fopnd(arg);
                        let mode = match op {
                            HUnOp::Floor => RoundMode::Floor,
                            HUnOp::Ceil => RoundMode::Ceil,
                            HUnOp::TruncF => RoundMode::Trunc,
                            _ => RoundMode::Nearest,
                        };
                        self.emit(LInst::RoundF {
                            dst: FLoc::V(dst),
                            src: s,
                            prec: pr,
                            mode,
                        });
                    }
                    other => unreachable!("int unop {other:?} in float context"),
                }
            }
            HExpr::Binary { op, ty, lhs, rhs } => {
                let pr = prec(*ty);
                let fop = match op {
                    HBinOp::Add => wasmperf_isa::FAluOp::Add,
                    HBinOp::Sub => wasmperf_isa::FAluOp::Sub,
                    HBinOp::Mul => wasmperf_isa::FAluOp::Mul,
                    HBinOp::DivS => wasmperf_isa::FAluOp::Div,
                    HBinOp::FMin => wasmperf_isa::FAluOp::Min,
                    HBinOp::FMax => wasmperf_isa::FAluOp::Max,
                    other => unreachable!("{other:?} on floats"),
                };
                self.value_float_into(lhs, dst);
                let r = self.fopnd(rhs);
                self.emit(LInst::AluF {
                    op: fop,
                    dst: FLoc::V(dst),
                    src: r,
                    prec: pr,
                });
            }
            HExpr::Cast {
                from,
                to,
                signed,
                arg,
            } => {
                if from.is_int() {
                    let v = self.opnd_int(arg, true);
                    self.emit(LInst::CvtIntToF {
                        dst: FLoc::V(dst),
                        src: v,
                        width: width(*from),
                        prec: prec(*to),
                        unsigned: !*signed,
                    });
                } else {
                    let v = self.fopnd(arg);
                    self.emit(LInst::CvtFToF {
                        dst: FLoc::V(dst),
                        src: v,
                        from: prec(*from),
                    });
                }
            }
            HExpr::Call { .. } | HExpr::CallIndirect { .. } => {
                self.lower_call(e, Some(RetVal::Float(FLoc::V(dst))));
            }
            other => unreachable!("float lowering of {other:?}"),
        }
    }

    // ---- addressing ----------------------------------------------------

    /// Builds an x86 addressing mode from an address expression, collecting
    /// constant displacements, one scaled index (`expr * {1,2,4,8}`), and
    /// one base term.
    fn addr_mem(&mut self, addr: &HExpr) -> LMem {
        let mut disp: i64 = 0;
        let mut index: Option<(u32, u8)> = None;
        let mut base: Option<u32> = None;
        let mut spill_terms: Vec<u32> = Vec::new();

        let mut terms: Vec<&HExpr> = Vec::new();
        collect_add_terms(addr, &mut terms);
        for t in terms {
            match t {
                HExpr::Const { bits, .. } => disp = disp.wrapping_add(*bits as i64),
                HExpr::Binary {
                    op: HBinOp::Mul,
                    lhs,
                    rhs,
                    ..
                } if index.is_none() && self.opts.fuse_addressing => {
                    if let HExpr::Const { bits, .. } = **rhs {
                        if matches!(bits, 1 | 2 | 4 | 8) {
                            let iv = self.value_int(lhs);
                            index = Some((iv, bits as u8));
                            continue;
                        }
                    }
                    let v = self.value_int(t);
                    if base.is_none() {
                        base = Some(v);
                    } else {
                        spill_terms.push(v);
                    }
                }
                _ => {
                    let v = self.value_int(t);
                    if base.is_none() {
                        base = Some(v);
                    } else if index.is_none() && self.opts.fuse_addressing {
                        index = Some((v, 1));
                    } else {
                        spill_terms.push(v);
                    }
                }
            }
        }
        if !self.opts.fuse_addressing {
            // Degrade: compute everything into a single base register.
            let b = match (base, index) {
                (Some(b), _) => b,
                (None, Some((i, _))) => i,
                (None, None) => {
                    let z = self.vreg_int();
                    self.emit(LInst::Mov {
                        dst: Loc::V(z),
                        src: Opnd::Imm(0),
                        width: Width::W64,
                    });
                    z
                }
            };
            let acc = self.vreg_int();
            self.emit(LInst::Mov {
                dst: Loc::V(acc),
                src: Opnd::Loc(Loc::V(b)),
                width: Width::W64,
            });
            if let Some((i, s)) = index {
                if base.is_some() {
                    let scaled = self.vreg_int();
                    self.emit(LInst::Imul3 {
                        dst: Loc::V(scaled),
                        src: Opnd::Loc(Loc::V(i)),
                        imm: s as i64,
                        width: Width::W64,
                    });
                    self.emit(LInst::Alu {
                        op: AluOp::Add,
                        dst: Loc::V(acc),
                        src: Opnd::Loc(Loc::V(scaled)),
                        width: Width::W64,
                    });
                }
            }
            for t in spill_terms {
                self.emit(LInst::Alu {
                    op: AluOp::Add,
                    dst: Loc::V(acc),
                    src: Opnd::Loc(Loc::V(t)),
                    width: Width::W64,
                });
            }
            if disp != 0 {
                self.emit(LInst::Alu {
                    op: AluOp::Add,
                    dst: Loc::V(acc),
                    src: Opnd::Imm(disp),
                    width: Width::W64,
                });
                disp = 0;
            }
            return LMem::base_disp(Loc::V(acc), disp);
        }
        // Fold leftover terms into the base via adds.
        let base = if spill_terms.is_empty() {
            base
        } else {
            let acc = self.vreg_int();
            let first = base.unwrap_or_else(|| spill_terms.remove(0));
            self.emit(LInst::Mov {
                dst: Loc::V(acc),
                src: Opnd::Loc(Loc::V(first)),
                width: Width::W64,
            });
            for t in spill_terms {
                self.emit(LInst::Alu {
                    op: AluOp::Add,
                    dst: Loc::V(acc),
                    src: Opnd::Loc(Loc::V(t)),
                    width: Width::W64,
                });
            }
            Some(acc)
        };
        LMem {
            base: base.map(Loc::V),
            index: index.map(|(v, s)| (Loc::V(v), s)),
            disp,
        }
    }

    // ---- calls -----------------------------------------------------------

    fn lower_call(&mut self, e: &HExpr, ret: Option<RetVal>) {
        match e {
            HExpr::Call { func, args, .. } => {
                let mut largs = Vec::with_capacity(args.len());
                for a in args {
                    largs.push(self.lower_arg(a));
                }
                self.emit(LInst::Call {
                    func: *func,
                    args: largs,
                    ret,
                });
            }
            HExpr::CallIndirect {
                table_base,
                index,
                args,
                ..
            } => {
                let idx = self.value_int(index);
                let target = self.vreg_int();
                // Native: bare function pointers in the table, no checks.
                let table_addr = native_table_addr(self.prog);
                self.emit(LInst::Mov {
                    dst: Loc::V(target),
                    src: Opnd::Mem(LMem {
                        base: None,
                        index: Some((Loc::V(idx), 8)),
                        disp: table_addr as i64 + *table_base as i64 * 8,
                    }),
                    width: Width::W64,
                });
                let mut largs = Vec::with_capacity(args.len());
                for a in args {
                    largs.push(self.lower_arg(a));
                }
                self.emit(LInst::CallIndirect {
                    target: Opnd::Loc(Loc::V(target)),
                    args: largs,
                    ret,
                });
            }
            HExpr::Syscall { args } => {
                let mut largs = Vec::with_capacity(args.len());
                for a in args {
                    largs.push(match self.opnd_int(a, false) {
                        Opnd::Mem(_) => unreachable!("no mem args"),
                        other => other,
                    });
                }
                let ret_loc = match ret {
                    Some(RetVal::Int(l)) => Some(l),
                    None => None,
                    _ => unreachable!("syscall returns i32"),
                };
                self.emit(LInst::CallHost {
                    id: 0,
                    args: largs,
                    ret: ret_loc,
                });
            }
            other => unreachable!("not a call: {other:?}"),
        }
    }

    fn lower_arg(&mut self, a: &HExpr) -> Arg {
        match a.ty().expect("arg has a type") {
            HTy::F32 | HTy::F64 => Arg::Float(FOpnd::Loc(FLoc::V(self.value_float(a)))),
            _ => Arg::Int(match self.opnd_int(a, false) {
                Opnd::Mem(_) => unreachable!("no mem args"),
                other => other,
            }),
        }
    }

    // ---- conditions ------------------------------------------------------

    /// Emits a conditional branch on `cond` to `target` (when true) or
    /// `other` (when false); leaves the current block terminated.
    fn branch_bool(&mut self, cond: &HExpr, if_true: BlockId, if_false: BlockId) {
        match cond {
            HExpr::Binary { op, ty, lhs, rhs } if op.is_cmp() => {
                if ty.is_int() {
                    let l = self.opnd_int(lhs, false);
                    let r = self.opnd_int(rhs, true);
                    self.emit(LInst::Cmp {
                        lhs: l,
                        rhs: r,
                        width: width(*ty),
                    });
                    self.emit(LInst::Jcc {
                        cc: int_cc(*op),
                        target: if_true,
                    });
                } else {
                    let (cc, fix) = self.emit_float_cmp(*op, *ty, lhs, rhs);
                    match fix {
                        // `==`: unordered operands must not compare
                        // equal, so parity routes to the false edge.
                        Some(ParityFix::AndNotParity) => {
                            self.emit(LInst::Jcc {
                                cc: Cc::P,
                                target: if_false,
                            });
                            self.emit(LInst::Jcc {
                                cc,
                                target: if_true,
                            });
                        }
                        // `!=`: unordered operands compare not-equal.
                        Some(ParityFix::OrParity) => {
                            self.emit(LInst::Jcc {
                                cc: Cc::P,
                                target: if_true,
                            });
                            self.emit(LInst::Jcc {
                                cc,
                                target: if_true,
                            });
                        }
                        None => {
                            self.emit(LInst::Jcc {
                                cc,
                                target: if_true,
                            });
                        }
                    }
                }
                self.emit(LInst::Jmp { target: if_false });
            }
            HExpr::Unary {
                op: HUnOp::Eqz,
                ty,
                arg,
            } => {
                let v = self.opnd_int(arg, false);
                self.emit(LInst::Cmp {
                    lhs: v,
                    rhs: Opnd::Imm(0),
                    width: width(*ty),
                });
                self.emit(LInst::Jcc {
                    cc: Cc::E,
                    target: if_true,
                });
                self.emit(LInst::Jmp { target: if_false });
            }
            HExpr::ShortCircuit { is_and, lhs, rhs } => {
                let mid = self.reserve_block();
                if *is_and {
                    self.branch_bool(lhs, mid, if_false);
                } else {
                    self.branch_bool(lhs, if_true, mid);
                }
                self.place_block(mid);
                self.branch_bool(rhs, if_true, if_false);
            }
            HExpr::Const { bits, .. } => {
                let target = if *bits != 0 { if_true } else { if_false };
                self.emit(LInst::Jmp { target });
            }
            other => {
                let v = self.value_int(other);
                self.emit(LInst::Test {
                    lhs: Opnd::Loc(Loc::V(v)),
                    rhs: Opnd::Loc(Loc::V(v)),
                    width: width(other.ty().unwrap_or(HTy::I32)),
                });
                self.emit(LInst::Jcc {
                    cc: Cc::Ne,
                    target: if_true,
                });
                self.emit(LInst::Jmp { target: if_false });
            }
        }
    }

    // ---- statements -------------------------------------------------------

    fn lower_stmts(&mut self, stmts: &[HStmt]) {
        for s in stmts {
            self.lower_stmt(s);
        }
    }

    fn lower_stmt(&mut self, s: &HStmt) {
        match s {
            HStmt::SetLocal { idx, value } => {
                let dst = self.locals[*idx as usize];
                match value.ty().expect("value") {
                    HTy::F32 | HTy::F64 => {
                        // Guard against clobbering the destination while
                        // the value still reads it (`f = g + f`).
                        if expr_reads_local(value, *idx) && !matches!(value, HExpr::Local { .. }) {
                            let t = self.value_float(value);
                            self.emit(LInst::MovF {
                                dst: FOpnd::Loc(FLoc::V(dst)),
                                src: FOpnd::Loc(FLoc::V(t)),
                                prec: prec(value.ty().expect("float")),
                            });
                        } else {
                            self.value_float_into(value, dst);
                        }
                    }
                    ty => {
                        // Two-address reuse: `i = i op e` updates in place.
                        if let HExpr::Binary { op, lhs, rhs, .. } = value {
                            if let HExpr::Local { idx: li, .. } = **lhs {
                                if li == *idx && !op.is_cmp() {
                                    match op {
                                        HBinOp::Add
                                        | HBinOp::Sub
                                        | HBinOp::And
                                        | HBinOp::Or
                                        | HBinOp::Xor => {
                                            let r = self.opnd_int(rhs, true);
                                            let aop = match op {
                                                HBinOp::Add => AluOp::Add,
                                                HBinOp::Sub => AluOp::Sub,
                                                HBinOp::And => AluOp::And,
                                                HBinOp::Or => AluOp::Or,
                                                _ => AluOp::Xor,
                                            };
                                            self.emit(LInst::Alu {
                                                op: aop,
                                                dst: Loc::V(dst),
                                                src: r,
                                                width: width(ty),
                                            });
                                            return;
                                        }
                                        _ => {}
                                    }
                                }
                            }
                        }
                        if expr_reads_local(value, *idx) && !reads_only_as_direct_lhs(value, *idx) {
                            let t = self.value_int(value);
                            if t != dst {
                                self.emit(LInst::Mov {
                                    dst: Loc::V(dst),
                                    src: Opnd::Loc(Loc::V(t)),
                                    width: Width::W64,
                                });
                            }
                        } else {
                            self.value_int_into(value, dst);
                        }
                    }
                }
            }
            HStmt::Store {
                ty,
                width: w,
                addr,
                value,
            } => {
                // RMW fusion: A[i] = A[i] op v  =>  op [mem], v.
                if self.opts.fuse_addressing && *w == MemWidth::of(*ty) && ty.is_int() {
                    if let HExpr::Binary { op, lhs, rhs, .. } = value {
                        let fusable = matches!(
                            op,
                            HBinOp::Add | HBinOp::Sub | HBinOp::And | HBinOp::Or | HBinOp::Xor
                        );
                        if fusable {
                            if let HExpr::Load {
                                addr: laddr,
                                width: lw,
                                ..
                            } = &**lhs
                            {
                                if **laddr == *addr && lw == w {
                                    // Address before value: source order,
                                    // and the order every other pipeline
                                    // traps in.
                                    let mem = self.addr_mem(addr);
                                    let src = self.opnd_int(rhs, false);
                                    let aop = match op {
                                        HBinOp::Add => AluOp::Add,
                                        HBinOp::Sub => AluOp::Sub,
                                        HBinOp::And => AluOp::And,
                                        HBinOp::Or => AluOp::Or,
                                        _ => AluOp::Xor,
                                    };
                                    self.emit(LInst::AluMem {
                                        op: aop,
                                        mem,
                                        src,
                                        width: mw(*w),
                                    });
                                    return;
                                }
                            }
                        }
                    }
                }
                // Address before value: C evaluates the lvalue's address
                // expression in source order, and the wasm pipelines push
                // the address operand first — so a trapping index must win
                // over a trapping value on every engine.
                match ty {
                    HTy::F32 | HTy::F64 => {
                        let mem = self.addr_mem(addr);
                        let v = self.value_float(value);
                        self.emit(LInst::MovF {
                            dst: FOpnd::Mem(mem),
                            src: FOpnd::Loc(FLoc::V(v)),
                            prec: prec(*ty),
                        });
                    }
                    _ => {
                        let mem = self.addr_mem(addr);
                        let v = self.opnd_int(value, false);
                        self.emit(LInst::Store {
                            mem,
                            src: v,
                            width: mw(*w),
                        });
                    }
                }
            }
            HStmt::If {
                cond,
                then_body,
                else_body,
            } => {
                // If-conversion (the cmov habit that keeps Clang's
                // conditional-branch counts low, paper §6.2): a lone
                // `x = safe_expr;` guarded by a comparison compiles to
                // cmp + cmov with no branch.
                if else_body.is_empty() {
                    if let [HStmt::SetLocal { idx, value }] = &then_body[..] {
                        let int_cmp = matches!(
                            cond,
                            HExpr::Binary { op, ty, .. } if op.is_cmp() && ty.is_int()
                        );
                        // Float Eq/Ne need a parity fixup a single cmov
                        // cannot express, so they take the branchy path.
                        let float_cmp = matches!(
                            cond,
                            HExpr::Binary { op, ty, .. } if op.is_cmp() && !ty.is_int()
                                && !matches!(op, HBinOp::Eq | HBinOp::Ne)
                        );
                        if (int_cmp || float_cmp) && cmov_safe(value) {
                            let HExpr::Binary { op, ty, lhs, rhs } = cond else {
                                unreachable!("matched above");
                            };
                            // Evaluate the value first (it may clobber
                            // flags), then compare, then cmov.
                            let tmp = self.value_int(value);
                            let cc = if int_cmp {
                                let l = self.opnd_int(lhs, false);
                                let r = self.opnd_int(rhs, true);
                                self.emit(LInst::Cmp {
                                    lhs: l,
                                    rhs: r,
                                    width: width(*ty),
                                });
                                int_cc(*op)
                            } else {
                                let (cc, _) = self.emit_float_cmp(*op, *ty, lhs, rhs);
                                cc
                            };
                            let dst = self.locals[*idx as usize];
                            self.emit(LInst::Cmov {
                                cc,
                                dst: Loc::V(dst),
                                src: Opnd::Loc(Loc::V(tmp)),
                                width: Width::W64,
                            });
                            return;
                        }
                    }
                }
                let then_b = self.reserve_block();
                let join = self.reserve_block();
                let else_b = if else_body.is_empty() {
                    join
                } else {
                    self.reserve_block()
                };
                self.branch_bool(cond, then_b, else_b);
                self.place_block(then_b);
                self.lower_stmts(then_body);
                self.emit(LInst::Jmp { target: join });
                if !else_body.is_empty() {
                    self.place_block(else_b);
                    self.lower_stmts(else_body);
                    self.emit(LInst::Jmp { target: join });
                }
                self.place_block(join);
            }
            HStmt::While { cond, body } => {
                let exit = self.reserve_block();
                if self.opts.invert_loops {
                    // Guard + bottom-tested loop: one branch per iteration.
                    let factor = if self.opts.unroll
                        && hir_size(body) <= self.opts.unroll_max_body
                        && !has_loop(body)
                    {
                        self.opts.unroll_factor.max(1)
                    } else {
                        1
                    };
                    let head = self.reserve_block();
                    self.branch_bool(cond, head, exit);
                    self.place_block(head);
                    for k in 0..factor {
                        let test_b = self.reserve_block();
                        self.loops.push((test_b, exit));
                        self.lower_stmts(body);
                        self.loops.pop();
                        self.emit(LInst::Jmp { target: test_b });
                        self.place_block(test_b);
                        if k + 1 == factor {
                            self.branch_bool(cond, head, exit);
                        } else {
                            let next_b = self.reserve_block();
                            self.branch_bool(cond, next_b, exit);
                            self.place_block(next_b);
                        }
                    }
                } else {
                    // Top-tested loop (ablation): two branches/iteration.
                    let head = self.reserve_block();
                    let body_b = self.reserve_block();
                    self.emit(LInst::Jmp { target: head });
                    self.place_block(head);
                    self.branch_bool(cond, body_b, exit);
                    self.place_block(body_b);
                    self.loops.push((head, exit));
                    self.lower_stmts(body);
                    self.loops.pop();
                    self.emit(LInst::Jmp { target: head });
                }
                self.place_block(exit);
            }
            HStmt::DoWhile { body, cond } => {
                let exit = self.reserve_block();
                let head = self.reserve_block();
                let test_b = self.reserve_block();
                self.emit(LInst::Jmp { target: head });
                self.place_block(head);
                self.loops.push((test_b, exit));
                self.lower_stmts(body);
                self.loops.pop();
                self.emit(LInst::Jmp { target: test_b });
                self.place_block(test_b);
                self.branch_bool(cond, head, exit);
                self.place_block(exit);
            }
            HStmt::Break => {
                let (_, brk) = *self.loops.last().expect("in loop");
                self.emit(LInst::Jmp { target: brk });
                self.start_block();
            }
            HStmt::Continue => {
                let (cont, _) = *self.loops.last().expect("in loop");
                self.emit(LInst::Jmp { target: cont });
                self.start_block();
            }
            HStmt::Return(v) => {
                let value = v.as_ref().map(|e| self.lower_arg(e));
                self.emit(LInst::Ret { value });
                self.start_block();
            }
            HStmt::Expr(e) => match e {
                HExpr::Call { .. } | HExpr::CallIndirect { .. } | HExpr::Syscall { .. } => {
                    // Result (if any) is dropped: no ret destination for
                    // void, scratch destination otherwise.
                    let ret = match e.ty() {
                        None => None,
                        Some(HTy::F32 | HTy::F64) => {
                            let t = self.vreg_float();
                            Some(RetVal::Float(FLoc::V(t)))
                        }
                        Some(_) => {
                            let t = self.vreg_int();
                            Some(RetVal::Int(Loc::V(t)))
                        }
                    };
                    self.lower_call(e, ret);
                }
                _ => {
                    // Pure expression statement: evaluate for traps.
                    match e.ty() {
                        Some(HTy::F32 | HTy::F64) => {
                            self.value_float(e);
                        }
                        _ => {
                            self.value_int(e);
                        }
                    }
                }
            },
        }
    }
}

/// True when `e` is an integer expression that is safe to evaluate
/// unconditionally for if-conversion: no loads, calls, divisions, or other
/// trapping/side-effecting operations.
fn cmov_safe(e: &HExpr) -> bool {
    match e {
        HExpr::Const { ty, .. } | HExpr::Local { ty, .. } => ty.is_int(),
        HExpr::Unary { op, ty, arg } => {
            ty.is_int() && matches!(op, HUnOp::Neg | HUnOp::BitNot | HUnOp::Eqz) && cmov_safe(arg)
        }
        HExpr::Binary { op, ty, lhs, rhs } => {
            ty.is_int()
                && !matches!(
                    op,
                    HBinOp::DivS | HBinOp::DivU | HBinOp::RemS | HBinOp::RemU
                )
                && !op.is_cmp()
                && cmov_safe(lhs)
                && cmov_safe(rhs)
        }
        _ => false,
    }
}

/// True when every read of local `idx` in `e` sits on the leftmost
/// operand spine, i.e. is consumed before the in-place destination is
/// first written. Such expressions may be computed directly into the
/// local's register.
fn reads_only_as_direct_lhs(e: &HExpr, idx: u32) -> bool {
    match e {
        HExpr::Local { .. } | HExpr::Const { .. } => true,
        HExpr::Binary { op, lhs, rhs, .. } if !op.is_cmp() => {
            reads_only_as_direct_lhs(lhs, idx) && !expr_reads_local(rhs, idx)
        }
        HExpr::Unary { arg, .. } | HExpr::Cast { arg, .. } => reads_only_as_direct_lhs(arg, idx),
        other => !expr_reads_local(other, idx),
    }
}

/// True when `e` reads HIR local `idx` anywhere.
fn expr_reads_local(e: &HExpr, idx: u32) -> bool {
    match e {
        HExpr::Const { .. } => false,
        HExpr::Local { idx: i, .. } => *i == idx,
        HExpr::Load { addr, .. } => expr_reads_local(addr, idx),
        HExpr::Unary { arg, .. } | HExpr::Cast { arg, .. } => expr_reads_local(arg, idx),
        HExpr::Binary { lhs, rhs, .. } | HExpr::ShortCircuit { lhs, rhs, .. } => {
            expr_reads_local(lhs, idx) || expr_reads_local(rhs, idx)
        }
        HExpr::Call { args, .. } | HExpr::Syscall { args } => {
            args.iter().any(|a| expr_reads_local(a, idx))
        }
        HExpr::CallIndirect { index, args, .. } => {
            expr_reads_local(index, idx) || args.iter().any(|a| expr_reads_local(a, idx))
        }
    }
}

/// Flattens nested `Add` into a term list.
fn collect_add_terms<'e>(e: &'e HExpr, out: &mut Vec<&'e HExpr>) {
    if let HExpr::Binary {
        op: HBinOp::Add,
        lhs,
        rhs,
        ..
    } = e
    {
        collect_add_terms(lhs, out);
        collect_add_terms(rhs, out);
    } else {
        out.push(e);
    }
}

/// Rough HIR size of a statement list (unrolling heuristic).
fn hir_size(stmts: &[HStmt]) -> usize {
    fn expr(e: &HExpr) -> usize {
        match e {
            HExpr::Const { .. } | HExpr::Local { .. } => 1,
            HExpr::Load { addr, .. } => 1 + expr(addr),
            HExpr::Unary { arg, .. } => 1 + expr(arg),
            HExpr::Binary { lhs, rhs, .. } | HExpr::ShortCircuit { lhs, rhs, .. } => {
                1 + expr(lhs) + expr(rhs)
            }
            HExpr::Cast { arg, .. } => 1 + expr(arg),
            HExpr::Call { args, .. } | HExpr::Syscall { args } => {
                2 + args.iter().map(expr).sum::<usize>()
            }
            HExpr::CallIndirect { index, args, .. } => {
                3 + expr(index) + args.iter().map(expr).sum::<usize>()
            }
        }
    }
    fn stmt(s: &HStmt) -> usize {
        match s {
            HStmt::SetLocal { value, .. } => 1 + expr(value),
            HStmt::Store { addr, value, .. } => 1 + expr(addr) + expr(value),
            HStmt::If {
                cond,
                then_body,
                else_body,
            } => 1 + expr(cond) + hir_size(then_body) + hir_size(else_body),
            HStmt::While { cond, body } | HStmt::DoWhile { cond, body } => {
                2 + expr(cond) + hir_size(body)
            }
            HStmt::Break | HStmt::Continue => 1,
            HStmt::Return(v) => 1 + v.as_ref().map(expr).unwrap_or(0),
            HStmt::Expr(e) => expr(e),
        }
    }
    stmts.iter().map(stmt).sum()
}

fn has_loop(stmts: &[HStmt]) -> bool {
    stmts.iter().any(|s| match s {
        HStmt::While { .. } | HStmt::DoWhile { .. } => true,
        HStmt::If {
            then_body,
            else_body,
            ..
        } => has_loop(then_body) || has_loop(else_body),
        _ => false,
    })
}

/// Address of the native function-pointer table in linear memory.
pub fn native_table_addr(prog: &HProgram) -> u64 {
    (prog.memory_size + 15) & !15
}

/// Compiles a typed CLite program to a native machine-code module.
pub fn compile(prog: &HProgram, opts: &CompileOptions) -> Module {
    compile_traced(prog, opts, None)
}

/// The (function name, 1-based CLite source line) table for a program, in
/// function order — the compiler's debug-info analog, consumed by the
/// trace symbolizer to attribute machine code back to source.
pub fn source_table(prog: &HProgram) -> Vec<(String, u32)> {
    prog.funcs
        .iter()
        .map(|f| (f.name.clone(), f.line))
        .collect()
}

/// [`compile`], optionally recording one span per compile stage (lower,
/// register allocation, emit) into `spans`.
pub fn compile_traced(
    prog: &HProgram,
    opts: &CompileOptions,
    mut spans: Option<&mut wasmperf_trace::SpanLog>,
) -> Module {
    let profile = AllocProfile::native();
    let table_addr = native_table_addr(prog);
    let table_bytes = prog.table.len() as u64 * 8;

    let mut module = Module {
        funcs: Vec::with_capacity(prog.funcs.len()),
        table: Vec::new(),
        entry: prog.func_by_name("main").map(wasmperf_isa::FuncId),
        memory_size: (table_addr + table_bytes + 0xfff) & !0xfff,
        data: prog.data.clone(),
        sandbox: None,
    };

    // Serialize the function-pointer table.
    if !prog.table.is_empty() {
        let mut bytes = Vec::with_capacity(prog.table.len() * 8);
        for f in &prog.table {
            bytes.extend_from_slice(&(*f as u64).to_le_bytes());
        }
        module.data.push((table_addr, bytes));
    }

    for f in &prog.funcs {
        let mut out = match spans.as_deref_mut() {
            Some(log) => {
                let lf = log.scope("compile", "clanglite/lower", || {
                    lower_function(prog, f, opts)
                });
                let assign = log.scope("compile", "clanglite/regalloc", || {
                    allocate_coloring(&lf, &profile)
                });
                log.scope("compile", "clanglite/emit", || {
                    emit_function(&lf, &assign, &profile)
                })
            }
            None => {
                let lf = lower_function(prog, f, opts);
                let assign = allocate_coloring(&lf, &profile);
                emit_function(&lf, &assign, &profile)
            }
        };
        out.name = f.name.clone();
        module.funcs.push(out);
    }
    module.assign_addresses();
    module
}

fn lower_function(prog: &HProgram, f: &HFunc, opts: &CompileOptions) -> LFunc {
    let mut lf = LFunc {
        name: f.name.clone(),
        ..LFunc::default()
    };
    // Parameters first: vreg i == HIR local i for params.
    for ty in &f.locals {
        let class = match ty {
            HTy::F32 | HTy::F64 => VClass::Float,
            _ => VClass::Int,
        };
        lf.new_vreg(class);
    }
    lf.params = f.locals[..f.n_params as usize]
        .iter()
        .map(|t| match t {
            HTy::F32 | HTy::F64 => VClass::Float,
            _ => VClass::Int,
        })
        .collect();

    let locals: Vec<u32> = (0..f.locals.len() as u32).collect();
    let mut lower = Lower {
        prog,
        opts,
        lf,
        cur: 0,
        locals,
        loops: Vec::new(),
    };
    lower.lf.blocks.push(LBlock::default());

    // Zero-initialize non-parameter locals (CLite semantics).
    for (i, ty) in f.locals.iter().enumerate().skip(f.n_params as usize) {
        match ty {
            HTy::F32 | HTy::F64 => lower.emit(LInst::MovFImm {
                dst: FLoc::V(i as u32),
                bits: 0,
                prec: prec(*ty),
            }),
            _ => lower.emit(LInst::Mov {
                dst: Loc::V(i as u32),
                src: Opnd::Imm(0),
                width: Width::W64,
            }),
        }
    }

    lower.lower_stmts(&f.body);
    // Implicit return for void functions (or unreachable tail).
    lower.emit(LInst::Ret { value: None });
    lower.lf
}

#[cfg(test)]
mod tests {
    use super::*;
    use wasmperf_cpu::{Machine, NullHost};

    fn run_native(src: &str, args: &[u64]) -> (u64, wasmperf_cpu::PerfCounters) {
        let prog = wasmperf_cir::compile(src).expect("compiles");
        let module = compile(&prog, &CompileOptions::default());
        let entry = module.entry.expect("main");
        let mut m = Machine::new(&module, NullHost);
        let out = m.run(entry, args, 500_000_000).expect("runs");
        (out.ret, out.counters)
    }

    fn run_interp(src: &str, args: &[u64]) -> u64 {
        let prog = wasmperf_cir::compile(src).expect("compiles");
        let mut i = wasmperf_cir::Interp::new(&prog, wasmperf_cir::NoSyscalls);
        i.run("main", args).expect("runs").unwrap_or(0)
    }

    #[test]
    fn returns_constant() {
        assert_eq!(run_native("fn main() -> i32 { return 42; }", &[]).0, 42);
    }

    #[test]
    fn arithmetic_matches_interpreter() {
        let src = "
            fn main(a: i32, b: i32) -> i32 {
                var x: i32 = a * 7 - b / 3 + (a % 5) * (b << 2) - (a >> 1);
                var y: i32 = (x & 0xff) | (a ^ b);
                return x + y * 3;
            }
        ";
        for (a, b) in [(10u64, 3u64), (100, 7), (12345, 678)] {
            assert_eq!(
                run_native(src, &[a, b]).0 as u32,
                run_interp(src, &[a, b]) as u32,
                "a={a} b={b}"
            );
        }
    }

    #[test]
    fn loops_and_arrays() {
        let src = "
            const N = 100;
            array i32 A[N];
            fn main() -> i32 {
                var i: i32 = 0;
                for (i = 0; i < N; i += 1) { A[i] = i * i; }
                var s: i32 = 0;
                for (i = 0; i < N; i += 1) { s += A[i]; }
                return s;
            }
        ";
        assert_eq!(run_native(src, &[]).0 as u32, run_interp(src, &[]) as u32);
    }

    #[test]
    fn matmul_matches_interpreter() {
        let src = "
            const NI = 12;
            const NK = 14;
            const NJ = 10;
            array i32 A[NI * NK];
            array i32 B[NK * NJ];
            array i32 C[NI * NJ];
            fn main() -> i32 {
                var i: i32 = 0;
                var j: i32 = 0;
                var k: i32 = 0;
                for (i = 0; i < NI * NK; i += 1) { A[i] = i % 13; }
                for (i = 0; i < NK * NJ; i += 1) { B[i] = i % 7; }
                for (i = 0; i < NI; i += 1) {
                    for (k = 0; k < NK; k += 1) {
                        for (j = 0; j < NJ; j += 1) {
                            C[i * NJ + j] += A[i * NK + k] * B[k * NJ + j];
                        }
                    }
                }
                var s: i32 = 0;
                for (i = 0; i < NI * NJ; i += 1) { s += C[i]; }
                return s;
            }
        ";
        assert_eq!(run_native(src, &[]).0 as u32, run_interp(src, &[]) as u32);
    }

    #[test]
    fn rmw_fusion_emits_memory_alu() {
        let src = "
            array i32 A[8];
            fn main() -> i32 { A[3] += 5; return A[3]; }
        ";
        let prog = wasmperf_cir::compile(src).unwrap();
        let module = compile(&prog, &CompileOptions::default());
        let main = &module.funcs[prog.func_by_name("main").unwrap() as usize];
        let has_rmw = main.insts.iter().any(|i| {
            matches!(
                i,
                wasmperf_isa::Inst::Alu {
                    dst: wasmperf_isa::Operand::Mem(_),
                    ..
                }
            )
        });
        assert!(has_rmw, "{}", wasmperf_isa::disasm::format_function(main));
        assert_eq!(run_native(src, &[]).0, 5);
    }

    #[test]
    fn scaled_index_addressing_used() {
        let src = "
            array i32 A[64];
            fn main(i: i32) -> i32 { return A[i]; }
        ";
        let prog = wasmperf_cir::compile(src).unwrap();
        let module = compile(&prog, &CompileOptions::default());
        let main = &module.funcs[prog.func_by_name("main").unwrap() as usize];
        let has_scaled = main.insts.iter().any(|i| {
            matches!(
                i,
                wasmperf_isa::Inst::Mov {
                    src: wasmperf_isa::Operand::Mem(wasmperf_isa::MemRef {
                        index: Some((_, 4)),
                        ..
                    }),
                    ..
                }
            )
        });
        assert!(
            has_scaled,
            "{}",
            wasmperf_isa::disasm::format_function(main)
        );
    }

    #[test]
    fn inverted_loop_has_single_branch_per_iteration() {
        let src = "
            fn main(n: i32) -> i32 {
                var s: i32 = 0;
                var i: i32 = 0;
                while (i < n) { s += i; i += 1; }
                return s;
            }
        ";
        let (r, c) = run_native(src, &[1000]);
        assert_eq!(r, (0..1000).sum::<u64>());
        // Unrolled ×4 and inverted: ~1 conditional branch per unrolled
        // iteration, i.e. about n (not 2n).
        assert!(
            c.cond_branches_retired < 1400,
            "cond branches: {}",
            c.cond_branches_retired
        );
    }

    #[test]
    fn calls_and_recursion() {
        let src = "
            fn fib(n: i32) -> i32 {
                if (n < 2) { return n; }
                return fib(n - 1) + fib(n - 2);
            }
            fn main() -> i32 { return fib(15); }
        ";
        assert_eq!(run_native(src, &[]).0, 610);
    }

    #[test]
    fn indirect_calls_through_table() {
        let src = "
            fn add(a: i32, b: i32) -> i32 { return a + b; }
            fn sub(a: i32, b: i32) -> i32 { return a - b; }
            table ops = [add, sub];
            fn main(i: i32) -> i32 { return ops[i](20, 8); }
        ";
        assert_eq!(run_native(src, &[0]).0, 28);
        assert_eq!(run_native(src, &[1]).0, 12);
    }

    #[test]
    fn floats_match_interpreter() {
        let src = "
            array f64 V[32];
            fn main() -> i32 {
                var i: i32 = 0;
                for (i = 0; i < 32; i += 1) {
                    V[i] = sqrt(f64(i)) * 1.5 + f64(i) / 3.0;
                }
                var s: f64 = 0.0;
                for (i = 0; i < 32; i += 1) { s += V[i]; }
                var m: f64 = max(s, 100.0);
                return i32(m * 16.0) + i32(floor(s)) + i32(abs(0.0 - s));
            }
        ";
        assert_eq!(run_native(src, &[]).0 as u32, run_interp(src, &[]) as u32);
    }

    #[test]
    fn short_circuit_does_not_evaluate_rhs() {
        let src = "
            global i32 touched = 0;
            fn side(x: i32) -> i32 { touched = 1; return x; }
            fn main(c: i32) -> i32 {
                if (c != 0 && side(c) > 0) { return touched + 10; }
                return touched;
            }
        ";
        assert_eq!(run_native(src, &[0]).0, 0);
        assert_eq!(run_native(src, &[5]).0, 11);
    }

    #[test]
    fn break_continue_match_interpreter() {
        let src = "
            fn main() -> i32 {
                var i: i32 = 0;
                var s: i32 = 0;
                while (i < 50) {
                    i += 1;
                    if (i % 3 == 0) { continue; }
                    if (i > 30) { break; }
                    s += i;
                }
                return s + i;
            }
        ";
        assert_eq!(run_native(src, &[]).0 as u32, run_interp(src, &[]) as u32);
    }

    #[test]
    fn i64_and_casts() {
        let src = "
            fn main(a: i32) -> i32 {
                var x: i64 = i64(a) * i64(1000003);
                var u: u32 = u32(a) * u32(2654435761);
                var f: f64 = f64(x) / 7.0;
                return i32(x % i64(1000)) + i32(u >> u32(16)) + i32(f / 1.0e6);
            }
        ";
        for a in [1u64, 77, 4096] {
            assert_eq!(
                run_native(src, &[a]).0 as u32,
                run_interp(src, &[a]) as u32,
                "a={a}"
            );
        }
    }

    #[test]
    fn syscall_reaches_host() {
        use wasmperf_cpu::{HostEnv, HostOutcome, Memory};
        use wasmperf_isa::TrapKind;
        struct Recorder(Vec<[u64; 6]>);
        impl HostEnv for Recorder {
            fn call(
                &mut self,
                id: u32,
                args: &[u64; 6],
                _mem: &mut Memory,
            ) -> Result<HostOutcome, TrapKind> {
                assert_eq!(id, 0);
                self.0.push(*args);
                Ok(HostOutcome::Ret {
                    value: 99,
                    kernel_cycles: 10,
                })
            }
        }
        let src = "fn main() -> i32 { return syscall(4, 1, 2, 3); }";
        let prog = wasmperf_cir::compile(src).unwrap();
        let module = compile(&prog, &CompileOptions::default());
        let mut m = Machine::new(&module, Recorder(Vec::new()));
        let out = m.run(module.entry.unwrap(), &[], 1_000_000).unwrap();
        assert_eq!(out.ret, 99);
        assert_eq!(out.counters.host_calls, 1);
        assert_eq!(m.host().0[0][..4], [4, 1, 2, 3]);
    }

    #[test]
    fn unrolling_reduces_branches() {
        let src = "
            array i32 A[4096];
            fn main() -> i32 {
                var i: i32 = 0;
                var s: i32 = 0;
                for (i = 0; i < 4096; i += 1) { s += A[i] + i; }
                return s;
            }
        ";
        let prog = wasmperf_cir::compile(src).unwrap();
        let with = compile(&prog, &CompileOptions::default());
        let without = compile(
            &prog,
            &CompileOptions {
                unroll: false,
                ..CompileOptions::default()
            },
        );
        // Unrolling's effect in this model is static code growth (the
        // I-cache lever behind the paper's 429.mcf anomaly) at equal or
        // slightly lower dynamic branch counts.
        assert!(with.code_bytes() > without.code_bytes());
        let run = |module: &Module| {
            let mut m = Machine::new(module, NullHost);
            let out = m.run(module.entry.unwrap(), &[], 100_000_000).unwrap();
            (out.ret, out.counters)
        };
        let (rw, cw) = run(&with);
        let (rwo, cwo) = run(&without);
        assert_eq!(rw, rwo);
        assert!(cw.branches_retired <= cwo.branches_retired);
    }

    #[test]
    fn deep_expression_pressure() {
        // Expression with many live subexpressions; result must match the
        // interpreter even if spills occur.
        let src = "
            fn main(a: i32) -> i32 {
                var t1: i32 = a + 1;
                var t2: i32 = a * 2;
                var t3: i32 = a ^ 3;
                var t4: i32 = a - 4;
                var t5: i32 = a | 5;
                var t6: i32 = a & 6;
                var t7: i32 = a << 1;
                var t8: i32 = a >> 1;
                var t9: i32 = a + 9;
                var t10: i32 = a * 10;
                var t11: i32 = a - 11;
                var t12: i32 = a ^ 12;
                var t13: i32 = a + 13;
                var t14: i32 = a * 14;
                return ((t1 + t2) * (t3 + t4) - (t5 + t6) * (t7 + t8))
                     + ((t9 + t10) * (t11 + t12) - (t13 + t14) * (t1 + t3));
            }
        ";
        for a in [3u64, 1000] {
            assert_eq!(run_native(src, &[a]).0 as u32, run_interp(src, &[a]) as u32);
        }
    }
}
