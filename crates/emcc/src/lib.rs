//! emcc-lite: the Emscripten-analog compiler, CLite HIR → WebAssembly.
//!
//! Produces WebAssembly-MVP modules with the structure Emscripten gives
//! real C programs:
//!
//! - one linear memory holding globals, arrays, and data at the layout the
//!   CLite type checker fixed;
//! - a stack-machine lowering with explicit address arithmetic (`i*4 +
//!   base` computed in code — constant offsets are folded into the memarg
//!   like Emscripten does, but scaled-index forms do not exist in wasm,
//!   which is the §6.1.3 root cause of the JITs' addressing-mode deficit);
//! - `while` loops in the canonical `block { loop { ..cond.. br_if 1;
//!   body; br 0 } }` shape — two branches per iteration where native code
//!   generation uses one (§5.1.3);
//! - indirect calls through one merged `funcref` table with an element
//!   segment, checked dynamically by the engine (§6.2.3); and
//! - a single `env.syscall` import (six `i32` parameters, padded with
//!   zeros) that Browsix services.
//!
//! Every produced module passes the `wasmperf-wasm` validator; the crate's
//! tests assert this over a range of programs.

use wasmperf_cir::hir::{HBinOp, HExpr, HProgram, HStmt, HTy, HUnOp, MemWidth};
use wasmperf_wasm::instr::SubWidth;
use wasmperf_wasm::{
    BlockType, CvtOp, DataSegment, ElemSegment, Export, ExportKind, FBinop, FRelop, FUnop, FuncDef,
    FuncType, IBinop, IRelop, IUnop, Import, ImportKind, Instr, Limits, MemArg, NumWidth, ValType,
    WasmModule,
};

/// Converts an HIR type to a wasm value type.
fn vt(ty: HTy) -> ValType {
    match ty {
        HTy::I32 => ValType::I32,
        HTy::I64 => ValType::I64,
        HTy::F32 => ValType::F32,
        HTy::F64 => ValType::F64,
    }
}

fn nw(ty: HTy) -> NumWidth {
    match ty {
        HTy::I32 | HTy::F32 => NumWidth::X32,
        HTy::I64 | HTy::F64 => NumWidth::X64,
    }
}

/// Control-stack entry tracked during lowering, for `br` depth math.
#[derive(Debug, Clone, Copy)]
enum Ctrl {
    /// A `block` used as a loop exit (break target).
    BreakBlock,
    /// A `loop` header (continue target of a `while` loop).
    LoopHeader,
    /// A `block` whose end is the continue target (do..while bodies fall
    /// through to the condition test).
    ContinueBlock,
    /// Any other enclosing block/if (depth ballast).
    Other,
}

#[derive(Default)]
struct FnCtx {
    /// Control nesting, innermost last.
    ctrl: Vec<Ctrl>,
    /// Local slot types, parameters first; lowering may append scratch
    /// locals (e.g. to hold a call_indirect index across argument
    /// evaluation).
    locals: Vec<HTy>,
}

impl FnCtx {
    /// Allocates a fresh scratch local of `ty` and returns its index.
    fn scratch(&mut self, ty: HTy) -> u32 {
        self.locals.push(ty);
        (self.locals.len() - 1) as u32
    }

    /// Branch depth to the innermost break target.
    fn break_depth(&self) -> u32 {
        let mut d = 0;
        for c in self.ctrl.iter().rev() {
            match c {
                Ctrl::BreakBlock => return d,
                _ => d += 1,
            }
        }
        panic!("break outside loop (typechecked)");
    }

    /// Branch depth to the innermost continue target.
    fn continue_depth(&self) -> u32 {
        let mut d = 0;
        for c in self.ctrl.iter().rev() {
            match c {
                Ctrl::LoopHeader | Ctrl::ContinueBlock => return d,
                _ => d += 1,
            }
        }
        panic!("continue outside loop (typechecked)");
    }

    fn lower_expr(&mut self, e: &HExpr, out: &mut Vec<Instr>) {
        match e {
            HExpr::Const { ty, bits } => out.push(match ty {
                HTy::I32 => Instr::I32Const(*bits as u32 as i32),
                HTy::I64 => Instr::I64Const(*bits as i64),
                HTy::F32 => Instr::F32Const(*bits as u32),
                HTy::F64 => Instr::F64Const(*bits),
            }),
            HExpr::Local { idx, .. } => out.push(Instr::LocalGet(*idx)),
            HExpr::Load {
                ty,
                width,
                signed,
                addr,
            } => {
                let (base, offset) = split_const_offset(addr);
                self.lower_expr(base, out);
                let sub = sub_of(*ty, *width, *signed);
                out.push(Instr::Load {
                    ty: vt(*ty),
                    sub,
                    memarg: MemArg::natural(width.bytes(), offset),
                });
            }
            HExpr::Unary { op, ty, arg } => match op {
                HUnOp::Neg if ty.is_int() => {
                    // wasm has no integer negate: 0 - x.
                    out.push(match ty {
                        HTy::I32 => Instr::I32Const(0),
                        _ => Instr::I64Const(0),
                    });
                    self.lower_expr(arg, out);
                    out.push(Instr::IBinop(nw(*ty), IBinop::Sub));
                }
                HUnOp::Neg => {
                    self.lower_expr(arg, out);
                    out.push(Instr::FUnop(nw(*ty), FUnop::Neg));
                }
                HUnOp::Eqz => {
                    self.lower_expr(arg, out);
                    out.push(Instr::ITestop(nw(*ty)));
                }
                HUnOp::BitNot => {
                    self.lower_expr(arg, out);
                    out.push(match ty {
                        HTy::I32 => Instr::I32Const(-1),
                        _ => Instr::I64Const(-1),
                    });
                    out.push(Instr::IBinop(nw(*ty), IBinop::Xor));
                }
                HUnOp::Clz | HUnOp::Ctz | HUnOp::Popcnt => {
                    self.lower_expr(arg, out);
                    let iu = match op {
                        HUnOp::Clz => IUnop::Clz,
                        HUnOp::Ctz => IUnop::Ctz,
                        _ => IUnop::Popcnt,
                    };
                    out.push(Instr::IUnop(nw(*ty), iu));
                }
                HUnOp::Sqrt
                | HUnOp::Abs
                | HUnOp::Floor
                | HUnOp::Ceil
                | HUnOp::TruncF
                | HUnOp::Nearest => {
                    self.lower_expr(arg, out);
                    let fu = match op {
                        HUnOp::Sqrt => FUnop::Sqrt,
                        HUnOp::Abs => FUnop::Abs,
                        HUnOp::Floor => FUnop::Floor,
                        HUnOp::Ceil => FUnop::Ceil,
                        HUnOp::TruncF => FUnop::Trunc,
                        _ => FUnop::Nearest,
                    };
                    out.push(Instr::FUnop(nw(*ty), fu));
                }
            },
            HExpr::Binary { op, ty, lhs, rhs } => {
                self.lower_expr(lhs, out);
                self.lower_expr(rhs, out);
                out.push(binop_instr(*op, *ty));
            }
            HExpr::ShortCircuit { is_and, lhs, rhs } => {
                // a && b  =>  if (a) { b != 0 } else { 0 }
                // a || b  =>  if (a) { 1 } else { b != 0 }
                self.lower_expr(lhs, out);
                let mut then_b = Vec::new();
                let mut else_b = Vec::new();
                self.ctrl.push(Ctrl::Other);
                if *is_and {
                    self.lower_bool(rhs, &mut then_b);
                    else_b.push(Instr::I32Const(0));
                } else {
                    then_b.push(Instr::I32Const(1));
                    self.lower_bool(rhs, &mut else_b);
                }
                self.ctrl.pop();
                out.push(Instr::If(BlockType::Value(ValType::I32), then_b, else_b));
            }
            HExpr::Cast {
                from,
                to,
                signed,
                arg,
            } => {
                self.lower_expr(arg, out);
                out.push(Instr::Cvt(cvt_op(*from, *to, *signed)));
            }
            HExpr::Call { func, args, .. } => {
                for a in args {
                    self.lower_expr(a, out);
                }
                // Function index space: import 0 is env.syscall.
                out.push(Instr::Call(func + 1));
            }
            HExpr::CallIndirect {
                sig,
                table_base,
                index,
                args,
                ..
            } => {
                // The index expression evaluates in source order — before
                // the arguments — matching the CLite interpreter and the
                // native backend. wasm wants the index on top of the stack
                // after the arguments, so an index that could trap or have
                // side effects is stashed in a scratch local; constants and
                // bare locals are simply re-emitted in operand position.
                let stashed = match &**index {
                    HExpr::Const { .. } | HExpr::Local { .. } => None,
                    _ => {
                        self.lower_expr(index, out);
                        let tmp = self.scratch(HTy::I32);
                        out.push(Instr::LocalSet(tmp));
                        Some(tmp)
                    }
                };
                for a in args {
                    self.lower_expr(a, out);
                }
                match stashed {
                    Some(tmp) => out.push(Instr::LocalGet(tmp)),
                    None => self.lower_expr(index, out),
                }
                if *table_base != 0 {
                    out.push(Instr::I32Const(*table_base as i32));
                    out.push(Instr::IBinop(NumWidth::X32, IBinop::Add));
                }
                // CLite signature indices coincide with wasm type indices
                // (signatures are interned first in `compile`).
                out.push(Instr::CallIndirect(*sig));
            }
            HExpr::Syscall { args } => {
                for a in args {
                    self.lower_expr(a, out);
                }
                for _ in args.len()..6 {
                    out.push(Instr::I32Const(0));
                }
                out.push(Instr::Call(0));
            }
        }
    }

    /// Lowers an expression and normalizes it to 0/1.
    fn lower_bool(&mut self, e: &HExpr, out: &mut Vec<Instr>) {
        self.lower_expr(e, out);
        if !is_boolean(e) {
            out.push(Instr::ITestop(NumWidth::X32));
            out.push(Instr::ITestop(NumWidth::X32));
        }
    }

    fn lower_stmts(&mut self, stmts: &[HStmt], out: &mut Vec<Instr>) {
        for s in stmts {
            self.lower_stmt(s, out);
        }
    }

    fn lower_stmt(&mut self, s: &HStmt, out: &mut Vec<Instr>) {
        match s {
            HStmt::SetLocal { idx, value } => {
                self.lower_expr(value, out);
                out.push(Instr::LocalSet(*idx));
            }
            HStmt::Store {
                ty,
                width,
                addr,
                value,
            } => {
                let (base, offset) = split_const_offset(addr);
                self.lower_expr(base, out);
                self.lower_expr(value, out);
                let sub = store_sub_of(*ty, *width);
                out.push(Instr::Store {
                    ty: vt(*ty),
                    sub,
                    memarg: MemArg::natural(width.bytes(), offset),
                });
            }
            HStmt::If {
                cond,
                then_body,
                else_body,
            } => {
                self.lower_expr(cond, out);
                self.ctrl.push(Ctrl::Other);
                let mut t = Vec::new();
                self.lower_stmts(then_body, &mut t);
                let mut e = Vec::new();
                self.lower_stmts(else_body, &mut e);
                self.ctrl.pop();
                out.push(Instr::If(BlockType::Empty, t, e));
            }
            HStmt::While { cond, body } => {
                // block { loop { cond; eqz; br_if 1; body; br 0 } } — the
                // canonical Emscripten shape with two branches/iteration.
                self.ctrl.push(Ctrl::BreakBlock);
                self.ctrl.push(Ctrl::LoopHeader);
                let mut inner = Vec::new();
                self.lower_expr(cond, &mut inner);
                inner.push(Instr::ITestop(NumWidth::X32));
                inner.push(Instr::BrIf(1));
                self.lower_stmts(body, &mut inner);
                inner.push(Instr::Br(0));
                self.ctrl.pop();
                self.ctrl.pop();
                out.push(Instr::Block(
                    BlockType::Empty,
                    vec![Instr::Loop(BlockType::Empty, inner)],
                ));
            }
            HStmt::DoWhile { body, cond } => {
                // block { loop { block { body } cond; br_if 0 } } — the
                // inner block is the `continue` target, so continuing
                // falls through to the condition test (do..while
                // semantics), not back to the body top.
                self.ctrl.push(Ctrl::BreakBlock);
                self.ctrl.push(Ctrl::Other); // the loop frame itself
                self.ctrl.push(Ctrl::ContinueBlock);
                let mut body_block = Vec::new();
                self.lower_stmts(body, &mut body_block);
                self.ctrl.pop();
                self.ctrl.pop();
                self.ctrl.pop();
                self.ctrl.push(Ctrl::BreakBlock);
                self.ctrl.push(Ctrl::Other);
                let mut inner = vec![Instr::Block(BlockType::Empty, body_block)];
                self.lower_expr(cond, &mut inner);
                inner.push(Instr::BrIf(0));
                self.ctrl.pop();
                self.ctrl.pop();
                out.push(Instr::Block(
                    BlockType::Empty,
                    vec![Instr::Loop(BlockType::Empty, inner)],
                ));
            }
            HStmt::Break => out.push(Instr::Br(self.break_depth())),
            // `continue` branches to the loop header; for `while` loops the
            // header re-tests the condition. The CLite front end only emits
            // `Continue` where this is the correct semantics.
            HStmt::Continue => out.push(Instr::Br(self.continue_depth())),
            HStmt::Return(v) => {
                if let Some(e) = v {
                    self.lower_expr(e, out);
                }
                out.push(Instr::Return);
            }
            HStmt::Expr(e) => {
                let has_result = e.ty().is_some();
                self.lower_expr(e, out);
                if has_result {
                    out.push(Instr::Drop);
                }
            }
        }
    }
}

fn is_boolean(e: &HExpr) -> bool {
    match e {
        HExpr::Binary { op, .. } => op.is_cmp(),
        HExpr::Unary { op, .. } => matches!(op, HUnOp::Eqz),
        HExpr::ShortCircuit { .. } => true,
        HExpr::Const { ty: HTy::I32, bits } => *bits <= 1,
        _ => false,
    }
}

/// Splits `addr` into (base expression, constant offset) for memarg
/// folding, the way Emscripten folds `base + const` addressing.
fn split_const_offset(addr: &HExpr) -> (&HExpr, u32) {
    if let HExpr::Binary {
        op: HBinOp::Add,
        lhs,
        rhs,
        ..
    } = addr
    {
        if let HExpr::Const { bits, .. } = **rhs {
            if bits <= i32::MAX as u64 {
                return (lhs, bits as u32);
            }
        }
        if let HExpr::Const { bits, .. } = **lhs {
            if bits <= i32::MAX as u64 {
                return (rhs, bits as u32);
            }
        }
    }
    (addr, 0)
}

fn sub_of(ty: HTy, width: MemWidth, signed: bool) -> Option<(SubWidth, bool)> {
    let natural = MemWidth::of(ty);
    if width == natural {
        None
    } else {
        let sw = match width {
            MemWidth::W8 => SubWidth::B8,
            MemWidth::W16 => SubWidth::B16,
            MemWidth::W32 => SubWidth::B32,
            MemWidth::W64 => unreachable!("W64 is always natural"),
        };
        Some((sw, signed))
    }
}

fn store_sub_of(ty: HTy, width: MemWidth) -> Option<SubWidth> {
    let natural = MemWidth::of(ty);
    if width == natural {
        None
    } else {
        Some(match width {
            MemWidth::W8 => SubWidth::B8,
            MemWidth::W16 => SubWidth::B16,
            MemWidth::W32 => SubWidth::B32,
            MemWidth::W64 => unreachable!(),
        })
    }
}

fn binop_instr(op: HBinOp, ty: HTy) -> Instr {
    use HBinOp::*;
    let w = nw(ty);
    if ty.is_int() {
        match op {
            Add => Instr::IBinop(w, IBinop::Add),
            Sub => Instr::IBinop(w, IBinop::Sub),
            Mul => Instr::IBinop(w, IBinop::Mul),
            DivS => Instr::IBinop(w, IBinop::DivS),
            DivU => Instr::IBinop(w, IBinop::DivU),
            RemS => Instr::IBinop(w, IBinop::RemS),
            RemU => Instr::IBinop(w, IBinop::RemU),
            And => Instr::IBinop(w, IBinop::And),
            Or => Instr::IBinop(w, IBinop::Or),
            Xor => Instr::IBinop(w, IBinop::Xor),
            Shl => Instr::IBinop(w, IBinop::Shl),
            ShrS => Instr::IBinop(w, IBinop::ShrS),
            ShrU => Instr::IBinop(w, IBinop::ShrU),
            Rotl => Instr::IBinop(w, IBinop::Rotl),
            Rotr => Instr::IBinop(w, IBinop::Rotr),
            Eq => Instr::IRelop(w, IRelop::Eq),
            Ne => Instr::IRelop(w, IRelop::Ne),
            LtS => Instr::IRelop(w, IRelop::LtS),
            LtU => Instr::IRelop(w, IRelop::LtU),
            GtS => Instr::IRelop(w, IRelop::GtS),
            GtU => Instr::IRelop(w, IRelop::GtU),
            LeS => Instr::IRelop(w, IRelop::LeS),
            LeU => Instr::IRelop(w, IRelop::LeU),
            GeS => Instr::IRelop(w, IRelop::GeS),
            GeU => Instr::IRelop(w, IRelop::GeU),
            FMin | FMax => unreachable!("float-only op on int type"),
        }
    } else {
        match op {
            Add => Instr::FBinop(w, FBinop::Add),
            Sub => Instr::FBinop(w, FBinop::Sub),
            Mul => Instr::FBinop(w, FBinop::Mul),
            DivS => Instr::FBinop(w, FBinop::Div),
            FMin => Instr::FBinop(w, FBinop::Min),
            FMax => Instr::FBinop(w, FBinop::Max),
            Eq => Instr::FRelop(w, FRelop::Eq),
            Ne => Instr::FRelop(w, FRelop::Ne),
            LtS => Instr::FRelop(w, FRelop::Lt),
            GtS => Instr::FRelop(w, FRelop::Gt),
            LeS => Instr::FRelop(w, FRelop::Le),
            GeS => Instr::FRelop(w, FRelop::Ge),
            other => unreachable!("int-only op {other:?} on float type"),
        }
    }
}

fn cvt_op(from: HTy, to: HTy, signed: bool) -> CvtOp {
    use CvtOp::*;
    match (from, to, signed) {
        (HTy::I64, HTy::I32, _) => I32WrapI64,
        (HTy::I32, HTy::I64, true) => I64ExtendI32S,
        (HTy::I32, HTy::I64, false) => I64ExtendI32U,
        (HTy::I32, HTy::F32, true) => F32ConvertI32S,
        (HTy::I32, HTy::F32, false) => F32ConvertI32U,
        (HTy::I32, HTy::F64, true) => F64ConvertI32S,
        (HTy::I32, HTy::F64, false) => F64ConvertI32U,
        (HTy::I64, HTy::F32, true) => F32ConvertI64S,
        (HTy::I64, HTy::F32, false) => F32ConvertI64U,
        (HTy::I64, HTy::F64, true) => F64ConvertI64S,
        (HTy::I64, HTy::F64, false) => F64ConvertI64U,
        (HTy::F32, HTy::I32, true) => I32TruncF32S,
        (HTy::F32, HTy::I32, false) => I32TruncF32U,
        (HTy::F64, HTy::I32, true) => I32TruncF64S,
        (HTy::F64, HTy::I32, false) => I32TruncF64U,
        (HTy::F32, HTy::I64, true) => I64TruncF32S,
        (HTy::F32, HTy::I64, false) => I64TruncF32U,
        (HTy::F64, HTy::I64, true) => I64TruncF64S,
        (HTy::F64, HTy::I64, false) => I64TruncF64U,
        (HTy::F32, HTy::F64, _) => F64PromoteF32,
        (HTy::F64, HTy::F32, _) => F32DemoteF64,
        (a, b, _) => unreachable!("cast {a} -> {b}"),
    }
}

/// Compiles a typed CLite program to a WebAssembly module.
///
/// The module imports `env.syscall : (i32 ×6) -> i32` as function 0; CLite
/// function `i` becomes wasm function `i + 1`. All functions are exported
/// under their source names, and CLite signature indices coincide with
/// wasm type indices.
pub fn compile(prog: &HProgram) -> WasmModule {
    let mut m = WasmModule::default();

    // Type section: CLite signatures first so signature index == wasm type
    // index, then any extra types.
    for sig in &prog.sigs {
        m.types.push(FuncType::new(
            sig.params.iter().map(|t| vt(*t)).collect(),
            sig.ret.map(vt).into_iter().collect(),
        ));
    }
    let syscall_ty = m.intern_type(FuncType::new(vec![ValType::I32; 6], vec![ValType::I32]));
    m.imports.push(Import {
        module: "env".into(),
        field: "syscall".into(),
        kind: ImportKind::Func(syscall_ty),
    });

    // Memory: linear memory per the CLite layout.
    let pages = prog.memory_size.div_ceil(65536) as u32;
    m.memory = Some(Limits {
        min: pages,
        max: Some(pages.max(1) * 4),
    });
    for (addr, bytes) in &prog.data {
        m.data.push(DataSegment {
            offset: *addr as u32,
            bytes: bytes.clone(),
        });
    }

    // Table.
    if !prog.table.is_empty() {
        m.table = Some(Limits {
            min: prog.table.len() as u32,
            max: Some(prog.table.len() as u32),
        });
        m.elems.push(ElemSegment {
            offset: 0,
            funcs: prog.table.iter().map(|f| f + 1).collect(),
        });
    }

    // Functions.
    for (fi, f) in prog.funcs.iter().enumerate() {
        let ti = m.intern_type(FuncType::new(
            f.locals[..f.n_params as usize]
                .iter()
                .map(|t| vt(*t))
                .collect(),
            f.ret.map(vt).into_iter().collect(),
        ));
        let mut cx = FnCtx {
            ctrl: Vec::new(),
            locals: f.locals.clone(),
        };
        let mut body = Vec::new();
        cx.lower_stmts(&f.body, &mut body);
        // wasm requires the body to leave the declared result on the
        // stack; functions that always return explicitly end with
        // `unreachable` to satisfy the validator's fall-through check.
        if f.ret.is_some() {
            body.push(Instr::Unreachable);
        }
        m.funcs.push(FuncDef {
            type_idx: ti,
            locals: cx.locals[f.n_params as usize..]
                .iter()
                .map(|t| vt(*t))
                .collect(),
            body,
            name: f.name.clone(),
        });
        m.exports.push(Export {
            name: f.name.clone(),
            kind: ExportKind::Func(fi as u32 + 1),
        });
    }

    m
}

#[cfg(test)]
mod tests {
    use super::*;
    use wasmperf_cir::compile as clite;
    use wasmperf_wasm::{validate, Instance, NoImports, Value};

    fn to_wasm(src: &str) -> WasmModule {
        let prog = clite(src).expect("clite compiles");
        let m = compile(&prog);
        validate(&m).expect("module validates");
        m
    }

    fn run_main(src: &str, args: &[Value]) -> Option<Value> {
        let m = to_wasm(src);
        let mut inst = Instance::new(&m, NoImports).unwrap();
        inst.invoke_export("main", args).expect("runs")
    }

    #[test]
    fn minimal_program_runs() {
        assert_eq!(
            run_main("fn main() -> i32 { return 41 + 1; }", &[]),
            Some(Value::I32(42))
        );
    }

    #[test]
    fn loops_and_arrays_match_source_semantics() {
        let src = "
            const N = 32;
            array i32 A[N];
            fn main() -> i32 {
                var i: i32 = 0;
                var s: i32 = 0;
                for (i = 0; i < N; i += 1) { A[i] = i * 3; }
                for (i = 0; i < N; i += 1) { s += A[i]; }
                return s;
            }
        ";
        let expect: i32 = (0..32).map(|i| i * 3).sum();
        assert_eq!(run_main(src, &[]), Some(Value::I32(expect)));
    }

    #[test]
    fn while_lowering_shape() {
        // The canonical Emscripten shape: block { loop { cond; eqz;
        // br_if 1; body; br 0 } }.
        let m = to_wasm("fn main() -> i32 { var i: i32 = 9; while (i) { i -= 1; } return i; }");
        let body = &m.funcs[0].body;
        let block = body
            .iter()
            .find_map(|i| match i {
                Instr::Block(_, inner) => Some(inner),
                _ => None,
            })
            .expect("has block");
        let Instr::Loop(_, loop_body) = &block[0] else {
            panic!("block wraps loop");
        };
        assert!(matches!(loop_body.last(), Some(Instr::Br(0))));
        assert!(loop_body.iter().any(|i| matches!(i, Instr::BrIf(1))));
    }

    #[test]
    fn break_and_continue_depths() {
        let src = "
            fn main() -> i32 {
                var i: i32 = 0;
                var s: i32 = 0;
                while (i < 100) {
                    i += 1;
                    if (i % 2 == 0) { continue; }
                    if (i > 10) { break; }
                    s += i;
                }
                return s;
            }
        ";
        // Odd numbers 1..=9: 25.
        assert_eq!(run_main(src, &[]), Some(Value::I32(25)));
    }

    #[test]
    fn memarg_offset_folded_for_globals() {
        let m = to_wasm(
            "global i32 g = 5;
             fn main() -> i32 { return g; }",
        );
        let body = &m.funcs[0].body;
        // The global load is a constant address; after offset folding the
        // base is a constant 0x400 or the offset is 0x400.
        assert!(
            body.iter().any(|i| matches!(
                i,
                Instr::Load { memarg, .. } if memarg.offset == 0x400
            ) || body.iter().any(|i| matches!(i, Instr::I32Const(0x400)))),
            "{body:?}"
        );
    }

    #[test]
    fn indirect_calls_work() {
        let src = "
            fn a(x: i32) -> i32 { return x + 1; }
            fn b(x: i32) -> i32 { return x * 2; }
            table t = [a, b];
            fn main(i: i32) -> i32 { return t[i](10); }
        ";
        assert_eq!(run_main(src, &[Value::I32(0)]), Some(Value::I32(11)));
        assert_eq!(run_main(src, &[Value::I32(1)]), Some(Value::I32(20)));
    }

    #[test]
    fn syscall_becomes_import_call() {
        struct Host(Vec<Vec<i32>>);
        impl wasmperf_wasm::ImportHost for Host {
            fn call(
                &mut self,
                module: &str,
                field: &str,
                args: &[Value],
                _mem: &mut Vec<u8>,
            ) -> Result<Option<Value>, wasmperf_wasm::WasmTrap> {
                assert_eq!((module, field), ("env", "syscall"));
                self.0.push(args.iter().map(|v| v.unwrap_i32()).collect());
                Ok(Some(Value::I32(7)))
            }
        }
        let m = to_wasm("fn main() -> i32 { return syscall(4, 1, 2); }");
        let mut inst = Instance::new(&m, Host(Vec::new())).unwrap();
        let r = inst.invoke_export("main", &[]).unwrap();
        assert_eq!(r, Some(Value::I32(7)));
        assert_eq!(inst.host().0, vec![vec![4, 1, 2, 0, 0, 0]]);
    }

    #[test]
    fn float_programs_run() {
        let src = "
            fn main() -> i32 {
                var x: f64 = 0.0;
                var i: i32 = 0;
                for (i = 1; i <= 10; i += 1) { x += sqrt(f64(i)); }
                return i32(x * 1000.0);
            }
        ";
        let expect: f64 = (1..=10).map(|i| (i as f64).sqrt()).sum();
        assert_eq!(
            run_main(src, &[]),
            Some(Value::I32((expect * 1000.0) as i32))
        );
    }

    #[test]
    fn short_circuit_semantics_preserved() {
        let src = "
            fn boom(x: i32) -> i32 { return 1 / x; }
            fn main(c: i32) -> i32 {
                if (c != 0 && boom(c) >= 0) { return 1; }
                return 0;
            }
        ";
        assert_eq!(run_main(src, &[Value::I32(0)]), Some(Value::I32(0)));
        assert_eq!(run_main(src, &[Value::I32(4)]), Some(Value::I32(1)));
    }

    #[test]
    fn i64_and_subword_arrays() {
        let src = "
            array u8 bytes[16];
            array i16 shorts[8];
            fn main() -> i32 {
                bytes[3] = 250;
                shorts[2] = 0 - 7;
                var x: i64 = i64(bytes[3]) * i64(1000000);
                return i32(x / i64(1000)) + shorts[2];
            }
        ";
        assert_eq!(run_main(src, &[]), Some(Value::I32(250_000 - 7)));
    }

    #[test]
    fn continue_in_do_while_retests_condition() {
        let src = "
            fn main() -> i32 {
                var i: i32 = 0;
                var s: i32 = 0;
                do {
                    i += 1;
                    if (i % 2 == 0) { continue; }
                    s += i;
                } while (i < 9);
                return s * 100 + i;
            }
        ";
        // Oracle from the CLite interpreter.
        let prog = clite(src).unwrap();
        let mut ci = wasmperf_cir::Interp::new(&prog, wasmperf_cir::NoSyscalls);
        let expect = ci.run("main", &[]).unwrap().unwrap() as u32 as i32;
        assert_eq!(run_main(src, &[]), Some(Value::I32(expect)));
    }

    #[test]
    fn recursion_runs() {
        let src = "
            fn fib(n: i32) -> i32 {
                if (n < 2) { return n; }
                return fib(n - 1) + fib(n - 2);
            }
            fn main() -> i32 { return fib(12); }
        ";
        assert_eq!(run_main(src, &[]), Some(Value::I32(144)));
    }

    #[test]
    fn differential_with_clite_interpreter() {
        // A program exercising most operators, run under both the CLite
        // interpreter and the wasm interpreter.
        let src = "
            const N = 64;
            array f64 V[N];
            array u8 B[N];
            global i64 acc = 0;
            fn mix(x: i32) -> i32 {
                return i32(rotl(u32(x) * u32(2654435761), u32(13))) ^ (x >> 3);
            }
            fn main() -> i32 {
                var i: i32 = 0;
                for (i = 0; i < N; i += 1) {
                    V[i] = sqrt(f64(i) + 0.5) * 3.25;
                    B[i] = mix(i) & 255;
                    acc += i64(B[i]) * i64(7);
                }
                var s: f64 = 0.0;
                for (i = 0; i < N; i += 1) { s += V[i]; }
                return i32(s) + i32(acc % i64(100000)) + mix(12345);
            }
        ";
        let prog = clite(src).unwrap();
        let mut ci = wasmperf_cir::Interp::new(&prog, wasmperf_cir::NoSyscalls);
        let expect = ci.run("main", &[]).unwrap().unwrap() as u32 as i32;

        assert_eq!(run_main(src, &[]), Some(Value::I32(expect)));
    }
}
