//! Assembly builder with forward-reference label support.
//!
//! Both backends emit code through [`AsmBuilder`]: create labels up front,
//! emit instructions referencing them, and bind each label at the point it
//! should resolve to. `finish` checks that every referenced label was bound.

use crate::inst::Inst;
use crate::module::{Function, Label};

/// Incrementally builds one [`Function`].
#[derive(Debug, Default)]
pub struct AsmBuilder {
    name: String,
    insts: Vec<Inst>,
    label_offsets: Vec<u32>,
    frame_size: u32,
}

impl AsmBuilder {
    /// Creates a builder for a function named `name`.
    pub fn new(name: impl Into<String>) -> AsmBuilder {
        AsmBuilder {
            name: name.into(),
            ..AsmBuilder::default()
        }
    }

    /// Allocates a fresh, unbound label.
    pub fn new_label(&mut self) -> Label {
        let l = Label(self.label_offsets.len() as u32);
        self.label_offsets.push(u32::MAX);
        l
    }

    /// Binds `label` to the next emitted instruction.
    ///
    /// # Panics
    ///
    /// Panics if the label is already bound.
    pub fn bind(&mut self, label: Label) {
        let slot = &mut self.label_offsets[label.0 as usize];
        assert_eq!(*slot, u32::MAX, "label {label} bound twice");
        *slot = self.insts.len() as u32;
    }

    /// Emits one instruction, returning its index.
    pub fn emit(&mut self, inst: Inst) -> usize {
        self.insts.push(inst);
        self.insts.len() - 1
    }

    /// Index the next emitted instruction will have.
    pub fn here(&self) -> usize {
        self.insts.len()
    }

    /// Number of instructions emitted so far.
    pub fn len(&self) -> usize {
        self.insts.len()
    }

    /// True when no instructions have been emitted.
    pub fn is_empty(&self) -> bool {
        self.insts.is_empty()
    }

    /// Sets the stack-frame size in bytes (spill area).
    pub fn set_frame_size(&mut self, bytes: u32) {
        self.frame_size = bytes;
    }

    /// Replaces a previously emitted instruction (used by emitters that
    /// patch prologues once the spill-slot count is known).
    pub fn patch(&mut self, index: usize, inst: Inst) {
        self.insts[index] = inst;
    }

    /// Finalizes the function.
    ///
    /// # Panics
    ///
    /// Panics if any label referenced by a branch was never bound.
    pub fn finish(self) -> Function {
        for inst in &self.insts {
            let target = match inst {
                Inst::Jmp { target } | Inst::Jcc { target, .. } => Some(*target),
                _ => None,
            };
            if let Some(l) = target {
                assert_ne!(
                    self.label_offsets[l.0 as usize],
                    u32::MAX,
                    "branch to unbound label {l} in {}",
                    self.name
                );
            }
        }
        Function {
            name: self.name,
            insts: self.insts,
            label_offsets: self.label_offsets,
            frame_size: self.frame_size,
            inst_addrs: Vec::new(),
            inst_tags: Vec::new(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::inst::{Cc, Operand, Width};
    use crate::reg::Reg;

    #[test]
    fn forward_label_resolution() {
        let mut b = AsmBuilder::new("loop");
        let top = b.new_label();
        let exit = b.new_label();
        b.bind(top);
        b.emit(Inst::Cmp {
            lhs: Operand::Reg(Reg::Rax),
            rhs: Operand::Imm(0),
            width: Width::W64,
        });
        b.emit(Inst::Jcc {
            cc: Cc::E,
            target: exit,
        });
        b.emit(Inst::Jmp { target: top });
        b.bind(exit);
        b.emit(Inst::Ret);
        let f = b.finish();
        assert_eq!(f.resolve(Label(0)), 0);
        assert_eq!(f.resolve(Label(1)), 3);
    }

    #[test]
    #[should_panic(expected = "unbound label")]
    fn unbound_label_panics() {
        let mut b = AsmBuilder::new("bad");
        let l = b.new_label();
        b.emit(Inst::Jmp { target: l });
        let _ = b.finish();
    }

    #[test]
    #[should_panic(expected = "bound twice")]
    fn double_bind_panics() {
        let mut b = AsmBuilder::new("bad");
        let l = b.new_label();
        b.bind(l);
        b.bind(l);
    }

    #[test]
    fn patch_replaces_instruction() {
        let mut b = AsmBuilder::new("p");
        let i = b.emit(Inst::Nop);
        b.emit(Inst::Ret);
        b.patch(
            i,
            Inst::Mov {
                dst: Operand::Reg(Reg::Rax),
                src: Operand::Imm(7),
                width: Width::W64,
            },
        );
        let f = b.finish();
        assert!(matches!(f.insts[0], Inst::Mov { .. }));
    }
}
