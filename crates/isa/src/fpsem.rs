//! Floating-point semantics of the [`FAluOp::Min`]/[`FAluOp::Max`] ALU ops.
//!
//! Every executor in the stack — the CLite reference interpreter, the wasm
//! reference interpreter, and the CPU simulator running clanglite or
//! wasmjit output — must compute `min`/`max` identically, or differential
//! testing of the four pipelines is meaningless. The semantics chosen are
//! WebAssembly's `fmin`/`fmax`: NaN-propagating, and `-0 < +0`. Real JITs
//! emit a short SSE sequence (not a bare `minsd`, whose operand-order NaN
//! behaviour is exactly the kind of divergence `difftest` exists to catch)
//! to implement these same rules, and clang lowers the source-level
//! intrinsic the same way, so one shared definition is faithful to all
//! backends.
//!
//! [`FAluOp::Min`]: crate::inst::FAluOp::Min
//! [`FAluOp::Max`]: crate::inst::FAluOp::Max

/// WebAssembly `fmin`: NaN-propagating, `min(-0, +0) = -0`.
pub fn wasm_min_f64(a: f64, b: f64) -> f64 {
    if a.is_nan() || b.is_nan() {
        f64::NAN
    } else if a == b {
        // Distinguish -0 from +0: `a == b` holds for the pair, so pick
        // the negative one.
        if a.is_sign_negative() {
            a
        } else {
            b
        }
    } else if a < b {
        a
    } else {
        b
    }
}

/// WebAssembly `fmax`: NaN-propagating, `max(-0, +0) = +0`.
pub fn wasm_max_f64(a: f64, b: f64) -> f64 {
    if a.is_nan() || b.is_nan() {
        f64::NAN
    } else if a == b {
        if a.is_sign_positive() {
            a
        } else {
            b
        }
    } else if a > b {
        a
    } else {
        b
    }
}

/// [`wasm_min_f64`] at f32 precision.
///
/// Computing through f64 is exact: min/max never rounds, it only selects
/// one of its operands (or produces NaN).
pub fn wasm_min_f32(a: f32, b: f32) -> f32 {
    wasm_min_f64(a as f64, b as f64) as f32
}

/// [`wasm_max_f64`] at f32 precision.
pub fn wasm_max_f32(a: f32, b: f32) -> f32 {
    wasm_max_f64(a as f64, b as f64) as f32
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nan_propagates_from_either_side() {
        assert!(wasm_min_f64(f64::NAN, 1.0).is_nan());
        assert!(wasm_min_f64(1.0, f64::NAN).is_nan());
        assert!(wasm_max_f64(f64::NAN, 1.0).is_nan());
        assert!(wasm_max_f64(1.0, f64::NAN).is_nan());
        assert!(wasm_min_f32(f32::NAN, 1.0).is_nan());
        assert!(wasm_max_f32(1.0, f32::NAN).is_nan());
    }

    #[test]
    fn signed_zeros_are_ordered() {
        assert!(wasm_min_f64(0.0, -0.0).is_sign_negative());
        assert!(wasm_min_f64(-0.0, 0.0).is_sign_negative());
        assert!(wasm_max_f64(0.0, -0.0).is_sign_positive());
        assert!(wasm_max_f64(-0.0, 0.0).is_sign_positive());
    }

    #[test]
    fn ordinary_ordering() {
        assert_eq!(wasm_min_f64(1.0, 2.0), 1.0);
        assert_eq!(wasm_max_f64(1.0, 2.0), 2.0);
        assert_eq!(wasm_min_f64(-1.0, f64::INFINITY), -1.0);
        assert_eq!(wasm_max_f64(f64::NEG_INFINITY, -1.0), -1.0);
    }
}
