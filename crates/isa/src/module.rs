//! Machine-code modules: functions, labels, and the indirect-call table.

use crate::inst::Inst;
use crate::reg::Reg;
use crate::size::encoded_len;
use core::fmt;

/// Identifies a function within a [`Module`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct FuncId(pub u32);

impl fmt::Display for FuncId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "f{}", self.0)
    }
}

/// A branch target within a function; resolved to an instruction index.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Label(pub u32);

impl fmt::Display for Label {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "L{}", self.0)
    }
}

/// One entry of the indirect-call function table.
///
/// WebAssembly engines store the table as (signature id, code pointer)
/// pairs and validate both bounds and signature on every `call_indirect`
/// (§6.2.3 of the paper). The native backend stores bare code pointers and
/// performs no checks; it uses `sig_id = 0`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TableEntry {
    /// Signature identifier checked by JITed `call_indirect` sequences.
    pub sig_id: u32,
    /// The callee, or `None` for an uninitialized slot (traps if called).
    pub func: Option<FuncId>,
}

/// Source-tag value for instructions with no wasm-instruction origin
/// (prologue/epilogue, trap stubs, native-backend code).
pub const NO_TAG: u32 = u32::MAX;

/// A compiled function: a flat instruction sequence with resolved labels.
#[derive(Debug, Clone, Default)]
pub struct Function {
    /// Human-readable name (source function name plus backend suffix).
    pub name: String,
    /// The instruction sequence.
    pub insts: Vec<Inst>,
    /// `label_offsets[l]` is the instruction index [`Label`] `l` refers to.
    pub label_offsets: Vec<u32>,
    /// Bytes of stack frame the executor reserves on entry (spill slots).
    pub frame_size: u32,
    /// Byte address of each instruction in the module's code image;
    /// assigned by [`Module::assign_addresses`].
    pub inst_addrs: Vec<u64>,
    /// Per-instruction source tags for the observability layer: the
    /// pre-order wasm instruction index each machine instruction was
    /// compiled from, or [`NO_TAG`]. Empty (treated as all-[`NO_TAG`])
    /// when the backend attaches no tags.
    pub inst_tags: Vec<u32>,
}

impl Function {
    /// Total encoded size of the function body in bytes.
    pub fn code_bytes(&self) -> u64 {
        self.insts.iter().map(|i| encoded_len(i) as u64).sum()
    }

    /// Resolves a label to its instruction index.
    ///
    /// # Panics
    ///
    /// Panics if the label was never bound.
    pub fn resolve(&self, l: Label) -> usize {
        let off = self.label_offsets[l.0 as usize];
        assert_ne!(off, u32::MAX, "unbound label {l}");
        off as usize
    }
}

/// How a module's heap accesses are recognised by the simulator's
/// sandbox layer (see [`Sandbox`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HeapBase {
    /// Wasm layout: every heap access addresses through this pinned
    /// membase register (which holds 0 at runtime, so the effective
    /// address *is* the heap offset). Accesses through any other base
    /// (stack, spill slots, absolute table loads) are not heap accesses.
    Pinned(Reg),
    /// asm.js layout: heap addresses are masked to a power of two and
    /// materialised in a scratch register. Any access whose base is a
    /// general-purpose register other than `Rsp`/`Rbp` is a heap access.
    Masked,
}

/// The sandboxing contract a compiled module declares to the simulator.
///
/// This models the *guard-page* strategy real engines use: no explicit
/// check instructions are emitted, but the hardware (here, the
/// simulator) faults any heap access at or beyond `heap_limit`. The
/// explicit-bounds ablation emits compare-and-trap sequences with
/// identical semantics, so all strategies are result-identical and only
/// their costs differ.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Sandbox {
    /// How heap accesses are distinguished from non-heap accesses.
    pub heap_base: HeapBase,
    /// First out-of-bounds heap byte: an access of width `w` at offset
    /// `a` traps iff `a + w > heap_limit`.
    pub heap_limit: u64,
    /// Modeled cycles for one protection-domain switch (WRPKRU-style).
    /// Charged twice (entry + exit) per host-call boundary crossing;
    /// zero for the bounds and guard strategies.
    pub switch_cycles: u32,
}

/// A complete machine-code module: the unit the CPU simulator executes.
#[derive(Debug, Clone, Default)]
pub struct Module {
    /// All functions; [`FuncId`] indexes this vector.
    pub funcs: Vec<Function>,
    /// The indirect-call function table.
    pub table: Vec<TableEntry>,
    /// Entry point (conventionally `main` / `_start`).
    pub entry: Option<FuncId>,
    /// Bytes of linear memory the program expects (data + heap); the
    /// simulator sizes its memory image from this.
    pub memory_size: u64,
    /// Initial data segments: (address, bytes).
    pub data: Vec<(u64, Vec<u8>)>,
    /// The sandboxing contract, if this module is sandboxed (wasm and
    /// asm.js pipelines). `None` for native modules: no heap
    /// classification, no checks, no domain-switch cost.
    pub sandbox: Option<Sandbox>,
}

impl Module {
    /// Returns the function for `id`.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn func(&self, id: FuncId) -> &Function {
        &self.funcs[id.0 as usize]
    }

    /// Looks up a function by name.
    pub fn func_by_name(&self, name: &str) -> Option<FuncId> {
        self.funcs
            .iter()
            .position(|f| f.name == name)
            .map(|i| FuncId(i as u32))
    }

    /// Total encoded code size in bytes across all functions.
    pub fn code_bytes(&self) -> u64 {
        self.funcs.iter().map(Function::code_bytes).sum()
    }

    /// Total number of instructions across all functions.
    pub fn inst_count(&self) -> usize {
        self.funcs.iter().map(|f| f.insts.len()).sum()
    }

    /// Lays functions out contiguously in a code image and records each
    /// instruction's byte address, which the L1 instruction-cache model
    /// uses. Functions are aligned to 16 bytes as real JITs and linkers do.
    pub fn assign_addresses(&mut self) {
        let mut addr: u64 = 0x1000;
        for f in &mut self.funcs {
            addr = (addr + 15) & !15;
            f.inst_addrs.clear();
            f.inst_addrs.reserve(f.insts.len());
            for inst in &f.insts {
                f.inst_addrs.push(addr);
                addr += encoded_len(inst) as u64;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::inst::{Inst, Operand, Width};
    use crate::reg::Reg;

    fn mov_rr() -> Inst {
        Inst::Mov {
            dst: Operand::Reg(Reg::Rax),
            src: Operand::Reg(Reg::Rbx),
            width: Width::W64,
        }
    }

    #[test]
    fn addresses_are_monotonic_and_aligned() {
        let mut m = Module::default();
        for n in 0..3 {
            m.funcs.push(Function {
                name: format!("f{n}"),
                insts: vec![mov_rr(), Inst::Ret],
                ..Function::default()
            });
        }
        m.assign_addresses();
        let mut last = 0;
        for f in &m.funcs {
            assert_eq!(f.inst_addrs.len(), f.insts.len());
            assert_eq!(f.inst_addrs[0] % 16, 0, "function start aligned");
            for &a in &f.inst_addrs {
                assert!(a > last || last == 0);
                last = a;
            }
        }
    }

    #[test]
    fn func_lookup_by_name() {
        let mut m = Module::default();
        m.funcs.push(Function {
            name: "main_native".into(),
            ..Function::default()
        });
        assert_eq!(m.func_by_name("main_native"), Some(FuncId(0)));
        assert_eq!(m.func_by_name("nope"), None);
    }

    #[test]
    fn code_bytes_sums_functions() {
        let f = Function {
            name: "f".into(),
            insts: vec![mov_rr(), Inst::Ret],
            ..Function::default()
        };
        let one = f.code_bytes();
        assert!(one > 0);
        let m = Module {
            funcs: vec![f.clone(), f],
            ..Module::default()
        };
        assert_eq!(m.code_bytes(), one * 2);
        assert_eq!(m.inst_count(), 4);
    }
}
