//! General-purpose and SSE register model.
//!
//! The register file mirrors x86-64: sixteen general-purpose registers and
//! sixteen `xmm` registers. Backends describe which registers they may
//! allocate via [`RegSet`]; the difference between Clang's full set and the
//! browsers' reduced sets (Chrome reserves `r13` for GC roots, `r10` as a
//! scratch register, and `rbx` as the wasm memory base; Firefox reserves
//! `r15` for the heap base and `r11` as scratch) is one of the root causes
//! of the register pressure the paper measures in §6.1.

use core::fmt;

/// A general-purpose x86-64 register.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
#[allow(missing_docs)]
pub enum Reg {
    Rax,
    Rcx,
    Rdx,
    Rbx,
    Rsp,
    Rbp,
    Rsi,
    Rdi,
    R8,
    R9,
    R10,
    R11,
    R12,
    R13,
    R14,
    R15,
}

impl Reg {
    /// All sixteen general-purpose registers, in encoding order.
    pub const ALL: [Reg; 16] = [
        Reg::Rax,
        Reg::Rcx,
        Reg::Rdx,
        Reg::Rbx,
        Reg::Rsp,
        Reg::Rbp,
        Reg::Rsi,
        Reg::Rdi,
        Reg::R8,
        Reg::R9,
        Reg::R10,
        Reg::R11,
        Reg::R12,
        Reg::R13,
        Reg::R14,
        Reg::R15,
    ];

    /// The System V AMD64 integer argument registers, in order.
    pub const SYSV_ARGS: [Reg; 6] = [Reg::Rdi, Reg::Rsi, Reg::Rdx, Reg::Rcx, Reg::R8, Reg::R9];

    /// Hardware encoding number (0–15).
    pub fn index(self) -> usize {
        self as usize
    }

    /// Register with the given hardware encoding number.
    ///
    /// # Panics
    ///
    /// Panics if `i >= 16`.
    pub fn from_index(i: usize) -> Reg {
        Reg::ALL[i]
    }

    /// Canonical lowercase name (64-bit form), e.g. `"rax"`.
    pub fn name(self) -> &'static str {
        match self {
            Reg::Rax => "rax",
            Reg::Rcx => "rcx",
            Reg::Rdx => "rdx",
            Reg::Rbx => "rbx",
            Reg::Rsp => "rsp",
            Reg::Rbp => "rbp",
            Reg::Rsi => "rsi",
            Reg::Rdi => "rdi",
            Reg::R8 => "r8",
            Reg::R9 => "r9",
            Reg::R10 => "r10",
            Reg::R11 => "r11",
            Reg::R12 => "r12",
            Reg::R13 => "r13",
            Reg::R14 => "r14",
            Reg::R15 => "r15",
        }
    }

    /// 32-bit sub-register name, e.g. `"eax"` / `"r8d"`.
    pub fn name32(self) -> &'static str {
        match self {
            Reg::Rax => "eax",
            Reg::Rcx => "ecx",
            Reg::Rdx => "edx",
            Reg::Rbx => "ebx",
            Reg::Rsp => "esp",
            Reg::Rbp => "ebp",
            Reg::Rsi => "esi",
            Reg::Rdi => "edi",
            Reg::R8 => "r8d",
            Reg::R9 => "r9d",
            Reg::R10 => "r10d",
            Reg::R11 => "r11d",
            Reg::R12 => "r12d",
            Reg::R13 => "r13d",
            Reg::R14 => "r14d",
            Reg::R15 => "r15d",
        }
    }

    /// True when the encoding requires a REX prefix byte (`r8`–`r15`).
    pub fn is_extended(self) -> bool {
        self.index() >= 8
    }
}

impl fmt::Display for Reg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// An SSE register holding a scalar `f32` or `f64`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Xmm(pub u8);

impl Xmm {
    /// Number of architectural `xmm` registers.
    pub const COUNT: usize = 16;

    /// The System V AMD64 floating-point argument registers, in order.
    pub const SYSV_ARGS: [Xmm; 8] = [
        Xmm(0),
        Xmm(1),
        Xmm(2),
        Xmm(3),
        Xmm(4),
        Xmm(5),
        Xmm(6),
        Xmm(7),
    ];

    /// Hardware encoding number (0–15).
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for Xmm {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "xmm{}", self.0)
    }
}

/// A set of general-purpose registers, used to describe allocatable and
/// clobbered register sets compactly.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct RegSet(u16);

impl RegSet {
    /// The empty set.
    pub const EMPTY: RegSet = RegSet(0);

    /// Set containing every general-purpose register.
    pub const ALL: RegSet = RegSet(0xffff);

    /// Builds a set from a slice of registers.
    pub fn of(regs: &[Reg]) -> RegSet {
        let mut s = RegSet::EMPTY;
        for &r in regs {
            s.insert(r);
        }
        s
    }

    /// Inserts `r` into the set.
    pub fn insert(&mut self, r: Reg) {
        self.0 |= 1 << r.index();
    }

    /// Removes `r` from the set.
    pub fn remove(&mut self, r: Reg) {
        self.0 &= !(1 << r.index());
    }

    /// True when `r` is a member.
    pub fn contains(self, r: Reg) -> bool {
        self.0 & (1 << r.index()) != 0
    }

    /// Number of members.
    pub fn len(self) -> usize {
        self.0.count_ones() as usize
    }

    /// True when the set has no members.
    pub fn is_empty(self) -> bool {
        self.0 == 0
    }

    /// Set difference `self \ other`.
    pub fn minus(self, other: RegSet) -> RegSet {
        RegSet(self.0 & !other.0)
    }

    /// Set union.
    pub fn union(self, other: RegSet) -> RegSet {
        RegSet(self.0 | other.0)
    }

    /// Iterates members in encoding order.
    pub fn iter(self) -> impl Iterator<Item = Reg> {
        Reg::ALL.into_iter().filter(move |r| self.contains(*r))
    }
}

impl FromIterator<Reg> for RegSet {
    fn from_iter<T: IntoIterator<Item = Reg>>(iter: T) -> Self {
        let mut s = RegSet::EMPTY;
        for r in iter {
            s.insert(r);
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reg_index_roundtrip() {
        for r in Reg::ALL {
            assert_eq!(Reg::from_index(r.index()), r);
        }
    }

    #[test]
    fn extended_registers_need_rex() {
        assert!(!Reg::Rax.is_extended());
        assert!(!Reg::Rdi.is_extended());
        assert!(Reg::R8.is_extended());
        assert!(Reg::R15.is_extended());
    }

    #[test]
    fn regset_basics() {
        let mut s = RegSet::of(&[Reg::Rax, Reg::R13]);
        assert_eq!(s.len(), 2);
        assert!(s.contains(Reg::Rax));
        assert!(s.contains(Reg::R13));
        assert!(!s.contains(Reg::Rbx));
        s.remove(Reg::Rax);
        assert_eq!(s.len(), 1);
        assert!(!s.contains(Reg::Rax));
        s.insert(Reg::Rbx);
        assert!(s.contains(Reg::Rbx));
    }

    #[test]
    fn regset_minus_union() {
        let a = RegSet::of(&[Reg::Rax, Reg::Rbx, Reg::Rcx]);
        let b = RegSet::of(&[Reg::Rbx]);
        assert_eq!(a.minus(b), RegSet::of(&[Reg::Rax, Reg::Rcx]));
        assert_eq!(b.union(a), a);
        assert_eq!(RegSet::ALL.len(), 16);
    }

    #[test]
    fn regset_iter_in_encoding_order() {
        let s = RegSet::of(&[Reg::R15, Reg::Rax, Reg::Rbp]);
        let v: Vec<Reg> = s.iter().collect();
        assert_eq!(v, vec![Reg::Rax, Reg::Rbp, Reg::R15]);
    }

    #[test]
    fn display_names() {
        assert_eq!(Reg::R8.to_string(), "r8");
        assert_eq!(Reg::R8.name32(), "r8d");
        assert_eq!(Xmm(13).to_string(), "xmm13");
    }
}
