//! Instruction set, operands, and addressing modes.
//!
//! The subset covers everything the two compilation pipelines need: integer
//! moves and ALU operations (with memory operands, so the native backend can
//! exploit `add [mem], reg`-style addressing-mode fusion), `lea`, scalar SSE
//! arithmetic, comparisons and conditional branches, direct/indirect/host
//! calls, stack manipulation, and trapping instructions used for
//! WebAssembly's dynamic safety checks.

use crate::module::{FuncId, Label};
use crate::reg::{Reg, Xmm};
use core::fmt;

/// Operation width for integer instructions.
///
/// WebAssembly's `i32` operations map to 32-bit x86 operations (which
/// zero-extend into the full register, as on real hardware); `i64` to
/// 64-bit. The narrow widths are used by sub-word loads and stores.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[allow(missing_docs)]
pub enum Width {
    W8,
    W16,
    W32,
    W64,
}

impl Width {
    /// Size of the access in bytes.
    pub fn bytes(self) -> u64 {
        match self {
            Width::W8 => 1,
            Width::W16 => 2,
            Width::W32 => 4,
            Width::W64 => 8,
        }
    }

    /// Mask selecting the low `bytes()` of a 64-bit value.
    pub fn mask(self) -> u64 {
        match self {
            Width::W8 => 0xff,
            Width::W16 => 0xffff,
            Width::W32 => 0xffff_ffff,
            Width::W64 => u64::MAX,
        }
    }

    /// Bit position of the sign bit for this width.
    pub fn sign_bit(self) -> u64 {
        1u64 << (self.bytes() * 8 - 1)
    }
}

/// Scalar floating-point precision.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[allow(missing_docs)]
pub enum FPrec {
    F32,
    F64,
}

/// A memory reference: `[base + index*scale + disp]`.
///
/// This is the full x86-64 SIB addressing mode. The paper observes (§6.1.3)
/// that Chrome's code generator fails to exploit scaled-index and
/// displacement forms, performing address arithmetic in explicit
/// instructions instead; both behaviours are expressible here.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct MemRef {
    /// Base register, if any.
    pub base: Option<Reg>,
    /// Index register with scale factor (1, 2, 4, or 8), if any.
    pub index: Option<(Reg, u8)>,
    /// Constant displacement.
    pub disp: i64,
}

impl MemRef {
    /// `[base]`
    pub fn base(base: Reg) -> MemRef {
        MemRef {
            base: Some(base),
            index: None,
            disp: 0,
        }
    }

    /// `[base + disp]`
    pub fn base_disp(base: Reg, disp: i64) -> MemRef {
        MemRef {
            base: Some(base),
            index: None,
            disp,
        }
    }

    /// `[base + index*scale]`
    pub fn base_index(base: Reg, index: Reg, scale: u8) -> MemRef {
        MemRef {
            base: Some(base),
            index: Some((index, scale)),
            disp: 0,
        }
    }

    /// `[base + index*scale + disp]`
    pub fn full(base: Reg, index: Reg, scale: u8, disp: i64) -> MemRef {
        MemRef {
            base: Some(base),
            index: Some((index, scale)),
            disp,
        }
    }

    /// `[disp]` (absolute).
    pub fn abs(disp: i64) -> MemRef {
        MemRef {
            base: None,
            index: None,
            disp,
        }
    }

    /// Registers read to form the effective address.
    pub fn regs(&self) -> impl Iterator<Item = Reg> + '_ {
        self.base.into_iter().chain(self.index.map(|(r, _)| r))
    }
}

/// An integer operand: register, immediate, or memory.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Operand {
    /// A general-purpose register.
    Reg(Reg),
    /// A sign-extended immediate.
    Imm(i64),
    /// A memory location.
    Mem(MemRef),
}

impl Operand {
    /// True for [`Operand::Mem`].
    pub fn is_mem(&self) -> bool {
        matches!(self, Operand::Mem(_))
    }
}

impl From<Reg> for Operand {
    fn from(r: Reg) -> Operand {
        Operand::Reg(r)
    }
}

impl From<i64> for Operand {
    fn from(v: i64) -> Operand {
        Operand::Imm(v)
    }
}

impl From<MemRef> for Operand {
    fn from(m: MemRef) -> Operand {
        Operand::Mem(m)
    }
}

/// A floating-point operand: SSE register or memory.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FOperand {
    /// An SSE register.
    Xmm(Xmm),
    /// A memory location.
    Mem(MemRef),
}

impl From<Xmm> for FOperand {
    fn from(x: Xmm) -> FOperand {
        FOperand::Xmm(x)
    }
}

impl From<MemRef> for FOperand {
    fn from(m: MemRef) -> FOperand {
        FOperand::Mem(m)
    }
}

/// Two-operand integer ALU operation (`dst = dst op src`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[allow(missing_docs)]
pub enum AluOp {
    Add,
    Sub,
    And,
    Or,
    Xor,
    Shl,
    /// Logical shift right.
    Shr,
    /// Arithmetic shift right.
    Sar,
    /// Rotate left.
    Rol,
    /// Rotate right.
    Ror,
}

impl AluOp {
    /// Instruction mnemonic.
    pub fn mnemonic(self) -> &'static str {
        match self {
            AluOp::Add => "add",
            AluOp::Sub => "sub",
            AluOp::And => "and",
            AluOp::Or => "or",
            AluOp::Xor => "xor",
            AluOp::Shl => "shl",
            AluOp::Shr => "shr",
            AluOp::Sar => "sar",
            AluOp::Rol => "rol",
            AluOp::Ror => "ror",
        }
    }
}

/// Scalar SSE arithmetic operation (`dst = dst op src`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[allow(missing_docs)]
pub enum FAluOp {
    Add,
    Sub,
    Mul,
    Div,
    Min,
    Max,
}

impl FAluOp {
    /// Mnemonic stem; the precision suffix (`ss`/`sd`) is appended by the
    /// disassembler.
    pub fn mnemonic(self) -> &'static str {
        match self {
            FAluOp::Add => "add",
            FAluOp::Sub => "sub",
            FAluOp::Mul => "mul",
            FAluOp::Div => "div",
            FAluOp::Min => "min",
            FAluOp::Max => "max",
        }
    }
}

/// x86 condition codes used by `jcc`/`setcc`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[allow(missing_docs)]
pub enum Cc {
    /// Equal / zero.
    E,
    /// Not equal / not zero.
    Ne,
    /// Signed less-than.
    L,
    /// Signed less-or-equal.
    Le,
    /// Signed greater-than.
    G,
    /// Signed greater-or-equal.
    Ge,
    /// Unsigned below.
    B,
    /// Unsigned below-or-equal.
    Be,
    /// Unsigned above.
    A,
    /// Unsigned above-or-equal.
    Ae,
    /// Signed overflow.
    O,
    /// No signed overflow.
    No,
    /// Sign flag set.
    S,
    /// Sign flag clear.
    Ns,
    /// Parity flag set (unordered float compare).
    P,
    /// Parity flag clear.
    Np,
}

impl Cc {
    /// Condition-code suffix, e.g. `"ne"` for `jne`.
    pub fn suffix(self) -> &'static str {
        match self {
            Cc::E => "e",
            Cc::Ne => "ne",
            Cc::L => "l",
            Cc::Le => "le",
            Cc::G => "g",
            Cc::Ge => "ge",
            Cc::B => "b",
            Cc::Be => "be",
            Cc::A => "a",
            Cc::Ae => "ae",
            Cc::O => "o",
            Cc::No => "no",
            Cc::S => "s",
            Cc::Ns => "ns",
            Cc::P => "p",
            Cc::Np => "np",
        }
    }

    /// The negated condition.
    pub fn negate(self) -> Cc {
        match self {
            Cc::E => Cc::Ne,
            Cc::Ne => Cc::E,
            Cc::L => Cc::Ge,
            Cc::Le => Cc::G,
            Cc::G => Cc::Le,
            Cc::Ge => Cc::L,
            Cc::B => Cc::Ae,
            Cc::Be => Cc::A,
            Cc::A => Cc::Be,
            Cc::Ae => Cc::B,
            Cc::O => Cc::No,
            Cc::No => Cc::O,
            Cc::S => Cc::Ns,
            Cc::Ns => Cc::S,
            Cc::P => Cc::Np,
            Cc::Np => Cc::P,
        }
    }
}

/// Rounding mode of the SSE4.1 `roundss`/`roundsd` instruction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[allow(missing_docs)]
pub enum RoundMode {
    /// Round toward negative infinity (`floor`).
    Floor,
    /// Round toward positive infinity (`ceil`).
    Ceil,
    /// Round toward zero (`trunc`).
    Trunc,
    /// Round half to even (`nearest`).
    Nearest,
}

/// Reasons an executed program may trap.
///
/// The WebAssembly safety checks (§6.2.2, §6.2.3 of the paper) materialize
/// as explicit compare-and-branch sequences ending in a [`Inst::Trap`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TrapKind {
    /// `unreachable` was executed.
    Unreachable,
    /// The per-function stack-overflow check failed.
    StackOverflow,
    /// `call_indirect` index out of table bounds.
    IndirectCallOutOfBounds,
    /// `call_indirect` signature mismatch.
    IndirectCallTypeMismatch,
    /// Integer division by zero.
    DivByZero,
    /// Integer overflow on division (`INT_MIN / -1`) or float-to-int
    /// conversion out of range.
    IntegerOverflow,
    /// Linear-memory access out of bounds.
    MemoryOutOfBounds,
    /// An explicit abort requested by the program or runtime.
    Abort,
    /// The executor's instruction budget (fuel) was exhausted.
    OutOfFuel,
}

impl fmt::Display for TrapKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            TrapKind::Unreachable => "unreachable executed",
            TrapKind::StackOverflow => "call stack exhausted",
            TrapKind::IndirectCallOutOfBounds => "undefined element in table",
            TrapKind::IndirectCallTypeMismatch => "indirect call type mismatch",
            TrapKind::DivByZero => "integer divide by zero",
            TrapKind::IntegerOverflow => "integer overflow",
            TrapKind::MemoryOutOfBounds => "out of bounds memory access",
            TrapKind::Abort => "abort",
            TrapKind::OutOfFuel => "instruction budget exhausted",
        };
        f.write_str(s)
    }
}

/// Coarse classification used by the performance-counter model.
///
/// Mirrors the hardware events in Table 3 of the paper: every retired
/// instruction increments `instructions-retired`; loads, stores, and
/// branches additionally increment their own counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[allow(missing_docs)]
pub enum InstClass {
    IntAlu,
    IntMul,
    IntDiv,
    FloatAlu,
    FloatDiv,
    Load,
    Store,
    Lea,
    Branch,
    CondBranch,
    Call,
    Ret,
    Push,
    Pop,
    Convert,
    Nop,
    Trap,
    HostCall,
}

/// A single machine instruction.
#[derive(Debug, Clone, PartialEq)]
pub enum Inst {
    /// `mov dst, src` — register/immediate/memory moves. A memory source is
    /// a load; a memory destination is a store.
    Mov {
        /// Destination (register or memory).
        dst: Operand,
        /// Source (register, immediate, or memory).
        src: Operand,
        /// Operation width.
        width: Width,
    },
    /// `movzx dst, src` — zero-extending load/move from `from` width to 64 bits.
    Movzx {
        /// Destination register.
        dst: Reg,
        /// Source (register or memory).
        src: Operand,
        /// Width of the source.
        from: Width,
    },
    /// `movsx dst, src` — sign-extending load/move from `from` width to
    /// `to` width.
    Movsx {
        /// Destination register.
        dst: Reg,
        /// Source (register or memory).
        src: Operand,
        /// Width of the source.
        from: Width,
        /// Width of the destination.
        to: Width,
    },
    /// `lea dst, [mem]` — address arithmetic without memory access.
    Lea {
        /// Destination register.
        dst: Reg,
        /// Address expression.
        mem: MemRef,
        /// Result width (32- or 64-bit).
        width: Width,
    },
    /// Two-operand ALU operation `dst = dst op src`; `dst` or `src` (not
    /// both) may be memory.
    Alu {
        /// The operation.
        op: AluOp,
        /// Destination (register or memory).
        dst: Operand,
        /// Source operand.
        src: Operand,
        /// Operation width.
        width: Width,
    },
    /// `neg dst` — two's-complement negation.
    Neg {
        /// Destination (register or memory).
        dst: Operand,
        /// Operation width.
        width: Width,
    },
    /// `not dst` — bitwise complement.
    Not {
        /// Destination (register or memory).
        dst: Operand,
        /// Operation width.
        width: Width,
    },
    /// `imul dst, src` — two-operand signed multiply.
    Imul {
        /// Destination register.
        dst: Reg,
        /// Source operand.
        src: Operand,
        /// Operation width.
        width: Width,
    },
    /// `imul dst, src, imm` — three-operand multiply by immediate.
    Imul3 {
        /// Destination register.
        dst: Reg,
        /// Source operand.
        src: Operand,
        /// Immediate multiplier.
        imm: i64,
        /// Operation width.
        width: Width,
    },
    /// `cdq` / `cqo` — sign-extend `rax` into `rdx` ahead of `idiv`.
    Cqo {
        /// Operation width (W32 = `cdq`, W64 = `cqo`).
        width: Width,
    },
    /// `idiv src` / `div src` — divide `rdx:rax`; quotient in `rax`,
    /// remainder in `rdx`. Traps on divide-by-zero and signed overflow.
    Div {
        /// Divisor operand.
        src: Operand,
        /// Signed (`idiv`) or unsigned (`div`).
        signed: bool,
        /// Operation width.
        width: Width,
    },
    /// `cmp lhs, rhs` — sets flags from `lhs - rhs`.
    Cmp {
        /// Left operand.
        lhs: Operand,
        /// Right operand.
        rhs: Operand,
        /// Operation width.
        width: Width,
    },
    /// `test lhs, rhs` — sets flags from `lhs & rhs`.
    Test {
        /// Left operand.
        lhs: Operand,
        /// Right operand.
        rhs: Operand,
        /// Operation width.
        width: Width,
    },
    /// `cmovcc dst, src` — conditional move (no flags written).
    Cmov {
        /// Condition under which the move happens.
        cc: Cc,
        /// Destination register.
        dst: Reg,
        /// Source (register or memory; memory is read regardless, as on
        /// real hardware).
        src: Operand,
        /// Operation width.
        width: Width,
    },
    /// `setcc dst` — writes 0/1 into the full register (modelled as
    /// `setcc` + implicit zero-extension, as compilers emit `xor`+`setcc`).
    Setcc {
        /// Condition tested.
        cc: Cc,
        /// Destination register.
        dst: Reg,
    },
    /// Count leading zeros (`lzcnt`).
    Lzcnt {
        /// Destination register.
        dst: Reg,
        /// Source operand.
        src: Operand,
        /// Operation width.
        width: Width,
    },
    /// Count trailing zeros (`tzcnt`).
    Tzcnt {
        /// Destination register.
        dst: Reg,
        /// Source operand.
        src: Operand,
        /// Operation width.
        width: Width,
    },
    /// Population count (`popcnt`).
    Popcnt {
        /// Destination register.
        dst: Reg,
        /// Source operand.
        src: Operand,
        /// Operation width.
        width: Width,
    },
    /// `jmp label` — unconditional branch.
    Jmp {
        /// Branch target.
        target: Label,
    },
    /// `jcc label` — conditional branch.
    Jcc {
        /// Condition tested.
        cc: Cc,
        /// Branch target.
        target: Label,
    },
    /// `call f` — direct call.
    Call {
        /// Callee.
        target: FuncId,
    },
    /// `call src` — indirect call through a register or memory operand whose
    /// runtime value is a function id (a code pointer in the model).
    CallIndirect {
        /// Operand holding the callee's function id.
        target: Operand,
    },
    /// A call into the host environment (the Browsix kernel); `id` selects
    /// the host function. Arguments follow the System V register convention.
    CallHost {
        /// Host-function identifier.
        id: u32,
    },
    /// `push src`.
    Push {
        /// Value pushed.
        src: Operand,
    },
    /// `pop dst`.
    Pop {
        /// Destination register.
        dst: Reg,
    },
    /// `ret`.
    Ret,
    /// `movss`/`movsd` between SSE registers and memory.
    MovF {
        /// Destination (register or memory).
        dst: FOperand,
        /// Source (register or memory).
        src: FOperand,
        /// Precision.
        prec: FPrec,
    },
    /// Scalar SSE arithmetic `dst = dst op src`.
    AluF {
        /// The operation.
        op: FAluOp,
        /// Destination register.
        dst: Xmm,
        /// Source (register or memory).
        src: FOperand,
        /// Precision.
        prec: FPrec,
    },
    /// `roundss`/`roundsd` (SSE4.1) with an explicit rounding mode.
    RoundF {
        /// Destination register.
        dst: Xmm,
        /// Source (register or memory).
        src: FOperand,
        /// Precision.
        prec: FPrec,
        /// Rounding mode.
        mode: RoundMode,
    },
    /// `andpd` with the sign-clearing mask (absolute value).
    AbsF {
        /// Destination register.
        dst: Xmm,
        /// Source (register or memory).
        src: FOperand,
        /// Precision.
        prec: FPrec,
    },
    /// `sqrtss`/`sqrtsd`.
    SqrtF {
        /// Destination register.
        dst: Xmm,
        /// Source (register or memory).
        src: FOperand,
        /// Precision.
        prec: FPrec,
    },
    /// `ucomiss`/`ucomisd` — unordered compare setting ZF/PF/CF.
    Ucomis {
        /// Left operand.
        lhs: Xmm,
        /// Right operand.
        rhs: FOperand,
        /// Precision.
        prec: FPrec,
    },
    /// `cvtsi2ss`/`cvtsi2sd` — integer to float.
    CvtIntToF {
        /// Destination register.
        dst: Xmm,
        /// Integer source.
        src: Operand,
        /// Source integer width.
        width: Width,
        /// Destination precision.
        prec: FPrec,
        /// Treat the source as unsigned.
        unsigned: bool,
    },
    /// `cvttss2si`/`cvttsd2si` — float to integer with truncation. Traps on
    /// NaN or out-of-range values (as WebAssembly requires).
    CvtFToInt {
        /// Destination register.
        dst: Reg,
        /// Float source.
        src: FOperand,
        /// Destination integer width.
        width: Width,
        /// Source precision.
        prec: FPrec,
        /// Produce an unsigned integer.
        unsigned: bool,
    },
    /// `cvtss2sd`/`cvtsd2ss`.
    CvtFToF {
        /// Destination register.
        dst: Xmm,
        /// Source (register or memory).
        src: FOperand,
        /// Source precision (destination is the other precision).
        from: FPrec,
    },
    /// `movq`/`movd` between a GPR and an SSE register (bit reinterpret).
    MovGprToXmm {
        /// Destination SSE register.
        dst: Xmm,
        /// Source GPR.
        src: Reg,
        /// Transfer width.
        width: Width,
    },
    /// `movq`/`movd` from an SSE register to a GPR (bit reinterpret).
    MovXmmToGpr {
        /// Destination GPR.
        dst: Reg,
        /// Source SSE register.
        src: Xmm,
        /// Transfer width.
        width: Width,
    },
    /// `ud2`-style trap with a reason.
    Trap {
        /// Why the trap fires.
        kind: TrapKind,
    },
    /// `nop` (used for alignment padding by some emitters).
    Nop,
}

impl Inst {
    /// Classifies the instruction for the retired-event counters.
    ///
    /// A `mov` with a memory source is a load; with a memory destination a
    /// store. An ALU operation with a memory destination counts as *both*
    /// a load and a store at execution time (read-modify-write); its static
    /// class here is [`InstClass::Store`], and the executor accounts the
    /// extra load. This mirrors how `perf`'s `all-loads-retired` /
    /// `all-stores-retired` events count micro-ops on real hardware.
    pub fn class(&self) -> InstClass {
        use Inst::*;
        match self {
            Mov { dst, src, .. } => {
                if src.is_mem() {
                    InstClass::Load
                } else if dst.is_mem() {
                    InstClass::Store
                } else {
                    InstClass::IntAlu
                }
            }
            Movzx { src, .. } | Movsx { src, .. } => {
                if src.is_mem() {
                    InstClass::Load
                } else {
                    InstClass::IntAlu
                }
            }
            Lea { .. } => InstClass::Lea,
            Alu { dst, src, .. } => {
                if dst.is_mem() {
                    InstClass::Store
                } else if src.is_mem() {
                    InstClass::Load
                } else {
                    InstClass::IntAlu
                }
            }
            Neg { dst, .. } | Not { dst, .. } => {
                if dst.is_mem() {
                    InstClass::Store
                } else {
                    InstClass::IntAlu
                }
            }
            Imul { .. } | Imul3 { .. } => InstClass::IntMul,
            Cqo { .. } => InstClass::IntAlu,
            Div { .. } => InstClass::IntDiv,
            Cmp { lhs, rhs, .. } | Test { lhs, rhs, .. } => {
                if lhs.is_mem() || rhs.is_mem() {
                    InstClass::Load
                } else {
                    InstClass::IntAlu
                }
            }
            Setcc { .. } => InstClass::IntAlu,
            Cmov { src, .. } => {
                if src.is_mem() {
                    InstClass::Load
                } else {
                    InstClass::IntAlu
                }
            }
            Lzcnt { .. } | Tzcnt { .. } | Popcnt { .. } => InstClass::IntAlu,
            Jmp { .. } => InstClass::Branch,
            Jcc { .. } => InstClass::CondBranch,
            Call { .. } | CallIndirect { .. } => InstClass::Call,
            CallHost { .. } => InstClass::HostCall,
            Push { .. } => InstClass::Push,
            Pop { .. } => InstClass::Pop,
            Ret => InstClass::Ret,
            MovF { dst, src, .. } => {
                if matches!(src, FOperand::Mem(_)) {
                    InstClass::Load
                } else if matches!(dst, FOperand::Mem(_)) {
                    InstClass::Store
                } else {
                    InstClass::FloatAlu
                }
            }
            AluF { op, src, .. } => {
                if matches!(src, FOperand::Mem(_)) {
                    InstClass::Load
                } else if matches!(op, FAluOp::Div) {
                    InstClass::FloatDiv
                } else {
                    InstClass::FloatAlu
                }
            }
            SqrtF { .. } => InstClass::FloatDiv,
            RoundF { src, .. } | AbsF { src, .. } => {
                if matches!(src, FOperand::Mem(_)) {
                    InstClass::Load
                } else {
                    InstClass::FloatAlu
                }
            }
            Ucomis { rhs, .. } => {
                if matches!(rhs, FOperand::Mem(_)) {
                    InstClass::Load
                } else {
                    InstClass::FloatAlu
                }
            }
            CvtIntToF { .. } | CvtFToInt { .. } | CvtFToF { .. } => InstClass::Convert,
            MovGprToXmm { .. } | MovXmmToGpr { .. } => InstClass::Convert,
            Trap { .. } => InstClass::Trap,
            Nop => InstClass::Nop,
        }
    }

    /// True when the instruction ends a basic block: control may continue
    /// somewhere other than the next instruction (branches, calls — which
    /// resume at the return point only after the callee runs — and `ret`).
    /// Predecoders use this to place block boundaries; every possible
    /// control-transfer destination lands on an instruction for which some
    /// predecessor returned `true` (or on a branch target / function entry).
    pub fn ends_block(&self) -> bool {
        matches!(
            self,
            Inst::Jmp { .. }
                | Inst::Jcc { .. }
                | Inst::Call { .. }
                | Inst::CallIndirect { .. }
                | Inst::Ret
        )
    }

    /// True when the instruction reads memory when executed.
    pub fn reads_mem(&self) -> bool {
        use Inst::*;
        match self {
            Mov { src, .. } => src.is_mem(),
            Movzx { src, .. } | Movsx { src, .. } => src.is_mem(),
            // A read-modify-write ALU-to-memory reads as well as writes.
            Alu { dst, src, .. } => dst.is_mem() || src.is_mem(),
            Neg { dst, .. } | Not { dst, .. } => dst.is_mem(),
            Imul { src, .. } | Imul3 { src, .. } => src.is_mem(),
            Div { src, .. } => src.is_mem(),
            Cmp { lhs, rhs, .. } | Test { lhs, rhs, .. } => lhs.is_mem() || rhs.is_mem(),
            Lzcnt { src, .. } | Tzcnt { src, .. } | Popcnt { src, .. } => src.is_mem(),
            Cmov { src, .. } => src.is_mem(),
            CallIndirect { target } => target.is_mem(),
            Pop { .. } | Ret => true,
            MovF { src, .. } => matches!(src, FOperand::Mem(_)),
            AluF { src, .. }
            | SqrtF { src, .. }
            | RoundF { src, .. }
            | AbsF { src, .. }
            | CvtFToF { src, .. } => {
                matches!(src, FOperand::Mem(_))
            }
            Ucomis { rhs, .. } => matches!(rhs, FOperand::Mem(_)),
            CvtIntToF { src, .. } => src.is_mem(),
            CvtFToInt { src, .. } => matches!(src, FOperand::Mem(_)),
            _ => false,
        }
    }

    /// True when the instruction writes memory when executed.
    pub fn writes_mem(&self) -> bool {
        use Inst::*;
        match self {
            Mov { dst, .. } => dst.is_mem(),
            Alu { dst, .. } | Neg { dst, .. } | Not { dst, .. } => dst.is_mem(),
            Push { .. } | Call { .. } | CallIndirect { .. } => true,
            MovF { dst, .. } => matches!(dst, FOperand::Mem(_)),
            _ => false,
        }
    }
}

pub use FOperand as FloatOperand;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn width_properties() {
        assert_eq!(Width::W8.bytes(), 1);
        assert_eq!(Width::W32.mask(), 0xffff_ffff);
        assert_eq!(Width::W32.sign_bit(), 0x8000_0000);
        assert_eq!(Width::W64.mask(), u64::MAX);
    }

    #[test]
    fn cc_negation_is_involutive() {
        let all = [
            Cc::E,
            Cc::Ne,
            Cc::L,
            Cc::Le,
            Cc::G,
            Cc::Ge,
            Cc::B,
            Cc::Be,
            Cc::A,
            Cc::Ae,
            Cc::O,
            Cc::No,
            Cc::S,
            Cc::Ns,
            Cc::P,
            Cc::Np,
        ];
        for cc in all {
            assert_eq!(cc.negate().negate(), cc);
            assert_ne!(cc.negate(), cc);
        }
    }

    #[test]
    fn mov_classification() {
        let load = Inst::Mov {
            dst: Operand::Reg(Reg::Rax),
            src: Operand::Mem(MemRef::base(Reg::Rbx)),
            width: Width::W64,
        };
        assert_eq!(load.class(), InstClass::Load);
        assert!(load.reads_mem());
        assert!(!load.writes_mem());

        let store = Inst::Mov {
            dst: Operand::Mem(MemRef::base(Reg::Rbx)),
            src: Operand::Reg(Reg::Rax),
            width: Width::W64,
        };
        assert_eq!(store.class(), InstClass::Store);
        assert!(store.writes_mem());
        assert!(!store.reads_mem());
    }

    #[test]
    fn rmw_alu_reads_and_writes() {
        // `add [rdi + rcx*4 + 16], ebx` — the fused form Clang emits
        // (Figure 7b line 14 of the paper) both reads and writes memory.
        let i = Inst::Alu {
            op: AluOp::Add,
            dst: Operand::Mem(MemRef::full(Reg::Rdi, Reg::Rcx, 4, 16)),
            src: Operand::Reg(Reg::Rbx),
            width: Width::W32,
        };
        assert_eq!(i.class(), InstClass::Store);
        assert!(i.reads_mem());
        assert!(i.writes_mem());
    }

    #[test]
    fn memref_regs() {
        let m = MemRef::full(Reg::Rdi, Reg::Rcx, 4, 16);
        let regs: Vec<Reg> = m.regs().collect();
        assert_eq!(regs, vec![Reg::Rdi, Reg::Rcx]);
        assert!(MemRef::abs(0x1000).regs().next().is_none());
    }

    #[test]
    fn call_and_branch_classes() {
        assert_eq!(Inst::Jmp { target: Label(0) }.class(), InstClass::Branch);
        assert_eq!(
            Inst::Jcc {
                cc: Cc::Ne,
                target: Label(0)
            }
            .class(),
            InstClass::CondBranch
        );
        assert_eq!(Inst::Ret.class(), InstClass::Ret);
        assert!(Inst::Ret.reads_mem());
        assert!(Inst::Call { target: FuncId(0) }.writes_mem());
    }
}
