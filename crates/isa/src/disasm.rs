//! Intel-syntax disassembler.
//!
//! Renders functions in the style of the paper's Figure 7 listings
//! (`mov ebx, [r10 + rcx*4 + 4400]`), so the matmul case study can print
//! side-by-side native and JIT code.

use crate::inst::{FOperand, FPrec, Inst, MemRef, Operand, Width};
use crate::module::Function;
use crate::reg::Reg;
use core::fmt::Write;

fn reg_name(r: Reg, w: Width) -> &'static str {
    match w {
        Width::W32 => r.name32(),
        _ => r.name(),
    }
}

fn fmt_mem(m: &MemRef) -> String {
    let mut parts: Vec<String> = Vec::new();
    if let Some(b) = m.base {
        parts.push(b.name().to_string());
    }
    if let Some((idx, scale)) = m.index {
        if scale == 1 {
            parts.push(format!("{}*1", idx.name()));
        } else {
            parts.push(format!("{}*{}", idx.name(), scale));
        }
    }
    let mut s = format!("[{}", parts.join(" + "));
    if m.disp != 0 || parts.is_empty() {
        if m.disp < 0 && !parts.is_empty() {
            let _ = write!(s, " - {:#x}", -m.disp);
        } else if parts.is_empty() {
            let _ = write!(s, "{:#x}", m.disp);
        } else {
            let _ = write!(s, " + {:#x}", m.disp);
        }
    }
    s.push(']');
    s
}

fn fmt_op(op: &Operand, w: Width) -> String {
    match op {
        Operand::Reg(r) => reg_name(*r, w).to_string(),
        Operand::Imm(v) => {
            if (-9..=9).contains(v) {
                format!("{v}")
            } else {
                format!("{v:#x}")
            }
        }
        Operand::Mem(m) => fmt_mem(m),
    }
}

fn fmt_fop(op: &FOperand) -> String {
    match op {
        FOperand::Xmm(x) => x.to_string(),
        FOperand::Mem(m) => fmt_mem(m),
    }
}

fn prec_suffix(p: FPrec) -> &'static str {
    match p {
        FPrec::F32 => "ss",
        FPrec::F64 => "sd",
    }
}

/// Renders one instruction in Intel syntax.
pub fn format_inst(inst: &Inst) -> String {
    use Inst::*;
    match inst {
        Mov { dst, src, width } => {
            format!("mov {}, {}", fmt_op(dst, *width), fmt_op(src, *width))
        }
        Movzx { dst, src, from } => {
            format!("movzx {}, {} ({:?})", dst.name(), fmt_op(src, *from), from)
        }
        Movsx { dst, src, from, to } => format!(
            "movsx {}, {} ({:?}->{:?})",
            reg_name(*dst, *to),
            fmt_op(src, *from),
            from,
            to
        ),
        Lea { dst, mem, width } => {
            format!("lea {}, {}", reg_name(*dst, *width), fmt_mem(mem))
        }
        Alu {
            op,
            dst,
            src,
            width,
        } => format!(
            "{} {}, {}",
            op.mnemonic(),
            fmt_op(dst, *width),
            fmt_op(src, *width)
        ),
        Neg { dst, width } => format!("neg {}", fmt_op(dst, *width)),
        Not { dst, width } => format!("not {}", fmt_op(dst, *width)),
        Imul { dst, src, width } => {
            format!("imul {}, {}", reg_name(*dst, *width), fmt_op(src, *width))
        }
        Imul3 {
            dst,
            src,
            imm,
            width,
        } => format!(
            "imul {}, {}, {:#x}",
            reg_name(*dst, *width),
            fmt_op(src, *width),
            imm
        ),
        Cqo { width } => match width {
            Width::W32 => "cdq".to_string(),
            _ => "cqo".to_string(),
        },
        Div { src, signed, width } => format!(
            "{} {}",
            if *signed { "idiv" } else { "div" },
            fmt_op(src, *width)
        ),
        Cmp { lhs, rhs, width } => {
            format!("cmp {}, {}", fmt_op(lhs, *width), fmt_op(rhs, *width))
        }
        Test { lhs, rhs, width } => {
            format!("test {}, {}", fmt_op(lhs, *width), fmt_op(rhs, *width))
        }
        Setcc { cc, dst } => format!("set{} {}", cc.suffix(), dst.name()),
        Cmov {
            cc,
            dst,
            src,
            width,
        } => format!(
            "cmov{} {}, {}",
            cc.suffix(),
            reg_name(*dst, *width),
            fmt_op(src, *width)
        ),
        Lzcnt { dst, src, width } => {
            format!("lzcnt {}, {}", reg_name(*dst, *width), fmt_op(src, *width))
        }
        Tzcnt { dst, src, width } => {
            format!("tzcnt {}, {}", reg_name(*dst, *width), fmt_op(src, *width))
        }
        Popcnt { dst, src, width } => {
            format!("popcnt {}, {}", reg_name(*dst, *width), fmt_op(src, *width))
        }
        Jmp { target } => format!("jmp {target}"),
        Jcc { cc, target } => format!("j{} {target}", cc.suffix()),
        Call { target } => format!("call {target}"),
        CallIndirect { target } => format!("call {}", fmt_op(target, Width::W64)),
        CallHost { id } => format!("call host:{id}"),
        Push { src } => format!("push {}", fmt_op(src, Width::W64)),
        Pop { dst } => format!("pop {}", dst.name()),
        Ret => "ret".to_string(),
        MovF { dst, src, prec } => {
            format!(
                "mov{} {}, {}",
                prec_suffix(*prec),
                fmt_fop(dst),
                fmt_fop(src)
            )
        }
        AluF { op, dst, src, prec } => format!(
            "{}{} {}, {}",
            op.mnemonic(),
            prec_suffix(*prec),
            dst,
            fmt_fop(src)
        ),
        RoundF {
            dst,
            src,
            prec,
            mode,
        } => format!(
            "round{} {}, {}, {:?}",
            prec_suffix(*prec),
            dst,
            fmt_fop(src),
            mode
        ),
        AbsF { dst, src, prec } => {
            format!("abs{} {}, {}", prec_suffix(*prec), dst, fmt_fop(src))
        }
        SqrtF { dst, src, prec } => {
            format!("sqrt{} {}, {}", prec_suffix(*prec), dst, fmt_fop(src))
        }
        Ucomis { lhs, rhs, prec } => {
            format!("ucomi{} {}, {}", prec_suffix(*prec), lhs, fmt_fop(rhs))
        }
        CvtIntToF {
            dst,
            src,
            width,
            prec,
            unsigned,
        } => format!(
            "cvt{}si2{} {}, {}",
            if *unsigned { "u" } else { "" },
            prec_suffix(*prec),
            dst,
            fmt_op(src, *width)
        ),
        CvtFToInt {
            dst,
            src,
            width,
            prec,
            unsigned,
        } => format!(
            "cvtt{}2{}si {}, {}",
            prec_suffix(*prec),
            if *unsigned { "u" } else { "" },
            reg_name(*dst, *width),
            fmt_fop(src)
        ),
        CvtFToF { dst, src, from } => format!(
            "cvt{}2{} {}, {}",
            prec_suffix(*from),
            prec_suffix(match from {
                FPrec::F32 => FPrec::F64,
                FPrec::F64 => FPrec::F32,
            }),
            dst,
            fmt_fop(src)
        ),
        MovGprToXmm { dst, src, width } => {
            format!("movq {}, {}", dst, reg_name(*src, *width))
        }
        MovXmmToGpr { dst, src, width } => {
            format!("movq {}, {}", reg_name(*dst, *width), src)
        }
        Trap { kind } => format!("ud2 ; trap: {kind}"),
        Nop => "nop".to_string(),
    }
}

/// Renders a whole function with label markers, one instruction per line.
pub fn format_function(f: &Function) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "{}:", f.name);
    for (i, inst) in f.insts.iter().enumerate() {
        for (l, &off) in f.label_offsets.iter().enumerate() {
            if off as usize == i {
                let _ = writeln!(out, "L{l}:");
            }
        }
        let _ = writeln!(out, "    {}", format_inst(inst));
    }
    // Labels bound at the very end of the function.
    for (l, &off) in f.label_offsets.iter().enumerate() {
        if off as usize == f.insts.len() {
            let _ = writeln!(out, "L{l}:");
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::inst::AluOp;
    use crate::AsmBuilder;

    #[test]
    fn formats_figure7_style_add() {
        // The paper's Figure 7b line 14: `add [rdi + rcx*4 + 4400], ebx`.
        let i = Inst::Alu {
            op: AluOp::Add,
            dst: Operand::Mem(MemRef::full(Reg::Rdi, Reg::Rcx, 4, 4400)),
            src: Operand::Reg(Reg::Rbx),
            width: Width::W32,
        };
        assert_eq!(format_inst(&i), "add [rdi + rcx*4 + 0x1130], ebx");
    }

    #[test]
    fn formats_negative_disp() {
        let m = MemRef::base_disp(Reg::Rbp, -0x28);
        assert_eq!(fmt_mem(&m), "[rbp - 0x28]");
    }

    #[test]
    fn formats_labels_in_function() {
        let mut b = AsmBuilder::new("f");
        let top = b.new_label();
        b.bind(top);
        b.emit(Inst::Jmp { target: top });
        b.emit(Inst::Ret);
        let s = format_function(&b.finish());
        assert!(s.contains("L0:"), "{s}");
        assert!(s.contains("jmp L0"), "{s}");
    }

    #[test]
    fn formats_float_ops() {
        let i = Inst::AluF {
            op: crate::FAluOp::Mul,
            dst: crate::Xmm(1),
            src: FOperand::Mem(MemRef::base(Reg::Rsi)),
            prec: FPrec::F64,
        };
        assert_eq!(format_inst(&i), "mulsd xmm1, [rsi]");
    }

    #[test]
    fn formats_imm_small_and_large() {
        let small = Inst::Mov {
            dst: Operand::Reg(Reg::Rax),
            src: Operand::Imm(7),
            width: Width::W64,
        };
        assert_eq!(format_inst(&small), "mov rax, 7");
        let large = Inst::Mov {
            dst: Operand::Reg(Reg::Rax),
            src: Operand::Imm(4400),
            width: Width::W32,
        };
        assert_eq!(format_inst(&large), "mov eax, 0x1130");
    }
}
