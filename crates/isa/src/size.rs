//! Encoding-size model.
//!
//! The CPU simulator needs a byte address for every instruction to drive
//! the L1 instruction-cache model (the paper attributes a large share of
//! the WebAssembly slowdown to I-cache misses from inflated code, §6.3).
//! Rather than implement a full x86-64 encoder, we estimate each
//! instruction's encoded length using the real format's rules: legacy/REX
//! prefixes, opcode bytes, ModRM/SIB, displacement, and immediate sizes.
//! The estimates match common-case `as`/LLVM output to within a byte or
//! two, which is ample fidelity for cache-line behaviour.

use crate::inst::{FOperand, Inst, MemRef, Operand, Width};
use crate::reg::Reg;

/// Bytes contributed by a ModRM + optional SIB + displacement for `mem`.
fn mem_bytes(mem: &MemRef) -> u32 {
    // ModRM is always present (1 byte). An index register or rsp base
    // forces a SIB byte. Displacement: 0 bytes if zero and base != rbp,
    // 1 byte if it fits i8, else 4.
    let mut n = 1;
    let needs_sib = mem.index.is_some() || mem.base == Some(Reg::Rsp) || mem.base.is_none();
    if needs_sib {
        n += 1;
    }
    let disp_forced = mem.base == Some(Reg::Rbp) || mem.base == Some(Reg::R13);
    if mem.base.is_none() {
        n += 4; // Absolute disp32.
    } else if mem.disp == 0 && !disp_forced {
        // No displacement byte.
    } else if i8::try_from(mem.disp).is_ok() {
        n += 1;
    } else {
        n += 4;
    }
    n
}

/// 1 if a REX prefix is needed for the register/width combination.
fn rex(width: Width, regs: &[Option<Reg>]) -> u32 {
    if width == Width::W64 || regs.iter().flatten().any(|r| r.is_extended()) {
        1
    } else {
        0
    }
}

fn op_regs(op: &Operand) -> Vec<Option<Reg>> {
    match op {
        Operand::Reg(r) => vec![Some(*r)],
        Operand::Imm(_) => vec![],
        Operand::Mem(m) => m.regs().map(Some).collect(),
    }
}

fn fop_regs(op: &FOperand) -> Vec<Option<Reg>> {
    match op {
        FOperand::Xmm(_) => vec![],
        FOperand::Mem(m) => m.regs().map(Some).collect(),
    }
}

fn imm_bytes(v: i64, width: Width) -> u32 {
    if i8::try_from(v).is_ok() {
        1
    } else if width == Width::W64 && i32::try_from(v).is_err() {
        8
    } else {
        4
    }
}

fn operand_pair(dst: &Operand, src: &Operand, width: Width, opcode: u32) -> u32 {
    let mut regs = op_regs(dst);
    regs.extend(op_regs(src));
    let mut n = opcode + rex(width, &regs);
    if width == Width::W16 {
        n += 1; // 0x66 operand-size prefix.
    }
    match (dst, src) {
        (Operand::Mem(m), Operand::Imm(v)) => n + mem_bytes(m) + imm_bytes(*v, width),
        (Operand::Mem(m), _) => n + mem_bytes(m),
        (_, Operand::Mem(m)) => n + mem_bytes(m),
        (_, Operand::Imm(v)) => n + 1 + imm_bytes(*v, width).max(1),
        _ => n + 1, // ModRM reg-reg.
    }
}

/// Estimated encoded length in bytes of `inst`.
pub fn encoded_len(inst: &Inst) -> u32 {
    use Inst::*;
    match inst {
        Mov { dst, src, width } => {
            // mov reg, imm64 is the long movabs form.
            if let (Operand::Reg(r), Operand::Imm(v)) = (dst, src) {
                if *width == Width::W64 && i32::try_from(*v).is_err() {
                    return 2 + 8;
                }
                let _ = r;
                return 1 + rex(*width, &op_regs(dst)) + 4;
            }
            operand_pair(dst, src, *width, 1)
        }
        Movzx { dst, src, from } | Movsx { dst, src, from, .. } => {
            let mut regs = vec![Some(*dst)];
            regs.extend(op_regs(src));
            let mut n = 2 + rex(Width::W64, &regs); // 0F B6/BE style.
            let _ = from;
            match src {
                Operand::Mem(m) => n += mem_bytes(m),
                _ => n += 1,
            }
            n
        }
        Lea { dst, mem, width } => {
            let mut regs = vec![Some(*dst)];
            regs.extend(mem.regs().map(Some));
            1 + rex(*width, &regs) + mem_bytes(mem)
        }
        Alu {
            dst, src, width, ..
        } => operand_pair(dst, src, *width, 1),
        Neg { dst, width } | Not { dst, width } => match dst {
            Operand::Mem(m) => 1 + rex(*width, &op_regs(dst)) + mem_bytes(m),
            _ => 1 + rex(*width, &op_regs(dst)) + 1,
        },
        Imul { dst, src, width } => {
            let mut regs = vec![Some(*dst)];
            regs.extend(op_regs(src));
            let mut n = 2 + rex(*width, &regs); // 0F AF.
            match src {
                Operand::Mem(m) => n += mem_bytes(m),
                _ => n += 1,
            }
            n
        }
        Imul3 {
            dst,
            src,
            imm,
            width,
        } => {
            let mut regs = vec![Some(*dst)];
            regs.extend(op_regs(src));
            let mut n = 1 + rex(*width, &regs) + imm_bytes(*imm, *width);
            match src {
                Operand::Mem(m) => n += mem_bytes(m),
                _ => n += 1,
            }
            n
        }
        Cqo { width } => 1 + rex(*width, &[]),
        Div { src, width, .. } => match src {
            Operand::Mem(m) => 1 + rex(*width, &op_regs(src)) + mem_bytes(m),
            _ => 1 + rex(*width, &op_regs(src)) + 1,
        },
        Cmp { lhs, rhs, width } | Test { lhs, rhs, width } => operand_pair(lhs, rhs, *width, 1),
        Setcc { dst, .. } => 3 + u32::from(dst.is_extended()),
        Cmov {
            dst, src, width, ..
        } => {
            let mut regs = vec![Some(*dst)];
            regs.extend(op_regs(src));
            let mut n = 2 + rex(*width, &regs); // 0F 4x.
            match src {
                Operand::Mem(m) => n += mem_bytes(m),
                _ => n += 1,
            }
            n
        }
        Lzcnt { dst, src, width } | Tzcnt { dst, src, width } | Popcnt { dst, src, width } => {
            let mut regs = vec![Some(*dst)];
            regs.extend(op_regs(src));
            let mut n = 4 + rex(*width, &regs); // F3 0F B8-style.
            match src {
                Operand::Mem(m) => n += mem_bytes(m),
                _ => n += 1,
            }
            n
        }
        // Branch sizes: assume rel32 forms (JITs rarely relax to rel8).
        Jmp { .. } => 5,
        Jcc { .. } => 6,
        Call { .. } => 5,
        CallIndirect { target } => match target {
            Operand::Mem(m) => {
                2 + mem_bytes(m)
                    + u32::from(op_regs(target).iter().flatten().any(|r| r.is_extended()))
            }
            _ => 2 + u32::from(op_regs(target).iter().flatten().any(|r| r.is_extended())),
        },
        // Host calls model a call through a patched thunk.
        CallHost { .. } => 5,
        Push { src } => match src {
            Operand::Reg(r) => 1 + u32::from(r.is_extended()),
            Operand::Imm(v) => 1 + imm_bytes(*v, Width::W32),
            Operand::Mem(m) => 2 + mem_bytes(m),
        },
        Pop { dst } => 1 + u32::from(dst.is_extended()),
        Ret => 1,
        MovF { dst, src, .. } => {
            let mut regs = fop_regs(dst);
            regs.extend(fop_regs(src));
            let mut n = 3 + rex(Width::W32, &regs); // F3/F2 0F 10/11.
            match (dst, src) {
                (FOperand::Mem(m), _) | (_, FOperand::Mem(m)) => n += mem_bytes(m),
                _ => n += 1,
            }
            n
        }
        RoundF { src, .. } => {
            // 66 0F 3A 0A/0B /r ib.
            let mut n = 5 + rex(Width::W32, &fop_regs(src));
            match src {
                FOperand::Mem(m) => n += mem_bytes(m),
                _ => n += 1,
            }
            n
        }
        AluF { src, .. } | SqrtF { src, .. } | AbsF { src, .. } | Ucomis { rhs: src, .. } => {
            let mut n = 3 + rex(Width::W32, &fop_regs(src));
            match src {
                FOperand::Mem(m) => n += mem_bytes(m),
                _ => n += 1,
            }
            n
        }
        CvtIntToF { src, width, .. } => {
            let mut n = 3 + rex(*width, &op_regs(src));
            match src {
                Operand::Mem(m) => n += mem_bytes(m),
                _ => n += 1,
            }
            n
        }
        CvtFToInt { src, width, .. } => {
            let mut n = 3 + rex(*width, &fop_regs(src));
            match src {
                FOperand::Mem(m) => n += mem_bytes(m),
                _ => n += 1,
            }
            n
        }
        CvtFToF { src, .. } => {
            let mut n = 3 + rex(Width::W32, &fop_regs(src));
            match src {
                FOperand::Mem(m) => n += mem_bytes(m),
                _ => n += 1,
            }
            n
        }
        MovGprToXmm { width, .. } | MovXmmToGpr { width, .. } => 4 + rex(*width, &[]),
        Trap { .. } => 2, // ud2.
        Nop => 1,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::inst::AluOp;
    use crate::reg::Reg;

    #[test]
    fn reg_reg_mov_is_small() {
        let i = Inst::Mov {
            dst: Operand::Reg(Reg::Rax),
            src: Operand::Reg(Reg::Rbx),
            width: Width::W64,
        };
        assert_eq!(encoded_len(&i), 3); // REX.W + opcode + ModRM.
        let i32 = Inst::Mov {
            dst: Operand::Reg(Reg::Rax),
            src: Operand::Reg(Reg::Rbx),
            width: Width::W32,
        };
        assert_eq!(encoded_len(&i32), 2);
    }

    #[test]
    fn mem_operands_add_bytes() {
        let small = Inst::Alu {
            op: AluOp::Add,
            dst: Operand::Reg(Reg::Rax),
            src: Operand::Reg(Reg::Rcx),
            width: Width::W32,
        };
        let mem = Inst::Alu {
            op: AluOp::Add,
            dst: Operand::Reg(Reg::Rax),
            src: Operand::Mem(MemRef::full(Reg::Rdi, Reg::Rcx, 4, 4400)),
            width: Width::W32,
        };
        assert!(encoded_len(&mem) > encoded_len(&small));
        // Opcode + ModRM + SIB + disp32 = 7 bytes.
        assert_eq!(encoded_len(&mem), 7);
    }

    #[test]
    fn disp8_smaller_than_disp32() {
        let d8 = Inst::Mov {
            dst: Operand::Reg(Reg::Rax),
            src: Operand::Mem(MemRef::base_disp(Reg::Rbx, 16)),
            width: Width::W64,
        };
        let d32 = Inst::Mov {
            dst: Operand::Reg(Reg::Rax),
            src: Operand::Mem(MemRef::base_disp(Reg::Rbx, 4096)),
            width: Width::W64,
        };
        assert!(encoded_len(&d8) < encoded_len(&d32));
    }

    #[test]
    fn movabs_is_ten_bytes() {
        let i = Inst::Mov {
            dst: Operand::Reg(Reg::Rax),
            src: Operand::Imm(0x1_0000_0000),
            width: Width::W64,
        };
        assert_eq!(encoded_len(&i), 10);
    }

    #[test]
    fn rbp_base_forces_disp() {
        // [rbp] must encode as [rbp+0] with a disp8.
        let rbp0 = Inst::Mov {
            dst: Operand::Reg(Reg::Rax),
            src: Operand::Mem(MemRef::base(Reg::Rbp)),
            width: Width::W64,
        };
        let rbx0 = Inst::Mov {
            dst: Operand::Reg(Reg::Rax),
            src: Operand::Mem(MemRef::base(Reg::Rbx)),
            width: Width::W64,
        };
        assert!(encoded_len(&rbp0) > encoded_len(&rbx0));
    }

    #[test]
    fn every_branch_has_fixed_size() {
        assert_eq!(
            encoded_len(&Inst::Jmp {
                target: crate::Label(0)
            }),
            5
        );
        assert_eq!(
            encoded_len(&Inst::Jcc {
                cc: crate::Cc::Ne,
                target: crate::Label(0)
            }),
            6
        );
        assert_eq!(encoded_len(&Inst::Ret), 1);
    }
}
