//! The 23 PolyBenchC kernels in CLite.
//!
//! Loop structures follow PolyBench/C 4.2; initializations are the
//! suite's index-based formulas (kept small so long dependence chains —
//! `lu`, `cholesky`, `durbin` — stay bounded). Every kernel folds its
//! output array into the `cs` checksum global via `sink()` and returns it.

use crate::{Benchmark, Size, Suite};

/// Shared program prelude: the clamped checksum sink.
fn prelude() -> &'static str {
    "global i32 cs = 0;\n\
     fn sink(x: f64) {\n\
         var t: f64 = x;\n\
         if (t > 1000000.0) { t = 1000000.0; }\n\
         if (t < 0.0 - 1000000.0) { t = 0.0 - 1000000.0; }\n\
         cs = cs * 31 + i32(t * 16.0);\n\
     }\n"
}

fn dim(size: Size, test: u32, r: u32) -> u32 {
    match size {
        Size::Test => test,
        Size::Ref => r,
    }
}

fn bench(name: &'static str, body: String) -> Benchmark {
    Benchmark::pure(name, Suite::PolyBench, format!("{}{}", prelude(), body))
}

fn k_2mm(size: Size) -> Benchmark {
    let n = dim(size, 16, 56);
    bench(
        "2mm",
        format!(
            "const NI = {n}; const NJ = {nj}; const NK = {nk}; const NL = {nl};
array f64 tmp[NI * NJ];
array f64 A[NI * NK];
array f64 B[NK * NJ];
array f64 C[NJ * NL];
array f64 D[NI * NL];
fn main() -> i32 {{
    var i: i32 = 0; var j: i32 = 0; var k: i32 = 0;
    var alpha: f64 = 1.5; var beta: f64 = 1.2;
    for (i = 0; i < NI; i += 1) {{ for (j = 0; j < NK; j += 1) {{
        A[i * NK + j] = f64((i * j + 1) % NI) / f64(NI); }} }}
    for (i = 0; i < NK; i += 1) {{ for (j = 0; j < NJ; j += 1) {{
        B[i * NJ + j] = f64((i * (j + 1)) % NJ) / f64(NJ); }} }}
    for (i = 0; i < NJ; i += 1) {{ for (j = 0; j < NL; j += 1) {{
        C[i * NL + j] = f64((i * (j + 3) + 1) % NL) / f64(NL); }} }}
    for (i = 0; i < NI; i += 1) {{ for (j = 0; j < NL; j += 1) {{
        D[i * NL + j] = f64((i * (j + 2)) % NK) / f64(NK); }} }}
    for (i = 0; i < NI; i += 1) {{
        for (j = 0; j < NJ; j += 1) {{
            tmp[i * NJ + j] = 0.0;
            for (k = 0; k < NK; k += 1) {{
                tmp[i * NJ + j] += alpha * A[i * NK + k] * B[k * NJ + j];
            }}
        }}
    }}
    for (i = 0; i < NI; i += 1) {{
        for (j = 0; j < NL; j += 1) {{
            D[i * NL + j] *= beta;
            for (k = 0; k < NJ; k += 1) {{
                D[i * NL + j] += tmp[i * NJ + k] * C[k * NL + j];
            }}
        }}
    }}
    for (i = 0; i < NI; i += 1) {{ for (j = 0; j < NL; j += 1) {{
        sink(D[i * NL + j]); }} }}
    return cs;
}}",
            nj = n + 4,
            nk = n + 8,
            nl = n + 12
        ),
    )
}

fn k_3mm(size: Size) -> Benchmark {
    let n = dim(size, 14, 48);
    bench(
        "3mm",
        format!(
            "const NI = {n}; const NJ = {nj}; const NK = {nk}; const NL = {nl}; const NM = {nm};
array f64 A[NI * NK];
array f64 B[NK * NJ];
array f64 C[NJ * NM];
array f64 D[NM * NL];
array f64 E[NI * NJ];
array f64 F[NJ * NL];
array f64 G[NI * NL];
fn main() -> i32 {{
    var i: i32 = 0; var j: i32 = 0; var k: i32 = 0;
    for (i = 0; i < NI; i += 1) {{ for (j = 0; j < NK; j += 1) {{
        A[i * NK + j] = f64((i * j + 1) % NI) / (5.0 * f64(NI)); }} }}
    for (i = 0; i < NK; i += 1) {{ for (j = 0; j < NJ; j += 1) {{
        B[i * NJ + j] = f64((i * (j + 1) + 2) % NJ) / (5.0 * f64(NJ)); }} }}
    for (i = 0; i < NJ; i += 1) {{ for (j = 0; j < NM; j += 1) {{
        C[i * NM + j] = f64(i * (j + 3) % NL) / (5.0 * f64(NL)); }} }}
    for (i = 0; i < NM; i += 1) {{ for (j = 0; j < NL; j += 1) {{
        D[i * NL + j] = f64((i * (j + 2) + 2) % NK) / (5.0 * f64(NK)); }} }}
    for (i = 0; i < NI; i += 1) {{ for (j = 0; j < NJ; j += 1) {{
        E[i * NJ + j] = 0.0;
        for (k = 0; k < NK; k += 1) {{ E[i * NJ + j] += A[i * NK + k] * B[k * NJ + j]; }}
    }} }}
    for (i = 0; i < NJ; i += 1) {{ for (j = 0; j < NL; j += 1) {{
        F[i * NL + j] = 0.0;
        for (k = 0; k < NM; k += 1) {{ F[i * NL + j] += C[i * NM + k] * D[k * NL + j]; }}
    }} }}
    for (i = 0; i < NI; i += 1) {{ for (j = 0; j < NL; j += 1) {{
        G[i * NL + j] = 0.0;
        for (k = 0; k < NJ; k += 1) {{ G[i * NL + j] += E[i * NJ + k] * F[k * NL + j]; }}
    }} }}
    for (i = 0; i < NI; i += 1) {{ for (j = 0; j < NL; j += 1) {{ sink(G[i * NL + j]); }} }}
    return cs;
}}",
            nj = n + 2,
            nk = n + 4,
            nl = n + 6,
            nm = n + 8
        ),
    )
}

fn k_adi(size: Size) -> Benchmark {
    let n = dim(size, 14, 40);
    let t = dim(size, 4, 12);
    bench(
        "adi",
        format!(
            "const N = {n}; const TSTEPS = {t};
array f64 u[N * N];
array f64 v[N * N];
array f64 p[N * N];
array f64 q[N * N];
fn main() -> i32 {{
    var i: i32 = 0; var j: i32 = 0; var t: i32 = 0;
    var a: f64 = 0.13; var b: f64 = 0.41; var c: f64 = 0.13;
    var d: f64 = 0.41; var e: f64 = 0.13; var f: f64 = 0.13;
    for (i = 0; i < N; i += 1) {{ for (j = 0; j < N; j += 1) {{
        u[i * N + j] = (f64(i) + f64(N - j)) / f64(N); }} }}
    for (t = 1; t <= TSTEPS; t += 1) {{
        for (i = 1; i < N - 1; i += 1) {{
            v[0 * N + i] = 1.0;
            p[i * N + 0] = 0.0;
            q[i * N + 0] = v[0 * N + i];
            for (j = 1; j < N - 1; j += 1) {{
                p[i * N + j] = (0.0 - c) / (a * p[i * N + j - 1] + b);
                q[i * N + j] = ((0.0 - d) * u[j * N + i - 1]
                    + (1.0 + 2.0 * d) * u[j * N + i]
                    - f * u[j * N + i + 1]
                    - a * q[i * N + j - 1]) / (a * p[i * N + j - 1] + b);
            }}
            v[(N - 1) * N + i] = 1.0;
            for (j = N - 2; j >= 1; j -= 1) {{
                v[j * N + i] = p[i * N + j] * v[(j + 1) * N + i] + q[i * N + j];
            }}
        }}
        for (i = 1; i < N - 1; i += 1) {{
            u[i * N + 0] = 1.0;
            p[i * N + 0] = 0.0;
            q[i * N + 0] = u[i * N + 0];
            for (j = 1; j < N - 1; j += 1) {{
                p[i * N + j] = (0.0 - f) / (d * p[i * N + j - 1] + e);
                q[i * N + j] = ((0.0 - a) * v[(i - 1) * N + j]
                    + (1.0 + 2.0 * a) * v[i * N + j]
                    - c * v[(i + 1) * N + j]
                    - d * q[i * N + j - 1]) / (d * p[i * N + j - 1] + e);
            }}
            u[i * N + N - 1] = 1.0;
            for (j = N - 2; j >= 1; j -= 1) {{
                u[i * N + j] = p[i * N + j] * u[i * N + j + 1] + q[i * N + j];
            }}
        }}
    }}
    for (i = 0; i < N; i += 1) {{ for (j = 0; j < N; j += 1) {{ sink(u[i * N + j]); }} }}
    return cs;
}}"
        ),
    )
}

fn k_bicg(size: Size) -> Benchmark {
    let n = dim(size, 40, 220);
    bench(
        "bicg",
        format!(
            "const N = {n}; const M = {m};
array f64 A[N * M];
array f64 s[M];
array f64 q[N];
array f64 p[M];
array f64 r[N];
fn main() -> i32 {{
    var i: i32 = 0; var j: i32 = 0;
    for (i = 0; i < M; i += 1) {{ p[i] = f64(i % M) / f64(M); }}
    for (i = 0; i < N; i += 1) {{
        r[i] = f64(i % N) / f64(N);
        for (j = 0; j < M; j += 1) {{ A[i * M + j] = f64((i * (j + 1)) % N) / f64(N); }}
    }}
    for (i = 0; i < M; i += 1) {{ s[i] = 0.0; }}
    for (i = 0; i < N; i += 1) {{
        q[i] = 0.0;
        for (j = 0; j < M; j += 1) {{
            s[j] = s[j] + r[i] * A[i * M + j];
            q[i] = q[i] + A[i * M + j] * p[j];
        }}
    }}
    for (i = 0; i < M; i += 1) {{ sink(s[i]); }}
    for (i = 0; i < N; i += 1) {{ sink(q[i]); }}
    return cs;
}}",
            m = n + 12
        ),
    )
}

fn k_cholesky(size: Size) -> Benchmark {
    let n = dim(size, 16, 48);
    bench(
        "cholesky",
        format!(
            "const N = {n};
array f64 A[N * N];
fn main() -> i32 {{
    var i: i32 = 0; var j: i32 = 0; var k: i32 = 0;
    // Symmetric positive-definite initialization.
    for (i = 0; i < N; i += 1) {{
        for (j = 0; j <= i; j += 1) {{
            A[i * N + j] = f64(0 - (j % N)) / f64(N) + 1.0;
            A[j * N + i] = A[i * N + j];
        }}
        A[i * N + i] = f64(N) * 2.0;
    }}
    for (i = 0; i < N; i += 1) {{
        for (j = 0; j < i; j += 1) {{
            for (k = 0; k < j; k += 1) {{
                A[i * N + j] -= A[i * N + k] * A[j * N + k];
            }}
            A[i * N + j] /= A[j * N + j];
        }}
        for (k = 0; k < i; k += 1) {{
            A[i * N + i] -= A[i * N + k] * A[i * N + k];
        }}
        A[i * N + i] = sqrt(A[i * N + i]);
    }}
    for (i = 0; i < N; i += 1) {{ for (j = 0; j <= i; j += 1) {{ sink(A[i * N + j]); }} }}
    return cs;
}}"
        ),
    )
}

fn k_correlation(size: Size) -> Benchmark {
    let n = dim(size, 18, 52);
    bench(
        "correlation",
        format!(
            "const N = {nn}; const M = {n};
array f64 data[N * M];
array f64 corr[M * M];
array f64 mean[M];
array f64 stddev[M];
fn main() -> i32 {{
    var i: i32 = 0; var j: i32 = 0; var k: i32 = 0;
    var float_n: f64 = f64(N);
    for (i = 0; i < N; i += 1) {{ for (j = 0; j < M; j += 1) {{
        data[i * M + j] = f64(i * j % M) / f64(M) + f64(i) * 0.01; }} }}
    for (j = 0; j < M; j += 1) {{
        mean[j] = 0.0;
        for (i = 0; i < N; i += 1) {{ mean[j] += data[i * M + j]; }}
        mean[j] /= float_n;
    }}
    for (j = 0; j < M; j += 1) {{
        stddev[j] = 0.0;
        for (i = 0; i < N; i += 1) {{
            stddev[j] += (data[i * M + j] - mean[j]) * (data[i * M + j] - mean[j]);
        }}
        stddev[j] = sqrt(stddev[j] / float_n);
        if (stddev[j] <= 0.1) {{ stddev[j] = 1.0; }}
    }}
    for (i = 0; i < N; i += 1) {{
        for (j = 0; j < M; j += 1) {{
            data[i * M + j] -= mean[j];
            data[i * M + j] /= sqrt(float_n) * stddev[j];
        }}
    }}
    for (i = 0; i < M - 1; i += 1) {{
        corr[i * M + i] = 1.0;
        for (j = i + 1; j < M; j += 1) {{
            corr[i * M + j] = 0.0;
            for (k = 0; k < N; k += 1) {{
                corr[i * M + j] += data[k * M + i] * data[k * M + j];
            }}
            corr[j * M + i] = corr[i * M + j];
        }}
    }}
    corr[(M - 1) * M + M - 1] = 1.0;
    for (i = 0; i < M; i += 1) {{ for (j = 0; j < M; j += 1) {{ sink(corr[i * M + j]); }} }}
    return cs;
}}",
            nn = n + 8
        ),
    )
}

fn k_covariance(size: Size) -> Benchmark {
    let n = dim(size, 18, 52);
    bench(
        "covariance",
        format!(
            "const N = {nn}; const M = {n};
array f64 data[N * M];
array f64 cov[M * M];
array f64 mean[M];
fn main() -> i32 {{
    var i: i32 = 0; var j: i32 = 0; var k: i32 = 0;
    var float_n: f64 = f64(N);
    for (i = 0; i < N; i += 1) {{ for (j = 0; j < M; j += 1) {{
        data[i * M + j] = f64((i * j) % M) / f64(M); }} }}
    for (j = 0; j < M; j += 1) {{
        mean[j] = 0.0;
        for (i = 0; i < N; i += 1) {{ mean[j] += data[i * M + j]; }}
        mean[j] /= float_n;
    }}
    for (i = 0; i < N; i += 1) {{ for (j = 0; j < M; j += 1) {{
        data[i * M + j] -= mean[j]; }} }}
    for (i = 0; i < M; i += 1) {{
        for (j = i; j < M; j += 1) {{
            cov[i * M + j] = 0.0;
            for (k = 0; k < N; k += 1) {{
                cov[i * M + j] += data[k * M + i] * data[k * M + j];
            }}
            cov[i * M + j] /= float_n - 1.0;
            cov[j * M + i] = cov[i * M + j];
        }}
    }}
    for (i = 0; i < M; i += 1) {{ for (j = 0; j < M; j += 1) {{ sink(cov[i * M + j]); }} }}
    return cs;
}}",
            nn = n + 8
        ),
    )
}

fn k_doitgen(size: Size) -> Benchmark {
    let n = dim(size, 12, 28);
    bench(
        "doitgen",
        format!(
            "const NR = {n}; const NQ = {nq}; const NP = {np};
array f64 A[NR * NQ * NP];
array f64 C4[NP * NP];
array f64 sum[NP];
fn main() -> i32 {{
    var r: i32 = 0; var q: i32 = 0; var p: i32 = 0; var s: i32 = 0;
    for (r = 0; r < NR; r += 1) {{ for (q = 0; q < NQ; q += 1) {{ for (p = 0; p < NP; p += 1) {{
        A[(r * NQ + q) * NP + p] = f64((r * q + p) % NP) / f64(NP); }} }} }}
    for (p = 0; p < NP; p += 1) {{ for (s = 0; s < NP; s += 1) {{
        C4[p * NP + s] = f64(p * s % NP) / f64(NP); }} }}
    for (r = 0; r < NR; r += 1) {{
        for (q = 0; q < NQ; q += 1) {{
            for (p = 0; p < NP; p += 1) {{
                sum[p] = 0.0;
                for (s = 0; s < NP; s += 1) {{
                    sum[p] += A[(r * NQ + q) * NP + s] * C4[s * NP + p];
                }}
            }}
            for (p = 0; p < NP; p += 1) {{ A[(r * NQ + q) * NP + p] = sum[p]; }}
        }}
    }}
    for (r = 0; r < NR; r += 1) {{ for (q = 0; q < NQ; q += 1) {{ for (p = 0; p < NP; p += 1) {{
        sink(A[(r * NQ + q) * NP + p]); }} }} }}
    return cs;
}}",
            nq = n + 2,
            np = n + 4
        ),
    )
}

fn k_durbin(size: Size) -> Benchmark {
    let n = dim(size, 60, 400);
    bench(
        "durbin",
        format!(
            "const N = {n};
array f64 r[N];
array f64 y[N];
array f64 z[N];
fn main() -> i32 {{
    var i: i32 = 0; var k: i32 = 0;
    for (i = 0; i < N; i += 1) {{ r[i] = 1.0 / f64(N + 1 - i); }}
    y[0] = 0.0 - r[0];
    var beta: f64 = 1.0;
    var alpha: f64 = 0.0 - r[0];
    for (k = 1; k < N; k += 1) {{
        beta = (1.0 - alpha * alpha) * beta;
        var summ: f64 = 0.0;
        for (i = 0; i < k; i += 1) {{ summ += r[k - i - 1] * y[i]; }}
        alpha = 0.0 - (r[k] + summ) / beta;
        for (i = 0; i < k; i += 1) {{ z[i] = y[i] + alpha * y[k - i - 1]; }}
        for (i = 0; i < k; i += 1) {{ y[i] = z[i]; }}
        y[k] = alpha;
    }}
    for (i = 0; i < N; i += 1) {{ sink(y[i]); }}
    return cs;
}}"
        ),
    )
}

fn k_fdtd2d(size: Size) -> Benchmark {
    let n = dim(size, 16, 44);
    let t = dim(size, 5, 16);
    bench(
        "fdtd-2d",
        format!(
            "const NX = {n}; const NY = {ny}; const TMAX = {t};
array f64 ex[NX * NY];
array f64 ey[NX * NY];
array f64 hz[NX * NY];
array f64 fict[TMAX];
fn main() -> i32 {{
    var i: i32 = 0; var j: i32 = 0; var t: i32 = 0;
    for (t = 0; t < TMAX; t += 1) {{ fict[t] = f64(t); }}
    for (i = 0; i < NX; i += 1) {{ for (j = 0; j < NY; j += 1) {{
        ex[i * NY + j] = f64(i * (j + 1)) / f64(NX);
        ey[i * NY + j] = f64(i * (j + 2)) / f64(NY);
        hz[i * NY + j] = f64(i * (j + 3)) / f64(NX);
    }} }}
    for (t = 0; t < TMAX; t += 1) {{
        for (j = 0; j < NY; j += 1) {{ ey[0 * NY + j] = fict[t]; }}
        for (i = 1; i < NX; i += 1) {{ for (j = 0; j < NY; j += 1) {{
            ey[i * NY + j] -= 0.5 * (hz[i * NY + j] - hz[(i - 1) * NY + j]); }} }}
        for (i = 0; i < NX; i += 1) {{ for (j = 1; j < NY; j += 1) {{
            ex[i * NY + j] -= 0.5 * (hz[i * NY + j] - hz[i * NY + j - 1]); }} }}
        for (i = 0; i < NX - 1; i += 1) {{ for (j = 0; j < NY - 1; j += 1) {{
            hz[i * NY + j] -= 0.7 * (ex[i * NY + j + 1] - ex[i * NY + j]
                + ey[(i + 1) * NY + j] - ey[i * NY + j]); }} }}
    }}
    for (i = 0; i < NX; i += 1) {{ for (j = 0; j < NY; j += 1) {{
        sink(ex[i * NY + j]); sink(ey[i * NY + j]); sink(hz[i * NY + j]); }} }}
    return cs;
}}",
            ny = n + 4
        ),
    )
}

fn k_gemm(size: Size) -> Benchmark {
    let n = dim(size, 18, 56);
    bench(
        "gemm",
        format!(
            "const NI = {n}; const NJ = {nj}; const NK = {nk};
array f64 A[NI * NK];
array f64 B[NK * NJ];
array f64 C[NI * NJ];
fn main() -> i32 {{
    var i: i32 = 0; var j: i32 = 0; var k: i32 = 0;
    var alpha: f64 = 1.5; var beta: f64 = 1.2;
    for (i = 0; i < NI; i += 1) {{ for (j = 0; j < NJ; j += 1) {{
        C[i * NJ + j] = f64((i * j + 1) % NI) / f64(NI); }} }}
    for (i = 0; i < NI; i += 1) {{ for (j = 0; j < NK; j += 1) {{
        A[i * NK + j] = f64(i * (j + 1) % NK) / f64(NK); }} }}
    for (i = 0; i < NK; i += 1) {{ for (j = 0; j < NJ; j += 1) {{
        B[i * NJ + j] = f64(i * (j + 2) % NJ) / f64(NJ); }} }}
    for (i = 0; i < NI; i += 1) {{
        for (j = 0; j < NJ; j += 1) {{ C[i * NJ + j] *= beta; }}
        for (k = 0; k < NK; k += 1) {{
            for (j = 0; j < NJ; j += 1) {{
                C[i * NJ + j] += alpha * A[i * NK + k] * B[k * NJ + j];
            }}
        }}
    }}
    for (i = 0; i < NI; i += 1) {{ for (j = 0; j < NJ; j += 1) {{ sink(C[i * NJ + j]); }} }}
    return cs;
}}",
            nj = n + 4,
            nk = n + 8
        ),
    )
}

fn k_gemver(size: Size) -> Benchmark {
    let n = dim(size, 40, 160);
    bench(
        "gemver",
        format!(
            "const N = {n};
array f64 A[N * N];
array f64 u1[N]; array f64 v1[N]; array f64 u2[N]; array f64 v2[N];
array f64 w[N]; array f64 x[N]; array f64 y[N]; array f64 z[N];
fn main() -> i32 {{
    var i: i32 = 0; var j: i32 = 0;
    var alpha: f64 = 1.5; var beta: f64 = 1.2;
    var fn_: f64 = f64(N);
    for (i = 0; i < N; i += 1) {{
        u1[i] = f64(i) / fn_ / 2.0;
        u2[i] = f64(i + 1) / fn_ / 4.0;
        v1[i] = f64(i + 1) / fn_ / 8.0;
        v2[i] = f64(i + 1) / fn_ / 6.0;
        y[i] = f64(i + 1) / fn_ / 8.0;
        z[i] = f64(i + 1) / fn_ / 9.0;
        x[i] = 0.0;
        w[i] = 0.0;
        for (j = 0; j < N; j += 1) {{
            A[i * N + j] = f64(i * j % N) / fn_;
        }}
    }}
    for (i = 0; i < N; i += 1) {{ for (j = 0; j < N; j += 1) {{
        A[i * N + j] = A[i * N + j] + u1[i] * v1[j] + u2[i] * v2[j]; }} }}
    for (i = 0; i < N; i += 1) {{ for (j = 0; j < N; j += 1) {{
        x[i] = x[i] + beta * A[j * N + i] * y[j]; }} }}
    for (i = 0; i < N; i += 1) {{ x[i] = x[i] + z[i]; }}
    for (i = 0; i < N; i += 1) {{ for (j = 0; j < N; j += 1) {{
        w[i] = w[i] + alpha * A[i * N + j] * x[j]; }} }}
    for (i = 0; i < N; i += 1) {{ sink(w[i]); }}
    return cs;
}}"
        ),
    )
}

fn k_gesummv(size: Size) -> Benchmark {
    let n = dim(size, 36, 150);
    bench(
        "gesummv",
        format!(
            "const N = {n};
array f64 A[N * N];
array f64 B[N * N];
array f64 tmp[N];
array f64 x[N];
array f64 y[N];
fn main() -> i32 {{
    var i: i32 = 0; var j: i32 = 0;
    var alpha: f64 = 1.5; var beta: f64 = 1.2;
    for (i = 0; i < N; i += 1) {{
        x[i] = f64(i % N) / f64(N);
        for (j = 0; j < N; j += 1) {{
            A[i * N + j] = f64((i * j + 1) % N) / f64(N);
            B[i * N + j] = f64((i * j + 2) % N) / f64(N);
        }}
    }}
    for (i = 0; i < N; i += 1) {{
        tmp[i] = 0.0;
        y[i] = 0.0;
        for (j = 0; j < N; j += 1) {{
            tmp[i] = A[i * N + j] * x[j] + tmp[i];
            y[i] = B[i * N + j] * x[j] + y[i];
        }}
        y[i] = alpha * tmp[i] + beta * y[i];
    }}
    for (i = 0; i < N; i += 1) {{ sink(y[i]); }}
    return cs;
}}"
        ),
    )
}

fn k_gramschmidt(size: Size) -> Benchmark {
    let n = dim(size, 16, 44);
    bench(
        "gramschmidt",
        format!(
            "const M = {m}; const N = {n};
array f64 A[M * N];
array f64 R[N * N];
array f64 Q[M * N];
fn main() -> i32 {{
    var i: i32 = 0; var j: i32 = 0; var k: i32 = 0;
    for (i = 0; i < M; i += 1) {{ for (j = 0; j < N; j += 1) {{
        A[i * N + j] = (f64((i * j) % M) / f64(M)) * 100.0 + 10.0 + f64(i == j) * f64(M);
    }} }}
    for (k = 0; k < N; k += 1) {{
        var nrm: f64 = 0.0;
        for (i = 0; i < M; i += 1) {{ nrm += A[i * N + k] * A[i * N + k]; }}
        R[k * N + k] = sqrt(nrm);
        for (i = 0; i < M; i += 1) {{ Q[i * N + k] = A[i * N + k] / R[k * N + k]; }}
        for (j = k + 1; j < N; j += 1) {{
            R[k * N + j] = 0.0;
            for (i = 0; i < M; i += 1) {{ R[k * N + j] += Q[i * N + k] * A[i * N + j]; }}
            for (i = 0; i < M; i += 1) {{
                A[i * N + j] = A[i * N + j] - Q[i * N + k] * R[k * N + j];
            }}
        }}
    }}
    for (i = 0; i < N; i += 1) {{ for (j = 0; j < N; j += 1) {{ sink(R[i * N + j]); }} }}
    return cs;
}}",
            m = n + 6
        ),
    )
}

fn k_lu(size: Size) -> Benchmark {
    let n = dim(size, 16, 48);
    bench(
        "lu",
        format!(
            "const N = {n};
array f64 A[N * N];
fn main() -> i32 {{
    var i: i32 = 0; var j: i32 = 0; var k: i32 = 0;
    for (i = 0; i < N; i += 1) {{
        for (j = 0; j <= i; j += 1) {{
            A[i * N + j] = f64(0 - (j % N)) / f64(N) + 1.0;
            A[j * N + i] = A[i * N + j];
        }}
        A[i * N + i] = f64(N) * 2.0;
    }}
    for (i = 0; i < N; i += 1) {{
        for (j = 0; j < i; j += 1) {{
            for (k = 0; k < j; k += 1) {{
                A[i * N + j] -= A[i * N + k] * A[k * N + j];
            }}
            A[i * N + j] /= A[j * N + j];
        }}
        for (j = i; j < N; j += 1) {{
            for (k = 0; k < i; k += 1) {{
                A[i * N + j] -= A[i * N + k] * A[k * N + j];
            }}
        }}
    }}
    for (i = 0; i < N; i += 1) {{ for (j = 0; j < N; j += 1) {{ sink(A[i * N + j]); }} }}
    return cs;
}}"
        ),
    )
}

fn k_ludcmp(size: Size) -> Benchmark {
    let n = dim(size, 16, 44);
    bench(
        "ludcmp",
        format!(
            "const N = {n};
array f64 A[N * N];
array f64 b[N];
array f64 x[N];
array f64 y[N];
fn main() -> i32 {{
    var i: i32 = 0; var j: i32 = 0; var k: i32 = 0;
    for (i = 0; i < N; i += 1) {{
        b[i] = (f64(i) + 1.0) / f64(N) / 2.0 + 4.0;
        x[i] = 0.0;
        y[i] = 0.0;
        for (j = 0; j <= i; j += 1) {{
            A[i * N + j] = f64(0 - (j % N)) / f64(N) + 1.0;
            A[j * N + i] = A[i * N + j];
        }}
        A[i * N + i] = f64(N) * 2.0;
    }}
    var w1: f64 = 0.0;
    for (i = 0; i < N; i += 1) {{
        for (j = 0; j < i; j += 1) {{
            w1 = A[i * N + j];
            for (k = 0; k < j; k += 1) {{ w1 -= A[i * N + k] * A[k * N + j]; }}
            A[i * N + j] = w1 / A[j * N + j];
        }}
        for (j = i; j < N; j += 1) {{
            w1 = A[i * N + j];
            for (k = 0; k < i; k += 1) {{ w1 -= A[i * N + k] * A[k * N + j]; }}
            A[i * N + j] = w1;
        }}
    }}
    for (i = 0; i < N; i += 1) {{
        w1 = b[i];
        for (j = 0; j < i; j += 1) {{ w1 -= A[i * N + j] * y[j]; }}
        y[i] = w1;
    }}
    for (i = N - 1; i >= 0; i -= 1) {{
        w1 = y[i];
        for (j = i + 1; j < N; j += 1) {{ w1 -= A[i * N + j] * x[j]; }}
        x[i] = w1 / A[i * N + i];
    }}
    for (i = 0; i < N; i += 1) {{ sink(x[i]); }}
    return cs;
}}"
        ),
    )
}

fn k_mvt(size: Size) -> Benchmark {
    let n = dim(size, 40, 160);
    bench(
        "mvt",
        format!(
            "const N = {n};
array f64 A[N * N];
array f64 x1[N]; array f64 x2[N]; array f64 y1[N]; array f64 y2[N];
fn main() -> i32 {{
    var i: i32 = 0; var j: i32 = 0;
    for (i = 0; i < N; i += 1) {{
        x1[i] = f64(i % N) / f64(N);
        x2[i] = f64((i + 1) % N) / f64(N);
        y1[i] = f64((i + 3) % N) / f64(N);
        y2[i] = f64((i + 4) % N) / f64(N);
        for (j = 0; j < N; j += 1) {{ A[i * N + j] = f64(i * j % N) / f64(N); }}
    }}
    for (i = 0; i < N; i += 1) {{ for (j = 0; j < N; j += 1) {{
        x1[i] = x1[i] + A[i * N + j] * y1[j]; }} }}
    for (i = 0; i < N; i += 1) {{ for (j = 0; j < N; j += 1) {{
        x2[i] = x2[i] + A[j * N + i] * y2[j]; }} }}
    for (i = 0; i < N; i += 1) {{ sink(x1[i]); sink(x2[i]); }}
    return cs;
}}"
        ),
    )
}

fn k_seidel2d(size: Size) -> Benchmark {
    let n = dim(size, 20, 56);
    let t = dim(size, 4, 12);
    bench(
        "seidel-2d",
        format!(
            "const N = {n}; const TSTEPS = {t};
array f64 A[N * N];
fn main() -> i32 {{
    var i: i32 = 0; var j: i32 = 0; var t: i32 = 0;
    for (i = 0; i < N; i += 1) {{ for (j = 0; j < N; j += 1) {{
        A[i * N + j] = (f64(i) * (f64(j) + 2.0) + 2.0) / f64(N); }} }}
    for (t = 0; t < TSTEPS; t += 1) {{
        for (i = 1; i < N - 1; i += 1) {{
            for (j = 1; j < N - 1; j += 1) {{
                A[i * N + j] = (A[(i - 1) * N + j - 1] + A[(i - 1) * N + j]
                    + A[(i - 1) * N + j + 1] + A[i * N + j - 1] + A[i * N + j]
                    + A[i * N + j + 1] + A[(i + 1) * N + j - 1]
                    + A[(i + 1) * N + j] + A[(i + 1) * N + j + 1]) / 9.0;
            }}
        }}
    }}
    for (i = 0; i < N; i += 1) {{ for (j = 0; j < N; j += 1) {{ sink(A[i * N + j]); }} }}
    return cs;
}}"
        ),
    )
}

fn k_symm(size: Size) -> Benchmark {
    let n = dim(size, 16, 48);
    bench(
        "symm",
        format!(
            "const M = {n}; const N = {nn};
array f64 A[M * M];
array f64 B[M * N];
array f64 C[M * N];
fn main() -> i32 {{
    var i: i32 = 0; var j: i32 = 0; var k: i32 = 0;
    var alpha: f64 = 1.5; var beta: f64 = 1.2;
    for (i = 0; i < M; i += 1) {{
        for (j = 0; j < N; j += 1) {{
            C[i * N + j] = f64((i + j) % 100) / f64(M);
            B[i * N + j] = f64((N + i - j) % 100) / f64(M);
        }}
        for (j = 0; j <= i; j += 1) {{
            A[i * M + j] = f64((i + j) % 100) / f64(M);
            A[j * M + i] = A[i * M + j];
        }}
    }}
    for (i = 0; i < M; i += 1) {{
        for (j = 0; j < N; j += 1) {{
            var temp2: f64 = 0.0;
            for (k = 0; k < i; k += 1) {{
                C[k * N + j] += alpha * B[i * N + j] * A[i * M + k];
                temp2 += B[k * N + j] * A[i * M + k];
            }}
            C[i * N + j] = beta * C[i * N + j]
                + alpha * B[i * N + j] * A[i * M + i] + alpha * temp2;
        }}
    }}
    for (i = 0; i < M; i += 1) {{ for (j = 0; j < N; j += 1) {{ sink(C[i * N + j]); }} }}
    return cs;
}}",
            nn = n + 4
        ),
    )
}

fn k_syr2k(size: Size) -> Benchmark {
    let n = dim(size, 16, 44);
    bench(
        "syr2k",
        format!(
            "const N = {n}; const M = {m};
array f64 A[N * M];
array f64 B[N * M];
array f64 C[N * N];
fn main() -> i32 {{
    var i: i32 = 0; var j: i32 = 0; var k: i32 = 0;
    var alpha: f64 = 1.5; var beta: f64 = 1.2;
    for (i = 0; i < N; i += 1) {{
        for (j = 0; j < M; j += 1) {{
            A[i * M + j] = f64((i * j + 1) % N) / f64(N);
            B[i * M + j] = f64((i * j + 2) % M) / f64(M);
        }}
        for (j = 0; j < N; j += 1) {{
            C[i * N + j] = f64((i * j + 3) % N) / f64(M);
        }}
    }}
    for (i = 0; i < N; i += 1) {{
        for (j = 0; j <= i; j += 1) {{ C[i * N + j] *= beta; }}
        for (k = 0; k < M; k += 1) {{
            for (j = 0; j <= i; j += 1) {{
                C[i * N + j] += A[j * M + k] * alpha * B[i * M + k]
                    + B[j * M + k] * alpha * A[i * M + k];
            }}
        }}
    }}
    for (i = 0; i < N; i += 1) {{ for (j = 0; j <= i; j += 1) {{ sink(C[i * N + j]); }} }}
    return cs;
}}",
            m = n + 4
        ),
    )
}

fn k_syrk(size: Size) -> Benchmark {
    let n = dim(size, 18, 48);
    bench(
        "syrk",
        format!(
            "const N = {n}; const M = {m};
array f64 A[N * M];
array f64 C[N * N];
fn main() -> i32 {{
    var i: i32 = 0; var j: i32 = 0; var k: i32 = 0;
    var alpha: f64 = 1.5; var beta: f64 = 1.2;
    for (i = 0; i < N; i += 1) {{
        for (j = 0; j < M; j += 1) {{ A[i * M + j] = f64((i * j + 1) % N) / f64(N); }}
        for (j = 0; j < N; j += 1) {{ C[i * N + j] = f64((i * j + 2) % M) / f64(M); }}
    }}
    for (i = 0; i < N; i += 1) {{
        for (j = 0; j <= i; j += 1) {{ C[i * N + j] *= beta; }}
        for (k = 0; k < M; k += 1) {{
            for (j = 0; j <= i; j += 1) {{
                C[i * N + j] += alpha * A[i * M + k] * A[j * M + k];
            }}
        }}
    }}
    for (i = 0; i < N; i += 1) {{ for (j = 0; j <= i; j += 1) {{ sink(C[i * N + j]); }} }}
    return cs;
}}",
            m = n + 4
        ),
    )
}

fn k_trisolv(size: Size) -> Benchmark {
    let n = dim(size, 60, 360);
    bench(
        "trisolv",
        format!(
            "const N = {n};
array f64 L[N * N];
array f64 x[N];
array f64 b[N];
fn main() -> i32 {{
    var i: i32 = 0; var j: i32 = 0;
    for (i = 0; i < N; i += 1) {{
        x[i] = 0.0 - 999.0;
        b[i] = f64(i);
        for (j = 0; j <= i; j += 1) {{
            L[i * N + j] = f64(i + N - j + 1) * 2.0 / f64(N);
        }}
    }}
    for (i = 0; i < N; i += 1) {{
        x[i] = b[i];
        for (j = 0; j < i; j += 1) {{ x[i] -= L[i * N + j] * x[j]; }}
        x[i] = x[i] / L[i * N + i];
    }}
    for (i = 0; i < N; i += 1) {{ sink(x[i]); }}
    return cs;
}}"
        ),
    )
}

fn k_trmm(size: Size) -> Benchmark {
    let n = dim(size, 18, 48);
    bench(
        "trmm",
        format!(
            "const M = {n}; const N = {nn};
array f64 A[M * M];
array f64 B[M * N];
fn main() -> i32 {{
    var i: i32 = 0; var j: i32 = 0; var k: i32 = 0;
    var alpha: f64 = 1.5;
    for (i = 0; i < M; i += 1) {{
        for (j = 0; j < i; j += 1) {{
            A[i * M + j] = f64((i + j) % M) / f64(M);
        }}
        A[i * M + i] = 1.0;
        for (j = 0; j < N; j += 1) {{
            B[i * N + j] = f64((N + i - j) % N) / f64(N);
        }}
    }}
    for (i = 0; i < M; i += 1) {{
        for (j = 0; j < N; j += 1) {{
            for (k = i + 1; k < M; k += 1) {{
                B[i * N + j] += A[k * M + i] * B[k * N + j];
            }}
            B[i * N + j] = alpha * B[i * N + j];
        }}
    }}
    for (i = 0; i < M; i += 1) {{ for (j = 0; j < N; j += 1) {{ sink(B[i * N + j]); }} }}
    return cs;
}}",
            nn = n + 4
        ),
    )
}

/// All 23 PolyBenchC kernels at the given size.
pub fn all(size: Size) -> Vec<Benchmark> {
    vec![
        k_2mm(size),
        k_3mm(size),
        k_adi(size),
        k_bicg(size),
        k_cholesky(size),
        k_correlation(size),
        k_covariance(size),
        k_doitgen(size),
        k_durbin(size),
        k_fdtd2d(size),
        k_gemm(size),
        k_gemver(size),
        k_gesummv(size),
        k_gramschmidt(size),
        k_lu(size),
        k_ludcmp(size),
        k_mvt(size),
        k_seidel2d(size),
        k_symm(size),
        k_syr2k(size),
        k_syrk(size),
        k_trisolv(size),
        k_trmm(size),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use wasmperf_cir::{Interp, NoSyscalls};

    #[test]
    fn kernels_run_and_produce_nonzero_checksums() {
        for b in all(Size::Test) {
            let prog =
                wasmperf_cir::compile(&b.source).unwrap_or_else(|e| panic!("{}: {e}", b.name));
            let mut i = Interp::new(&prog, NoSyscalls);
            i.set_fuel(200_000_000);
            let r = i
                .run("main", &[])
                .unwrap_or_else(|e| panic!("{} traps: {e}", b.name));
            let cs = r.expect("returns checksum") as u32 as i32;
            assert_ne!(cs, 0, "{} checksum is zero (degenerate)", b.name);
        }
    }

    #[test]
    fn ref_size_is_larger() {
        for (t, r) in all(Size::Test).iter().zip(all(Size::Ref).iter()) {
            assert!(
                r.source.len() >= t.source.len(),
                "{}: ref source shrank",
                t.name
            );
            assert_ne!(t.source, r.source, "{}: sizes identical", t.name);
        }
    }
}
