//! The I/O-heavy benchmark class.
//!
//! Every PolyBench and SPEC-analog program is compute-dominated; these
//! four are the opposite — built so the Browsix kernel's transport,
//! service, and fs-copy costs dominate the cycle budget, making the
//! engine comparison cover system-call-bound workloads (the regime the
//! paper's Figure 4 attributes the wasm gap to). One program per kernel
//! subsystem:
//!
//! - `io.pipechain`: a two-stage pipe-chained filter (ipc + io);
//! - `io.grep`: block-wise file scan with overlapping seeks (io + file);
//! - `io.fsmeta`: directory/file metadata churn (fs-meta);
//! - `io.rwmix`: mixed read/write/fsync/ftruncate on one file (file).
//!
//! Like every benchmark, `main` returns a checksum the harness compares
//! across all engines, and each program writes an output file that is
//! byte-compared too.

use crate::{Benchmark, Rng, Size, Suite};

fn n(size: Size, test: u32, r: u32) -> u32 {
    match size {
        Size::Test => test,
        Size::Ref => r,
    }
}

// ---------------------------------------------------------------------
// io.pipechain — two pipes in series with a filter stage between them;
// the write side of the first pipe is exercised through dup as well.
// ---------------------------------------------------------------------

fn pipechain(size: Size) -> Benchmark {
    let block = n(size, 1 << 10, 8 << 10);
    let rounds = n(size, 8, 64);
    let source = format!(
        "const BLOCK = {block};
const ROUNDS = {rounds};
array u8 src[BLOCK];
array u8 mid[BLOCK];
array u8 fin[BLOCK];
array i32 p1[2];
array i32 p2[2];
array u8 out_path = \"/chain.out\\0\";

fn main() -> i32 {{
    syscall(42, p1);
    syscall(42, p2);
    var w1d: i32 = syscall(41, p1[1]);
    var i: i32 = 0;
    var r: i32 = 0;
    var cs: i32 = 0;
    var seed: i32 = 7;
    for (r = 0; r < ROUNDS; r += 1) {{
        for (i = 0; i < BLOCK; i += 1) {{
            seed = seed * 1103515245 + 12345;
            src[i] = (seed >> 16) & 255;
        }}
        if (r % 2 == 0) {{ syscall(4, p1[1], src, BLOCK); }}
        else {{ syscall(4, w1d, src, BLOCK); }}
        syscall(3, p1[0], mid, BLOCK);
        for (i = 0; i < BLOCK; i += 1) {{ mid[i] = (mid[i] * 7 + r) & 255; }}
        syscall(4, p2[1], mid, BLOCK);
        syscall(3, p2[0], fin, BLOCK);
        for (i = 0; i < BLOCK; i += 1) {{ cs = cs * 31 + fin[i]; }}
    }}
    syscall(6, w1d);
    syscall(6, p1[1]);
    syscall(6, p2[1]);
    var ofd: i32 = syscall(5, out_path, 0x241, 0);
    syscall(4, ofd, fin, BLOCK);
    syscall(6, ofd);
    return cs;
}}"
    );
    Benchmark {
        name: "io.pipechain".into(),
        suite: Suite::Io,
        replay: None,
        source,
        inputs: Vec::new(),
        outputs: vec!["/chain.out".to_string()],
    }
}

// ---------------------------------------------------------------------
// io.grep — fixed-needle scan over a file in overlapping blocks, with
// access/fstat/lseek metadata traffic around the reads.
// ---------------------------------------------------------------------

fn grep(size: Size) -> Benchmark {
    let cap = n(size, 8 << 10, 128 << 10);
    let block = 512u32;
    // Corpus: lowercase noise with the needle sprinkled deterministically.
    let mut rng = Rng::new(0x9e37);
    let mut corpus = Vec::with_capacity(cap as usize);
    while corpus.len() < cap as usize {
        if rng.below(97) == 0 {
            corpus.extend_from_slice(b"wasm");
        } else {
            corpus.push(b'a' + (rng.below(26) as u8));
        }
    }
    corpus.truncate(cap as usize);

    let source = format!(
        "const BLOCK = {block};
array u8 buf[BLOCK];
array i32 st[4];
array i32 outw[2];
array u8 path = \"/corpus.txt\\0\";
array u8 out_path = \"/grep.out\\0\";
array u8 needle = \"wasm\";

fn main() -> i32 {{
    if (syscall(33, path) != 0) {{ return 0 - 1; }}
    var fd: i32 = syscall(5, path, 0, 0);
    if (fd < 0) {{ return 0 - 2; }}
    syscall(108, fd, st);
    var size: i32 = st[0];
    var hits: i32 = 0;
    var cs: i32 = 0;
    var off: i32 = 0;
    while (off < size) {{
        syscall(19, fd, off, 0);
        var nn: i32 = syscall(3, fd, buf, BLOCK);
        if (nn <= 0) {{ break; }}
        var i: i32 = 0;
        while (i + 4 <= nn) {{
            if (buf[i] == needle[0] && buf[i + 1] == needle[1]
                && buf[i + 2] == needle[2] && buf[i + 3] == needle[3]) {{
                hits += 1;
            }}
            cs = cs * 31 + buf[i];
            i += 1;
        }}
        off += BLOCK - 3;
    }}
    syscall(6, fd);
    outw[0] = hits;
    outw[1] = cs;
    var ofd: i32 = syscall(5, out_path, 0x241, 0);
    syscall(4, ofd, outw, 8);
    syscall(6, ofd);
    return cs * 7 + hits;
}}"
    );
    Benchmark {
        name: "io.grep".into(),
        suite: Suite::Io,
        replay: None,
        source,
        inputs: vec![("/corpus.txt".to_string(), corpus)],
        outputs: vec!["/grep.out".to_string()],
    }
}

// ---------------------------------------------------------------------
// io.fsmeta — directory and file metadata churn: mkdir / create / write
// / fstat / access / stat / unlink / rmdir across a two-digit directory
// fan-out, with the failing-rmdir path (ENOTEMPTY) folded into the
// checksum so error returns are validated cross-engine too.
// ---------------------------------------------------------------------

fn fsmeta(size: Size) -> Benchmark {
    let dirs = n(size, 4, 40);
    let files = n(size, 3, 8);
    let source = format!(
        "const DIRS = {dirs};
const FILES = {files};
array u8 dpath = \"/d00\\0\";
array u8 fpath = \"/d00/f0\\0\";
array u8 man_path = \"/manifest.dat\\0\";
array u8 data = \"metadata-churn!!\";
array i32 man[DIRS];
array i32 st[4];

fn main() -> i32 {{
    var cs: i32 = 0;
    var d: i32 = 0;
    var f: i32 = 0;
    for (d = 0; d < DIRS; d += 1) {{
        dpath[2] = 48 + d / 10;
        dpath[3] = 48 + d % 10;
        fpath[2] = 48 + d / 10;
        fpath[3] = 48 + d % 10;
        cs = cs * 31 + syscall(39, dpath);
        for (f = 0; f < FILES; f += 1) {{
            fpath[6] = 48 + f;
            var fd: i32 = syscall(5, fpath, 0x241, 0);
            syscall(4, fd, data, 16);
            cs = cs * 31 + syscall(108, fd, st);
            cs = cs * 31 + st[0];
            syscall(6, fd);
            cs = cs * 31 + syscall(33, fpath);
            cs = cs * 31 + syscall(106, fpath, st);
            cs = cs * 31 + st[0];
        }}
        cs = cs * 31 + syscall(40, dpath);
        for (f = 0; f < FILES; f += 1) {{
            fpath[6] = 48 + f;
            cs = cs * 31 + syscall(10, fpath);
        }}
        cs = cs * 31 + syscall(40, dpath);
        man[d] = cs;
    }}
    cs = cs * 31 + syscall(20);
    var ofd: i32 = syscall(5, man_path, 0x241, 0);
    syscall(4, ofd, man, DIRS * 4);
    syscall(6, ofd);
    return cs;
}}"
    );
    Benchmark {
        name: "io.fsmeta".into(),
        suite: Suite::Io,
        replay: None,
        source,
        inputs: Vec::new(),
        outputs: vec!["/manifest.dat".to_string()],
    }
}

// ---------------------------------------------------------------------
// io.rwmix — one file opened O_CREAT|O_RDWR: interleaved block writes,
// seek-back reads, read-modify-writes, periodic fsync, and a shrink-
// then-grow ftruncate whose zero-filled tail lands in the checksum.
// ---------------------------------------------------------------------

fn rwmix(size: Size) -> Benchmark {
    let block = n(size, 1 << 10, 4 << 10);
    let rounds = n(size, 8, 96);
    let source = format!(
        "const BLOCK = {block};
const ROUNDS = {rounds};
array u8 wbuf[BLOCK];
array u8 rbuf[BLOCK];
array i32 st[4];
array u8 path = \"/mix.dat\\0\";

fn main() -> i32 {{
    var fd: i32 = syscall(5, path, 0x42, 0);
    if (fd < 0) {{ return 0 - 1; }}
    var r: i32 = 0;
    var i: i32 = 0;
    var cs: i32 = 0;
    for (r = 0; r < ROUNDS; r += 1) {{
        for (i = 0; i < BLOCK; i += 1) {{ wbuf[i] = (i * 3 + r) & 255; }}
        syscall(19, fd, r * BLOCK, 0);
        syscall(4, fd, wbuf, BLOCK);
        syscall(19, fd, (r / 2) * BLOCK, 0);
        var nn: i32 = syscall(3, fd, rbuf, BLOCK);
        for (i = 0; i < nn; i += 1) {{ rbuf[i] = rbuf[i] ^ 165; }}
        syscall(19, fd, (r / 2) * BLOCK, 0);
        syscall(4, fd, rbuf, nn);
        if (r % 4 == 3) {{ cs = cs * 31 + syscall(118, fd); }}
        cs = cs * 31 + rbuf[0];
    }}
    syscall(108, fd, st);
    cs = cs * 31 + st[0];
    syscall(93, fd, (ROUNDS / 2) * BLOCK);
    syscall(108, fd, st);
    cs = cs * 31 + st[0];
    syscall(93, fd, ROUNDS * BLOCK);
    syscall(19, fd, (ROUNDS - 1) * BLOCK, 0);
    var n2: i32 = syscall(3, fd, rbuf, BLOCK);
    for (i = 0; i < n2; i += 1) {{ cs = cs * 31 + rbuf[i]; }}
    syscall(6, fd);
    return cs;
}}"
    );
    Benchmark {
        name: "io.rwmix".into(),
        suite: Suite::Io,
        replay: None,
        source,
        inputs: Vec::new(),
        outputs: vec!["/mix.dat".to_string()],
    }
}

/// All four I/O-class benchmarks at the given size.
pub fn all(size: Size) -> Vec<Benchmark> {
    vec![pipechain(size), grep(size), fsmeta(size), rwmix(size)]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn io_suite_shape() {
        let v = all(Size::Test);
        assert_eq!(v.len(), 4);
        for b in &v {
            assert_eq!(b.suite, Suite::Io);
            assert!(b.name.starts_with("io."), "{}", b.name);
            assert!(!b.outputs.is_empty(), "{} must write a file", b.name);
        }
        // Every program actually issues syscalls.
        for b in &v {
            assert!(b.source.contains("syscall("), "{}", b.name);
        }
    }

    #[test]
    fn grep_corpus_contains_the_needle() {
        let g = all(Size::Test).remove(1);
        assert_eq!(g.name, "io.grep");
        let (_, corpus) = &g.inputs[0];
        let hits = corpus.windows(4).filter(|w| w == b"wasm").count();
        assert!(hits > 0, "needle never generated");
    }
}
