//! SPEC CPU analog miniatures.
//!
//! One program per SPEC benchmark the paper measures. Each reproduces the
//! dominant behaviour of its counterpart (see DESIGN.md §1): the hot-loop
//! shape, call and indirect-call density, instruction-cache footprint, and
//! Browsix file I/O. Two programs have *generated* source:
//!
//! - `429.mcf`: its arc-relaxation loop is emitted as a long straight-line
//!   body (as the real mcf's pointer-chasing scan is). The native
//!   compiler's unroller quadruples it past L1i capacity while the JIT's
//!   smaller loop stays resident — the paper's §6.3 anomaly where mcf runs
//!   *faster* as WebAssembly.
//! - `458.sjeng`: its position evaluator is thousands of straight-line
//!   nodes across several functions; the JIT's ~2x code expansion pushes
//!   it out of L1i, making sjeng the paper's extreme I-cache-miss outlier
//!   (26.5x in Chrome, Figure 10).

use crate::{Benchmark, Rng, Size, Suite};
use std::fmt::Write;

fn n(size: Size, test: u32, r: u32) -> u32 {
    match size {
        Size::Test => test,
        Size::Ref => r,
    }
}

// ---------------------------------------------------------------------
// 401.bzip2 — block compression: RLE + move-to-front + bit packing.
// ---------------------------------------------------------------------

fn bzip2(size: Size) -> Benchmark {
    let input_len = n(size, 4 << 10, 48 << 10);
    // Compressible input: runs of letters with structure.
    let mut rng = Rng::new(0xb21b);
    let mut input = Vec::with_capacity(input_len as usize);
    while input.len() < input_len as usize {
        let run = 1 + rng.below(12) as usize;
        let byte = b'a' + (rng.below(20) as u8);
        input.extend(std::iter::repeat_n(byte, run));
    }
    input.truncate(input_len as usize);

    let source = format!(
        "const CAP = {cap};
array u8 inbuf[CAP];
array u8 rle[CAP * 2];
array u8 mtf[CAP * 2];
array u8 outbuf[CAP * 2];
array u8 table[256];
array u8 path_in = \"/input.dat\\0\";
array u8 path_out = \"/output.bz\\0\";
global i32 inlen = 0;

fn rle_encode(len: i32) -> i32 {{
    var o: i32 = 0;
    var i: i32 = 0;
    while (i < len) {{
        var b: i32 = inbuf[i];
        var run: i32 = 1;
        while (i + run < len && run < 255 && inbuf[i + run] == b) {{ run += 1; }}
        if (run >= 4) {{
            rle[o] = 255; rle[o + 1] = b; rle[o + 2] = run;
            o += 3;
        }} else {{
            var k: i32 = 0;
            for (k = 0; k < run; k += 1) {{ rle[o] = b; o += 1; }}
        }}
        i += run;
    }}
    return o;
}}

fn mtf_encode(len: i32) -> i32 {{
    var i: i32 = 0;
    for (i = 0; i < 256; i += 1) {{ table[i] = i; }}
    for (i = 0; i < len; i += 1) {{
        var b: i32 = rle[i];
        var j: i32 = 0;
        while (table[j] != b) {{ j += 1; }}
        mtf[i] = j;
        while (j > 0) {{ table[j] = table[j - 1]; j -= 1; }}
        table[0] = b;
    }}
    return len;
}}

fn pack(len: i32) -> i32 {{
    // Variable-length byte packing: small symbols in 4 bits.
    var o: i32 = 0;
    var i: i32 = 0;
    var half: i32 = 0 - 1;
    for (i = 0; i < len; i += 1) {{
        var s: i32 = mtf[i];
        if (s < 15) {{
            if (half < 0) {{ half = s; }}
            else {{ outbuf[o] = (half << 4) | s; o += 1; half = 0 - 1; }}
        }} else {{
            if (half >= 0) {{ outbuf[o] = (half << 4) | 15; o += 1; half = 0 - 1; }}
            outbuf[o] = 240 + (s >> 6); outbuf[o + 1] = s & 63; o += 2;
        }}
    }}
    if (half >= 0) {{ outbuf[o] = (half << 4) | 15; o += 1; }}
    return o;
}}

fn main() -> i32 {{
    var fd: i32 = syscall(5, path_in, 0, 0);
    if (fd < 0) {{ return 0 - 1; }}
    inlen = syscall(3, fd, inbuf, CAP);
    syscall(6, fd);
    var cs: i32 = 0;
    var pass: i32 = 0;
    var packed: i32 = 0;
    for (pass = 0; pass < 3; pass += 1) {{
        var r: i32 = rle_encode(inlen);
        var m: i32 = mtf_encode(r);
        packed = pack(m);
        cs = cs * 33 + packed;
    }}
    var ofd: i32 = syscall(5, path_out, 0x241, 0);
    syscall(4, ofd, outbuf, packed);
    syscall(6, ofd);
    var i: i32 = 0;
    for (i = 0; i < packed; i += 1) {{ cs = cs * 31 + outbuf[i]; }}
    return cs;
}}",
        cap = input_len
    );

    Benchmark {
        name: "401.bzip2".into(),
        suite: Suite::Spec,
        replay: None,
        source,
        inputs: vec![("/input.dat".to_string(), input)],
        outputs: vec!["/output.bz".to_string()],
    }
}

// ---------------------------------------------------------------------
// 429.mcf — Bellman-Ford relaxation with a generated straight-line hot
// loop (the I-cache anomaly benchmark).
// ---------------------------------------------------------------------

fn mcf(size: Size) -> Benchmark {
    let nodes = n(size, 16384, 49152);
    let rounds = n(size, 3, 5);
    // The hot loop relaxes BLOCK arcs per iteration as straight-line code
    // (mcf's real arc scan is a huge pointer-chasing loop body).
    let block = 96usize;
    let mut relax = String::new();
    for k in 0..block {
        let _ = write!(
            relax,
            "        u = arc_src[base + {k}]; v = arc_dst[base + {k}];
        w = dist[u] + arc_cost[base + {k}];
        if (w < dist[v]) {{ dist[v] = w; pred[v] = u;改 changed += 1; }}
"
        );
    }
    let relax = relax.replace("改 ", "");
    let source = format!(
        "const NODES = {nodes};
const ARCS = NODES * 4;
const ROUNDS = {rounds};
array i32 arc_src[ARCS];
array i32 arc_dst[ARCS];
array i32 arc_cost[ARCS];
array i32 dist[NODES];
array i32 pred[NODES];
global i32 changed = 0;

fn main() -> i32 {{
    var i: i32 = 0;
    var h: u32 = u32(0x12345);
    for (i = 0; i < ARCS; i += 1) {{
        h = h * u32(1103515245) + u32(12345);
        arc_src[i] = i32((h >> u32(8)) % u32(NODES));
        h = h * u32(1103515245) + u32(12345);
        arc_dst[i] = i32((h >> u32(8)) % u32(NODES));
        h = h * u32(1103515245) + u32(12345);
        arc_cost[i] = i32((h >> u32(16)) % u32(100)) + 1;
    }}
    for (i = 0; i < NODES; i += 1) {{ dist[i] = 1000000; pred[i] = 0 - 1; }}
    dist[0] = 0;
    var round: i32 = 0;
    var u: i32 = 0; var v: i32 = 0; var w: i32 = 0;
    for (round = 0; round < ROUNDS; round += 1) {{
        var base: i32 = 0;
        while (base + {block} <= ARCS) {{
{relax}            base += {block};
        }}
    }}
    var cs: i32 = 0;
    for (i = 0; i < NODES; i += 1) {{
        if (dist[i] < 1000000) {{ cs = cs * 31 + dist[i] + pred[i]; }}
    }}
    return cs + changed;
}}"
    );
    Benchmark::pure("429.mcf", Suite::Spec, source)
}

// ---------------------------------------------------------------------
// 433.milc — su(3)-style 3x3 complex matrix products over a lattice.
// ---------------------------------------------------------------------

fn milc(size: Size) -> Benchmark {
    let sites = n(size, 64, 512);
    let iters = n(size, 2, 6);
    let source = format!(
        "const SITES = {sites};
const ITERS = {iters};
// 3x3 complex matrices: 18 doubles per site (re/im interleaved).
array f64 U[SITES * 18];
array f64 V[SITES * 18];
array f64 W[SITES * 18];

fn mat_mul(a: i32, b: i32, c: i32) {{
    // W[c] = U[a] * V[b] (3x3 complex).
    var i: i32 = 0; var j: i32 = 0; var k: i32 = 0;
    for (i = 0; i < 3; i += 1) {{
        for (j = 0; j < 3; j += 1) {{
            var re: f64 = 0.0;
            var im: f64 = 0.0;
            for (k = 0; k < 3; k += 1) {{
                var are: f64 = U[a + (i * 3 + k) * 2];
                var aim: f64 = U[a + (i * 3 + k) * 2 + 1];
                var bre: f64 = V[b + (k * 3 + j) * 2];
                var bim: f64 = V[b + (k * 3 + j) * 2 + 1];
                re += are * bre - aim * bim;
                im += are * bim + aim * bre;
            }}
            W[c + (i * 3 + j) * 2] = re;
            W[c + (i * 3 + j) * 2 + 1] = im;
        }}
    }}
}}

fn main() -> i32 {{
    var s: i32 = 0; var e: i32 = 0; var t: i32 = 0;
    for (s = 0; s < SITES; s += 1) {{
        for (e = 0; e < 18; e += 1) {{
            U[s * 18 + e] = f64((s * 7 + e * 3) % 17) / 17.0 - 0.4;
            V[s * 18 + e] = f64((s * 5 + e * 11) % 19) / 19.0 - 0.4;
        }}
    }}
    for (t = 0; t < ITERS; t += 1) {{
        for (s = 0; s < SITES; s += 1) {{
            mat_mul(s * 18, ((s + t + 1) % SITES) * 18, s * 18);
        }}
        // Feed back W into U with damping to stay bounded.
        for (s = 0; s < SITES * 18; s += 1) {{ U[s] = W[s] * 0.5; }}
    }}
    var cs: i32 = 0;
    for (s = 0; s < SITES * 18; s += 1) {{ cs = cs * 31 + i32(W[s] * 1024.0); }}
    return cs;
}}"
    );
    Benchmark::pure("433.milc", Suite::Spec, source)
}

// ---------------------------------------------------------------------
// 444.namd — Lennard-Jones molecular dynamics with a cutoff.
// ---------------------------------------------------------------------

fn namd(size: Size) -> Benchmark {
    let atoms = n(size, 48, 192);
    let steps = n(size, 3, 10);
    let source = format!(
        "const ATOMS = {atoms};
const STEPS = {steps};
array f64 px[ATOMS]; array f64 py[ATOMS]; array f64 pz[ATOMS];
array f64 fx[ATOMS]; array f64 fy[ATOMS]; array f64 fz[ATOMS];
array f64 vx[ATOMS]; array f64 vy[ATOMS]; array f64 vz[ATOMS];

fn main() -> i32 {{
    var i: i32 = 0; var j: i32 = 0; var t: i32 = 0;
    for (i = 0; i < ATOMS; i += 1) {{
        px[i] = f64(i % 12) * 1.1;
        py[i] = f64((i / 12) % 12) * 1.1;
        pz[i] = f64(i / 144) * 1.1;
        vx[i] = 0.0; vy[i] = 0.0; vz[i] = 0.0;
    }}
    var cut2: f64 = 6.25;
    for (t = 0; t < STEPS; t += 1) {{
        for (i = 0; i < ATOMS; i += 1) {{ fx[i] = 0.0; fy[i] = 0.0; fz[i] = 0.0; }}
        for (i = 0; i < ATOMS; i += 1) {{
            for (j = i + 1; j < ATOMS; j += 1) {{
                var dx: f64 = px[i] - px[j];
                var dy: f64 = py[i] - py[j];
                var dz: f64 = pz[i] - pz[j];
                var r2: f64 = dx * dx + dy * dy + dz * dz;
                if (r2 < cut2 && r2 > 0.01) {{
                    var inv2: f64 = 1.0 / r2;
                    var inv6: f64 = inv2 * inv2 * inv2;
                    var f: f64 = 24.0 * inv6 * (2.0 * inv6 - 1.0) * inv2;
                    if (f > 100.0) {{ f = 100.0; }}
                    fx[i] += f * dx; fy[i] += f * dy; fz[i] += f * dz;
                    fx[j] -= f * dx; fy[j] -= f * dy; fz[j] -= f * dz;
                }}
            }}
        }}
        for (i = 0; i < ATOMS; i += 1) {{
            vx[i] = (vx[i] + fx[i] * 0.001) * 0.999;
            vy[i] = (vy[i] + fy[i] * 0.001) * 0.999;
            vz[i] = (vz[i] + fz[i] * 0.001) * 0.999;
            px[i] += vx[i] * 0.01;
            py[i] += vy[i] * 0.01;
            pz[i] += vz[i] * 0.01;
        }}
    }}
    var cs: i32 = 0;
    for (i = 0; i < ATOMS; i += 1) {{
        cs = cs * 31 + i32(px[i] * 100.0) + i32(vy[i] * 10000.0);
    }}
    return cs;
}}"
    );
    Benchmark::pure("444.namd", Suite::Spec, source)
}

// ---------------------------------------------------------------------
// 445.gobmk — Go board liberties via iterative flood fill.
// ---------------------------------------------------------------------

fn gobmk(size: Size) -> Benchmark {
    let moves = n(size, 60, 280);
    let source = format!(
        "const SIZE = 19;
const CELLS = SIZE * SIZE;
const MOVES = {moves};
array i8 board[CELLS];
array i8 mark[CELLS];
array i32 stack[CELLS];

fn liberties(start: i32) -> i32 {{
    var color: i32 = board[start];
    if (color == 0) {{ return 0; }}
    var i: i32 = 0;
    for (i = 0; i < CELLS; i += 1) {{ mark[i] = 0; }}
    var sp: i32 = 0;
    stack[0] = start; sp = 1; mark[start] = 1;
    var libs: i32 = 0;
    while (sp > 0) {{
        sp -= 1;
        var p: i32 = stack[sp];
        var r: i32 = p / SIZE;
        var c: i32 = p % SIZE;
        var d: i32 = 0;
        for (d = 0; d < 4; d += 1) {{
            var nr: i32 = r; var nc: i32 = c;
            if (d == 0) {{ nr = r - 1; }}
            if (d == 1) {{ nr = r + 1; }}
            if (d == 2) {{ nc = c - 1; }}
            if (d == 3) {{ nc = c + 1; }}
            if (nr >= 0 && nr < SIZE && nc >= 0 && nc < SIZE) {{
                var q: i32 = nr * SIZE + nc;
                if (mark[q] == 0) {{
                    mark[q] = 1;
                    if (board[q] == 0) {{ libs += 1; }}
                    else if (board[q] == color) {{ stack[sp] = q; sp += 1; }}
                }}
            }}
        }}
    }}
    return libs;
}}

fn main() -> i32 {{
    var h: u32 = u32(0x60b);
    var m: i32 = 0;
    var cs: i32 = 0;
    for (m = 0; m < MOVES; m += 1) {{
        h = h * u32(1103515245) + u32(12345);
        var p: i32 = i32((h >> u32(8)) % u32(CELLS));
        if (board[p] == 0) {{
            board[p] = 1 + (m & 1);
        }}
        // Score the whole board after each move (gobmk's read-heavy
        // pattern analysis).
        var q: i32 = 0;
        for (q = 0; q < CELLS; q += 1) {{
            if (board[q] != 0) {{
                var l: i32 = liberties(q);
                cs = cs * 31 + l + q;
                if (l == 0) {{ board[q] = 0; }}
            }}
        }}
    }}
    return cs;
}}"
    );
    Benchmark::pure("445.gobmk", Suite::Spec, source)
}

// ---------------------------------------------------------------------
// 450.soplex — simplex-style pivoting with indirect pricing strategies.
// ---------------------------------------------------------------------

fn soplex(size: Size) -> Benchmark {
    let dim_m = n(size, 24, 72);
    let iters = n(size, 30, 160);
    let source = format!(
        "const M = {dim_m};
const ITERS = {iters};
array f64 T[M * M];
array f64 price[M];

fn price_dantzig(col: i32) -> i32 {{
    var best: i32 = 0;
    var bestv: f64 = 0.0;
    var i: i32 = 0;
    for (i = 0; i < M; i += 1) {{
        var v: f64 = T[i * M + col] * price[i];
        if (v > bestv) {{ bestv = v; best = i; }}
    }}
    return best;
}}

fn price_steepest(col: i32) -> i32 {{
    var best: i32 = 0;
    var bestv: f64 = 0.0 - 1.0e18;
    var i: i32 = 0;
    for (i = 0; i < M; i += 1) {{
        var v: f64 = T[i * M + col] * T[i * M + col] / (abs(price[i]) + 1.0);
        if (v > bestv) {{ bestv = v; best = i; }}
    }}
    return best;
}}

fn price_devex(col: i32) -> i32 {{
    var best: i32 = 0;
    var bestv: f64 = 0.0;
    var i: i32 = 0;
    for (i = 0; i < M; i += 1) {{
        var v: f64 = abs(T[i * M + col]) + price[i] * 0.125;
        if (v > bestv) {{ bestv = v; best = i; }}
    }}
    return best;
}}

table pricers = [price_dantzig, price_steepest, price_devex];

fn main() -> i32 {{
    var i: i32 = 0; var j: i32 = 0;
    for (i = 0; i < M; i += 1) {{
        price[i] = f64(i % 7) * 0.3 + 0.5;
        for (j = 0; j < M; j += 1) {{
            T[i * M + j] = f64((i * 13 + j * 7) % 23) / 23.0 - 0.3;
        }}
        T[i * M + i] += 4.0;
    }}
    var cs: i32 = 0;
    var it: i32 = 0;
    for (it = 0; it < ITERS; it += 1) {{
        var col: i32 = it % M;
        var row: i32 = pricers[it % 3](col);
        // Pivot on (row, col).
        var pv: f64 = T[row * M + col];
        if (abs(pv) < 0.001) {{ pv = 1.0; }}
        for (j = 0; j < M; j += 1) {{ T[row * M + j] /= pv; }}
        for (i = 0; i < M; i += 1) {{
            if (i != row) {{
                var factor: f64 = T[i * M + col];
                for (j = 0; j < M; j += 1) {{
                    T[i * M + j] -= factor * T[row * M + j];
                    if (T[i * M + j] > 1.0e6) {{ T[i * M + j] = 1.0e6; }}
                    if (T[i * M + j] < 0.0 - 1.0e6) {{ T[i * M + j] = 0.0 - 1.0e6; }}
                }}
            }}
        }}
        price[row] = price[row] * 0.9 + 0.2;
        cs = cs * 31 + row + col;
    }}
    for (i = 0; i < M; i += 1) {{ cs = cs * 31 + i32(T[i * M + i] * 64.0); }}
    return cs;
}}"
    );
    Benchmark::pure("450.soplex", Suite::Spec, source)
}

// ---------------------------------------------------------------------
// 453.povray — sphere ray tracer writing a PPM-style image file.
// ---------------------------------------------------------------------

fn povray(size: Size) -> Benchmark {
    let dim_px = n(size, 24, 72);
    let source = format!(
        "const W = {dim_px};
const H = {dim_px};
const NSPH = 6;
array f64 sx[NSPH]; array f64 sy[NSPH]; array f64 sz[NSPH]; array f64 sr[NSPH];
array u8 image[W * H];
array u8 path_out = \"/image.pgm\\0\";

fn trace(ox: f64, oy: f64, dx: f64, dy: f64, dz: f64) -> i32 {{
    var best: f64 = 1.0e18;
    var hit: i32 = 0 - 1;
    var s: i32 = 0;
    for (s = 0; s < NSPH; s += 1) {{
        var cx: f64 = sx[s] - ox;
        var cy: f64 = sy[s] - oy;
        var cz: f64 = sz[s];
        var b: f64 = cx * dx + cy * dy + cz * dz;
        var c: f64 = cx * cx + cy * cy + cz * cz - sr[s] * sr[s];
        var disc: f64 = b * b - c;
        if (disc > 0.0) {{
            var t: f64 = b - sqrt(disc);
            if (t > 0.001 && t < best) {{ best = t; hit = s; }}
        }}
    }}
    if (hit < 0) {{ return 16; }}
    // Lambert shading with a fixed light.
    var px: f64 = ox + dx * best;
    var py: f64 = oy + dy * best;
    var pz: f64 = dz * best;
    var nx: f64 = (px - sx[hit]) / sr[hit];
    var ny: f64 = (py - sy[hit]) / sr[hit];
    var nz: f64 = (pz - sz[hit]) / sr[hit];
    var lam: f64 = nx * 0.57 + ny * 0.57 + nz * 0.57;
    if (lam < 0.0) {{ lam = 0.0; }}
    return 40 + i32(lam * 200.0);
}}

fn main() -> i32 {{
    var s: i32 = 0;
    for (s = 0; s < NSPH; s += 1) {{
        sx[s] = f64(s % 3) * 2.0 - 2.0;
        sy[s] = f64(s / 3) * 2.0 - 1.0;
        sz[s] = 6.0 + f64(s);
        sr[s] = 1.0 + f64(s % 2) * 0.5;
    }}
    var x: i32 = 0; var y: i32 = 0;
    for (y = 0; y < H; y += 1) {{
        for (x = 0; x < W; x += 1) {{
            var dx: f64 = (f64(x) / f64(W) - 0.5) * 1.6;
            var dy: f64 = (f64(y) / f64(H) - 0.5) * 1.6;
            var dz: f64 = 1.0;
            var inv: f64 = 1.0 / sqrt(dx * dx + dy * dy + 1.0);
            image[y * W + x] = trace(0.0, 0.0, dx * inv, dy * inv, dz * inv);
        }}
    }}
    var fd: i32 = syscall(5, path_out, 0x241, 0);
    syscall(4, fd, image, W * H);
    syscall(6, fd);
    var cs: i32 = 0;
    var i: i32 = 0;
    for (i = 0; i < W * H; i += 1) {{ cs = cs * 31 + image[i]; }}
    return cs;
}}"
    );
    Benchmark {
        name: "453.povray".into(),
        suite: Suite::Spec,
        replay: None,
        source,
        inputs: Vec::new(),
        outputs: vec!["/image.pgm".to_string()],
    }
}

// ---------------------------------------------------------------------
// 458.sjeng — alpha-beta search with a huge generated evaluator (the
// I-cache-miss outlier).
// ---------------------------------------------------------------------

fn sjeng(size: Size) -> Benchmark {
    let depth = n(size, 3, 4);
    // Generate EVAL_FNS evaluation helpers, each a long straight-line
    // sequence of feature terms; together they form a code footprint that
    // fits L1i natively but not at JIT expansion.
    let eval_fns = 6usize;
    let terms = 150usize;
    let mut helpers = String::new();
    for f in 0..eval_fns {
        let mut body = String::new();
        for t in 0..terms {
            let a = (f * 37 + t * 11) % 64;
            let b = (f * 17 + t * 29 + 7) % 64;
            let w = 1 + (f * 13 + t * 7) % 9;
            let _ = write!(
                body,
                "    v += (sq[{a}] * {w} - sq[{b}]) ^ (v >> 3);
    if (sq[{a}] > sq[{b}]) {{ v += {w}; }} else {{ v -= {t} & 7; }}
"
            );
        }
        let _ = write!(
            helpers,
            "fn eval{f}() -> i32 {{
    var v: i32 = 0;
{body}    return v;
}}
"
        );
    }
    let calls: String = (0..eval_fns)
        .map(|f| format!("    e += eval{f}();\n"))
        .collect();
    let source = format!(
        "const DEPTH = {depth};
array i32 sq[64];
global i32 nodes = 0;

{helpers}
fn evaluate() -> i32 {{
    var e: i32 = 0;
{calls}    return e;
}}

fn make_move(m: i32) {{
    var f_: i32 = m % 64;
    var t_: i32 = (m / 64) % 64;
    var tmp: i32 = sq[t_];
    sq[t_] = sq[f_];
    sq[f_] = tmp + 1;
}}

fn unmake_move(m: i32) {{
    var f_: i32 = m % 64;
    var t_: i32 = (m / 64) % 64;
    var tmp: i32 = sq[f_] - 1;
    sq[f_] = sq[t_];
    sq[t_] = tmp;
}}

fn search(depth: i32, alpha: i32, beta: i32) -> i32 {{
    nodes += 1;
    if (depth == 0) {{ return evaluate(); }}
    var m: i32 = 0;
    var best: i32 = 0 - 1000000;
    for (m = 1; m <= 6; m += 1) {{
        var mv: i32 = (nodes * 2654435761 + m * 40503) & 4095;
        make_move(mv);
        var v: i32 = 0 - search(depth - 1, 0 - beta, 0 - alpha);
        unmake_move(mv);
        if (v > best) {{ best = v; }}
        if (best > alpha) {{ alpha = best; }}
        if (alpha >= beta) {{ break; }}
    }}
    return best;
}}

fn main() -> i32 {{
    var i: i32 = 0;
    for (i = 0; i < 64; i += 1) {{ sq[i] = (i * 89) % 23 - 11; }}
    var score: i32 = search(DEPTH, 0 - 1000000, 1000000);
    return score * 31 + nodes;
}}"
    );
    Benchmark::pure("458.sjeng", Suite::Spec, source)
}

// ---------------------------------------------------------------------
// 462.libquantum — quantum register simulation (bit-parallel gates).
// ---------------------------------------------------------------------

fn libquantum(size: Size) -> Benchmark {
    let qubits = n(size, 9, 13);
    let gates = n(size, 20, 60);
    let source = format!(
        "const QUBITS = {qubits};
const STATES = 1 << QUBITS;
const GATES = {gates};
array f64 re[STATES];
array f64 im[STATES];

fn hadamard(target: i32) {{
    var bit: i32 = 1 << target;
    var i: i32 = 0;
    var inv: f64 = 0.70710678118654752;
    for (i = 0; i < STATES; i += 1) {{
        if ((i & bit) == 0) {{
            var j: i32 = i | bit;
            var ar: f64 = re[i]; var ai: f64 = im[i];
            var br: f64 = re[j]; var bi: f64 = im[j];
            re[i] = (ar + br) * inv; im[i] = (ai + bi) * inv;
            re[j] = (ar - br) * inv; im[j] = (ai - bi) * inv;
        }}
    }}
}}

fn cphase(control: i32, target: i32) {{
    var cb: i32 = 1 << control;
    var tb: i32 = 1 << target;
    var i: i32 = 0;
    for (i = 0; i < STATES; i += 1) {{
        if ((i & cb) != 0 && (i & tb) != 0) {{
            var t: f64 = re[i];
            re[i] = 0.0 - im[i];
            im[i] = t;
        }}
    }}
}}

fn main() -> i32 {{
    re[0] = 1.0;
    var g: i32 = 0;
    for (g = 0; g < GATES; g += 1) {{
        hadamard(g % QUBITS);
        cphase(g % QUBITS, (g + 1) % QUBITS);
        hadamard((g + 2) % QUBITS);
    }}
    var cs: i32 = 0;
    var i: i32 = 0;
    for (i = 0; i < STATES; i += 1) {{
        cs = cs * 31 + i32(re[i] * 4096.0) + i32(im[i] * 4096.0);
    }}
    return cs;
}}"
    );
    Benchmark::pure("462.libquantum", Suite::Spec, source)
}

// ---------------------------------------------------------------------
// 464.h264ref — SAD motion estimation plus many small output appends
// (the BROWSERFS append-policy stress).
// ---------------------------------------------------------------------

fn h264ref(size: Size) -> Benchmark {
    let dim_w = n(size, 48, 112);
    let blocks = n(size, 6, 36);
    let mut rng = Rng::new(0x264);
    let frame_len = (dim_w * dim_w) as usize;
    let mut frame0 = Vec::with_capacity(frame_len);
    for _ in 0..frame_len {
        frame0.push((rng.below(200) + 20) as u8);
    }
    // Frame 1: frame 0 shifted with noise (motion to find).
    let mut frame1 = frame0.clone();
    for y in 0..dim_w as usize {
        for x in 0..dim_w as usize {
            let sx = (x + 3) % dim_w as usize;
            let sy = (y + 2) % dim_w as usize;
            frame1[y * dim_w as usize + x] =
                frame0[sy * dim_w as usize + sx].wrapping_add((rng.below(7)) as u8);
        }
    }

    let source = format!(
        "const W = {dim_w};
const NBLOCKS = {blocks};
const BS = 16;
const RANGE = 7;
array u8 ref_[W * W];
array u8 cur[W * W];
array u8 residual[BS * BS];
array u8 path_ref = \"/frame0.yuv\\0\";
array u8 path_cur = \"/frame1.yuv\\0\";
array u8 path_out = \"/residuals.264\\0\";

fn sad(bx: i32, by: i32, mx: i32, my: i32) -> i32 {{
    var s: i32 = 0;
    var y: i32 = 0;
    for (y = 0; y < BS; y += 1) {{
        var x: i32 = 0;
        for (x = 0; x < BS; x += 1) {{
            var a: i32 = cur[(by + y) * W + bx + x];
            var rx: i32 = bx + x + mx;
            var ry: i32 = by + y + my;
            var b: i32 = ref_[ry * W + rx];
            var d: i32 = a - b;
            if (d < 0) {{ d = 0 - d; }}
            s += d;
        }}
    }}
    return s;
}}

fn main() -> i32 {{
    var fd: i32 = syscall(5, path_ref, 0, 0);
    syscall(3, fd, ref_, W * W);
    syscall(6, fd);
    fd = syscall(5, path_cur, 0, 0);
    syscall(3, fd, cur, W * W);
    syscall(6, fd);
    var ofd: i32 = syscall(5, path_out, 0x641, 0);

    var cs: i32 = 0;
    var blk: i32 = 0;
    var h: u32 = u32(0xfeed);
    for (blk = 0; blk < NBLOCKS; blk += 1) {{
        h = h * u32(1103515245) + u32(12345);
        var bx: i32 = RANGE + i32((h >> u32(8)) % u32(W - BS - 2 * RANGE));
        h = h * u32(1103515245) + u32(12345);
        var by: i32 = RANGE + i32((h >> u32(8)) % u32(W - BS - 2 * RANGE));
        var bestsad: i32 = 1000000000;
        var bmx: i32 = 0;
        var bmy: i32 = 0;
        var mx: i32 = 0 - RANGE;
        while (mx <= RANGE) {{
            var my: i32 = 0 - RANGE;
            while (my <= RANGE) {{
                var s: i32 = sad(bx, by, mx, my);
                if (s < bestsad) {{ bestsad = s; bmx = mx; bmy = my; }}
                my += 1;
            }}
            mx += 1;
        }}
        // Emit the residual block as many small appends (the BROWSERFS
        // pathology the paper describes in section 2).
        var y: i32 = 0;
        for (y = 0; y < BS; y += 1) {{
            var x: i32 = 0;
            for (x = 0; x < BS; x += 1) {{
                var a: i32 = cur[(by + y) * W + bx + x];
                var b: i32 = ref_[(by + y + bmy) * W + bx + x + bmx];
                residual[y * BS + x] = (a - b) & 255;
            }}
            syscall(4, ofd, residual, BS);
        }}
        cs = cs * 31 + bestsad + bmx * 17 + bmy;
    }}
    syscall(6, ofd);
    return cs;
}}"
    );
    Benchmark {
        name: "464.h264ref".into(),
        suite: Suite::Spec,
        replay: None,
        source,
        inputs: vec![
            ("/frame0.yuv".to_string(), frame0),
            ("/frame1.yuv".to_string(), frame1),
        ],
        outputs: vec!["/residuals.264".to_string()],
    }
}

// ---------------------------------------------------------------------
// 470.lbm — D2Q9 lattice Boltzmann stream/collide.
// ---------------------------------------------------------------------

fn lbm(size: Size) -> Benchmark {
    let grid = n(size, 20, 40);
    let steps = n(size, 6, 24);
    let source = format!(
        "const N = {grid};
const STEPS = {steps};
const Q = 9;
array f64 f0[N * N * Q];
array f64 f1[N * N * Q];
array i32 cx = [0, 1, 0, 0 - 1, 0, 1, 0 - 1, 0 - 1, 1];
array i32 cy = [0, 0, 1, 0, 0 - 1, 1, 1, 0 - 1, 0 - 1];
array f64 wq = [0.444444, 0.111111, 0.111111, 0.111111, 0.111111,
                0.027778, 0.027778, 0.027778, 0.027778];

fn main() -> i32 {{
    var x: i32 = 0; var y: i32 = 0; var q: i32 = 0; var t: i32 = 0;
    for (y = 0; y < N; y += 1) {{ for (x = 0; x < N; x += 1) {{ for (q = 0; q < Q; q += 1) {{
        f0[(y * N + x) * Q + q] = wq[q] * (1.0 + 0.01 * f64((x + y) % 5));
    }} }} }}
    for (t = 0; t < STEPS; t += 1) {{
        for (y = 0; y < N; y += 1) {{
            for (x = 0; x < N; x += 1) {{
                var rho: f64 = 0.0;
                var ux: f64 = 0.0;
                var uy: f64 = 0.0;
                for (q = 0; q < Q; q += 1) {{
                    var fv: f64 = f0[(y * N + x) * Q + q];
                    rho += fv;
                    ux += fv * f64(cx[q]);
                    uy += fv * f64(cy[q]);
                }}
                ux /= rho; uy /= rho;
                for (q = 0; q < Q; q += 1) {{
                    var cu: f64 = f64(cx[q]) * ux + f64(cy[q]) * uy;
                    var feq: f64 = wq[q] * rho
                        * (1.0 + 3.0 * cu + 4.5 * cu * cu - 1.5 * (ux * ux + uy * uy));
                    var nx: i32 = (x + cx[q] + N) % N;
                    var ny: i32 = (y + cy[q] + N) % N;
                    f1[(ny * N + nx) * Q + q] =
                        f0[(y * N + x) * Q + q] * 0.4 + feq * 0.6;
                }}
            }}
        }}
        for (x = 0; x < N * N * Q; x += 1) {{ f0[x] = f1[x]; }}
    }}
    var cs: i32 = 0;
    for (x = 0; x < N * N * Q; x += 1) {{ cs = cs * 31 + i32(f0[x] * 65536.0); }}
    return cs;
}}"
    );
    Benchmark::pure("470.lbm", Suite::Spec, source)
}

// ---------------------------------------------------------------------
// 473.astar — A* grid pathfinding with a binary heap.
// ---------------------------------------------------------------------

fn astar(size: Size) -> Benchmark {
    let grid = n(size, 32, 72);
    let queries = n(size, 4, 16);
    let source = format!(
        "const N = {grid};
const CELLS = N * N;
const QUERIES = {queries};
array u8 blocked[CELLS];
array i32 gscore[CELLS];
array i32 heap_k[CELLS * 4];
array i32 heap_v[CELLS * 4];
global i32 heap_n = 0;

fn heap_push(key: i32, val: i32) {{
    var i: i32 = heap_n;
    heap_k[i] = key; heap_v[i] = val;
    heap_n += 1;
    while (i > 0) {{
        var p: i32 = (i - 1) / 2;
        if (heap_k[p] <= heap_k[i]) {{ break; }}
        var tk: i32 = heap_k[p]; heap_k[p] = heap_k[i]; heap_k[i] = tk;
        var tv: i32 = heap_v[p]; heap_v[p] = heap_v[i]; heap_v[i] = tv;
        i = p;
    }}
}}

fn heap_pop() -> i32 {{
    var top: i32 = heap_v[0];
    heap_n -= 1;
    heap_k[0] = heap_k[heap_n]; heap_v[0] = heap_v[heap_n];
    var i: i32 = 0;
    while (1) {{
        var l: i32 = i * 2 + 1;
        var r: i32 = l + 1;
        var sm: i32 = i;
        if (l < heap_n && heap_k[l] < heap_k[sm]) {{ sm = l; }}
        if (r < heap_n && heap_k[r] < heap_k[sm]) {{ sm = r; }}
        if (sm == i) {{ break; }}
        var tk: i32 = heap_k[sm]; heap_k[sm] = heap_k[i]; heap_k[i] = tk;
        var tv: i32 = heap_v[sm]; heap_v[sm] = heap_v[i]; heap_v[i] = tv;
        i = sm;
    }}
    return top;
}}

fn astar_path(start: i32, goal: i32) -> i32 {{
    var i: i32 = 0;
    for (i = 0; i < CELLS; i += 1) {{ gscore[i] = 1000000000; }}
    heap_n = 0;
    gscore[start] = 0;
    heap_push(0, start);
    var gx: i32 = goal % N;
    var gy: i32 = goal / N;
    var expanded: i32 = 0;
    while (heap_n > 0) {{
        var cur: i32 = heap_pop();
        expanded += 1;
        if (cur == goal) {{ return gscore[cur] * 100 + expanded % 100; }}
        var cx_: i32 = cur % N;
        var cy_: i32 = cur / N;
        var d: i32 = 0;
        for (d = 0; d < 4; d += 1) {{
            var nx: i32 = cx_; var ny: i32 = cy_;
            if (d == 0) {{ nx = cx_ + 1; }}
            if (d == 1) {{ nx = cx_ - 1; }}
            if (d == 2) {{ ny = cy_ + 1; }}
            if (d == 3) {{ ny = cy_ - 1; }}
            if (nx >= 0 && nx < N && ny >= 0 && ny < N) {{
                var np: i32 = ny * N + nx;
                if (blocked[np] == 0) {{
                    var ng: i32 = gscore[cur] + 1;
                    if (ng < gscore[np]) {{
                        gscore[np] = ng;
                        var hx: i32 = nx - gx; if (hx < 0) {{ hx = 0 - hx; }}
                        var hy: i32 = ny - gy; if (hy < 0) {{ hy = 0 - hy; }}
                        heap_push(ng + hx + hy, np);
                    }}
                }}
            }}
        }}
    }}
    return 0 - expanded;
}}

fn main() -> i32 {{
    var h: u32 = u32(0xa57a);
    var i: i32 = 0;
    for (i = 0; i < CELLS; i += 1) {{
        h = h * u32(1103515245) + u32(12345);
        blocked[i] = i32((h >> u32(20)) % u32(100) < u32(28));
    }}
    blocked[0] = 0;
    blocked[CELLS - 1] = 0;
    var cs: i32 = 0;
    var q: i32 = 0;
    for (q = 0; q < QUERIES; q += 1) {{
        h = h * u32(1103515245) + u32(12345);
        var s: i32 = i32((h >> u32(8)) % u32(CELLS));
        h = h * u32(1103515245) + u32(12345);
        var g: i32 = i32((h >> u32(8)) % u32(CELLS));
        if (blocked[s] == 0 && blocked[g] == 0) {{
            cs = cs * 31 + astar_path(s, g);
        }}
    }}
    return cs;
}}"
    );
    Benchmark::pure("473.astar", Suite::Spec, source)
}

// ---------------------------------------------------------------------
// 482.sphinx3 — GMM acoustic scoring with a polynomial exp approximation.
// ---------------------------------------------------------------------

fn sphinx3(size: Size) -> Benchmark {
    let frames = n(size, 12, 60);
    let senones = n(size, 24, 64);
    let source = format!(
        "const FRAMES = {frames};
const SENONES = {senones};
const MIX = 8;
const DIMS = 13;
array f64 feats[FRAMES * DIMS];
array f64 means[SENONES * MIX * DIMS];
array f64 vars_[SENONES * MIX * DIMS];
array f64 scores[FRAMES * SENONES];

fn exp_approx(x: f64) -> f64 {{
    // exp(x) for x <= 0 via (1 + x/32)^32 with clamping.
    if (x < 0.0 - 30.0) {{ return 0.0; }}
    var t: f64 = 1.0 + x / 32.0;
    if (t < 0.0) {{ t = 0.0; }}
    t = t * t; t = t * t; t = t * t; t = t * t; t = t * t;
    return t;
}}

fn main() -> i32 {{
    var f_: i32 = 0; var s: i32 = 0; var m: i32 = 0; var d: i32 = 0;
    for (f_ = 0; f_ < FRAMES * DIMS; f_ += 1) {{
        feats[f_] = f64(f_ % 29) / 29.0 - 0.5;
    }}
    for (s = 0; s < SENONES * MIX * DIMS; s += 1) {{
        means[s] = f64(s % 31) / 31.0 - 0.5;
        vars_[s] = 0.5 + f64(s % 7) / 14.0;
    }}
    for (f_ = 0; f_ < FRAMES; f_ += 1) {{
        for (s = 0; s < SENONES; s += 1) {{
            var total: f64 = 0.0;
            for (m = 0; m < MIX; m += 1) {{
                var dist: f64 = 0.0;
                for (d = 0; d < DIMS; d += 1) {{
                    var diff: f64 = feats[f_ * DIMS + d]
                        - means[(s * MIX + m) * DIMS + d];
                    dist += diff * diff / vars_[(s * MIX + m) * DIMS + d];
                }}
                total += exp_approx(0.0 - 0.5 * dist);
            }}
            scores[f_ * SENONES + s] = total;
        }}
    }}
    var cs: i32 = 0;
    for (f_ = 0; f_ < FRAMES * SENONES; f_ += 1) {{
        cs = cs * 31 + i32(scores[f_] * 100000.0);
    }}
    return cs;
}}"
    );
    Benchmark::pure("482.sphinx3", Suite::Spec, source)
}

// ---------------------------------------------------------------------
// 641.leela_s — Monte-Carlo tree-search playouts on a small Go board.
// ---------------------------------------------------------------------

fn leela(size: Size) -> Benchmark {
    let playouts = n(size, 60, 420);
    let source = format!(
        "const SIZE = 9;
const CELLS = SIZE * SIZE;
const PLAYOUTS = {playouts};
array i8 board[CELLS];
array i32 wins[CELLS];
array i32 visits[CELLS];
global u32 rng = 0x1ee1a;

fn rand_below(nn: i32) -> i32 {{
    rng = rng * u32(1103515245) + u32(12345);
    return i32((rng >> u32(8)) % u32(nn));
}}

fn playout(first: i32) -> i32 {{
    var i: i32 = 0;
    for (i = 0; i < CELLS; i += 1) {{ board[i] = 0; }}
    board[first] = 1;
    var score: i32 = 0;
    var turn: i32 = 2;
    var mv: i32 = 0;
    for (mv = 0; mv < 60; mv += 1) {{
        var p: i32 = rand_below(CELLS);
        if (board[p] == 0) {{
            board[p] = turn;
            // Tiny capture heuristic: stones with 4 same-colour
            // neighbours flip.
            var r: i32 = p / SIZE;
            var c: i32 = p % SIZE;
            var same: i32 = 0;
            if (r > 0 && board[p - SIZE] == turn) {{ same += 1; }}
            if (r < SIZE - 1 && board[p + SIZE] == turn) {{ same += 1; }}
            if (c > 0 && board[p - 1] == turn) {{ same += 1; }}
            if (c < SIZE - 1 && board[p + 1] == turn) {{ same += 1; }}
            score += same * (3 - 2 * turn % 2);
            turn = 3 - turn;
        }}
    }}
    for (i = 0; i < CELLS; i += 1) {{
        if (board[i] == 1) {{ score += 1; }}
        if (board[i] == 2) {{ score -= 1; }}
    }}
    return score;
}}

fn ucb_select() -> i32 {{
    var best: i32 = 0;
    var bestv: f64 = 0.0 - 1.0e18;
    var i: i32 = 0;
    for (i = 0; i < CELLS; i += 1) {{
        var v: f64 = 0.0;
        if (visits[i] == 0) {{ v = 1.0e9 + f64(rand_below(1000)); }}
        else {{
            v = f64(wins[i]) / f64(visits[i])
              + 1.4 * sqrt(1.0 / f64(visits[i]));
        }}
        if (v > bestv) {{ bestv = v; best = i; }}
    }}
    return best;
}}

fn main() -> i32 {{
    var p: i32 = 0;
    for (p = 0; p < PLAYOUTS; p += 1) {{
        var mv: i32 = ucb_select();
        var s: i32 = playout(mv);
        visits[mv] += 1;
        if (s > 0) {{ wins[mv] += 1; }}
    }}
    var cs: i32 = 0;
    var i: i32 = 0;
    for (i = 0; i < CELLS; i += 1) {{ cs = cs * 31 + wins[i] * 7 + visits[i]; }}
    return cs;
}}"
    );
    Benchmark::pure("641.leela_s", Suite::Spec, source)
}

// ---------------------------------------------------------------------
// 644.nab_s — pairwise molecular mechanics (electrostatics + LJ).
// ---------------------------------------------------------------------

fn nab(size: Size) -> Benchmark {
    let atoms = n(size, 40, 176);
    let steps = n(size, 4, 12);
    let source = format!(
        "const ATOMS = {atoms};
const STEPS = {steps};
array f64 x[ATOMS]; array f64 y[ATOMS]; array f64 z[ATOMS];
array f64 q[ATOMS];
array f64 gx[ATOMS]; array f64 gy[ATOMS]; array f64 gz[ATOMS];
global f64 energy = 0.0;

fn forces() {{
    var i: i32 = 0; var j: i32 = 0;
    energy = 0.0;
    for (i = 0; i < ATOMS; i += 1) {{ gx[i] = 0.0; gy[i] = 0.0; gz[i] = 0.0; }}
    for (i = 0; i < ATOMS; i += 1) {{
        for (j = i + 1; j < ATOMS; j += 1) {{
            var dx: f64 = x[i] - x[j];
            var dy: f64 = y[i] - y[j];
            var dz: f64 = z[i] - z[j];
            var r2: f64 = dx * dx + dy * dy + dz * dz + 0.1;
            var r: f64 = sqrt(r2);
            var inv_r: f64 = 1.0 / r;
            var inv2: f64 = inv_r * inv_r;
            var inv6: f64 = inv2 * inv2 * inv2;
            var elec: f64 = q[i] * q[j] * inv_r;
            var lj: f64 = inv6 * inv6 - inv6;
            energy += elec + lj;
            var f: f64 = (elec + 12.0 * inv6 * inv6 - 6.0 * inv6) * inv2;
            if (f > 50.0) {{ f = 50.0; }}
            if (f < 0.0 - 50.0) {{ f = 0.0 - 50.0; }}
            gx[i] += f * dx; gy[i] += f * dy; gz[i] += f * dz;
            gx[j] -= f * dx; gy[j] -= f * dy; gz[j] -= f * dz;
        }}
    }}
}}

fn main() -> i32 {{
    var i: i32 = 0;
    for (i = 0; i < ATOMS; i += 1) {{
        x[i] = f64(i % 10) * 1.2;
        y[i] = f64((i / 10) % 10) * 1.2;
        z[i] = f64(i / 100) * 1.2 + f64(i % 3) * 0.1;
        q[i] = f64(i % 5) * 0.2 - 0.4;
    }}
    var t: i32 = 0;
    var cs: i32 = 0;
    for (t = 0; t < STEPS; t += 1) {{
        forces();
        for (i = 0; i < ATOMS; i += 1) {{
            x[i] += gx[i] * 0.0005;
            y[i] += gy[i] * 0.0005;
            z[i] += gz[i] * 0.0005;
        }}
        cs = cs * 31 + i32(energy * 16.0);
    }}
    for (i = 0; i < ATOMS; i += 1) {{ cs = cs * 31 + i32(x[i] * 256.0); }}
    return cs;
}}"
    );
    Benchmark::pure("644.nab_s", Suite::Spec, source)
}

/// Standard result epilogue: every SPEC run writes its result block to a
/// file, as real SPEC harness runs do — this is what makes every row of
/// the paper's Figure 4 non-zero.
fn add_result_output(mut b: Benchmark) -> Benchmark {
    let epilogue = "
array u8 __out_path = \"/bench.out\\0\";
array i32 __out_buf[4];
fn __emit(cs: i32) -> i32 {
    __out_buf[0] = cs;
    __out_buf[1] = cs ^ 0x5a5a5a5a;
    __out_buf[2] = 0x600dbeef;
    var fd: i32 = syscall(5, __out_path, 0x241, 0);
    syscall(4, fd, __out_buf, 16);
    syscall(6, fd);
    return cs;
}
";
    // Wrap the final `return <expr>;` of `main` (the last function).
    let idx = b.source.rfind("return ").expect("main returns");
    let end = b.source[idx..].find(';').expect("terminated") + idx;
    let expr = b.source[idx + 7..end].to_string();
    b.source
        .replace_range(idx..end, &format!("return __emit({expr})"));
    b.source.insert_str(0, epilogue);
    b.outputs.push("/bench.out".to_string());
    b
}

/// All 15 SPEC-analog benchmarks at the given size.
pub fn all(size: Size) -> Vec<Benchmark> {
    vec![
        bzip2(size),
        mcf(size),
        milc(size),
        namd(size),
        gobmk(size),
        soplex(size),
        povray(size),
        sjeng(size),
        libquantum(size),
        h264ref(size),
        lbm(size),
        astar(size),
        sphinx3(size),
        leela(size),
        nab(size),
    ]
    .into_iter()
    .map(add_result_output)
    .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use wasmperf_browsix::{AppendPolicy, Kernel};
    use wasmperf_cir::Interp;

    /// Runs a spec benchmark under the CLite interpreter with a Browsix
    /// kernel, returning (checksum, kernel).
    fn run_with_kernel(b: &Benchmark) -> (i32, Kernel) {
        let prog = wasmperf_cir::compile(&b.source).unwrap_or_else(|e| panic!("{}: {e}", b.name));
        let mut kernel = Kernel::new(AppendPolicy::Chunked4K);
        for (path, data) in &b.inputs {
            kernel.fs.write_all(path, data).expect("stage input");
        }
        let mut interp = Interp::new(&prog, kernel);
        interp.set_fuel(2_000_000_000);
        let r = interp
            .run("main", &[])
            .unwrap_or_else(|e| panic!("{} traps: {e}", b.name));
        let cs = r.expect("checksum") as u32 as i32;
        let kernel = std::mem::take(interp.host_mut());
        (cs, kernel)
    }

    #[test]
    fn all_spec_benchmarks_run_at_test_size() {
        for b in all(Size::Test) {
            let (cs, kernel) = run_with_kernel(&b);
            assert_ne!(cs, 0, "{}: zero checksum", b.name);
            for out in &b.outputs {
                let size = kernel
                    .fs
                    .size(out)
                    .unwrap_or_else(|_| panic!("{}: missing output {out}", b.name));
                assert!(size > 0, "{}: empty output {out}", b.name);
            }
        }
    }

    #[test]
    fn io_benchmarks_issue_syscalls() {
        for b in all(Size::Test) {
            let (_, kernel) = run_with_kernel(&b);
            if !b.inputs.is_empty() || !b.outputs.is_empty() {
                assert!(
                    kernel.stats.syscalls > 0,
                    "{}: no syscalls despite I/O",
                    b.name
                );
            }
        }
    }

    #[test]
    fn h264_appends_stress_the_fs() {
        let b = all(Size::Test)
            .into_iter()
            .find(|b| b.name == "464.h264ref")
            .unwrap();
        let (_, kernel) = run_with_kernel(&b);
        // Many small appends (16 bytes each).
        assert!(kernel.stats.syscalls > 50, "{}", kernel.stats.syscalls);
    }

    #[test]
    fn checksums_are_deterministic() {
        let a = run_with_kernel(&all(Size::Test)[0]).0;
        let b = run_with_kernel(&all(Size::Test)[0]).0;
        assert_eq!(a, b);
    }

    #[test]
    fn mcf_has_a_large_straight_line_loop() {
        let b = all(Size::Test)
            .into_iter()
            .find(|b| b.name == "429.mcf")
            .unwrap();
        // The generated relaxation block repeats many times.
        assert!(b.source.matches("if (w < dist[v])").count() >= 90);
    }

    #[test]
    fn sjeng_has_a_huge_evaluator() {
        let b = all(Size::Test)
            .into_iter()
            .find(|b| b.name == "458.sjeng")
            .unwrap();
        assert!(b.source.len() > 40_000, "{}", b.source.len());
    }
}
