//! The benchmark suite: PolyBenchC and SPEC CPU analogs in CLite.
//!
//! The paper's evaluation runs three suites: PolyBenchC (the kernels the
//! original WebAssembly paper used), and the C/C++ benchmarks of SPEC
//! CPU2006 and CPU2017. This crate provides:
//!
//! - [`polybench`]: the 23 PolyBenchC kernels, reimplemented directly
//!   (they are ~100-line scientific kernels);
//! - [`spec`]: one *analog miniature* per SPEC benchmark the paper
//!   measures — each reproduces its counterpart's dominant behaviour
//!   (hot-loop shape, call and indirect-call density, instruction
//!   footprint, file I/O) as catalogued in DESIGN.md §1;
//! - [`io`]: the I/O-heavy class — four syscall-bound programs (pipe
//!   chain, file grep, metadata churn, mixed read/write) that put the
//!   Browsix kernel on the critical path for wasmperf-prof;
//! - [`replay`]: recorded application runs loaded from `recordings/`
//!   `.replay` files (wasmperf-replay), executed against a replay kernel
//!   that answers every syscall from the recording;
//! - input-file generation for the analogs that use the Browsix
//!   filesystem, and a self-checksum convention: every program's `main`
//!   returns an `i32` checksum, which the harness compares across every
//!   engine (the `cmp`-based output validation of BROWSIX-SPEC, §3).
//!
//! Programs come in two [`Size`]s: `Test` for CI-speed runs and `Ref`
//! for report-quality measurements.

pub mod io;
pub mod polybench;
pub mod replay;
pub mod spec;

/// Workload size class.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Size {
    /// Small inputs for fast differential tests.
    Test,
    /// Report-scale inputs.
    Ref,
}

impl Size {
    /// Parses the user-facing size name (`report --size`, the serve wire
    /// protocol). Inverse of [`Size::as_str`].
    pub fn parse(s: &str) -> Option<Size> {
        match s {
            "test" => Some(Size::Test),
            "ref" => Some(Size::Ref),
            _ => None,
        }
    }

    /// The user-facing size name.
    pub fn as_str(&self) -> &'static str {
        match self {
            Size::Test => "test",
            Size::Ref => "ref",
        }
    }
}

/// Which suite a benchmark belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Suite {
    /// PolyBenchC kernel.
    PolyBench,
    /// SPEC CPU analog.
    Spec,
    /// I/O-heavy syscall-bound program.
    Io,
    /// A recorded run replayed against its canned syscall boundary.
    Replay,
}

/// One benchmark: CLite source plus the inputs it expects.
#[derive(Debug, Clone)]
pub struct Benchmark {
    /// Display name (the paper's benchmark id, e.g. `401.bzip2`).
    pub name: String,
    /// Owning suite.
    pub suite: Suite,
    /// CLite source text.
    pub source: String,
    /// Files staged into the Browsix filesystem before the run.
    pub inputs: Vec<(String, Vec<u8>)>,
    /// Expected files produced (checked non-empty after the run).
    pub outputs: Vec<String>,
    /// For [`Suite::Replay`] benchmarks: the recording that answers the
    /// program's syscalls in place of a live kernel.
    pub replay: Option<std::sync::Arc<wasmperf_replay::Recording>>,
}

impl Benchmark {
    fn pure(name: impl Into<String>, suite: Suite, source: String) -> Benchmark {
        Benchmark {
            name: name.into(),
            suite,
            source,
            inputs: Vec::new(),
            outputs: Vec::new(),
            replay: None,
        }
    }
}

/// All benchmarks of every suite at the given size.
pub fn all(size: Size) -> Vec<Benchmark> {
    let mut v = polybench::all(size);
    v.extend(spec::all(size));
    v.extend(io::all(size));
    v
}

/// A tiny deterministic PRNG for input generation (xorshift32).
pub(crate) struct Rng(u32);

impl Rng {
    pub fn new(seed: u32) -> Rng {
        Rng(seed.max(1))
    }

    pub fn next(&mut self) -> u32 {
        let mut x = self.0;
        x ^= x << 13;
        x ^= x >> 17;
        x ^= x << 5;
        self.0 = x;
        x
    }

    pub fn below(&mut self, n: u32) -> u32 {
        self.next() % n
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn size_names_roundtrip() {
        for size in [Size::Test, Size::Ref] {
            assert_eq!(Size::parse(size.as_str()), Some(size));
        }
        assert_eq!(Size::parse("Test"), None);
        assert_eq!(Size::parse(""), None);
    }

    #[test]
    fn suites_have_expected_sizes() {
        assert_eq!(polybench::all(Size::Test).len(), 23);
        assert_eq!(spec::all(Size::Test).len(), 15);
        assert_eq!(io::all(Size::Test).len(), 4);
        assert_eq!(all(Size::Test).len(), 42);
    }

    #[test]
    fn every_benchmark_compiles() {
        for b in all(Size::Test) {
            wasmperf_cir::compile(&b.source)
                .unwrap_or_else(|e| panic!("{} fails to compile: {e}", b.name));
        }
    }

    #[test]
    fn names_match_the_paper() {
        let spec_names: Vec<String> = spec::all(Size::Test)
            .iter()
            .map(|b| b.name.clone())
            .collect();
        for expected in [
            "401.bzip2",
            "429.mcf",
            "433.milc",
            "444.namd",
            "445.gobmk",
            "450.soplex",
            "453.povray",
            "458.sjeng",
            "462.libquantum",
            "464.h264ref",
            "470.lbm",
            "473.astar",
            "482.sphinx3",
            "641.leela_s",
            "644.nab_s",
        ] {
            assert!(
                spec_names.iter().any(|n| n == expected),
                "missing {expected}"
            );
        }
    }

    #[test]
    fn rng_is_deterministic() {
        let mut a = Rng::new(42);
        let mut b = Rng::new(42);
        for _ in 0..100 {
            assert_eq!(a.next(), b.next());
        }
        let mut c = Rng::new(43);
        assert_ne!(a.next(), c.next());
    }
}
