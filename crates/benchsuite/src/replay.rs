//! [`Suite::Replay`]: recorded runs as standalone benchmarks.
//!
//! Each `.replay` file in the recordings directory becomes a benchmark
//! named `replay.<name>`: the recorded program's CLite source compiles on
//! every pipeline as usual, but at run time the harness swaps the live
//! Browsix kernel for a replay kernel that answers each syscall from the
//! recording. No inputs are staged and no output files are produced —
//! the recording *is* the workload.

use crate::{Benchmark, Size, Suite};
use std::path::{Path, PathBuf};
use std::sync::Arc;
use wasmperf_replay::Recording;

/// Environment variable overriding the recordings directory.
pub const RECORDINGS_ENV: &str = "WASMPERF_RECORDINGS";

/// Default recordings directory, relative to the working directory.
pub const RECORDINGS_DIR: &str = "recordings";

/// Wraps a recording as a runnable benchmark.
pub fn from_recording(rec: Arc<Recording>) -> Benchmark {
    Benchmark {
        name: format!("replay.{}", rec.name),
        suite: Suite::Replay,
        source: rec.source.clone(),
        inputs: Vec::new(),
        outputs: Vec::new(),
        replay: Some(rec),
    }
}

/// The recordings directory: `$WASMPERF_RECORDINGS` if set, else
/// `./recordings`.
pub fn dir() -> PathBuf {
    std::env::var_os(RECORDINGS_ENV)
        .map(PathBuf::from)
        .unwrap_or_else(|| PathBuf::from(RECORDINGS_DIR))
}

/// Loads every recording under `path` whose size tag matches, as
/// benchmarks. A missing directory is an empty suite; a malformed
/// recording panics with the loader's error (a corrupt checked-in corpus
/// should fail loudly, not silently shrink the suite).
pub fn load_dir(path: &Path, size: Size) -> Vec<Benchmark> {
    wasmperf_replay::load_dir(path)
        .unwrap_or_else(|e| panic!("loading recordings from {}: {e}", path.display()))
        .into_iter()
        .filter(|r| r.size == size.as_str())
        .map(|r| from_recording(Arc::new(r)))
        .collect()
}

/// All replay benchmarks at the given size from the default directory.
pub fn all(size: Size) -> Vec<Benchmark> {
    load_dir(&dir(), size)
}

#[cfg(test)]
mod tests {
    use super::*;
    use wasmperf_replay::ReplayRecord;

    fn recording(name: &str, size: &str) -> Recording {
        Recording {
            name: name.into(),
            size: size.into(),
            source: "int main() { return 5; }".into(),
            inputs: Vec::new(),
            checksum: 5,
            reduced: false,
            records: vec![ReplayRecord {
                nr: 20,
                ret: 1,
                service_cycles: 600,
                transport_cycles: 4000,
                ..ReplayRecord::default()
            }],
        }
    }

    #[test]
    fn wraps_a_recording_with_a_prefixed_name() {
        let b = from_recording(Arc::new(recording("webapp", "test")));
        assert_eq!(b.name, "replay.webapp");
        assert_eq!(b.suite, Suite::Replay);
        assert!(b.inputs.is_empty() && b.outputs.is_empty());
        assert_eq!(b.replay.as_ref().unwrap().checksum, 5);
    }

    #[test]
    fn missing_directory_is_an_empty_suite() {
        let benches = load_dir(Path::new("/nonexistent/recordings"), Size::Test);
        assert!(benches.is_empty());
    }

    #[test]
    fn load_dir_filters_by_size_and_sorts_by_file_name() {
        let dir = std::env::temp_dir().join(format!("wasmperf-replay-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        wasmperf_replay::save(&recording("bbb", "test"), &dir.join("b.replay")).unwrap();
        wasmperf_replay::save(&recording("aaa", "test"), &dir.join("a.replay")).unwrap();
        wasmperf_replay::save(&recording("big", "ref"), &dir.join("c.replay")).unwrap();
        std::fs::write(dir.join("notes.txt"), "ignored").unwrap();
        let test = load_dir(&dir, Size::Test);
        assert_eq!(
            test.iter().map(|b| b.name.as_str()).collect::<Vec<_>>(),
            ["replay.aaa", "replay.bbb"]
        );
        let reff = load_dir(&dir, Size::Ref);
        assert_eq!(reff.len(), 1);
        assert_eq!(reff[0].name, "replay.big");
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
